//! Criterion benchmark of the headline comparison: one select → probe chain
//! end-to-end at the two UoT extremes — the quantity Figs. 6/7 sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use uot_core::{Engine, EngineConfig, Uot};
use uot_tpch::{chain_specs, TpchConfig, TpchDb};

fn bench_chain_uot(c: &mut Criterion) {
    let db = TpchDb::generate(TpchConfig::scale(0.005).with_block_bytes(32 * 1024));
    let chains = chain_specs(&db).expect("chains build");
    let chain = &chains[0]; // Q03
    let mut g = c.benchmark_group("q03_chain");
    g.sample_size(10);
    for (label, uot) in [("uot_low", Uot::LOW), ("uot_table", Uot::HIGH)] {
        let engine = Engine::new(
            EngineConfig::parallel(4)
                .with_block_bytes(32 * 1024)
                .with_uot(uot),
        );
        g.bench_function(label, |bench| {
            bench.iter(|| {
                engine
                    .execute(chain.plan.clone().with_uniform_uot(uot))
                    .expect("chain runs")
                    .num_rows()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_chain_uot);
criterion_main!(benches);
