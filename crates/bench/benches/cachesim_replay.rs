//! Criterion benchmark of the cache simulator itself (replay throughput),
//! keeping the Table VI harness honest about its own cost.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use uot_cachesim::{Hierarchy, HierarchyConfig, TraceGen};

fn bench_replay(c: &mut Criterion) {
    let gen = TraceGen::new(128 * 1024, 141, 16 * 1024 * 1024);
    let traces = [
        ("select", gen.select_row_store()),
        ("probe", gen.probe_hash()),
    ];
    let mut g = c.benchmark_group("cachesim_replay");
    for (label, trace) in &traces {
        for prefetch in [true, false] {
            g.bench_function(format!("{label}_pf_{prefetch}"), |bench| {
                bench.iter(|| {
                    let mut h = Hierarchy::new(HierarchyConfig::haswell(prefetch));
                    black_box(h.replay(trace).cycles)
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
