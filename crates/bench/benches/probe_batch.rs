//! Scalar vs batched probe throughput.
//!
//! Drives the probe operator end to end (key extraction, hashing, hash-table
//! lookup, output assembly) through both implementations — the retained
//! row-at-a-time `execute_scalar` reference and the vectorized `execute`
//! pipeline — across 1/2/4-column keys and row/column probe-block formats.
//! Every configuration joins the same 16K-row build side against 16K probe
//! rows (all matching), so ns/iter converts directly to probe rows/sec.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use uot_core::ops::{build, probe};
use uot_core::state::ExecContext;
use uot_core::{JoinType, PlanBuilder, QueryPlan, Source};
use uot_storage::{
    BlockFormat, BlockPool, DataType, MemoryTracker, Schema, Table, TableBuilder, Value,
};

const ROWS: i32 = 16_384;

/// Four identical Int32 key columns plus a payload: joining on 1, 2, or 4 of
/// them changes key width but not join cardinality, keeping runs comparable.
fn key_table(name: &str, format: BlockFormat) -> Arc<Table> {
    let s = Schema::from_pairs(&[
        ("k1", DataType::Int32),
        ("k2", DataType::Int32),
        ("k3", DataType::Int32),
        ("k4", DataType::Int32),
        ("v", DataType::Float64),
    ]);
    let mut tb = TableBuilder::new(name, s, format, 1 << 22);
    for i in 0..ROWS {
        tb.append(&[
            Value::I32(i),
            Value::I32(i),
            Value::I32(i),
            Value::I32(i),
            Value::F64(i as f64),
        ])
        .unwrap();
    }
    Arc::new(tb.finish())
}

fn join_ctx(key_cols: Vec<usize>, probe_format: BlockFormat) -> (ExecContext, usize, Arc<Table>) {
    let dim = key_table("dim", BlockFormat::Column);
    let fact = key_table("fact", probe_format);
    let mut pb = PlanBuilder::new();
    let b = pb
        .build_hash(Source::Table(dim.clone()), key_cols.clone(), vec![4])
        .unwrap();
    let p = pb
        .probe(
            Source::Table(fact.clone()),
            b,
            key_cols,
            vec![0, 4],
            vec![0],
            JoinType::Inner,
        )
        .unwrap();
    let plan: Arc<QueryPlan> = Arc::new(pb.build(p).unwrap());
    let pool = BlockPool::new(MemoryTracker::new());
    let ctx = ExecContext::new(plan, pool, BlockFormat::Column, 1 << 22, 16).unwrap();
    for blk in dim.blocks() {
        build::execute(&ctx, b, &blk.clone()).unwrap();
    }
    (ctx, p, fact)
}

fn bench_probe_paths(c: &mut Criterion) {
    for (fmt_label, format) in [("col", BlockFormat::Column), ("row", BlockFormat::Row)] {
        for key_cols in [vec![0], vec![0, 1], vec![0, 1, 2, 3]] {
            let (ctx, p, fact) = join_ctx(key_cols.clone(), format);
            let mut g = c.benchmark_group(format!("probe_{}_{}key", fmt_label, key_cols.len()));
            g.bench_function("scalar", |bench| {
                bench.iter(|| {
                    let mut out = 0usize;
                    for blk in fact.blocks() {
                        for b in probe::execute_scalar(&ctx, p, &blk.clone()).unwrap() {
                            out += b.num_rows();
                        }
                    }
                    for b in ctx.output(p).flush() {
                        out += b.num_rows();
                    }
                    black_box(out)
                })
            });
            g.bench_function("batched", |bench| {
                bench.iter(|| {
                    let mut out = 0usize;
                    for blk in fact.blocks() {
                        for b in probe::execute(&ctx, p, &blk.clone()).unwrap() {
                            out += b.num_rows();
                        }
                    }
                    for b in ctx.output(p).flush() {
                        out += b.num_rows();
                    }
                    black_box(out)
                })
            });
            g.finish();
        }
    }
}

criterion_group!(benches, bench_probe_paths);
criterion_main!(benches);
