//! Criterion micro-benchmarks of the join primitives: hash-table build and
//! probe at two hash-table sizes (the Fig. 9/10 scalability contrast) and
//! the aggregate update loop.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use uot_core::hash_table::JoinHashTable;
use uot_expr::{col, AggSpec};
use uot_storage::{BlockFormat, DataType, HashKey, Schema, StorageBlock, Value};

fn key_block(rows: i32, key_range: i32) -> StorageBlock {
    let s = Schema::from_pairs(&[("k", DataType::Int32), ("v", DataType::Float64)]);
    let mut b = StorageBlock::new(s, BlockFormat::Column, 1 << 22).unwrap();
    for i in 0..rows {
        b.append_row(&[Value::I32(i % key_range), Value::F64(i as f64)])
            .unwrap();
    }
    b
}

fn bench_build(c: &mut Criterion) {
    let b = key_block(8192, 8192);
    c.bench_function("hash_build_8k_rows", |bench| {
        bench.iter(|| {
            let ht = JoinHashTable::new(b.schema().project(&[1]), 64);
            ht.insert_block(&b, &[0], &[1]).unwrap();
            black_box(ht.len())
        })
    });
}

fn bench_probe(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash_probe_8k_rows");
    for (label, table_rows) in [("small_ht", 1024i32), ("large_ht", 262_144)] {
        let build = key_block(table_rows, table_rows);
        let ht = Arc::new(JoinHashTable::new(build.schema().project(&[1]), 64));
        ht.insert_block(&build, &[0], &[1]).unwrap();
        let probe = key_block(8192, table_rows);
        g.bench_function(label, |bench| {
            bench.iter(|| {
                let mut acc = 0f64;
                for r in 0..probe.num_rows() {
                    let key = HashKey::from_row(&probe, r, &[0]);
                    ht.probe_key(&key, |p| acc += p.f64_at(0));
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

fn bench_aggregate_update(c: &mut Criterion) {
    let b = key_block(8192, 4);
    let spec = AggSpec::sum(col(1));
    c.bench_function("agg_sum_update_8k", |bench| {
        bench.iter(|| {
            let mut st = spec.init_state(b.schema()).unwrap();
            let data = spec.arg.as_ref().unwrap().eval_all(&b).unwrap();
            st.update_column(&data).unwrap();
            black_box(st.finalize())
        })
    });
}

criterion_group!(benches, bench_build, bench_probe, bench_aggregate_update);
criterion_main!(benches);
