//! Criterion micro-benchmarks of the storage primitives whose costs the
//! paper's dimensions rest on: block append and single-column scan in both
//! formats, predicate evaluation, and bitmap iteration.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use uot_expr::{cmp, col, lit, CmpOp};
use uot_storage::{Bitmap, BlockFormat, DataType, Schema, StorageBlock, Value};

fn filled(format: BlockFormat, rows: i32) -> StorageBlock {
    let s = Schema::from_pairs(&[
        ("k", DataType::Int32),
        ("v", DataType::Float64),
        ("tag", DataType::Char(16)),
        ("d", DataType::Date),
    ]);
    let mut b = StorageBlock::new(s, format, 1 << 22).unwrap();
    for i in 0..rows {
        b.append_row(&[
            Value::I32(i),
            Value::F64(i as f64),
            Value::Str(format!("tag-{i:06}")),
            Value::Date(i),
        ])
        .unwrap();
    }
    b
}

fn bench_append(c: &mut Criterion) {
    let mut g = c.benchmark_group("block_append_4col");
    for fmt in [BlockFormat::Row, BlockFormat::Column] {
        g.bench_function(fmt.label(), |bench| {
            bench.iter(|| black_box(filled(fmt, 4096)).num_rows())
        });
    }
    g.finish();
}

fn bench_column_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("scan_one_i32_column");
    for fmt in [BlockFormat::Row, BlockFormat::Column] {
        let b = filled(fmt, 8192);
        g.bench_function(fmt.label(), |bench| {
            bench.iter(|| {
                let mut acc = 0i64;
                for r in 0..b.num_rows() {
                    acc += b.i32_at(r, 0) as i64;
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

fn bench_predicate(c: &mut Criterion) {
    let mut g = c.benchmark_group("predicate_range_filter");
    let p = cmp(col(0), CmpOp::Ge, lit(1000i32)).and(cmp(col(0), CmpOp::Lt, lit(5000i32)));
    for fmt in [BlockFormat::Row, BlockFormat::Column] {
        let b = filled(fmt, 8192);
        g.bench_function(fmt.label(), |bench| {
            bench.iter(|| black_box(p.eval(&b).unwrap().count_ones()))
        });
    }
    g.finish();
}

fn bench_bitmap(c: &mut Criterion) {
    let mut bm = Bitmap::zeros(1 << 16);
    for i in (0..1 << 16).step_by(3) {
        bm.set(i);
    }
    c.bench_function("bitmap_iter_ones_64k", |bench| {
        bench.iter(|| black_box(bm.iter_ones().sum::<usize>()))
    });
}

criterion_group!(
    benches,
    bench_append,
    bench_column_scan,
    bench_predicate,
    bench_bitmap
);
criterion_main!(benches);
