//! Experiment output: aligned text tables, JSON dumps, platform info.

use std::io::Write;

/// Escape a string for inclusion in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_str(s: &str) -> String {
    format!("\"{}\"", json_escape(s))
}

fn json_str_array(items: &[String]) -> String {
    let cells: Vec<String> = items.iter().map(|s| json_str(s)).collect();
    format!("[{}]", cells.join(","))
}

/// A simple column-aligned result table that can also serialize to JSON.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment title (e.g. "Fig. 7: query execution times").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (w, c) in widths.iter_mut().zip(r) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("| ");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{c:<w$} | ", w = w));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&"-".repeat(w + 2));
            sep.push('|');
        }
        sep.push('\n');
        out.push_str(&sep);
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
        }
        out
    }

    /// Serialize to a JSON object (`{"title": ..., "headers": [...],
    /// "rows": [[...]]}`) without external dependencies.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self.rows.iter().map(|r| json_str_array(r)).collect();
        format!(
            "{{\"title\":{},\"headers\":{},\"rows\":[{}]}}",
            json_str(&self.title),
            json_str_array(&self.headers),
            rows.join(",")
        )
    }

    /// Print to stdout and, if the process got a CLI path argument, dump
    /// JSON there too (appending when several tables are emitted). Arguments
    /// that look like flags (`--smoke`) are not paths.
    pub fn emit(&self) {
        println!("{}", self.render());
        if let Some(path) = std::env::args().nth(1).filter(|a| !a.starts_with("--")) {
            let json = self.to_json();
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .expect("open JSON output file");
            writeln!(f, "{json}").expect("write JSON output");
        }
    }
}

/// The Table V analogue: what platform this run actually used.
#[derive(Debug, Clone)]
pub struct PlatformInfo {
    /// Logical CPU count.
    pub cpus: usize,
    /// OS description.
    pub os: String,
    /// Scale factor used.
    pub scale_factor: f64,
    /// Worker threads used.
    pub workers: usize,
    /// Block sizes swept.
    pub block_sizes: Vec<String>,
}

impl PlatformInfo {
    /// Collect from the current environment.
    pub fn collect() -> Self {
        PlatformInfo {
            cpus: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            os: std::env::consts::OS.to_string(),
            scale_factor: crate::scale_factor(),
            workers: crate::workers(),
            block_sizes: crate::block_sizes()
                .iter()
                .map(|(n, _)| n.to_string())
                .collect(),
        }
    }

    /// Render as a two-column table (the Table V analogue).
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Table V analogue: evaluation platform for this run",
            &["Parameter", "Value"],
        );
        t.row(vec!["Logical CPUs".into(), self.cpus.to_string()]);
        t.row(vec!["OS".into(), self.os.clone()]);
        t.row(vec![
            "Data set".into(),
            format!("TPC-H scale factor {}", self.scale_factor),
        ]);
        t.row(vec!["Workers".into(), self.workers.to_string()]);
        t.row(vec!["Block sizes".into(), self.block_sizes.join(", ")]);
        t.row(vec![
            "UoT values".into(),
            "low = 1 block, high = full table".into(),
        ]);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["yyyy".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        let lines: Vec<&str> = s.lines().collect();
        // title, header, separator, two rows
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[3].len(), lines[4].len()); // aligned
        assert!(lines[2].starts_with("|--"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn platform_info_collects() {
        let p = PlatformInfo::collect();
        assert!(p.cpus >= 1);
        let t = p.table();
        assert!(t.render().contains("TPC-H"));
    }

    #[test]
    fn table_serializes_to_json() {
        let mut t = Table::new("j", &["a"]);
        t.row(vec!["1".into()]);
        let j = t.to_json();
        assert!(j.contains("\"title\":\"j\""));
        assert!(j.contains("\"headers\":[\"a\"]"));
        assert!(j.contains("\"rows\":[[\"1\"]]"));
    }

    #[test]
    fn json_escaping_handles_specials() {
        let mut t = Table::new("quote \" and \\ and\nnewline", &["h"]);
        t.row(vec!["\tcell".into()]);
        let j = t.to_json();
        assert!(j.contains("quote \\\" and \\\\ and\\nnewline"));
        assert!(j.contains("\\tcell"));
    }
}
