//! # uot-bench
//!
//! The experiment harness: one binary per table/figure of the paper (see
//! DESIGN.md's per-experiment index) plus Criterion micro-benchmarks of the
//! hot primitives.
//!
//! All binaries share this library's conventions:
//!
//! * The measurement protocol follows the paper: each configuration is run
//!   `UOT_RUNS` times (default 5) and the **mean of the best three** runs is
//!   reported.
//! * The workload scale comes from `UOT_SF` (default 0.02) — the paper used
//!   SF 50 on a 2-socket server; see DESIGN.md's substitution table.
//! * Worker count comes from `UOT_WORKERS` (default: min(8, cores)).
//! * Output is a readable aligned table on stdout; pass a path as the first
//!   CLI argument to also dump the rows as JSON.

pub mod report;

use std::time::Duration;
use uot_core::{Engine, EngineConfig, FusionPolicy, QueryPlan, QueryResult, Uot};
use uot_storage::BlockFormat;
use uot_tpch::{TpchConfig, TpchDb};

pub use report::{PlatformInfo, Table as ReportTable};

/// Scale factor for experiments (`UOT_SF`, default 0.02).
pub fn scale_factor() -> f64 {
    std::env::var("UOT_SF")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.02)
}

/// Worker count for parallel runs (`UOT_WORKERS`, default min(8, cores)).
pub fn workers() -> usize {
    std::env::var("UOT_WORKERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(4)
        })
}

/// Runs per configuration (`UOT_RUNS`, default 5).
pub fn runs() -> usize {
    std::env::var("UOT_RUNS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5)
        .max(1)
}

/// The block sizes swept by the experiments. The paper used 128 KB / 512 KB
/// / 2 MB against a 25 MB L3 on SF-50 data; at laptop scale we keep the same
/// *relative* regime (blocks well below / near / comfortably within cache)
/// with 32 KB / 128 KB / 512 KB.
pub fn block_sizes() -> Vec<(&'static str, usize)> {
    vec![
        ("32KB", 32 * 1024),
        ("128KB", 128 * 1024),
        ("512KB", 512 * 1024),
    ]
}

/// The generated database shared by an experiment binary.
pub fn make_db(block_bytes: usize, format: BlockFormat) -> TpchDb {
    TpchDb::generate(
        TpchConfig::scale(scale_factor())
            .with_block_bytes(block_bytes)
            .with_format(format),
    )
}

/// Engine config for an experiment run. Pins [`FusionPolicy::Never`]: the
/// paper's experiments measure the *staged* transfer spectrum (work orders,
/// per-operator tasks, edge staging), which fused pipelines would fold into
/// chain heads. `fig7_fused` — the UoT → 0 extension — overrides the policy
/// explicitly on every config it builds.
pub fn engine_config(block_bytes: usize, uot: Uot, workers: usize) -> EngineConfig {
    EngineConfig::parallel(workers)
        .with_block_bytes(block_bytes)
        .with_uot(uot)
        .with_fusion(FusionPolicy::Never)
}

/// The paper's measurement protocol: mean of the best 3 of `runs` runs.
/// Returns the duration plus the last run's full result (for metrics
/// readouts).
pub fn measure_query(plan: &QueryPlan, cfg: &EngineConfig, runs: usize) -> (Duration, QueryResult) {
    let engine = Engine::new(cfg.clone());
    let mut times = Vec::with_capacity(runs);
    let mut last = None;
    for _ in 0..runs {
        let r = engine
            .execute(plan.clone().with_uniform_uot(cfg.default_uot))
            .expect("experiment query must run");
        times.push(r.metrics.wall_time);
        last = Some(r);
    }
    (mean_of_best(&mut times, 3), last.expect("runs >= 1"))
}

/// Mean of the best `k` of the given times (paper protocol).
pub fn mean_of_best(times: &mut [Duration], k: usize) -> Duration {
    times.sort_unstable();
    let k = k.min(times.len()).max(1);
    let total: Duration = times[..k].iter().sum();
    total / k as u32
}

/// Milliseconds with two decimals (display helper).
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Microseconds with two decimals (display helper).
pub fn us(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e6)
}

/// The two UoT extremes the paper contrasts everywhere.
pub fn uot_extremes() -> [(&'static str, Uot); 2] {
    [("low(1 block)", Uot::LOW), ("high(table)", Uot::HIGH)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_best_selects_fastest() {
        let mut times = vec![
            Duration::from_millis(30),
            Duration::from_millis(10),
            Duration::from_millis(20),
            Duration::from_millis(40),
        ];
        assert_eq!(mean_of_best(&mut times, 3), Duration::from_millis(20));
        let mut one = vec![Duration::from_millis(7)];
        assert_eq!(mean_of_best(&mut one, 3), Duration::from_millis(7));
    }

    #[test]
    fn env_defaults() {
        assert!(scale_factor() > 0.0);
        assert!(workers() >= 1);
        assert!(runs() >= 1);
        assert_eq!(block_sizes().len(), 3);
    }

    #[test]
    fn display_helpers() {
        assert_eq!(ms(Duration::from_millis(1500)), "1500.00");
        assert_eq!(us(Duration::from_micros(5)), "5.00");
    }

    #[test]
    fn measure_query_runs_protocol() {
        use uot_core::{PlanBuilder, Source};
        use uot_expr::Predicate;
        use uot_storage::{DataType, Schema, TableBuilder, Value};
        let s = Schema::from_pairs(&[("k", DataType::Int32)]);
        let mut tb = TableBuilder::new("t", s, BlockFormat::Column, 64);
        for i in 0..32 {
            tb.append(&[Value::I32(i)]).unwrap();
        }
        let t = std::sync::Arc::new(tb.finish());
        let mut pb = PlanBuilder::new();
        let f = pb.filter(Source::Table(t), Predicate::True).unwrap();
        let plan = pb.build(f).unwrap();
        let cfg = EngineConfig::serial();
        let (d, r) = measure_query(&plan, &cfg, 4);
        assert!(d.as_nanos() > 0);
        assert_eq!(r.num_rows(), 32);
    }
}
