//! Fig. 8: query execution times with **row-store** base tables at the
//! largest block size, low vs high UoT.
//!
//! Paper findings: (1) the UoT still doesn't matter, and (2) queries are
//! slower than on column-store tables (compare with the 512KB rows of
//! Fig. 7) because scans drag unreferenced columns through the caches.

use uot_bench::{
    engine_config, make_db, measure_query, ms, runs, uot_extremes, workers, ReportTable,
};
use uot_storage::BlockFormat;
use uot_tpch::{all_queries, build_query};

fn main() {
    let bs = 512 * 1024;
    let row_db = make_db(bs, BlockFormat::Row);
    let col_db = make_db(bs, BlockFormat::Column);
    let mut table = ReportTable::new(
        "Fig. 8: query times (ms), row-store base tables, 512KB blocks",
        &[
            "query",
            "uot=low",
            "uot=high",
            "column-store (low)",
            "row/column",
        ],
    );
    for q in all_queries() {
        let plan_row = build_query(q, &row_db).expect("plan builds");
        let plan_col = build_query(q, &col_db).expect("plan builds");
        let mut cells = vec![q.label()];
        let mut row_low = None;
        for (_, uot) in uot_extremes() {
            let cfg = engine_config(bs, uot, workers());
            let (t, _) = measure_query(&plan_row, &cfg, runs());
            if row_low.is_none() {
                row_low = Some(t);
            }
            cells.push(ms(t));
        }
        let cfg = engine_config(bs, uot_extremes()[0].1, workers());
        let (t_col, _) = measure_query(&plan_col, &cfg, runs());
        cells.push(ms(t_col));
        cells.push(format!(
            "{:.2}",
            row_low.expect("set above").as_secs_f64() / t_col.as_secs_f64().max(1e-12)
        ));
        table.row(cells);
    }
    table.emit();
}
