//! Fig. 6: execution time of the whole select → probe chain under low vs
//! high UoT, across block sizes.
//!
//! Paper finding: even where the probe alone benefits from a low UoT, the
//! chain-level gap is smaller (producers dominate), and it closes at large
//! block sizes.

use uot_bench::{
    block_sizes, engine_config, make_db, measure_query, ms, runs, uot_extremes, workers,
    ReportTable,
};
use uot_storage::BlockFormat;
use uot_tpch::chain_specs;

fn main() {
    let mut table = ReportTable::new(
        "Fig. 6: operator-chain execution time (ms)",
        &["chain", "block size", "uot=low", "uot=high", "low/high"],
    );
    for (bs_label, bs) in block_sizes() {
        let db = make_db(bs, BlockFormat::Column);
        let chains = chain_specs(&db).expect("chains build");
        for chain in &chains {
            let mut cells = vec![chain.name.to_string(), bs_label.to_string()];
            let mut vals = Vec::new();
            for (_, uot) in uot_extremes() {
                let cfg = engine_config(bs, uot, workers());
                let (t, _) = measure_query(&chain.plan, &cfg, runs());
                vals.push(t);
                cells.push(ms(t));
            }
            cells.push(format!(
                "{:.2}",
                vals[0].as_secs_f64() / vals[1].as_secs_f64().max(1e-12)
            ));
            table.row(cells);
        }
    }
    table.emit();
}
