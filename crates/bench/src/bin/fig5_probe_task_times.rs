//! Fig. 5: per-task execution time of the probe operator (the first
//! consumer in each chain) under low vs high UoT, across block sizes.
//!
//! Paper finding: low UoT benefits the probe (its input is hot in cache);
//! the advantage shrinks as blocks grow.

use uot_bench::uot_extremes;
use uot_bench::{
    block_sizes, engine_config, make_db, measure_query, runs, us, workers, ReportTable,
};
use uot_storage::BlockFormat;
use uot_tpch::chain_specs;

fn main() {
    let mut table = ReportTable::new(
        "Fig. 5: probe per-task execution time (µs)",
        &["chain", "block size", "uot=low", "uot=high", "low/high"],
    );
    for (bs_label, bs) in block_sizes() {
        let db = make_db(bs, BlockFormat::Column);
        let chains = chain_specs(&db).expect("chains build");
        for chain in &chains {
            let mut cells = vec![chain.name.to_string(), bs_label.to_string()];
            let mut vals = Vec::new();
            for (_, uot) in uot_extremes() {
                let cfg = engine_config(bs, uot, workers());
                let (_, r) = measure_query(&chain.plan, &cfg, runs());
                let avg = r.metrics.ops[chain.probe_op].avg_task_time();
                vals.push(avg);
                cells.push(us(avg));
            }
            let ratio = vals[0].as_secs_f64() / vals[1].as_secs_f64().max(1e-12);
            cells.push(format!("{ratio:.2}"));
            table.row(cells);
        }
    }
    table.emit();
}
