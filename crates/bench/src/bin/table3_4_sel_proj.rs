//! Tables III and IV: selectivity, projectivity and total memory reduction
//! of the big-table selections, measured on the generated data.

use uot_bench::{make_db, ReportTable};
use uot_storage::BlockFormat;
use uot_tpch::analysis::{average, lineitem_cases, measure, orders_cases};

fn main() {
    let db = make_db(128 * 1024, BlockFormat::Column);
    for (title, cases) in [
        (
            "Table III: memory reduction, input table lineitem",
            lineitem_cases(),
        ),
        (
            "Table IV: memory reduction, input table orders",
            orders_cases(),
        ),
    ] {
        let mut t = ReportTable::new(
            title,
            &["Query", "Selectivity (%)", "Projectivity (%)", "Total (%)"],
        );
        let rows: Vec<_> = cases
            .iter()
            .map(|c| measure(&db, c).expect("measure"))
            .collect();
        for r in &rows {
            t.row(vec![
                r.query.clone(),
                format!("{:.1}", r.selectivity_pct),
                format!("{:.1}", r.projectivity_pct),
                format!("{:.1}", r.total_pct),
            ]);
        }
        let avg = average(&rows);
        t.row(vec![
            avg.query,
            format!("{:.1}", avg.selectivity_pct),
            format!("{:.1}", avg.projectivity_pct),
            format!("{:.1}", avg.total_pct),
        ]);
        t.emit();
    }
}
