//! Fig. 7: full query execution times under low vs high UoT across block
//! sizes (column store).
//!
//! Paper finding: low UoT is slightly better at small blocks; the difference
//! vanishes as the block size grows; performance improves with block size
//! for both (storage-management overhead shrinks).

use uot_bench::{
    block_sizes, engine_config, make_db, measure_query, ms, runs, uot_extremes, workers,
    ReportTable,
};
use uot_storage::BlockFormat;
use uot_tpch::{all_queries, build_query};

fn main() {
    let mut table = ReportTable::new(
        "Fig. 7: query execution times (ms), column store",
        &["query", "block size", "uot=low", "uot=high", "low/high"],
    );
    for (bs_label, bs) in block_sizes() {
        let db = make_db(bs, BlockFormat::Column);
        for q in all_queries() {
            let plan = build_query(q, &db).expect("plan builds");
            let mut cells = vec![q.label(), bs_label.to_string()];
            let mut vals = Vec::new();
            for (_, uot) in uot_extremes() {
                let cfg = engine_config(bs, uot, workers());
                let (t, _) = measure_query(&plan, &cfg, runs());
                vals.push(t);
                cells.push(ms(t));
            }
            cells.push(format!(
                "{:.2}",
                vals[0].as_secs_f64() / vals[1].as_secs_f64().max(1e-12)
            ));
            table.row(cells);
        }
    }
    table.emit();
}
