//! Ablation: LIP (Bloom-filter lookahead pruning) on vs off.
//!
//! Section VI-C of the paper: "aggressive pruning techniques like LIP
//! filters can substantially bring down the selectivity", shrinking both the
//! materialized intermediate (the high-UoT memory overhead |σ(R)|) and the
//! data movement between operators. This reproduces that effect on Q3/Q10:
//! rows after the lineitem scan, blocks transferred to the probe, and query
//! time, with and without LIP.

use uot_bench::{engine_config, make_db, measure_query, ms, runs, workers, ReportTable};
use uot_core::Uot;
use uot_storage::BlockFormat;
use uot_tpch::{build_query, build_query_lip, QueryId};

fn main() {
    let bs = 32 * 1024;
    let db = make_db(bs, BlockFormat::Column);
    let mut t = ReportTable::new(
        "Ablation: LIP Bloom-filter pruning (low UoT, 32KB blocks)",
        &[
            "query",
            "lip",
            "time (ms)",
            "scan output rows",
            "rows pruned",
            "probe input blocks",
            "peak temp (KB)",
        ],
    );
    for q in [QueryId::Q3, QueryId::Q10] {
        for lip in [false, true] {
            let plan = if lip {
                build_query_lip(q, &db)
            } else {
                build_query(q, &db)
            }
            .expect("plan builds");
            let cfg = engine_config(bs, Uot::LOW, workers());
            let (time, r) = measure_query(&plan, &cfg, runs());
            // the lineitem select is the operator named select(lineitem)
            let (sel, probe) = {
                let sel = r
                    .metrics
                    .ops
                    .iter()
                    .position(|o| o.name == "select(lineitem)")
                    .expect("lineitem select present");
                // its consumer is the probe fed by it
                let probe = r
                    .metrics
                    .ops
                    .iter()
                    .position(|o| o.name == format!("probe(#{sel})"))
                    .expect("probe present");
                (sel, probe)
            };
            t.row(vec![
                q.label(),
                lip.to_string(),
                ms(time),
                r.metrics.ops[sel].produced_rows.to_string(),
                r.metrics.ops[sel].lip_pruned_rows.to_string(),
                r.metrics.ops[probe].input_blocks.to_string(),
                (r.metrics.peak_temp_bytes / 1024).to_string(),
            ]);
        }
    }
    t.emit();
}
