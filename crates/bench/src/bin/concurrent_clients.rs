//! Concurrent-clients benchmark: N closed-loop clients firing a mixed TPC-H
//! workload at one [`QueryService`] — one shared worker pool, one shared
//! memory budget — reporting per-query latency (p50/p99) and service
//! throughput for the two UoT extremes the paper contrasts everywhere.
//!
//! ```text
//! cargo run --release -p uot-bench --bin concurrent_clients [-- --smoke]
//! ```
//!
//! Knobs (same conventions as the rest of the harness): `UOT_SF`,
//! `UOT_WORKERS`, plus `UOT_CLIENTS` (default 4) and `UOT_ROUNDS` (queries
//! per client, default 5). `--smoke` forces a tiny, CI-friendly
//! configuration (4 clients x 2 rounds at SF 0.005) and keeps the hard
//! assertions: every query succeeds and the shared pool tracker returns to
//! exactly 0 bytes after all queries drain.

use std::time::{Duration, Instant};
use uot_bench::{ms, workers, ReportTable};
use uot_core::{QueryOptions, QueryService, ServiceConfig, Uot};
use uot_storage::BlockFormat;
use uot_tpch::{build_query, QueryId as TpchQuery, TpchConfig, TpchDb};

/// The mixed workload: scan-heavy aggregation, a shallow and a deep probe
/// pipeline, a semi join and a disjunctive join — one of each plan shape.
const MIX: [TpchQuery; 5] = [
    TpchQuery::Q1,
    TpchQuery::Q3,
    TpchQuery::Q6,
    TpchQuery::Q12,
    TpchQuery::Q19,
];

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
        .max(1)
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let ix = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[ix]
}

struct RunStats {
    p50: Duration,
    p99: Duration,
    qps: f64,
    queries: usize,
}

/// Drive `clients` closed-loop clients for `rounds` rounds each against one
/// service; every client walks the mix starting at its own offset so distinct
/// plan shapes are in flight simultaneously.
fn drive(service: &QueryService, db: &TpchDb, clients: usize, rounds: usize) -> RunStats {
    let started = Instant::now();
    let latencies: Vec<Duration> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                s.spawn(move || {
                    let mut lat = Vec::with_capacity(rounds);
                    for r in 0..rounds {
                        let q = MIX[(c + r) % MIX.len()];
                        let plan = build_query(q, db).expect("plan builds");
                        let t0 = Instant::now();
                        let handle = service.submit(plan).expect("service accepts");
                        let result = handle
                            .wait()
                            .unwrap_or_else(|e| panic!("client {c} {} failed: {e}", q.label()));
                        assert!(result.num_rows() > 0, "{} returned no rows", q.label());
                        lat.push(t0.elapsed());
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = started.elapsed();
    let mut sorted = latencies;
    sorted.sort_unstable();
    RunStats {
        p50: percentile(&sorted, 0.50),
        p99: percentile(&sorted, 0.99),
        qps: sorted.len() as f64 / wall.as_secs_f64().max(1e-9),
        queries: sorted.len(),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sf = if smoke {
        0.005
    } else {
        std::env::var("UOT_SF")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0.02)
    };
    let clients = if smoke {
        4
    } else {
        env_usize("UOT_CLIENTS", 4)
    };
    let rounds = if smoke { 2 } else { env_usize("UOT_ROUNDS", 5) };
    let block_bytes = 32 * 1024;

    println!(
        "concurrent clients: {clients} clients x {rounds} rounds, SF {sf}, \
         {} workers{}",
        workers(),
        if smoke { " [smoke]" } else { "" }
    );
    let db = TpchDb::generate(
        TpchConfig::scale(sf)
            .with_block_bytes(block_bytes)
            .with_format(BlockFormat::Column),
    );

    let mut table = ReportTable::new(
        "Concurrent clients: mixed TPC-H through one QueryService",
        &["uot", "queries", "p50 ms", "p99 ms", "qps"],
    );
    for (label, uot) in [("low (1 block)", Uot::LOW), ("high (table)", Uot::Table)] {
        let service = QueryService::start(ServiceConfig {
            workers: workers(),
            block_bytes,
            default_uot: uot,
            memory_budget: 256 << 20,
            default_reservation: 16 << 20,
            ..Default::default()
        })
        .expect("service starts");

        let stats = drive(&service, &db, clients, rounds);

        // The load-bearing invariant: with every query drained, no query's
        // temporary memory is still charged to the shared budget.
        let in_use = service.memory_in_use();
        assert_eq!(
            in_use, 0,
            "pool tracker must return to 0 after all queries drain (got {in_use} bytes)"
        );
        service.shutdown();

        table.row(vec![
            label.to_string(),
            stats.queries.to_string(),
            ms(stats.p50),
            ms(stats.p99),
            format!("{:.1}", stats.qps),
        ]);
    }
    table.emit();
    println!("pool tracker returned to 0 bytes after both runs: OK");

    // Contrast point: the same total work submitted one query at a time
    // (admission serialized by a budget that fits exactly one reservation).
    let serialized = QueryService::start(ServiceConfig {
        workers: workers(),
        block_bytes,
        default_uot: Uot::LOW,
        memory_budget: 16 << 20,
        default_reservation: 16 << 20,
        ..Default::default()
    })
    .expect("service starts");
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients * rounds)
        .map(|i| {
            let plan = build_query(MIX[i % MIX.len()], &db).expect("plan builds");
            serialized
                .submit_with(plan, QueryOptions::default())
                .expect("service accepts")
        })
        .collect();
    for h in handles {
        h.wait().expect("serialized query runs");
    }
    let serial_wall = t0.elapsed();
    assert_eq!(serialized.memory_in_use(), 0);
    println!(
        "admission-serialized reference (budget = one reservation): {} queries in {} ms \
         ({:.1} qps)",
        clients * rounds,
        ms(serial_wall),
        (clients * rounds) as f64 / serial_wall.as_secs_f64().max(1e-9)
    );
}
