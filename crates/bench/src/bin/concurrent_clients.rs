//! Concurrent-clients benchmark: N closed-loop clients firing a mixed TPC-H
//! workload at one [`QueryService`] through the SQL front door — one shared
//! worker pool, one shared memory budget, one shared plan cache — reporting
//! per-query latency (p50/p99), throughput, the compile-vs-cached
//! latency split for the two UoT extremes the paper contrasts everywhere,
//! and how many stream pipelines ran fused (push-based, UoT -> 0) versus
//! staged through transfer edges.
//!
//! Every client submits SQL text (`uot_tpch::sql_text`), so repeated rounds
//! of the same statement exercise the service-wide [`PlanCache`]: the first
//! submission of each statement compiles (a cache miss), every later one
//! reuses the compiled physical plan (a hit). Submitting pre-built plans per
//! iteration — what this benchmark used to do — would rebuild identical
//! plans `clients x rounds` times and never touch the cache.
//!
//! ```text
//! cargo run --release -p uot-bench --bin concurrent_clients [-- --smoke]
//! ```
//!
//! Knobs (same conventions as the rest of the harness): `UOT_SF`,
//! `UOT_WORKERS`, plus `UOT_CLIENTS` (default 4) and `UOT_ROUNDS` (queries
//! per client, default 5). `--smoke` forces a tiny, CI-friendly
//! configuration (4 clients x 2 rounds at SF 0.005) and keeps the hard
//! assertions: every query succeeds, the plan cache records hits, and the
//! shared pool tracker returns to exactly 0 bytes after all queries drain.

use std::time::{Duration, Instant};
use uot_bench::{ms, workers, ReportTable};
use uot_core::obs::hub::bucket_index;
use uot_core::{
    DegradePolicy, ExecOptions, HubHistogram, PlanCacheOutcome, QueryService, ServiceConfig, Uot,
};
use uot_storage::BlockFormat;
use uot_tpch::{sql_text, QueryId as TpchQuery, TpchConfig, TpchDb};

/// The mixed workload: scan-heavy aggregation, a shallow and a deep probe
/// pipeline, a semi join and a disjunctive join — one of each plan shape.
const MIX: [TpchQuery; 5] = [
    TpchQuery::Q1,
    TpchQuery::Q3,
    TpchQuery::Q6,
    TpchQuery::Q12,
    TpchQuery::Q19,
];

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
        .max(1)
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let ix = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[ix]
}

struct RunStats {
    p50: Duration,
    p99: Duration,
    qps: f64,
    queries: usize,
    /// Latencies of submissions that compiled (plan-cache misses).
    compiled: Vec<Duration>,
    /// Latencies of submissions served from the plan cache.
    cached: Vec<Duration>,
    /// Stream pipelines executed as fused push-based loops, summed over
    /// every submission.
    fused_pipelines: usize,
    /// Stream pipelines executed via staged transfer edges, summed over
    /// every submission.
    staged_pipelines: usize,
    /// Bytes written to the disk spill tier, summed over every submission.
    spilled_bytes: usize,
    /// Submissions that degraded instead of failing their budget: spilled
    /// to disk, or retried at a lower UoT.
    degraded_queries: usize,
}

/// Drive `clients` closed-loop clients for `rounds` rounds each against one
/// service; every client walks the mix starting at its own offset so distinct
/// plan shapes are in flight simultaneously. Each submission is SQL text and
/// records whether its plan came from the shared cache.
/// One submission's contribution to the report.
struct Sample {
    latency: Duration,
    outcome: PlanCacheOutcome,
    fused: usize,
    staged: usize,
    spilled_bytes: usize,
    degraded: bool,
}

fn drive(service: &QueryService, clients: usize, rounds: usize, opts: &ExecOptions) -> RunStats {
    let started = Instant::now();
    let samples: Vec<Sample> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let opts = opts.clone();
                s.spawn(move || {
                    let mut lat = Vec::with_capacity(rounds);
                    for r in 0..rounds {
                        let q = MIX[(c + r) % MIX.len()];
                        let t0 = Instant::now();
                        let handle = service
                            .submit_sql_with(sql_text(q), opts.clone())
                            .expect("service accepts");
                        let result = handle
                            .wait()
                            .unwrap_or_else(|e| panic!("client {c} {} failed: {e}", q.label()));
                        assert!(result.num_rows() > 0, "{} returned no rows", q.label());
                        let outcome = result
                            .metrics
                            .plan_cache
                            .expect("SQL submissions always report a cache outcome");
                        lat.push(Sample {
                            latency: t0.elapsed(),
                            outcome,
                            fused: result.metrics.fused_pipelines,
                            staged: result.metrics.staged_pipelines,
                            spilled_bytes: result.metrics.spilled_bytes,
                            degraded: result.metrics.spill_events > 0
                                || !result.metrics.degradations.is_empty(),
                        });
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = started.elapsed();
    let mut sorted: Vec<Duration> = samples.iter().map(|s| s.latency).collect();
    sorted.sort_unstable();
    let mut compiled: Vec<Duration> = samples
        .iter()
        .filter(|s| s.outcome == PlanCacheOutcome::Miss)
        .map(|s| s.latency)
        .collect();
    let mut cached: Vec<Duration> = samples
        .iter()
        .filter(|s| s.outcome == PlanCacheOutcome::Hit)
        .map(|s| s.latency)
        .collect();
    compiled.sort_unstable();
    cached.sort_unstable();
    RunStats {
        p50: percentile(&sorted, 0.50),
        p99: percentile(&sorted, 0.99),
        qps: sorted.len() as f64 / wall.as_secs_f64().max(1e-9),
        queries: sorted.len(),
        compiled,
        cached,
        fused_pipelines: samples.iter().map(|s| s.fused).sum(),
        staged_pipelines: samples.iter().map(|s| s.staged).sum(),
        spilled_bytes: samples.iter().map(|s| s.spilled_bytes).sum(),
        degraded_queries: samples.iter().filter(|s| s.degraded).count(),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sf = if smoke {
        0.005
    } else {
        std::env::var("UOT_SF")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0.02)
    };
    let clients = if smoke {
        4
    } else {
        env_usize("UOT_CLIENTS", 4)
    };
    let rounds = if smoke { 2 } else { env_usize("UOT_ROUNDS", 5) };
    let block_bytes = 32 * 1024;

    println!(
        "concurrent clients: {clients} clients x {rounds} rounds (SQL front door), SF {sf}, \
         {} workers{}",
        workers(),
        if smoke { " [smoke]" } else { "" }
    );
    let db = TpchDb::generate(
        TpchConfig::scale(sf)
            .with_block_bytes(block_bytes)
            .with_format(BlockFormat::Column),
    );

    let mut table = ReportTable::new(
        "Concurrent clients: mixed TPC-H SQL through one QueryService",
        &[
            "uot",
            "queries",
            "p50 ms",
            "p99 ms",
            "hub p50 ms",
            "hub p99 ms",
            "qps",
            "compiled",
            "hit",
            "p50 compile ms",
            "p50 cached ms",
            "fused",
            "staged",
            "spilled B",
            "degraded",
        ],
    );
    // The third row re-runs the low-UoT mix with DegradePolicy::Spill and a
    // reservation 16x below the comfortable default: queries that outgrow it
    // degrade to their per-query disk tier (the `spilled B` / `degraded`
    // columns) instead of failing admission-sized. The reservation must still
    // cover the non-evictable floor — in-flight transferred blocks and hash
    // table shards — so at smoke scale the spill columns may legitimately
    // read zero; `tpch_spill` is the harness that forces them nonzero.
    let configs = [
        ("low (1 block)", Uot::LOW, 16usize << 20, DegradePolicy::Off),
        ("high (table)", Uot::Table, 16 << 20, DegradePolicy::Off),
        ("low + spill", Uot::LOW, 1 << 20, DegradePolicy::Spill),
    ];
    for (label, uot, reservation, degrade) in configs {
        let service = QueryService::start(ServiceConfig {
            workers: workers(),
            block_bytes,
            default_uot: uot,
            memory_budget: 256 << 20,
            default_reservation: reservation,
            degrade,
            catalog: db.catalog().clone(),
            ..Default::default()
        })
        .expect("service starts");

        let stats = drive(&service, clients, rounds, &ExecOptions::default());

        // Cross-check the hand-rolled percentiles against the service's
        // always-on MetricsHub histogram. The hub measures submit-to-finalize
        // on the scheduler thread and its log-bucketed histogram reports each
        // quantile as its bucket's upper bound, so the two figures must land
        // in the same (or an adjacent) bucket — both use the same
        // round((n-1)*q) rank rule.
        let snap = service.hub_snapshot();
        let latency = snap.histogram(HubHistogram::QueryLatencyUs);
        assert_eq!(latency.count, stats.queries as u64);
        let hub_p50 = latency.quantile(0.50);
        let hub_p99 = latency.quantile(0.99);
        for (name, hub, hand) in [("p50", hub_p50, stats.p50), ("p99", hub_p99, stats.p99)] {
            let (a, b) = (bucket_index(hub), bucket_index(hand.as_micros() as u64));
            assert!(
                a.abs_diff(b) <= 1,
                "{label} {name}: hub bucket {a} ({hub} us) vs client bucket {b} ({} us)",
                hand.as_micros()
            );
        }

        // Cache-effectiveness invariants: each distinct statement compiles at
        // most a handful of times (racing first submissions may duplicate a
        // compile), and with more submissions than statements there must be
        // hits.
        let cache = service.plan_cache_stats();
        // Clients c..c+rounds walk a contiguous window of the mix, so the
        // distinct-statement count is known exactly.
        let distinct = MIX.len().min(clients + rounds - 1);
        assert_eq!(cache.entries, distinct);
        assert!(
            cache.hits > 0,
            "expected plan-cache hits with {} submissions over {distinct} statements",
            stats.queries
        );
        assert_eq!(cache.hits + cache.misses, stats.queries as u64);
        assert_eq!(stats.cached.len() + stats.compiled.len(), stats.queries);

        // The load-bearing invariant: with every query drained, no query's
        // temporary memory is still charged to the shared budget.
        let in_use = service.memory_in_use();
        assert_eq!(
            in_use, 0,
            "pool tracker must return to 0 after all queries drain (got {in_use} bytes)"
        );
        service.shutdown();

        table.row(vec![
            label.to_string(),
            stats.queries.to_string(),
            ms(stats.p50),
            ms(stats.p99),
            format!("{:.2}", hub_p50 as f64 / 1e3),
            format!("{:.2}", hub_p99 as f64 / 1e3),
            format!("{:.1}", stats.qps),
            stats.compiled.len().to_string(),
            format!("{:.0}%", 100.0 * cache.hit_rate()),
            ms(percentile(&stats.compiled, 0.50)),
            ms(percentile(&stats.cached, 0.50)),
            stats.fused_pipelines.to_string(),
            stats.staged_pipelines.to_string(),
            stats.spilled_bytes.to_string(),
            format!("{}/{}", stats.degraded_queries, stats.queries),
        ]);
    }
    table.emit();
    println!("pool tracker returned to 0 bytes after both runs: OK");

    // Contrast point: the same total work submitted one query at a time
    // (admission serialized by a budget that fits exactly one reservation).
    let serialized = QueryService::start(ServiceConfig {
        workers: workers(),
        block_bytes,
        default_uot: Uot::LOW,
        memory_budget: 16 << 20,
        default_reservation: 16 << 20,
        catalog: db.catalog().clone(),
        ..Default::default()
    })
    .expect("service starts");
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients * rounds)
        .map(|i| {
            serialized
                .submit_sql_with(sql_text(MIX[i % MIX.len()]), ExecOptions::default())
                .expect("service accepts")
        })
        .collect();
    for h in handles {
        h.wait().expect("serialized query runs");
    }
    let serial_wall = t0.elapsed();
    assert_eq!(serialized.memory_in_use(), 0);
    assert!(serialized.plan_cache_stats().hits > 0);
    println!(
        "admission-serialized reference (budget = one reservation): {} queries in {} ms \
         ({:.1} qps)",
        clients * rounds,
        ms(serial_wall),
        (clients * rounds) as f64 / serial_wall.as_secs_f64().max(1e-9)
    );
}
