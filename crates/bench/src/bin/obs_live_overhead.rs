//! Overhead A/B of the always-on [`MetricsHub`]: the acceptance gate for
//! live telemetry is that installing the hub costs **at most ~1%** on a
//! realistic workload versus the untraced fast path.
//!
//! Two sections:
//!
//! 1. **Workload** — TPC-H Q1/Q6/Q12, engine-level, serial, interleaved
//!    A/B: every round runs each query once *without* a hub (the plain
//!    `scheduler::run` path: no observer composition at all) and once
//!    *with* one shared hub installed via `EngineConfig::with_hub`
//!    (counters + log-bucketed histograms updated on every scheduler
//!    event). Interleaving makes the comparison robust against machine
//!    drift; mean-of-best-3 per arm absorbs outliers. The mix-total delta
//!    is asserted against the tolerance (`UOT_OVERHEAD_TOL`, default
//!    1.0%).
//! 2. **Dispatch stress** (informational, not asserted) — the
//!    `sched_dispatch`-shaped worst case: thousands of tiny blocks so hub
//!    updates are a maximal fraction of each work order. This bounds the
//!    per-event cost in ns/work-order.
//!
//! `--smoke` shrinks everything for CI. `--write` saves the report to
//! `results/obs_live_overhead.txt`.

use std::sync::Arc;
use std::time::{Duration, Instant};
use uot_bench::{mean_of_best, runs, ReportTable};
use uot_core::{Engine, EngineConfig, MetricsHub, PlanBuilder, QueryPlan, Source, Uot};
use uot_expr::Predicate;
use uot_storage::{BlockFormat, DataType, Schema, TableBuilder, Value};
use uot_tpch::{build_query, QueryId, TpchConfig, TpchDb};

fn tolerance() -> f64 {
    std::env::var("UOT_OVERHEAD_TOL")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

fn config(hub: Option<Arc<MetricsHub>>) -> EngineConfig {
    let cfg = EngineConfig::serial().with_block_bytes(8 * 1024);
    match hub {
        Some(h) => cfg.with_hub(h),
        None => cfg,
    }
}

/// One timed execution (wall clock around the whole call, like a client).
fn run_once(plan: &QueryPlan, cfg: &EngineConfig) -> (Duration, u64) {
    let engine = Engine::new(cfg.clone());
    let t0 = Instant::now();
    let r = engine.execute(plan.clone()).expect("bench query runs");
    let d = t0.elapsed();
    let wos = r.metrics.ops.iter().map(|o| o.work_orders as u64).sum();
    (d, wos)
}

fn tiny_select_plan(blocks: usize) -> QueryPlan {
    const BLOCK_BYTES: usize = 64;
    let schema = Schema::from_pairs(&[("k", DataType::Int32)]);
    let rows_per_block = BLOCK_BYTES / std::mem::size_of::<i32>();
    let mut tb = TableBuilder::new("tiny", schema, BlockFormat::Column, BLOCK_BYTES);
    for i in 0..(blocks * rows_per_block) as i64 {
        tb.append(&[Value::I32(i as i32)]).expect("append row");
    }
    let table = Arc::new(tb.finish());
    let mut pb = PlanBuilder::new();
    let sel = pb
        .filter(Source::Table(table), Predicate::True)
        .expect("filter");
    pb.build(sel).expect("plan builds")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let write = std::env::args().any(|a| a == "--write");
    let sf = if smoke { 0.005 } else { 0.02 };
    let rounds = if smoke { runs().max(4) } else { runs().max(6) };
    let db = TpchDb::generate(TpchConfig {
        scale_factor: sf,
        block_bytes: 8 * 1024,
        format: BlockFormat::Column,
        seed: 42,
    });
    let hub = Arc::new(MetricsHub::new());
    let queries = [QueryId::Q1, QueryId::Q6, QueryId::Q12];
    println!(
        "obs live overhead: {} rounds interleaved A/B, TPC-H SF {sf}, serial{}",
        rounds,
        if smoke { " [smoke]" } else { "" }
    );

    let mut t = ReportTable::new(
        "Always-on MetricsHub overhead (engine, serial, interleaved A/B, mean of best 3)",
        &["query", "off ms", "on ms", "delta %"],
    );
    let mut off_total = 0.0f64;
    let mut on_total = 0.0f64;
    for q in queries {
        let plan = build_query(q, &db).expect("plan builds");
        let (mut off, mut on) = (Vec::new(), Vec::new());
        for _ in 0..rounds {
            off.push(run_once(&plan, &config(None)).0);
            on.push(run_once(&plan, &config(Some(hub.clone()))).0);
        }
        let off_ms = mean_of_best(&mut off, 3).as_secs_f64() * 1e3;
        let on_ms = mean_of_best(&mut on, 3).as_secs_f64() * 1e3;
        off_total += off_ms;
        on_total += on_ms;
        t.row(vec![
            format!("{q:?}"),
            format!("{off_ms:.3}"),
            format!("{on_ms:.3}"),
            format!("{:+.2}", 100.0 * (on_ms - off_ms) / off_ms),
        ]);
    }
    let mix_delta = 100.0 * (on_total - off_total) / off_total;
    t.row(vec![
        "mix total".into(),
        format!("{off_total:.3}"),
        format!("{on_total:.3}"),
        format!("{mix_delta:+.2}"),
    ]);
    t.emit();

    // Worst case: tiny blocks, so hub updates are a maximal fraction of
    // every work order. Informational only.
    let tiny = tiny_select_plan(if smoke { 500 } else { 4000 });
    let mut s = ReportTable::new(
        "Dispatch-stress bound (tiny blocks, ns/work order; informational)",
        &["arm", "work orders", "ns / work order"],
    );
    let mut stress = Vec::new();
    for (name, hub) in [("off", None), ("on", Some(hub.clone()))] {
        let cfg = config(hub).with_block_bytes(64).with_uot(Uot::LOW);
        let mut times = Vec::new();
        let mut wos = 0;
        for _ in 0..rounds {
            let (d, w) = run_once(&tiny, &cfg);
            times.push(d);
            wos = w;
        }
        let best = mean_of_best(&mut times, 3);
        let ns = best.as_secs_f64() * 1e9 / wos.max(1) as f64;
        stress.push(ns);
        s.row(vec![name.into(), wos.to_string(), format!("{ns:.1}")]);
    }
    s.row(vec![
        "delta".into(),
        "-".into(),
        format!("{:+.1}%", 100.0 * (stress[1] - stress[0]) / stress[0]),
    ]);
    s.emit();

    // Sanity: the hub really observed the "on" runs.
    let snap = hub.snapshot();
    assert!(
        snap.counter(uot_core::HubCounter::QueriesCompleted) > 0
            && snap.counter(uot_core::HubCounter::WorkOrders) > 0,
        "hub arm ran without recording anything"
    );

    if write {
        let report = format!(
            "## Always-on MetricsHub overhead (engine, serial, interleaved A/B)\n\n\
             TPC-H SF {sf}, {rounds} interleaved rounds per arm, mean of best 3.\n\
             \"off\" = no hub installed: the engine takes the plain scheduler::run\n\
             path with no observer composition. \"on\" = EngineConfig::with_hub: the\n\
             HubObserver accumulates counters and log-bucketed histograms locally\n\
             and batch-flushes to the sharded hub every 64 events and on drop.\n\n{}\n\
             Mix-total delta: {mix_delta:+.2}% (gate: <= {:.1}%).\n\n\
             Worst-case bound, tiny-block dispatch stress (informational):\n{}\n\
             The stress rows overstate real cost: with 64-byte blocks the hub's\n\
             few atomic adds are a visible share of a ~1 us work order, while on\n\
             the TPC-H rows above each work order does orders of magnitude more\n\
             real work and the hub disappears into noise.\n",
            t.render(),
            tolerance(),
            s.render(),
        );
        std::fs::create_dir_all("results").expect("results dir");
        std::fs::write("results/obs_live_overhead.txt", report).expect("write results");
        println!("wrote results/obs_live_overhead.txt");
    }

    assert!(
        mix_delta <= tolerance(),
        "hub overhead {mix_delta:+.2}% exceeds the {:.1}% gate",
        tolerance()
    );
    println!(
        "hub overhead on the TPC-H mix: {mix_delta:+.2}% (gate {:.1}%): OK",
        tolerance()
    );
}
