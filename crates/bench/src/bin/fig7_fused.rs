//! Fig. 7 extension: fused pipelines (UoT -> 0) vs the best static UoT.
//!
//! For every Fig. 7 TPC-H query and block size this measures the staged
//! path at both UoT extremes ([`FusionPolicy::Never`]), the fused push-based
//! fast path at the same extremes ([`FusionPolicy::Always`] — fused chains
//! stage nothing internally, the extreme only governs the remaining staged
//! edges such as build sides), and the cost-model decision
//! ([`FusionPolicy::Auto`]). Three invariants are asserted per
//! configuration, not just reported:
//!
//! * the fused run actually fused (`fused_pipelines` matches the planned
//!   chain count and is nonzero),
//! * a traced run shows **zero** `EdgeStaged`/`TransferFlushed` events whose
//!   producer sits inside a fused region (only chain tails and staged
//!   pipelines may touch a transfer edge), and
//! * fused and staged runs return byte-identical results
//!   (`sorted_rows()` equality is exact: aggregates use `ExactF64Sum`).
//!
//! ```text
//! cargo run --release -p uot-bench --bin fig7_fused [-- results/fig7_fused.json] [--smoke]
//! ```
//!
//! `--smoke` shrinks to SF 0.005 / one block size / 2 runs for CI while
//! keeping every assertion.

use uot_bench::{
    block_sizes, engine_config, measure_query, ms, runs, scale_factor, uot_extremes, workers,
    ReportTable,
};
use uot_core::{fusion::plan_fusion, Engine, FusionPolicy, TraceConfig, TraceEventKind, Uot};
use uot_storage::BlockFormat;
use uot_tpch::{all_queries, build_query, TpchConfig, TpchDb};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sf = if smoke { 0.005 } else { scale_factor() };
    let sizes = if smoke {
        vec![("32KB", 32 * 1024)]
    } else {
        block_sizes()
    };
    let n_runs = if smoke { 2 } else { runs() };

    println!(
        "fig7_fused: fused vs best static UoT, SF {sf}, {} workers, {} runs{}",
        workers(),
        n_runs,
        if smoke { " [smoke]" } else { "" }
    );
    let mut table = ReportTable::new(
        "Fig. 7 extension: fused pipelines (UoT -> 0) vs best static UoT (ms), column store",
        &[
            "query",
            "block size",
            "staged low",
            "staged high",
            "fused low",
            "fused high",
            "auto",
            "fused/best-staged",
            "fused pipes",
        ],
    );

    // (query label, best staged secs, best fused secs) per row, for the
    // per-query win summary below.
    let mut outcomes: Vec<(String, f64, f64)> = Vec::new();

    for (bs_label, bs) in sizes {
        let db = TpchDb::generate(
            TpchConfig::scale(sf)
                .with_block_bytes(bs)
                .with_format(BlockFormat::Column),
        );
        for q in all_queries() {
            let plan = build_query(q, &db).expect("plan builds");

            let mut staged = Vec::new();
            let mut fused = Vec::new();
            let mut staged_low_result = None;
            for (i, (_, uot)) in uot_extremes().iter().enumerate() {
                let never = engine_config(bs, *uot, workers()).with_fusion(FusionPolicy::Never);
                let (t, r) = measure_query(&plan, &never, n_runs);
                assert_eq!(
                    r.metrics.fused_pipelines,
                    0,
                    "{}: Never must not fuse",
                    q.label()
                );
                staged.push(t);
                if i == 0 {
                    staged_low_result = Some(r);
                }

                let always = engine_config(bs, *uot, workers()).with_fusion(FusionPolicy::Always);
                let (t, _) = measure_query(&plan, &always, n_runs);
                fused.push(t);
            }
            let auto = engine_config(bs, Uot::LOW, workers()).with_fusion(FusionPolicy::Auto);
            let (auto_t, _) = measure_query(&plan, &auto, n_runs);

            // One traced run proves the fused fast path stages nothing
            // inside any fused region and returns the staged answer.
            let traced = Engine::new(
                engine_config(bs, Uot::LOW, workers())
                    .with_fusion(FusionPolicy::Always)
                    .tracing(TraceConfig::default()),
            )
            .execute(plan.clone().with_uniform_uot(Uot::LOW))
            .expect("traced fused run");
            let membership = plan_fusion(&plan, FusionPolicy::Always, workers(), bs, Uot::LOW);
            assert!(
                membership.fused_count() > 0,
                "{}: expected at least one fusible pipeline",
                q.label()
            );
            assert_eq!(
                traced.metrics.fused_pipelines,
                membership.fused_count(),
                "{}: engine fused a different chain set than planned",
                q.label()
            );
            let interior_staged = traced
                .trace
                .as_ref()
                .expect("tracing was enabled")
                .events
                .iter()
                .filter(|e| {
                    let producer = match e.kind {
                        TraceEventKind::EdgeStaged { producer, .. }
                        | TraceEventKind::TransferFlushed { producer, .. } => producer,
                        _ => return false,
                    };
                    // Interior = any chain member except the tail (the tail
                    // owns the chain's real output edge).
                    membership.head_of_member(producer).is_some()
                        && membership.chain_for_tail(producer).is_none()
                })
                .count();
            assert_eq!(
                interior_staged,
                0,
                "{}: {interior_staged} blocks staged inside fused regions",
                q.label()
            );
            assert_eq!(
                traced.sorted_rows(),
                staged_low_result.expect("staged low ran").sorted_rows(),
                "{}: fused and staged answers differ",
                q.label()
            );

            let best_staged = staged.iter().min().copied().expect("two extremes");
            let best_fused = fused.iter().min().copied().expect("two extremes");
            outcomes.push((
                q.label(),
                best_staged.as_secs_f64(),
                best_fused.as_secs_f64(),
            ));
            table.row(vec![
                q.label(),
                bs_label.to_string(),
                ms(staged[0]),
                ms(staged[1]),
                ms(fused[0]),
                ms(fused[1]),
                ms(auto_t),
                format!(
                    "{:.2}",
                    best_fused.as_secs_f64() / best_staged.as_secs_f64().max(1e-12)
                ),
                traced.metrics.fused_pipelines.to_string(),
            ]);
        }
    }
    table.emit();

    // Per-query verdict: sum each query's best-staged and best-fused times
    // across block sizes; fused "matches or beats" within 2% noise.
    let mut queries: Vec<String> = outcomes.iter().map(|(q, _, _)| q.clone()).collect();
    queries.sort();
    queries.dedup();
    let wins = queries
        .iter()
        .filter(|q| {
            let (s, f) = outcomes
                .iter()
                .filter(|(oq, _, _)| oq == *q)
                .fold((0.0, 0.0), |(s, f), (_, os, of)| (s + os, f + of));
            f <= s * 1.02
        })
        .count();
    println!(
        "fused matched or beat the best static UoT on {wins} of {} queries",
        queries.len()
    );
    println!("zero blocks staged inside fused regions (trace verified): OK");
    println!("fused == staged results on every query (ExactF64Sum byte identity): OK");
}
