//! Table II + Section VI-C: memory footprints of the two strategies on the
//! Q07 cascade — analytical model vs engine-measured peaks.
//!
//! Low UoT pays all hash tables at once (`Σ|Hᵢ|`); high UoT pays the
//! materialized selection output (`|σ(R)|`) but holds one hash table at a
//! time. Both the model and the engine's `peak_temp_bytes` are shown.

use uot_bench::{engine_config, make_db, measure_query, runs, workers, ReportTable};
use uot_core::Uot;
use uot_model::{hash_table_size, CascadeFootprint, SelectionProfile};
use uot_storage::BlockFormat;
use uot_tpch::analysis::{lineitem_cases, measure};
use uot_tpch::{build_query, QueryId};

fn main() {
    let bs = 64 * 1024;
    let db = make_db(bs, BlockFormat::Column);

    // Engine-measured peaks for the full Q07 plan.
    let plan = build_query(QueryId::Q7, &db).expect("plan builds");
    let mut rows = Vec::new();
    let mut hash_bytes = Vec::new();
    for (label, uot) in [("low(1 block)", Uot::LOW), ("high(table)", Uot::HIGH)] {
        let cfg = engine_config(bs, uot, workers());
        let (_, r) = measure_query(&plan, &cfg, runs());
        hash_bytes = r
            .metrics
            .hash_table_bytes
            .iter()
            .map(|(_, b)| *b as f64)
            .collect();
        rows.push((label, r.metrics.peak_temp_bytes));
    }

    // Model numbers from measured ingredients.
    let q07 = lineitem_cases()
        .into_iter()
        .find(|c| c.query == "Q07")
        .expect("Q07 case");
    let red = measure(&db, &q07).expect("measure");
    let li_bytes = (db.lineitem().num_rows() * db.lineitem().schema().tuple_width()) as f64;
    let profile = SelectionProfile::new(red.selectivity_pct / 100.0, red.projectivity_pct / 100.0);
    let footprint = CascadeFootprint {
        hash_table_bytes: hash_bytes.clone(),
        selection_output_bytes: profile.output_bytes(li_bytes),
    };

    let mut t = ReportTable::new(
        "Table II: modeled memory overheads for the Q07 cascade",
        &["quantity", "bytes (KB)"],
    );
    for (i, h) in hash_bytes.iter().enumerate() {
        t.row(vec![format!("|H_{}|", i + 1), format!("{:.0}", h / 1024.0)]);
    }
    t.row(vec![
        "low-UoT overhead  Σ_{i>=2}|H_i|".into(),
        format!("{:.0}", footprint.low_uot_overhead() / 1024.0),
    ]);
    t.row(vec![
        "high-UoT overhead |σ(R)|".into(),
        format!("{:.0}", footprint.high_uot_overhead() / 1024.0),
    ]);
    t.row(vec![
        "hash-table sizing formula (M/w)(c/f) for lineitem".into(),
        format!(
            "{:.0}",
            hash_table_size(li_bytes, 141.0, 40.0, 0.5) / 1024.0
        ),
    ]);
    t.emit();

    let mut t = ReportTable::new(
        "Engine-measured peak temporary memory for Q07",
        &["uot", "peak temp (KB)"],
    );
    for (label, peak) in rows {
        t.row(vec![label.to_string(), (peak / 1024).to_string()]);
    }
    t.emit();
}
