//! Ablation: the temporary-block pool on vs off.
//!
//! Section VII-B3 of the paper attributes the cost of small blocks to
//! "storage management and work order scheduling overheads"; the pool is
//! the main storage-management lever, so this quantifies what it saves.

use uot_bench::{block_sizes, make_db, mean_of_best, ms, runs, workers, ReportTable};
use uot_core::{Engine, EngineConfig, Uot};
use uot_storage::BlockFormat;
use uot_tpch::{build_query, QueryId};

fn main() {
    let mut t = ReportTable::new(
        "Ablation: block pool reuse on/off (Q03, low UoT)",
        &[
            "block size",
            "pool on (ms)",
            "pool off (ms)",
            "blocks created on",
            "blocks created off",
        ],
    );
    for (label, bs) in block_sizes() {
        let db = make_db(bs, BlockFormat::Column);
        let plan = build_query(QueryId::Q3, &db).expect("plan builds");
        let mut cells = vec![label.to_string()];
        let mut created = Vec::new();
        for reuse in [true, false] {
            let cfg = EngineConfig {
                pool_reuse: reuse,
                block_bytes: bs,
                default_uot: Uot::LOW,
                mode: uot_core::ExecMode::Parallel { workers: workers() },
                ..Default::default()
            };
            let engine = Engine::new(cfg);
            let mut times = Vec::new();
            let mut last_created = 0;
            for _ in 0..runs() {
                let r = engine.execute(plan.clone()).expect("query runs");
                times.push(r.metrics.wall_time);
                last_created = r.metrics.pool.created;
            }
            cells.push(ms(mean_of_best(&mut times, 3)));
            created.push(last_created.to_string());
        }
        cells.extend(created);
        t.row(cells);
    }
    t.emit();
}
