//! Table V analogue: print the evaluation platform of this run.

use uot_bench::PlatformInfo;

fn main() {
    PlatformInfo::collect().table().emit();
}
