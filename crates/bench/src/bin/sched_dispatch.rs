//! Scheduler-dispatch microbenchmark: isolates the cost of picking the next
//! work order from the ready set.
//!
//! Builds a synthetic table of many tiny blocks (~16 rows each) so the
//! per-work-order execution cost is trivial and the run time is dominated by
//! scheduler bookkeeping: seeding the initial work orders, choosing the next
//! one under the `(critical, downstream-first, FIFO)` policy, and routing
//! outputs. With `UOT_DISPATCH_BLOCKS` source blocks (default 10 000) the
//! select→aggregate chain issues >2× that many work orders.
//!
//! Env knobs: `UOT_DISPATCH_BLOCKS` (source blocks), `UOT_RUNS` (protocol
//! runs, mean of best 3), `UOT_WORKERS` (parallel worker count).

use std::sync::Arc;
use std::time::Duration;
use uot_bench::{mean_of_best, runs, workers, ReportTable};
use uot_core::{Engine, EngineConfig, ExecMode, PlanBuilder, QueryPlan, Source, Uot};
use uot_expr::{AggSpec, Predicate};
use uot_storage::{BlockFormat, DataType, Schema, TableBuilder, Value};

/// Tiny blocks: 64 bytes of row data per block (~16 Int32 rows).
const BLOCK_BYTES: usize = 64;

fn dispatch_blocks() -> usize {
    std::env::var("UOT_DISPATCH_BLOCKS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000)
}

fn make_tiny_block_table(blocks: usize) -> Arc<uot_storage::Table> {
    let schema = Schema::from_pairs(&[("k", DataType::Int32)]);
    let rows_per_block = BLOCK_BYTES / std::mem::size_of::<i32>();
    let mut tb = TableBuilder::new("tiny", schema, BlockFormat::Column, BLOCK_BYTES);
    for i in 0..(blocks * rows_per_block) as i64 {
        tb.append(&[Value::I32(i as i32)]).expect("append row");
    }
    Arc::new(tb.finish())
}

/// select(True) — one work order per source block, nothing downstream.
fn select_only(table: Arc<uot_storage::Table>) -> QueryPlan {
    let mut pb = PlanBuilder::new();
    let sel = pb
        .filter(Source::Table(table), Predicate::True)
        .expect("filter");
    pb.build(sel).expect("plan builds")
}

/// select(True) → aggregate(count) — exercises producer→consumer routing on
/// every block plus the finalize work order.
fn select_aggregate(table: Arc<uot_storage::Table>) -> QueryPlan {
    let mut pb = PlanBuilder::new();
    let sel = pb
        .filter(Source::Table(table), Predicate::True)
        .expect("filter");
    let agg = pb
        .aggregate(Source::Op(sel), vec![], vec![AggSpec::count_star()], &["n"])
        .expect("aggregate");
    pb.build(agg).expect("plan builds")
}

fn measure(plan: &QueryPlan, mode: ExecMode) -> (Duration, u64) {
    let cfg = EngineConfig {
        mode,
        ..EngineConfig::serial()
    }
    .with_block_bytes(BLOCK_BYTES)
    .with_uot(Uot::LOW);
    let engine = Engine::new(cfg);
    let n = runs();
    let mut times = Vec::with_capacity(n);
    let mut wos = 0u64;
    for _ in 0..n {
        let r = engine.execute(plan.clone()).expect("bench query runs");
        times.push(r.metrics.wall_time);
        wos = r.metrics.ops.iter().map(|o| o.work_orders as u64).sum();
    }
    (mean_of_best(&mut times, 3), wos)
}

fn main() {
    let blocks = dispatch_blocks();
    let table = make_tiny_block_table(blocks);
    let configs: Vec<(&str, QueryPlan)> = vec![
        ("select-only", select_only(table.clone())),
        ("select->aggregate", select_aggregate(table)),
    ];
    let modes: Vec<(String, ExecMode)> = vec![
        ("serial".into(), ExecMode::Serial),
        (
            format!("parallel({})", workers()),
            ExecMode::Parallel { workers: workers() },
        ),
    ];

    let mut t = ReportTable::new(
        format!("Scheduler dispatch overhead ({blocks} tiny source blocks)"),
        &["plan", "mode", "work orders", "total ms", "ns / work order"],
    );
    for (plan_name, plan) in &configs {
        for (mode_name, mode) in &modes {
            let (d, wos) = measure(plan, *mode);
            t.row(vec![
                plan_name.to_string(),
                mode_name.clone(),
                wos.to_string(),
                format!("{:.2}", d.as_secs_f64() * 1e3),
                format!("{:.1}", d.as_secs_f64() * 1e9 / wos.max(1) as f64),
            ]);
        }
    }
    t.emit();
}
