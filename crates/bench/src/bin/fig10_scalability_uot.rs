//! Fig. 10: interaction of scalability, block size and UoT — per-task probe
//! times for the better- and poor-scalability probes of Q07.
//!
//! Paper finding: the low-UoT configuration is more immune to the poor
//! scalability of the large-hash-table probe, because its emergent DOP is
//! lower (producer and consumer share the workers).

use uot_bench::{
    block_sizes, engine_config, make_db, measure_query, runs, uot_extremes, us, workers,
    ReportTable,
};
use uot_storage::BlockFormat;
use uot_tpch::chain_specs;

fn main() {
    let mut table = ReportTable::new(
        "Fig. 10: probe per-task time (µs) by scalability class, block size and UoT",
        &[
            "probe",
            "block size",
            "uot=low",
            "uot=high",
            "max DOP low",
            "max DOP high",
        ],
    );
    for (bs_label, bs) in block_sizes() {
        let db = make_db(bs, BlockFormat::Column);
        let chains = chain_specs(&db).expect("chains build");
        for name in ["Q07-small-ht", "Q07-large-ht"] {
            let chain = chains.iter().find(|c| c.name == name).expect("chain");
            let mut cells = vec![name.to_string(), bs_label.to_string()];
            let mut dops = Vec::new();
            for (_, uot) in uot_extremes() {
                let cfg = engine_config(bs, uot, workers());
                let (_, r) = measure_query(&chain.plan, &cfg, runs());
                cells.push(us(r.metrics.ops[chain.probe_op].avg_task_time()));
                dops.push(r.metrics.max_dop(chain.probe_op).to_string());
            }
            cells.extend(dops);
            table.row(cells);
        }
    }
    table.emit();
}
