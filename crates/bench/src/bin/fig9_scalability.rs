//! Fig. 9: scalability of two probe operators with different hash-table
//! sizes (the Q07 probes), DOP sweep vs ideal.
//!
//! Paper finding: the probe with the large (orders) hash table scales worse
//! than the one with the small (supplier) table — cache pressure and
//! storage-management contention grow with table size.

use uot_bench::{engine_config, make_db, measure_query, runs, ReportTable};
use uot_core::Uot;
use uot_storage::BlockFormat;
use uot_tpch::chain_specs;

fn main() {
    let bs = 32 * 1024;
    let db = make_db(bs, BlockFormat::Column);
    let chains = chain_specs(&db).expect("chains build");
    // Sweep the DOP even beyond the physical core count: on small
    // machines the extra workers timeshare, which shows up as flat or
    // degrading speedup — the "poor scalability" regime of the paper.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let dops: Vec<usize> = vec![1, 2, 4, 8];
    println!("(physical cores available: {cores})");

    let mut table = ReportTable::new(
        "Fig. 9: probe-operator speedup vs DOP (high UoT isolates the probe phase)",
        &["probe", "DOP", "probe phase (ms)", "speedup", "ideal"],
    );
    for name in ["Q07-small-ht", "Q07-large-ht"] {
        let chain = chains.iter().find(|c| c.name == name).expect("chain");
        let mut base: Option<f64> = None;
        for &dop in &dops {
            // High UoT: the probe phase runs exclusively, so its wall-clock
            // span is a clean scalability measurement.
            let cfg = engine_config(bs, Uot::HIGH, dop);
            let (_, r) = measure_query(&chain.plan, &cfg, runs());
            let probe_tasks: Vec<_> = r
                .metrics
                .tasks
                .iter()
                .filter(|t| t.op == chain.probe_op)
                .collect();
            let start = probe_tasks
                .iter()
                .map(|t| t.start)
                .min()
                .unwrap_or_default();
            let end = probe_tasks.iter().map(|t| t.end).max().unwrap_or_default();
            let span = (end - start).as_secs_f64() * 1e3;
            let b = *base.get_or_insert(span);
            table.row(vec![
                name.to_string(),
                dop.to_string(),
                format!("{span:.2}"),
                format!("{:.2}", b / span.max(1e-9)),
                format!("{dop:.2}"),
            ]);
        }
    }
    table.emit();
}
