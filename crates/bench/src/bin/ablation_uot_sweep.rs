//! Ablation: the full UoT spectrum (not just the paper's two extremes) on
//! one chain and one full query — validating that the spectrum interpolates
//! smoothly between "pipelining" and "blocking".

use uot_bench::{engine_config, make_db, measure_query, ms, runs, workers, ReportTable};
use uot_core::Uot;
use uot_storage::BlockFormat;
use uot_tpch::{build_query, chain_specs, QueryId};

fn main() {
    let bs = 32 * 1024;
    let db = make_db(bs, BlockFormat::Column);
    let chains = chain_specs(&db).expect("chains build");
    let chain = &chains[0];
    let q3 = build_query(QueryId::Q3, &db).expect("plan builds");

    let mut t = ReportTable::new(
        "Ablation: sweeping the UoT spectrum (32KB blocks)",
        &[
            "uot",
            "Q03 chain (ms)",
            "chain peak temp (KB)",
            "Q03 query (ms)",
        ],
    );
    let spectrum = [
        Uot::Blocks(1),
        Uot::Blocks(2),
        Uot::Blocks(4),
        Uot::Blocks(8),
        Uot::Blocks(16),
        Uot::Blocks(64),
        Uot::Table,
    ];
    for uot in spectrum {
        let cfg = engine_config(bs, uot, workers());
        let (tc, rc) = measure_query(&chain.plan, &cfg, runs());
        let (tq, _) = measure_query(&q3, &cfg, runs());
        t.row(vec![
            uot.label(),
            ms(tc),
            (rc.metrics.peak_temp_bytes / 1024).to_string(),
            ms(tq),
        ]);
    }
    t.emit();
}
