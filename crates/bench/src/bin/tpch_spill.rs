//! TPC-H under a starvation budget: the graceful-degradation contract.
//!
//! Runs the mixed TPC-H workload three ways through one [`QueryService`]
//! configuration axis — a comfortable reservation (the reference), a tight
//! reservation with `DegradePolicy::Off`, and the same tight reservation
//! with `DegradePolicy::Spill` — and asserts the contract both ways:
//!
//! 1. With spill, **every** query completes and its sorted result rows are
//!    byte-identical to the comfortable-reservation reference.
//! 2. Without spill, at least one query fails with a fully attributed
//!    `BudgetExceeded` at the same tight reservation — proving the budget
//!    really is below the working set and the disk tier is what saved run 1.
//! 3. At least one spill run actually touched the disk tier
//!    (`spill_events > 0`), and every service drains its tracker to 0.
//!
//! ```text
//! cargo run --release -p uot-bench --bin tpch_spill [-- --smoke]
//! ```
//!
//! Knobs: `UOT_SF`, `UOT_WORKERS`, and `UOT_SPILL_RESERVATION` (tight
//! per-query reservation in bytes; scaled defaults below). CI runs this in
//! the spill job across a `CHAOS_SEED` matrix alongside the chaos suites.

use std::time::{Duration, Instant};
use uot_bench::{ms, workers, ReportTable};
use uot_core::{DegradePolicy, EngineError, ExecOptions, QueryService, ServiceConfig, Uot};
use uot_storage::{BlockFormat, Value};
use uot_tpch::{sql_text, QueryId as TpchQuery, TpchConfig, TpchDb};

/// Same mix as `concurrent_clients`: one of each plan shape.
const MIX: [TpchQuery; 5] = [
    TpchQuery::Q1,
    TpchQuery::Q3,
    TpchQuery::Q6,
    TpchQuery::Q12,
    TpchQuery::Q19,
];

struct Run {
    rows: Result<Vec<Vec<Value>>, EngineError>,
    latency: Duration,
    spill_events: usize,
    spilled_bytes: usize,
}

/// Submit every query in the mix serially against a fresh service with the
/// given reservation/degrade policy; returns one [`Run`] per query and
/// asserts the shared tracker drains to zero afterwards.
fn drive(db: &TpchDb, uot: Uot, reservation: usize, degrade: DegradePolicy) -> Vec<Run> {
    let service = QueryService::start(ServiceConfig {
        workers: workers(),
        block_bytes: 32 * 1024,
        default_uot: uot,
        memory_budget: 256 << 20,
        default_reservation: reservation,
        degrade,
        catalog: db.catalog().clone(),
        ..Default::default()
    })
    .expect("service starts");
    let runs = MIX
        .iter()
        .map(|&q| {
            let t0 = Instant::now();
            let outcome = service
                .submit_sql_with(sql_text(q), ExecOptions::default())
                .expect("service accepts")
                .wait();
            let latency = t0.elapsed();
            let (spill_events, spilled_bytes) = outcome
                .as_ref()
                .map(|r| (r.metrics.spill_events, r.metrics.spilled_bytes))
                .unwrap_or((0, 0));
            Run {
                rows: outcome.map(|r| r.sorted_rows()),
                latency,
                spill_events,
                spilled_bytes,
            }
        })
        .collect();
    let in_use = service.memory_in_use();
    assert_eq!(
        in_use, 0,
        "tracker must drain to 0 after the mix (degrade={degrade:?}, got {in_use})"
    );
    service.shutdown();
    runs
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sf = if smoke {
        0.005
    } else {
        std::env::var("UOT_SF")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0.02)
    };
    // The tight reservation must sit in the degradation band: above the
    // non-evictable floor (in-flight blocks, hash-table shards, output
    // partials) so spill can complete, below the mix's working set so the
    // no-spill run provably fails. The band is not monotone — a *larger*
    // reservation can fail where a smaller one passes, because the grace
    // arming threshold (est > budget/2) moves with it — so the default is a
    // pinned, tested point per SF rather than a formula; override to explore.
    let tight = std::env::var("UOT_SPILL_RESERVATION")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| ((sf / 0.005) as usize).max(1) * (448 << 10));
    println!(
        "tpch spill: SF {sf}, {} workers, tight reservation {} KiB{}",
        workers(),
        tight >> 10,
        if smoke { " [smoke]" } else { "" }
    );
    let db = TpchDb::generate(
        TpchConfig::scale(sf)
            .with_block_bytes(32 * 1024)
            .with_format(BlockFormat::Column),
    );

    let reference = drive(&db, Uot::LOW, 16 << 20, DegradePolicy::Off);
    let strict = drive(&db, Uot::LOW, tight, DegradePolicy::Off);
    let spill = drive(&db, Uot::LOW, tight, DegradePolicy::Spill);

    let mut table = ReportTable::new(
        "TPC-H under a starvation budget: Off fails, Spill completes identically",
        &[
            "query",
            "ref ms",
            "tight+Off",
            "tight+Spill ms",
            "spill events",
            "spilled B",
            "identical",
        ],
    );
    let mut strict_failures = 0usize;
    let mut total_spill_events = 0usize;
    for (i, q) in MIX.iter().enumerate() {
        let reference_rows = reference[i]
            .rows
            .as_ref()
            .unwrap_or_else(|e| panic!("{} reference run failed: {e}", q.label()));
        let strict_outcome = match &strict[i].rows {
            Ok(_) => "ok".to_string(),
            Err(EngineError::BudgetExceeded { op, .. }) => {
                strict_failures += 1;
                format!("budget@{op}")
            }
            Err(e) => panic!(
                "{}: tight budget without spill may only fail BudgetExceeded, got {e}",
                q.label()
            ),
        };
        let spilled_rows = spill[i].rows.as_ref().unwrap_or_else(|e| {
            panic!(
                "{} must complete under DegradePolicy::Spill: {e}",
                q.label()
            )
        });
        let identical = spilled_rows == reference_rows;
        assert!(
            identical,
            "{}: spilled run diverged from the reference result",
            q.label()
        );
        total_spill_events += spill[i].spill_events;
        table.row(vec![
            q.label(),
            ms(reference[i].latency),
            strict_outcome,
            ms(spill[i].latency),
            spill[i].spill_events.to_string(),
            spill[i].spilled_bytes.to_string(),
            "yes".to_string(),
        ]);
    }
    table.emit();

    assert!(
        strict_failures > 0,
        "no query failed at the tight reservation without spill — the budget \
         is not below the working set; lower UOT_SPILL_RESERVATION"
    );
    assert!(
        total_spill_events > 0,
        "no spill activity at the tight reservation — raise SF or lower \
         UOT_SPILL_RESERVATION"
    );
    println!(
        "contract holds: {strict_failures}/{} queries fail without spill; all {} complete \
         byte-identically with it ({total_spill_events} spill events)",
        MIX.len(),
        MIX.len()
    );
}
