//! Table VI: average task cost for select / build / probe with the
//! prefetcher enabled vs disabled — reproduced on the cache simulator
//! (the substitution for the MSR-0x1A4 hardware toggle; see DESIGN.md).
//!
//! Paper findings to look for: prefetching helps the (strided, row-store)
//! select scan; it does not help — and can hurt — the build and probe,
//! whose hash-table accesses are random.

use uot_bench::ReportTable;
use uot_cachesim::{Hierarchy, HierarchyConfig, TraceGen};

fn main() {
    let mut t = ReportTable::new(
        "Table VI: simulated task cost (kilocycles/task) with prefetcher Yes/No",
        &["block size", "op", "Yes", "No", "Yes/No"],
    );
    for (label, bs) in [
        ("128KB", 128 * 1024u64),
        ("512KB", 512 * 1024),
        ("2MB", 2 * 1024 * 1024),
    ] {
        // Row-store geometry (the paper's Table VI setting): 141-byte
        // lineitem tuples; hash table sized like an orders join table.
        let gen = TraceGen::new(bs, 141, 64 * 1024 * 1024);
        let traces = [
            ("select", gen.select_row_store()),
            ("build", gen.build_hash()),
            ("probe", gen.probe_hash()),
        ];
        for (op, trace) in &traces {
            let mut cells = vec![label.to_string(), op.to_string()];
            let mut cycles = Vec::new();
            for enabled in [true, false] {
                let mut h = Hierarchy::new(HierarchyConfig::haswell(enabled));
                let stats = h.replay(trace);
                cycles.push(stats.cycles as f64);
                cells.push(format!("{:.1}", stats.cycles as f64 / 1e3));
            }
            cells.push(format!("{:.2}", cycles[0] / cycles[1].max(1.0)));
            t.row(cells);
        }
    }
    t.emit();
}
