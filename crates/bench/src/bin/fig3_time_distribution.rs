//! Fig. 3: fraction of each query's operator time spent in its dominant and
//! second-most-dominant operator (high UoT, column store).
//!
//! The paper's takeaway: for many queries one (often leaf) operator takes
//! >50% of the time, so a small UoT cannot help much.

use uot_bench::{engine_config, make_db, measure_query, runs, workers, ReportTable};
use uot_core::Uot;
use uot_storage::BlockFormat;
use uot_tpch::{all_queries, build_query};

fn main() {
    let db = make_db(128 * 1024, BlockFormat::Column);
    let mut table = ReportTable::new(
        "Fig. 3: operator time distribution per query (high UoT, column store)",
        &[
            "query",
            "dominant op",
            "share %",
            "2nd op",
            "share %",
            "dominant is leaf",
        ],
    );
    for q in all_queries() {
        let plan = build_query(q, &db).expect("plan builds");
        let cfg = engine_config(128 * 1024, Uot::HIGH, workers());
        let (_, r) = measure_query(&plan, &cfg, runs());
        let dom = r.metrics.dominant_operators();
        let leaf = |name: &str| {
            name.contains("(lineitem)")
                || name.contains("(orders)")
                || name.contains("(customer)")
                || name.contains("(part)")
                || name.contains("(supplier)")
                || name.contains("(nation)")
                || name.contains("(region)")
        };
        table.row(vec![
            q.label(),
            dom[0].1.clone(),
            format!("{:.1}", dom[0].2 * 100.0),
            dom.get(1).map(|d| d.1.clone()).unwrap_or_default(),
            dom.get(1)
                .map(|d| format!("{:.1}", d.2 * 100.0))
                .unwrap_or_default(),
            leaf(&dom[0].1).to_string(),
        ]);
    }
    table.emit();
}
