//! Fig. 11: the block-streaming UoT engine vs the MonetDB-style
//! operator-at-a-time baseline on the TPC-H suite (same plans, same data).
//!
//! Paper caveat applies here too: the engines differ in more than the
//! transfer mechanism (the baseline is single-threaded, like un-mitosed
//! MonetDB plans), so treat this as the Fig. 11 comparison shape, not a
//! benchmark of MonetDB itself.

use uot_baseline::BaselineEngine;
use uot_bench::{engine_config, make_db, measure_query, ms, runs, workers, ReportTable};
use uot_core::Uot;
use uot_storage::BlockFormat;
use uot_tpch::{all_queries, build_query};

fn main() {
    let bs = 128 * 1024;
    let db = make_db(bs, BlockFormat::Column);
    let mut table = ReportTable::new(
        "Fig. 11: UoT engine (low UoT) vs operator-at-a-time baseline (ms)",
        &[
            "query",
            "uot engine",
            "baseline",
            "baseline/uot",
            "peak temp uot (KB)",
            "peak baseline (KB)",
        ],
    );
    let mut wins = 0usize;
    let mut total = 0usize;
    for q in all_queries() {
        let plan = build_query(q, &db).expect("plan builds");
        let cfg = engine_config(bs, Uot::LOW, workers());
        let (t_uot, r_uot) = measure_query(&plan, &cfg, runs());
        // Same protocol for the baseline.
        let mut times: Vec<std::time::Duration> = (0..runs())
            .map(|_| {
                BaselineEngine::new()
                    .execute(&plan)
                    .expect("baseline runs")
                    .metrics
                    .wall_time
            })
            .collect();
        let t_base = uot_bench::mean_of_best(&mut times, 3);
        let r_base = BaselineEngine::new().execute(&plan).expect("baseline runs");
        total += 1;
        if t_uot < t_base {
            wins += 1;
        }
        table.row(vec![
            q.label(),
            ms(t_uot),
            ms(t_base),
            format!(
                "{:.2}",
                t_base.as_secs_f64() / t_uot.as_secs_f64().max(1e-12)
            ),
            (r_uot.metrics.peak_temp_bytes / 1024).to_string(),
            (r_base.metrics.peak_bytes / 1024).to_string(),
        ]);
    }
    table.row(vec![
        format!("uot engine faster in {wins}/{total}"),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
    ]);
    table.emit();
}
