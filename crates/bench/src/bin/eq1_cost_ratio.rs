//! Table I / Eq. 1 and Section V-C: the analytical cost model.
//!
//! Prints the non-pipelining/pipelining extra-cost ratio of Eq. 1 across
//! UoT sizes and thread counts, the `p1'` cache-pressure term, and the
//! persistent-store variant where pipelining wins by orders of magnitude.

use uot_bench::ReportTable;
use uot_model::{CostParams, HardwareProfile, PersistentStoreParams};

fn main() {
    let mut t = ReportTable::new(
        "Eq. 1: cost ratio (non-pipelining / pipelining), in-memory model",
        &["UoT size", "T=1", "T=4", "T=8", "T=20", "p1' (T=20)"],
    );
    for (label, kb) in [
        ("16KB", 16.0),
        ("32KB", 32.0),
        ("128KB", 128.0),
        ("512KB", 512.0),
        ("2MB", 2048.0),
        ("8MB", 8192.0),
    ] {
        let mut cells = vec![label.to_string()];
        for threads in [1usize, 4, 8, 20] {
            let p = CostParams::derive(HardwareProfile::haswell(), kb * 1024.0, threads, 1000);
            cells.push(format!("{:.2}", p.cost_ratio_eq1()));
        }
        let p20 = CostParams::derive(HardwareProfile::haswell(), kb * 1024.0, 20, 1000);
        cells.push(format!("{:.2}", p20.p1_prime()));
        t.row(cells);
    }
    t.emit();

    let mut t = ReportTable::new(
        "Section V-C: persistent-store model (1000 UoTs of 128KB, SSD)",
        &["strategy", "extra cost"],
    );
    let p = PersistentStoreParams::ssd(128.0 * 1024.0, 1000);
    t.row(vec![
        "high UoT (write + read back)".into(),
        format!("{:.1} ms", p.high_uot_extra_cost() / 1e6),
    ]);
    t.row(vec![
        "low UoT (2 icache misses/UoT)".into(),
        format!("{:.3} ms", p.low_uot_extra_cost() / 1e6),
    ]);
    t.row(vec![
        "ratio".into(),
        format!("{:.0}x", p.high_uot_extra_cost() / p.low_uot_extra_cost()),
    ]);
    t.emit();
}
