//! Fig. 2: how the UoT value reshapes the work-order schedule.
//!
//! Runs the same select → probe chain at a low and a high UoT with two
//! workers and prints the realized schedule (operator id per worker per time
//! bucket). Low UoT interleaves select (producer) and probe (consumer) work
//! orders; high UoT degenerates to operator-at-a-time — exactly the
//! paper's Fig. 2 shapes.

use uot_bench::{engine_config, make_db, ReportTable};
use uot_core::{Engine, Uot};
use uot_storage::BlockFormat;
use uot_tpch::chain_specs;

fn main() {
    let db = make_db(32 * 1024, BlockFormat::Column);
    let chains = chain_specs(&db).expect("chains build");
    let chain = &chains[0]; // Q03 select -> probe
    let legend: String = chain
        .plan
        .ops()
        .iter()
        .enumerate()
        .map(|(i, op)| format!("{i}={}", op.name))
        .collect::<Vec<_>>()
        .join(", ");

    let mut table = ReportTable::new(
        format!(
            "Fig. 2: schedules under low vs high UoT (chars = operator ids; {})",
            legend
        ),
        &["uot", "schedule"],
    );
    for (label, uot) in [("low(1 block)", Uot::LOW), ("high(table)", Uot::HIGH)] {
        let cfg = engine_config(32 * 1024, uot, 2);
        let r = Engine::new(cfg)
            .execute(chain.plan.clone().with_uniform_uot(uot))
            .expect("chain runs");
        for (w, line) in r.metrics.schedule_text(72).lines().enumerate() {
            table.row(vec![
                if w == 0 {
                    label.to_string()
                } else {
                    String::new()
                },
                line.to_string(),
            ]);
        }
    }
    table.emit();
}
