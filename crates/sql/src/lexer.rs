//! Hand-rolled lexer: SQL text → spanned tokens.
//!
//! Keywords are not distinguished from identifiers here — the parser matches
//! identifiers case-insensitively against the keyword set, which keeps the
//! token type small and makes every identifier usable as a column name.

use crate::error::{PlanError, PlanErrorKind, Result, Span};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword, lowercased (SQL identifiers are
    /// case-insensitive in this dialect; quoting is not supported).
    Ident(String),
    /// Numeric literal, verbatim (the parser decides integer vs float).
    Number(String),
    /// String literal contents with `''` unescaped to `'`.
    Str(String),
    /// Punctuation / operator.
    Sym(Sym),
}

/// Punctuation and operator tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // the variants are the punctuation itself
pub enum Sym {
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    Semi,
}

impl Sym {
    /// The source text of this symbol.
    pub fn as_str(self) -> &'static str {
        match self {
            Sym::LParen => "(",
            Sym::RParen => ")",
            Sym::Comma => ",",
            Sym::Dot => ".",
            Sym::Star => "*",
            Sym::Plus => "+",
            Sym::Minus => "-",
            Sym::Slash => "/",
            Sym::Lt => "<",
            Sym::Le => "<=",
            Sym::Gt => ">",
            Sym::Ge => ">=",
            Sym::Eq => "=",
            Sym::Ne => "<>",
            Sym::Semi => ";",
        }
    }
}

/// A token plus its position in the SQL text.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Byte range in the source.
    pub span: Span,
}

/// If `sql` is `EXPLAIN ANALYZE <stmt>`, return the inner statement text
/// (byte slice of `sql`, comments and spacing preserved). `None` for any
/// other statement — including a bare `EXPLAIN ANALYZE` with nothing after
/// it, which falls through to the parser for a proper error.
pub fn strip_explain_analyze(sql: &str) -> Option<&str> {
    let tokens = lex(sql).ok()?;
    match tokens.as_slice() {
        [a, b, rest @ ..] if !rest.is_empty() => {
            let (Tok::Ident(x), Tok::Ident(y)) = (&a.tok, &b.tok) else {
                return None;
            };
            (x == "explain" && y == "analyze").then(|| &sql[rest[0].span.start..])
        }
        _ => None,
    }
}

/// Tokenize `sql`. `--` line comments and all whitespace are skipped.
pub fn lex(sql: &str) -> Result<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        // Whitespace.
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // `--` line comment.
        if c == b'-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        // Identifier / keyword.
        if c.is_ascii_alphabetic() || c == b'_' {
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let text = sql[start..i].to_ascii_lowercase();
            out.push(Token {
                tok: Tok::Ident(text),
                span: Span::new(start, i),
            });
            continue;
        }
        // Number: digits, optional fraction, optional exponent.
        if c.is_ascii_digit() || (c == b'.' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)) {
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            if i < bytes.len() && bytes[i] == b'.' {
                i += 1;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
            }
            if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                let mut j = i + 1;
                if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                    j += 1;
                }
                if j < bytes.len() && bytes[j].is_ascii_digit() {
                    i = j;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
            }
            out.push(Token {
                tok: Tok::Number(sql[start..i].to_string()),
                span: Span::new(start, i),
            });
            continue;
        }
        // String literal with '' escaping.
        if c == b'\'' {
            i += 1;
            let mut value = String::new();
            loop {
                match bytes.get(i) {
                    None => {
                        return Err(PlanError::new(
                            PlanErrorKind::Lex,
                            "unterminated string literal",
                            Span::new(start, sql.len()),
                        ));
                    }
                    Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                        value.push('\'');
                        i += 2;
                    }
                    Some(b'\'') => {
                        i += 1;
                        break;
                    }
                    Some(_) => {
                        // Advance one whole UTF-8 character.
                        let ch = sql[i..].chars().next().expect("in-bounds char");
                        value.push(ch);
                        i += ch.len_utf8();
                    }
                }
            }
            out.push(Token {
                tok: Tok::Str(value),
                span: Span::new(start, i),
            });
            continue;
        }
        // Symbols.
        let (sym, len) = match c {
            b'(' => (Sym::LParen, 1),
            b')' => (Sym::RParen, 1),
            b',' => (Sym::Comma, 1),
            b'.' => (Sym::Dot, 1),
            b'*' => (Sym::Star, 1),
            b'+' => (Sym::Plus, 1),
            b'-' => (Sym::Minus, 1),
            b'/' => (Sym::Slash, 1),
            b';' => (Sym::Semi, 1),
            b'=' => (Sym::Eq, 1),
            b'<' => match bytes.get(i + 1) {
                Some(b'=') => (Sym::Le, 2),
                Some(b'>') => (Sym::Ne, 2),
                _ => (Sym::Lt, 1),
            },
            b'>' => match bytes.get(i + 1) {
                Some(b'=') => (Sym::Ge, 2),
                _ => (Sym::Gt, 1),
            },
            b'!' if bytes.get(i + 1) == Some(&b'=') => (Sym::Ne, 2),
            _ => {
                return Err(PlanError::new(
                    PlanErrorKind::Lex,
                    format!(
                        "unexpected character `{}`",
                        &sql[i..].chars().next().unwrap()
                    ),
                    Span::new(i, i + 1),
                ));
            }
        };
        i += len;
        out.push(Token {
            tok: Tok::Sym(sym),
            span: Span::new(start, i),
        });
    }
    Ok(out)
}

/// Normalize `sql` into the plan-cache key: tokens rejoined with single
/// spaces, identifiers and keywords lowercased, comments stripped, trailing
/// semicolons dropped. Two queries that differ only in whitespace, letter
/// case or comments normalize identically and share one cache entry. If the
/// text does not even lex, the trimmed original is returned so the error
/// path still has a stable key.
pub fn normalize(sql: &str) -> String {
    let Ok(tokens) = lex(sql) else {
        return sql.trim().to_string();
    };
    let mut out = String::with_capacity(sql.len());
    for t in &tokens {
        if t.tok == Tok::Sym(Sym::Semi) {
            continue;
        }
        if !out.is_empty() {
            out.push(' ');
        }
        match &t.tok {
            Tok::Ident(s) => out.push_str(s),
            Tok::Number(n) => out.push_str(n),
            Tok::Str(s) => {
                out.push('\'');
                out.push_str(&s.replace('\'', "''"));
                out.push('\'');
            }
            Tok::Sym(sym) => out.push_str(sym.as_str()),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<Tok> {
        lex(sql).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_idents_numbers_strings_symbols() {
        let toks = kinds("SELECT a, 1.5 FROM t WHERE s = 'it''s' -- c\n;");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("select".into()),
                Tok::Ident("a".into()),
                Tok::Sym(Sym::Comma),
                Tok::Number("1.5".into()),
                Tok::Ident("from".into()),
                Tok::Ident("t".into()),
                Tok::Ident("where".into()),
                Tok::Ident("s".into()),
                Tok::Sym(Sym::Eq),
                Tok::Str("it's".into()),
                Tok::Sym(Sym::Semi),
            ]
        );
    }

    #[test]
    fn spans_are_byte_accurate() {
        let toks = lex("ab <= 'x'").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 5));
        assert_eq!(toks[2].span, Span::new(6, 9));
    }

    #[test]
    fn comparison_operators() {
        let toks = kinds("< <= > >= = <> !=");
        assert_eq!(
            toks,
            vec![
                Tok::Sym(Sym::Lt),
                Tok::Sym(Sym::Le),
                Tok::Sym(Sym::Gt),
                Tok::Sym(Sym::Ge),
                Tok::Sym(Sym::Eq),
                Tok::Sym(Sym::Ne),
                Tok::Sym(Sym::Ne),
            ]
        );
    }

    #[test]
    fn errors_carry_spans() {
        let e = lex("a @ b").unwrap_err();
        assert_eq!(e.kind, PlanErrorKind::Lex);
        assert_eq!(e.span, Some(Span::new(2, 3)));
        let e = lex("'oops").unwrap_err();
        assert_eq!(e.kind, PlanErrorKind::Lex);
        assert!(e.message.contains("unterminated"));
    }

    #[test]
    fn normalize_collapses_case_whitespace_comments() {
        let a = normalize("SELECT  X\nFROM t -- hi\nWHERE y = 'A b';");
        let b = normalize("select x from t where y = 'A b'");
        assert_eq!(a, b);
        // String literal case is preserved.
        assert!(a.contains("'A b'"));
    }

    #[test]
    fn strip_explain_analyze_recognizes_the_prefix() {
        assert_eq!(
            strip_explain_analyze("EXPLAIN ANALYZE SELECT 1 FROM t"),
            Some("SELECT 1 FROM t")
        );
        assert_eq!(
            strip_explain_analyze("  explain\n-- c\n  Analyze select x from t"),
            Some("select x from t")
        );
        assert_eq!(strip_explain_analyze("SELECT 1 FROM t"), None);
        assert_eq!(strip_explain_analyze("EXPLAIN SELECT 1 FROM t"), None);
        // A bare prefix is not stripped: the parser reports the error.
        assert_eq!(strip_explain_analyze("EXPLAIN ANALYZE"), None);
        assert_eq!(strip_explain_analyze("'explain' analyze select 1"), None);
    }
}
