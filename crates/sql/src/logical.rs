//! The logical plan: what the binder produces and the engine lowers.
//!
//! A [`Logical`] tree is fully resolved — every column is a positional index
//! into its input's schema, every predicate and projection is an engine
//! expression ([`uot_expr`]) ready to evaluate. Lowering to the physical
//! operator algebra is a mechanical walk (the `uot-core` crate owns it, since
//! the physical plan type lives there).
//!
//! The dialect is deliberately optimizer-free, mirroring the paper's setup:
//! the plan shape is encoded in the SQL text itself (`FROM` order picks the
//! probe side and the build order), so a SQL query and a hand-constructed
//! plan can be compared operator for operator.

use std::sync::Arc;
use uot_expr::{AggSpec, Predicate, ScalarExpr};
use uot_storage::{Schema, Table};

/// Hash-join variants of the dialect. Mirrors the engine's join types
/// without depending on the engine crate (which depends on this one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Emit probe ⨝ build combinations.
    Inner,
    /// `IN (SELECT ...)` — emit probe rows with a match; no build columns.
    Semi,
    /// `NOT IN (SELECT ...)` — emit probe rows without a match.
    Anti,
}

/// One sort key over the plan's output columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortSpec {
    /// Output column index.
    pub col: usize,
    /// `DESC`?
    pub desc: bool,
}

/// A resolved logical plan node.
#[derive(Debug, Clone)]
pub enum Logical {
    /// Scan a base table.
    Scan {
        /// The table.
        table: Arc<Table>,
    },
    /// Filter + project in one pass.
    Select {
        /// Input plan.
        input: Box<Logical>,
        /// Row filter over the *input* columns.
        predicate: Predicate,
        /// Output expressions over the input columns.
        projections: Vec<ScalarExpr>,
        /// Precomputed output schema (projection names + types).
        schema: Arc<Schema>,
    },
    /// Pure filter (keeps all input columns).
    Filter {
        /// Input plan.
        input: Box<Logical>,
        /// Row filter.
        predicate: Predicate,
    },
    /// Hash join: stream `probe`, build a hash table over `build`.
    Join {
        /// Streamed side.
        probe: Box<Logical>,
        /// Hash-table side.
        build: Box<Logical>,
        /// Equi-key columns of the probe input.
        probe_keys: Vec<usize>,
        /// Equi-key columns of the build input.
        build_keys: Vec<usize>,
        /// Probe columns to emit.
        probe_out: Vec<usize>,
        /// Build columns to carry as payload and emit (empty for semi/anti).
        build_payload: Vec<usize>,
        /// Join variant.
        kind: JoinKind,
        /// Precomputed output schema.
        schema: Arc<Schema>,
    },
    /// Hash aggregation with optional grouping.
    Aggregate {
        /// Input plan.
        input: Box<Logical>,
        /// Grouping columns of the input.
        group_by: Vec<usize>,
        /// Aggregates to compute.
        aggs: Vec<AggSpec>,
        /// Output names of the aggregate columns.
        agg_names: Vec<String>,
        /// Precomputed output schema (group columns, then aggregates).
        schema: Arc<Schema>,
    },
    /// Full sort with optional limit.
    Sort {
        /// Input plan.
        input: Box<Logical>,
        /// Sort keys, most significant first.
        keys: Vec<SortSpec>,
        /// Keep only the first `n` rows if set.
        limit: Option<usize>,
    },
    /// Pass through the first `n` rows.
    Limit {
        /// Input plan.
        input: Box<Logical>,
        /// Row budget.
        n: usize,
    },
}

impl Logical {
    /// Output schema of this node.
    pub fn schema(&self) -> Arc<Schema> {
        match self {
            Logical::Scan { table } => table.schema().clone(),
            Logical::Select { schema, .. }
            | Logical::Join { schema, .. }
            | Logical::Aggregate { schema, .. } => schema.clone(),
            Logical::Filter { input, .. }
            | Logical::Sort { input, .. }
            | Logical::Limit { input, .. } => input.schema(),
        }
    }

    /// Number of nodes in the tree (diagnostics).
    pub fn node_count(&self) -> usize {
        1 + match self {
            Logical::Scan { .. } => 0,
            Logical::Select { input, .. }
            | Logical::Filter { input, .. }
            | Logical::Aggregate { input, .. }
            | Logical::Sort { input, .. }
            | Logical::Limit { input, .. } => input.node_count(),
            Logical::Join { probe, build, .. } => probe.node_count() + build.node_count(),
        }
    }
}
