//! The compiled-plan cache.
//!
//! Compilation (lex → parse → bind → lower) is pure CPU work repeated
//! verbatim by every client that submits the same statement, so the service
//! front door caches compiled plans keyed by [`normalize`]d SQL text:
//! queries differing only in whitespace, letter case or comments share one
//! entry. The cache is generic over the plan type because the physical plan
//! lives in the engine crate, which depends on this one.

use crate::lexer::normalize;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Whether a submission's plan came from the cache or was compiled fresh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanCacheOutcome {
    /// The normalized text was already cached.
    Hit,
    /// The plan was compiled on this submission (and cached).
    Miss,
}

/// Point-in-time cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found a cached plan.
    pub hits: u64,
    /// Lookups that compiled.
    pub misses: u64,
    /// Plans currently cached.
    pub entries: usize,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when empty).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A concurrent map from normalized SQL text to compiled plans.
#[derive(Debug)]
pub struct PlanCache<P> {
    plans: Mutex<HashMap<String, Arc<P>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

// Manual impl: a derive would needlessly bound `P: Default`.
impl<P> Default for PlanCache<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> PlanCache<P> {
    /// Empty cache.
    pub fn new() -> Self {
        PlanCache {
            plans: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Look up `sql` (by normalized text); on a miss, run `compile` and
    /// cache its result. Compilation failures are returned and not cached —
    /// a failing statement stays cheap to reject and never poisons the map.
    /// Generic over the error type so callers that lower further (e.g. to a
    /// physical plan) can thread their own error through.
    pub fn get_or_compile<E>(
        &self,
        sql: &str,
        compile: impl FnOnce() -> std::result::Result<P, E>,
    ) -> std::result::Result<(Arc<P>, PlanCacheOutcome), E> {
        let key = normalize(sql);
        if let Some(plan) = self.plans.lock().get(&key).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((plan, PlanCacheOutcome::Hit));
        }
        // Compile outside the lock: a slow compilation must not block other
        // clients' lookups. Two racing clients may both compile; the second
        // insert wins and the duplicates are identical.
        let plan = Arc::new(compile()?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.plans.lock().insert(key, plan.clone());
        Ok((plan, PlanCacheOutcome::Miss))
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.plans.lock().len(),
        }
    }

    /// Drop every cached plan (counters are kept).
    pub fn clear(&self) {
        self.plans.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::{PlanError, PlanErrorKind};

    #[test]
    fn caches_by_normalized_text() {
        let cache: PlanCache<u32> = PlanCache::new();
        let (p1, o1) = cache
            .get_or_compile("SELECT 1", || Ok::<_, PlanError>(7))
            .unwrap();
        let (p2, o2) = cache
            .get_or_compile("select   1 -- same query", || Ok::<_, PlanError>(8))
            .unwrap();
        assert_eq!(o1, PlanCacheOutcome::Miss);
        assert_eq!(o2, PlanCacheOutcome::Hit);
        assert_eq!(*p1, 7);
        assert_eq!(*p2, 7, "hit returns the cached plan, not a recompile");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn failures_are_not_cached() {
        let cache: PlanCache<u32> = PlanCache::new();
        let fail = || Err(PlanError::spanless(PlanErrorKind::Parse, "boom"));
        assert!(cache.get_or_compile("bad", fail).is_err());
        assert_eq!(cache.stats().entries, 0);
        // Subsequent success still compiles and caches.
        let (_, o) = cache
            .get_or_compile("bad", || Ok::<_, PlanError>(1))
            .unwrap();
        assert_eq!(o, PlanCacheOutcome::Miss);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn clear_keeps_counters() {
        let cache: PlanCache<u32> = PlanCache::new();
        cache.get_or_compile("a", || Ok::<_, PlanError>(1)).unwrap();
        cache.get_or_compile("a", || Ok::<_, PlanError>(1)).unwrap();
        cache.clear();
        let s = cache.stats();
        assert_eq!(s.entries, 0);
        assert_eq!((s.hits, s.misses), (1, 1));
    }
}
