//! The abstract syntax tree of the supported SELECT dialect.
//!
//! Every node carries the [`Span`] of the source text it was parsed from, so
//! binder diagnostics point at the exact offending fragment. The `Display`
//! impls render an AST back to canonical SQL text; `parse(ast.to_string())`
//! reproduces the same AST (the parser round-trip property).

use crate::error::Span;
use std::fmt;

/// One `SELECT ... [FROM ...] [WHERE ...] [GROUP BY ...] [HAVING ...]
/// [ORDER BY ...] [LIMIT n]` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// The projection list.
    pub items: Vec<SelectItem>,
    /// `FROM` items in source order. Order is meaningful: the first item is
    /// the streamed (probe) side, every later item joins as a hash-build
    /// side — the dialect encodes the join tree instead of re-deriving it
    /// with an optimizer.
    pub from: Vec<TableRef>,
    /// `WHERE` predicate.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate over the grouped output.
    pub having: Option<Expr>,
    /// `ORDER BY` keys over the output columns.
    pub order_by: Vec<OrderItem>,
    /// `LIMIT n`.
    pub limit: Option<usize>,
    /// Span of the whole statement.
    pub span: Span,
}

/// One projection-list entry.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*` — every column of the current scope, in order.
    Wildcard {
        /// Position of the `*`.
        span: Span,
    },
    /// `expr [AS alias]`.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Output column name override.
        alias: Option<String>,
    },
}

/// A `FROM` item: a named base table or a parenthesized derived table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// What is being scanned.
    pub source: TableSource,
    /// Binding alias (`nation n1`); defaults to the table name.
    pub alias: Option<String>,
    /// Span of the whole item.
    pub span: Span,
}

/// The two kinds of `FROM` sources.
#[derive(Debug, Clone, PartialEq)]
pub enum TableSource {
    /// A catalog table by (lowercased) name.
    Named(String),
    /// `(SELECT ...)` — a derived table, planned recursively.
    Derived(Box<Select>),
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Key expression: an output name, alias, 1-based position, or an
    /// expression matching a projection item.
    pub expr: Expr,
    /// `DESC`?
    pub desc: bool,
}

/// An expression (scalar or boolean — the binder decides by context).
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The node.
    pub kind: ExprKind,
    /// Source range.
    pub span: Span,
}

/// Binary operators, scalar and boolean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl BinaryOp {
    fn as_str(self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Eq => "=",
            BinaryOp::Ne => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
        }
    }

    /// Binding strength for `Display` parenthesization (higher binds
    /// tighter); mirrors the parser's precedence levels.
    fn precedence(self) -> u8 {
        match self {
            BinaryOp::Or => 1,
            BinaryOp::And => 2,
            BinaryOp::Eq
            | BinaryOp::Ne
            | BinaryOp::Lt
            | BinaryOp::Le
            | BinaryOp::Gt
            | BinaryOp::Ge => 4,
            BinaryOp::Add | BinaryOp::Sub => 5,
            BinaryOp::Mul | BinaryOp::Div => 6,
        }
    }
}

/// Aggregate functions of the dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFuncName {
    /// `COUNT(*)`
    CountStar,
    /// `COUNT(expr)`
    Count,
    /// `SUM(expr)`
    Sum,
    /// `AVG(expr)`
    Avg,
    /// `MIN(expr)`
    Min,
    /// `MAX(expr)`
    Max,
}

impl AggFuncName {
    /// Lowercase function name (also the default output-column name).
    pub fn as_str(self) -> &'static str {
        match self {
            AggFuncName::CountStar | AggFuncName::Count => "count",
            AggFuncName::Sum => "sum",
            AggFuncName::Avg => "avg",
            AggFuncName::Min => "min",
            AggFuncName::Max => "max",
        }
    }
}

/// Expression nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// `[qualifier.]name` column reference.
    Column {
        /// Table alias qualifier.
        qualifier: Option<String>,
        /// Column name (lowercased).
        name: String,
    },
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// `DATE 'yyyy-mm-dd'`, already converted to engine day numbering.
    Date {
        /// Days in the engine's epoch encoding.
        days: i32,
        /// The original literal text (for display).
        text: String,
    },
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary minus.
    Neg(Box<Expr>),
    /// `NOT expr`.
    Not(Box<Expr>),
    /// `expr [NOT] BETWEEN lo AND hi` (inclusive on both ends, per SQL).
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound.
        lo: Box<Expr>,
        /// Upper bound.
        hi: Box<Expr>,
        /// `NOT BETWEEN`?
        negated: bool,
    },
    /// `expr [NOT] IN (literal, ...)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// The literal list.
        list: Vec<Expr>,
        /// `NOT IN`?
        negated: bool,
    },
    /// `expr [NOT] IN (SELECT ...)` — a semi (or anti) join.
    InSelect {
        /// Tested expression.
        expr: Box<Expr>,
        /// The subquery (must project exactly one column).
        query: Box<Select>,
        /// `NOT IN`?
        negated: bool,
    },
    /// `expr [NOT] LIKE 'pattern'` (prefix `p%` and containment `%p%`
    /// patterns only — what the engine has predicates for).
    Like {
        /// Tested expression (must be a `Char` column).
        expr: Box<Expr>,
        /// The raw pattern.
        pattern: String,
        /// `NOT LIKE`?
        negated: bool,
    },
    /// `CASE WHEN cond THEN a ELSE b END` (single branch, `ELSE` required —
    /// the engine's `Case` expression shape).
    Case {
        /// Branch condition.
        when: Box<Expr>,
        /// Value when the condition holds.
        then: Box<Expr>,
        /// Value otherwise.
        els: Box<Expr>,
    },
    /// An aggregate call.
    Agg {
        /// Which aggregate.
        func: AggFuncName,
        /// Argument (`None` for `COUNT(*)`).
        arg: Option<Box<Expr>>,
    },
    /// `EXTRACT(YEAR FROM expr)`.
    ExtractYear(Box<Expr>),
}

impl Expr {
    /// Shorthand constructor.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }

    /// Structural equality ignoring spans — used to match `GROUP BY` /
    /// `HAVING` / `ORDER BY` expressions against projection items.
    pub fn same_shape(&self, other: &Expr) -> bool {
        use ExprKind::*;
        match (&self.kind, &other.kind) {
            (
                Column {
                    qualifier: q1,
                    name: n1,
                },
                Column {
                    qualifier: q2,
                    name: n2,
                },
            ) => n1 == n2 && (q1 == q2 || q1.is_none() || q2.is_none()),
            (Int(a), Int(b)) => a == b,
            (Float(a), Float(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            (Date { days: a, .. }, Date { days: b, .. }) => a == b,
            (
                Binary {
                    op: o1,
                    left: l1,
                    right: r1,
                },
                Binary {
                    op: o2,
                    left: l2,
                    right: r2,
                },
            ) => o1 == o2 && l1.same_shape(l2) && r1.same_shape(r2),
            (Neg(a), Neg(b)) | (Not(a), Not(b)) => a.same_shape(b),
            (
                Between {
                    expr: e1,
                    lo: l1,
                    hi: h1,
                    negated: n1,
                },
                Between {
                    expr: e2,
                    lo: l2,
                    hi: h2,
                    negated: n2,
                },
            ) => n1 == n2 && e1.same_shape(e2) && l1.same_shape(l2) && h1.same_shape(h2),
            (
                InList {
                    expr: e1,
                    list: x1,
                    negated: n1,
                },
                InList {
                    expr: e2,
                    list: x2,
                    negated: n2,
                },
            ) => {
                n1 == n2
                    && e1.same_shape(e2)
                    && x1.len() == x2.len()
                    && x1.iter().zip(x2).all(|(a, b)| a.same_shape(b))
            }
            (
                Like {
                    expr: e1,
                    pattern: p1,
                    negated: n1,
                },
                Like {
                    expr: e2,
                    pattern: p2,
                    negated: n2,
                },
            ) => n1 == n2 && p1 == p2 && e1.same_shape(e2),
            (
                Case {
                    when: w1,
                    then: t1,
                    els: e1,
                },
                Case {
                    when: w2,
                    then: t2,
                    els: e2,
                },
            ) => w1.same_shape(w2) && t1.same_shape(t2) && e1.same_shape(e2),
            (Agg { func: f1, arg: a1 }, Agg { func: f2, arg: a2 }) => {
                f1 == f2
                    && match (a1, a2) {
                        (None, None) => true,
                        (Some(x), Some(y)) => x.same_shape(y),
                        _ => false,
                    }
            }
            (ExtractYear(a), ExtractYear(b)) => a.same_shape(b),
            _ => false,
        }
    }

    /// Does this expression contain an aggregate call anywhere?
    pub fn contains_agg(&self) -> bool {
        use ExprKind::*;
        match &self.kind {
            Agg { .. } => true,
            Column { .. } | Int(_) | Float(_) | Str(_) | Date { .. } => false,
            Binary { left, right, .. } => left.contains_agg() || right.contains_agg(),
            Neg(e) | Not(e) | ExtractYear(e) => e.contains_agg(),
            Between { expr, lo, hi, .. } => {
                expr.contains_agg() || lo.contains_agg() || hi.contains_agg()
            }
            InList { expr, list, .. } => expr.contains_agg() || list.iter().any(Expr::contains_agg),
            InSelect { expr, .. } => expr.contains_agg(),
            Like { expr, .. } => expr.contains_agg(),
            Case { when, then, els } => {
                when.contains_agg() || then.contains_agg() || els.contains_agg()
            }
        }
    }
}

fn escape(s: &str) -> String {
    s.replace('\'', "''")
}

fn fmt_expr(e: &Expr, parent_prec: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    use ExprKind::*;
    match &e.kind {
        Column { qualifier, name } => match qualifier {
            Some(q) => write!(f, "{q}.{name}"),
            None => write!(f, "{name}"),
        },
        Int(v) => write!(f, "{v}"),
        Float(v) => {
            if v.fract() == 0.0 && v.is_finite() {
                write!(f, "{v:.1}")
            } else {
                write!(f, "{v}")
            }
        }
        Str(s) => write!(f, "'{}'", escape(s)),
        Date { text, .. } => write!(f, "DATE '{text}'"),
        Binary { op, left, right } => {
            let prec = op.precedence();
            let need = prec < parent_prec;
            if need {
                write!(f, "(")?;
            }
            fmt_expr(left, prec, f)?;
            write!(f, " {} ", op.as_str())?;
            // Left-associative: the right operand needs strictly-higher
            // binding to avoid re-association on reparse.
            fmt_expr(right, prec + 1, f)?;
            if need {
                write!(f, ")")?;
            }
            Ok(())
        }
        Neg(inner) => {
            write!(f, "-")?;
            fmt_expr(inner, 7, f)
        }
        Not(inner) => {
            write!(f, "NOT ")?;
            fmt_expr(inner, 3, f)
        }
        Between {
            expr,
            lo,
            hi,
            negated,
        } => {
            fmt_expr(expr, 5, f)?;
            write!(f, " {}BETWEEN ", if *negated { "NOT " } else { "" })?;
            fmt_expr(lo, 5, f)?;
            write!(f, " AND ")?;
            fmt_expr(hi, 5, f)
        }
        InList {
            expr,
            list,
            negated,
        } => {
            fmt_expr(expr, 5, f)?;
            write!(f, " {}IN (", if *negated { "NOT " } else { "" })?;
            for (i, item) in list.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                fmt_expr(item, 0, f)?;
            }
            write!(f, ")")
        }
        InSelect {
            expr,
            query,
            negated,
        } => {
            fmt_expr(expr, 5, f)?;
            write!(f, " {}IN ({query})", if *negated { "NOT " } else { "" })
        }
        Like {
            expr,
            pattern,
            negated,
        } => {
            fmt_expr(expr, 5, f)?;
            write!(
                f,
                " {}LIKE '{}'",
                if *negated { "NOT " } else { "" },
                escape(pattern)
            )
        }
        Case { when, then, els } => {
            write!(f, "CASE WHEN ")?;
            fmt_expr(when, 0, f)?;
            write!(f, " THEN ")?;
            fmt_expr(then, 0, f)?;
            write!(f, " ELSE ")?;
            fmt_expr(els, 0, f)?;
            write!(f, " END")
        }
        Agg { func, arg } => match (func, arg) {
            (AggFuncName::CountStar, _) => write!(f, "COUNT(*)"),
            (_, Some(a)) => {
                write!(f, "{}(", func.as_str().to_uppercase())?;
                fmt_expr(a, 0, f)?;
                write!(f, ")")
            }
            (_, None) => write!(f, "{}()", func.as_str().to_uppercase()),
        },
        ExtractYear(inner) => {
            write!(f, "EXTRACT(YEAR FROM ")?;
            fmt_expr(inner, 0, f)?;
            write!(f, ")")
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_expr(self, 0, f)
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match item {
                SelectItem::Wildcard { .. } => write!(f, "*")?,
                SelectItem::Expr { expr, alias } => {
                    fmt_expr(expr, 0, f)?;
                    if let Some(a) = alias {
                        write!(f, " AS {a}")?;
                    }
                }
            }
        }
        if !self.from.is_empty() {
            write!(f, " FROM ")?;
            for (i, t) in self.from.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                match &t.source {
                    TableSource::Named(n) => write!(f, "{n}")?,
                    TableSource::Derived(q) => write!(f, "({q})")?,
                }
                if let Some(a) = &t.alias {
                    write!(f, " {a}")?;
                }
            }
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE ")?;
            fmt_expr(w, 0, f)?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                fmt_expr(g, 0, f)?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING ")?;
            fmt_expr(h, 0, f)?;
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                fmt_expr(&o.expr, 0, f)?;
                if o.desc {
                    write!(f, " DESC")?;
                }
            }
        }
        if let Some(n) = self.limit {
            write!(f, " LIMIT {n}")?;
        }
        Ok(())
    }
}
