//! # uot-sql — the SQL front door
//!
//! A hand-rolled SQL frontend for the UoT engine covering exactly the SELECT
//! dialect the engine executes: projections and scalar expressions over
//! [`uot_expr`], inner hash joins, semi/anti joins via `IN (SELECT ...)`,
//! `GROUP BY` aggregates, `HAVING`, `ORDER BY` and `LIMIT`.
//!
//! The pipeline is
//!
//! ```text
//! SQL text ──lex──▶ tokens ──parse──▶ AST ──bind──▶ Logical plan
//!                                     (catalog: name resolution,
//!                                      type checks, join pipeline)
//! ```
//!
//! and the engine crate lowers the [`Logical`] plan to its physical operator
//! algebra. Every failure along the way is a [`PlanError`] with a byte-span
//! into the original text — never a panic.
//!
//! The dialect is optimizer-free by design (the paper studies scheduling,
//! not plan choice): `FROM` order encodes the join tree. The first `FROM`
//! item is the streamed probe side; each later item becomes a hash-build
//! side; nested derived tables express deeper trees.
//!
//! [`PlanCache`] memoizes compiled plans across submissions keyed by
//! [`normalize`]d text, with hit/miss counters the service surfaces in its
//! metrics.

#![warn(missing_docs)]

pub mod ast;
pub mod binder;
pub mod cache;
pub mod error;
pub mod lexer;
pub mod logical;
pub mod parser;

pub use ast::Select;
pub use binder::bind;
pub use cache::{CacheStats, PlanCache, PlanCacheOutcome};
pub use error::{PlanError, PlanErrorKind, Result, Span};
pub use lexer::{normalize, strip_explain_analyze};
pub use logical::{JoinKind, Logical, SortSpec};
pub use parser::parse;

use uot_storage::Catalog;

/// Parse and bind `sql` against `catalog` in one call: text → [`Logical`].
pub fn plan(sql: &str, catalog: &Catalog) -> Result<Logical> {
    let ast = parse(sql)?;
    bind(&ast, catalog)
}
