//! Planning errors with source positions.
//!
//! Every stage of the front door — lexing, parsing, name resolution, type
//! checking — reports failures as a [`PlanError`] carrying a byte-offset
//! [`Span`] into the original SQL text, never a panic. The span makes the
//! errors actionable from a client: `error.snippet(sql)` renders the
//! offending fragment with a caret line.

use std::fmt;

/// A half-open byte range `start..end` into the SQL text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// A span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Which stage of the front door rejected the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanErrorKind {
    /// The lexer hit a character it cannot tokenize (or an unterminated
    /// string literal).
    Lex,
    /// The parser found a token it did not expect.
    Parse,
    /// A `FROM` item names a table the catalog does not know.
    UnknownTable,
    /// A column reference resolves to nothing in scope.
    UnknownColumn,
    /// An unqualified column name matches more than one table in scope.
    AmbiguousColumn,
    /// An expression combines types the engine cannot evaluate.
    TypeMismatch,
    /// Syntactically valid SQL outside the supported dialect (e.g. a cross
    /// join without an equi-join condition, `LIKE` with a leading and
    /// trailing wildcard pattern the engine has no predicate for).
    Unsupported,
}

impl PlanErrorKind {
    fn label(self) -> &'static str {
        match self {
            PlanErrorKind::Lex => "lex error",
            PlanErrorKind::Parse => "parse error",
            PlanErrorKind::UnknownTable => "unknown table",
            PlanErrorKind::UnknownColumn => "unknown column",
            PlanErrorKind::AmbiguousColumn => "ambiguous column",
            PlanErrorKind::TypeMismatch => "type mismatch",
            PlanErrorKind::Unsupported => "unsupported",
        }
    }
}

/// A front-door failure: what went wrong, and where in the SQL text.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanError {
    /// The failing stage.
    pub kind: PlanErrorKind,
    /// Human-readable description.
    pub message: String,
    /// Where in the SQL text the problem is (`None` only for failures that
    /// have no single location, e.g. an empty statement).
    pub span: Option<Span>,
}

impl PlanError {
    /// An error anchored at `span`.
    pub fn new(kind: PlanErrorKind, message: impl Into<String>, span: Span) -> Self {
        PlanError {
            kind,
            message: message.into(),
            span: Some(span),
        }
    }

    /// An error with no source position.
    pub fn spanless(kind: PlanErrorKind, message: impl Into<String>) -> Self {
        PlanError {
            kind,
            message: message.into(),
            span: None,
        }
    }

    /// Render the offending fragment of `sql` with a caret line underneath,
    /// for terminal-friendly diagnostics.
    pub fn snippet(&self, sql: &str) -> String {
        let Some(span) = self.span else {
            return String::new();
        };
        let start = span.start.min(sql.len());
        let end = span.end.clamp(start, sql.len());
        // The line containing the span start.
        let line_start = sql[..start].rfind('\n').map(|i| i + 1).unwrap_or(0);
        let line_end = sql[start..]
            .find('\n')
            .map(|i| start + i)
            .unwrap_or(sql.len());
        let line = &sql[line_start..line_end];
        let col = start - line_start;
        let width = (end - start)
            .max(1)
            .min(line.len().saturating_sub(col).max(1));
        format!("{line}\n{}{}", " ".repeat(col), "^".repeat(width))
    }
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(span) => write!(f, "{} at {span}: {}", self.kind.label(), self.message),
            None => write!(f, "{}: {}", self.kind.label(), self.message),
        }
    }
}

impl std::error::Error for PlanError {}

/// Front-door result type.
pub type Result<T> = std::result::Result<T, PlanError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_span_and_message() {
        let e = PlanError::new(
            PlanErrorKind::UnknownColumn,
            "unknown column `x`",
            Span::new(7, 8),
        );
        let s = e.to_string();
        assert!(s.contains("7..8"), "{s}");
        assert!(s.contains("unknown column `x`"), "{s}");
    }

    #[test]
    fn snippet_renders_caret() {
        let sql = "select x from t";
        let e = PlanError::new(
            PlanErrorKind::UnknownColumn,
            "unknown column `x`",
            Span::new(7, 8),
        );
        let snip = e.snippet(sql);
        assert_eq!(snip, "select x from t\n       ^");
    }

    #[test]
    fn span_join_covers_both() {
        assert_eq!(Span::new(3, 5).to(Span::new(9, 12)), Span::new(3, 12));
    }
}
