//! Name resolution and logical planning: AST → [`Logical`].
//!
//! The binder resolves every column reference against the catalog, type
//! checks expressions, and assembles the left-deep join pipeline the dialect
//! encodes: the first `FROM` item is the streamed (probe) side, every later
//! item joins as a hash-build side, and nested derived tables express
//! arbitrary join trees. All failures are [`PlanError`]s with spans — the
//! binder never panics on user input.

use crate::ast::{AggFuncName, BinaryOp, Expr, ExprKind, Select, SelectItem, TableSource};
use crate::error::{PlanError, PlanErrorKind, Result, Span};
use crate::logical::{JoinKind, Logical, SortSpec};
use std::sync::Arc;
use uot_expr::{cmp, col, lit, AggFunc, AggSpec, BinOp, CmpOp, Predicate, ScalarExpr};
use uot_storage::{Catalog, DataType, Schema, Value};

/// Bind `query` against `catalog`, producing a fully resolved logical plan.
pub fn bind(query: &Select, catalog: &Catalog) -> Result<Logical> {
    let plan = bind_select(query, catalog)?;
    // The physical plan needs at least one operator; wrap a bare scan in an
    // identity select.
    Ok(match plan {
        Logical::Scan { table } => {
            let schema = table.schema().clone();
            let projections: Vec<ScalarExpr> = (0..schema.len()).map(col).collect();
            Logical::Select {
                input: Box::new(Logical::Scan { table }),
                predicate: Predicate::True,
                projections,
                schema,
            }
        }
        other => other,
    })
}

/// One column visible in a scope.
#[derive(Debug, Clone)]
struct ScopeCol {
    /// The table alias this column came from (`None` for derived outputs
    /// without an alias and post-aggregate columns).
    qualifier: Option<String>,
    name: String,
    dtype: DataType,
}

/// A resolution context: the columns of one plan's output.
#[derive(Debug, Clone)]
struct Scope {
    cols: Vec<ScopeCol>,
}

impl Scope {
    fn from_schema(schema: &Schema, qualifier: Option<&str>) -> Scope {
        Scope {
            cols: schema
                .columns()
                .iter()
                .map(|c| ScopeCol {
                    qualifier: qualifier.map(str::to_string),
                    name: c.name.clone(),
                    dtype: c.dtype,
                })
                .collect(),
        }
    }

    fn schema(&self) -> Arc<Schema> {
        Schema::from_pairs(
            &self
                .cols
                .iter()
                .map(|c| (c.name.as_str(), c.dtype))
                .collect::<Vec<_>>(),
        )
    }

    fn resolve(&self, qualifier: Option<&str>, name: &str, span: Span) -> Result<usize> {
        let matches: Vec<usize> = self
            .cols
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                c.name == name
                    && match qualifier {
                        Some(q) => c.qualifier.as_deref() == Some(q),
                        None => true,
                    }
            })
            .map(|(i, _)| i)
            .collect();
        match matches.len() {
            1 => Ok(matches[0]),
            0 => Err(PlanError::new(
                PlanErrorKind::UnknownColumn,
                match qualifier {
                    Some(q) => format!("unknown column `{q}.{name}`"),
                    None => format!("unknown column `{name}`"),
                },
                span,
            )),
            _ => Err(PlanError::new(
                PlanErrorKind::AmbiguousColumn,
                format!("column `{name}` matches more than one table; qualify it"),
                span,
            )),
        }
    }
}

/// One bound `FROM` item.
struct Rel {
    plan: Logical,
    scope: Scope,
    alias: Option<String>,
    span: Span,
}

/// A WHERE conjunct classified by the rels it touches.
enum Conjunct<'a> {
    /// References at most one rel: pushed into that rel's scan select.
    Local { rel: usize, expr: &'a Expr },
    /// `a.x = b.y` between two different rels: a hash-join key pair.
    JoinKey {
        step: usize,
        probe: (usize, usize),
        build_col: usize,
        span: Span,
    },
    /// `expr [NOT] IN (SELECT ...)`: a semi/anti join applied once the left
    /// column's rel has joined.
    Semi {
        app_step: usize,
        left: (usize, usize),
        query: &'a Select,
        negated: bool,
        span: Span,
    },
    /// Anything else spanning several rels: a filter applied once every
    /// referenced rel has joined.
    Residual { app_step: usize, expr: &'a Expr },
}

/// Where a `(rel, col)` pair is used, for column-retention decisions.
struct Uses {
    /// Needed in the final output (select list, group/having/order).
    output: Vec<(usize, usize)>,
    /// Needed as a join key at the given step.
    join: Vec<(usize, (usize, usize))>,
    /// Needed by a residual filter or semi join applied after the given step.
    apply: Vec<(usize, (usize, usize))>,
}

impl Uses {
    /// Must `(rel, col)` survive past the join at `step`?
    fn retained_after(&self, step: usize, rc: (usize, usize)) -> bool {
        self.output.contains(&rc)
            || self.join.iter().any(|&(s, u)| s > step && u == rc)
            || self.apply.iter().any(|&(s, u)| s >= step && u == rc)
    }

    /// Is `(rel, col)` used anywhere at all?
    fn used(&self, rc: (usize, usize)) -> bool {
        self.output.contains(&rc)
            || self.join.iter().any(|&(_, u)| u == rc)
            || self.apply.iter().any(|&(_, u)| u == rc)
    }
}

fn bind_select(query: &Select, catalog: &Catalog) -> Result<Logical> {
    if query.items.is_empty() {
        return Err(PlanError::new(
            PlanErrorKind::Parse,
            "empty select list",
            query.span,
        ));
    }
    if query.from.is_empty() {
        return Err(PlanError::new(
            PlanErrorKind::Unsupported,
            "queries must have a FROM clause",
            query.span,
        ));
    }

    // ---- FROM: bind every rel ------------------------------------------
    let mut rels = Vec::new();
    for t in &query.from {
        let (plan, alias) = match &t.source {
            TableSource::Named(name) => {
                let table = catalog.get(name).map_err(|_| {
                    PlanError::new(
                        PlanErrorKind::UnknownTable,
                        format!("unknown table `{name}`"),
                        t.span,
                    )
                })?;
                (
                    Logical::Scan { table },
                    Some(t.alias.clone().unwrap_or_else(|| name.clone())),
                )
            }
            TableSource::Derived(sub) => (bind_select(sub, catalog)?, t.alias.clone()),
        };
        let scope = Scope::from_schema(&plan.schema(), alias.as_deref());
        rels.push(Rel {
            plan,
            scope,
            alias,
            span: t.span,
        });
    }

    // ---- WHERE: classify conjuncts -------------------------------------
    let mut conjuncts = Vec::new();
    if let Some(w) = &query.where_clause {
        let mut flat = Vec::new();
        flatten_and(w, &mut flat);
        for e in flat {
            conjuncts.push(classify(e, &rels)?);
        }
    }

    // ---- column-use bookkeeping ----------------------------------------
    let mut uses = Uses {
        output: Vec::new(),
        join: Vec::new(),
        apply: Vec::new(),
    };
    let record_output = |e: &Expr, uses: &mut Uses| -> Result<()> {
        let mut cols = Vec::new();
        collect_columns(e, &mut cols);
        for (q, n, span) in cols {
            // Unresolvable names here may be aliases or positions (ORDER BY,
            // GROUP BY); they are re-resolved in context later. Ambiguity is
            // fatal now, though — deferring it would drop both candidate
            // columns and misreport the name as unknown.
            match resolve_in_rels(&rels, q.as_deref(), n, span) {
                Ok(rc) => uses.output.push((rc.0, rc.1)),
                Err(e) if e.kind == PlanErrorKind::AmbiguousColumn => return Err(e),
                Err(_) => {}
            }
        }
        Ok(())
    };
    for item in &query.items {
        match item {
            SelectItem::Wildcard { .. } => {
                for (r, rel) in rels.iter().enumerate() {
                    for c in 0..rel.scope.cols.len() {
                        uses.output.push((r, c));
                    }
                }
            }
            SelectItem::Expr { expr, .. } => record_output(expr, &mut uses)?,
        }
    }
    for g in &query.group_by {
        record_output(g, &mut uses)?;
    }
    if let Some(h) = &query.having {
        record_output(h, &mut uses)?;
    }
    for o in &query.order_by {
        record_output(&o.expr, &mut uses)?;
    }
    for c in &conjuncts {
        match c {
            Conjunct::JoinKey {
                step,
                probe,
                build_col,
                ..
            } => {
                uses.join.push((*step, *probe));
                uses.join.push((*step, (*step, *build_col)));
            }
            Conjunct::Semi { app_step, left, .. } => uses.apply.push((*app_step, *left)),
            Conjunct::Residual { app_step, expr } => {
                let mut cols = Vec::new();
                collect_columns(expr, &mut cols);
                for (q, n, span) in cols {
                    let rc = resolve_in_rels(&rels, q.as_deref(), n, span)?;
                    uses.apply.push((*app_step, (rc.0, rc.1)));
                }
            }
            Conjunct::Local { .. } => {}
        }
    }

    // ---- per-rel scans: local filter + projection to needed columns ----
    // proj[r] lists the kept original column indices, in schema order.
    let mut proj: Vec<Vec<usize>> = Vec::new();
    for (r, rel) in rels.iter().enumerate() {
        let mut kept: Vec<usize> = (0..rel.scope.cols.len())
            .filter(|&c| uses.used((r, c)))
            .collect();
        if kept.is_empty() {
            kept.push(0); // a select needs at least one projection
        }
        proj.push(kept);
    }
    let mut rel_plans = Vec::new();
    for (r, rel) in rels.iter().enumerate() {
        let mut pred = Predicate::True;
        for c in &conjuncts {
            if let Conjunct::Local { rel: lr, expr } = c {
                if *lr == r {
                    pred = pred.and(bind_pred(expr, &BindCtx::plain(&rel.scope))?);
                }
            }
        }
        let full = proj[r].len() == rel.scope.cols.len();
        let plan = if matches!(pred, Predicate::True) && full {
            rel.plan.clone()
        } else {
            let projections: Vec<ScalarExpr> = proj[r].iter().map(|&c| col(c)).collect();
            let schema = Schema::from_pairs(
                &proj[r]
                    .iter()
                    .map(|&c| (rel.scope.cols[c].name.as_str(), rel.scope.cols[c].dtype))
                    .collect::<Vec<_>>(),
            );
            Logical::Select {
                input: Box::new(rel.plan.clone()),
                predicate: pred,
                projections,
                schema,
            }
        };
        rel_plans.push(Some(plan));
    }

    // ---- join pipeline --------------------------------------------------
    // acc_cols[i] = (rel, original column) behind output column i.
    let mut acc = rel_plans[0].take().expect("rel 0 plan");
    let mut acc_cols: Vec<(usize, usize)> = proj[0].iter().map(|&c| (0, c)).collect();

    // Applications (residual filters / semi joins) grouped by step, in
    // WHERE-clause order.
    let apply_step = |acc: Logical,
                      acc_cols: &[(usize, usize)],
                      step: usize,
                      rels: &[Rel],
                      conjuncts: &[Conjunct],
                      catalog: &Catalog|
     -> Result<Logical> {
        let mut plan = acc;
        for c in conjuncts {
            match c {
                Conjunct::Residual { app_step, expr } if *app_step == step => {
                    let scope = acc_scope(rels, acc_cols);
                    let pred = bind_pred(expr, &BindCtx::plain(&scope))?;
                    plan = Logical::Filter {
                        input: Box::new(plan),
                        predicate: pred,
                    };
                }
                Conjunct::Semi {
                    app_step,
                    left,
                    query,
                    negated,
                    span,
                } if *app_step == step => {
                    let sub = bind(query, catalog)?;
                    let sub_schema = sub.schema();
                    if sub_schema.len() != 1 {
                        return Err(PlanError::new(
                            PlanErrorKind::Unsupported,
                            format!(
                                "IN subquery must produce exactly one column, got {}",
                                sub_schema.len()
                            ),
                            *span,
                        ));
                    }
                    let pos = acc_cols
                        .iter()
                        .position(|rc| rc == left)
                        .expect("semi key retained");
                    let left_ty = rels[left.0].scope.cols[left.1].dtype;
                    let right_ty = sub_schema.dtype(0);
                    if left_ty != right_ty {
                        return Err(PlanError::new(
                            PlanErrorKind::TypeMismatch,
                            format!(
                                "IN subquery compares {} with {}",
                                left_ty.name(),
                                right_ty.name()
                            ),
                            *span,
                        ));
                    }
                    if !left_ty.hashable() {
                        return Err(PlanError::new(
                            PlanErrorKind::TypeMismatch,
                            format!("{} keys cannot be hashed", left_ty.name()),
                            *span,
                        ));
                    }
                    let schema = plan.schema();
                    plan = Logical::Join {
                        probe: Box::new(plan),
                        build: Box::new(sub),
                        probe_keys: vec![pos],
                        build_keys: vec![0],
                        probe_out: (0..schema.len()).collect(),
                        build_payload: vec![],
                        kind: if *negated {
                            JoinKind::Anti
                        } else {
                            JoinKind::Semi
                        },
                        schema,
                    };
                }
                _ => {}
            }
        }
        Ok(plan)
    };

    acc = apply_step(acc, &acc_cols, 0, &rels, &conjuncts, catalog)?;
    for step in 1..rels.len() {
        // Gather this step's key pairs, in WHERE order.
        let mut probe_keys = Vec::new();
        let mut build_keys = Vec::new();
        for c in &conjuncts {
            if let Conjunct::JoinKey {
                step: s,
                probe,
                build_col,
                span,
            } = c
            {
                if *s == step {
                    let p = acc_cols.iter().position(|rc| rc == probe).ok_or_else(|| {
                        PlanError::new(
                            PlanErrorKind::Unsupported,
                            "join key column was not retained (internal)",
                            *span,
                        )
                    })?;
                    let b = proj[step]
                        .iter()
                        .position(|&c| c == *build_col)
                        .expect("build key projected");
                    let kty = rels[step].scope.cols[*build_col].dtype;
                    let pty = rels[probe.0].scope.cols[probe.1].dtype;
                    if !kty.hashable() || !pty.hashable() {
                        return Err(PlanError::new(
                            PlanErrorKind::TypeMismatch,
                            format!(
                                "join key of type {} cannot be hashed",
                                if kty.hashable() {
                                    pty.name()
                                } else {
                                    kty.name()
                                }
                            ),
                            *span,
                        ));
                    }
                    if kty != pty {
                        return Err(PlanError::new(
                            PlanErrorKind::TypeMismatch,
                            format!("join compares {} with {}", pty.name(), kty.name()),
                            *span,
                        ));
                    }
                    probe_keys.push(p);
                    build_keys.push(b);
                }
            }
        }
        if probe_keys.is_empty() {
            return Err(PlanError::new(
                PlanErrorKind::Unsupported,
                format!(
                    "no equi-join condition connects `{}` to the preceding tables \
                     (cross joins are not supported)",
                    rels[step]
                        .alias
                        .clone()
                        .unwrap_or_else(|| format!("FROM item {}", step + 1))
                ),
                rels[step].span,
            ));
        }
        // Columns surviving this join.
        let probe_out: Vec<usize> = (0..acc_cols.len())
            .filter(|&i| uses.retained_after(step, acc_cols[i]))
            .collect();
        let build_payload: Vec<usize> = (0..proj[step].len())
            .filter(|&i| uses.retained_after(step, (step, proj[step][i])))
            .collect();
        let build_plan = rel_plans[step].take().expect("rel plan");
        let acc_schema = acc.schema();
        let build_schema = build_plan.schema();
        let schema = acc_schema.project(&probe_out).join(
            &build_schema.project(&build_payload),
            &(0..build_payload.len()).collect::<Vec<_>>(),
        );
        let new_cols: Vec<(usize, usize)> = probe_out
            .iter()
            .map(|&i| acc_cols[i])
            .chain(build_payload.iter().map(|&i| (step, proj[step][i])))
            .collect();
        acc = Logical::Join {
            probe: Box::new(acc),
            build: Box::new(build_plan),
            probe_keys,
            build_keys,
            probe_out,
            build_payload,
            kind: JoinKind::Inner,
            schema,
        };
        acc_cols = new_cols;
        acc = apply_step(acc, &acc_cols, step, &rels, &conjuncts, catalog)?;
    }

    let scope = acc_scope(&rels, &acc_cols);

    // ---- aggregation or plain projection -------------------------------
    let mut agg_calls: Vec<&Expr> = Vec::new();
    for item in &query.items {
        if let SelectItem::Expr { expr, .. } = item {
            collect_aggs(expr, &mut agg_calls);
        }
    }
    if let Some(h) = &query.having {
        collect_aggs(h, &mut agg_calls);
    }
    for o in &query.order_by {
        collect_aggs(&o.expr, &mut agg_calls);
    }
    dedup_by_shape(&mut agg_calls);

    let grouped = !query.group_by.is_empty() || !agg_calls.is_empty();
    let (mut plan, out_names) = if grouped {
        bind_aggregate(query, acc, &scope, &agg_calls)?
    } else {
        bind_projection(query, acc, &scope)?
    };

    // ---- ORDER BY / LIMIT ----------------------------------------------
    if !query.order_by.is_empty() {
        let schema = plan.schema();
        let mut keys = Vec::new();
        for o in &query.order_by {
            let idx = resolve_order_key(&o.expr, &schema, &out_names, query)?;
            keys.push(SortSpec {
                col: idx,
                desc: o.desc,
            });
        }
        plan = Logical::Sort {
            input: Box::new(plan),
            keys,
            limit: query.limit,
        };
    } else if let Some(n) = query.limit {
        plan = Logical::Limit {
            input: Box::new(plan),
            n,
        };
    }
    Ok(plan)
}

/// The scope of the join accumulator: qualifiers and names of the original
/// rel columns behind each output position.
fn acc_scope(rels: &[Rel], acc_cols: &[(usize, usize)]) -> Scope {
    Scope {
        cols: acc_cols
            .iter()
            .map(|&(r, c)| rels[r].scope.cols[c].clone())
            .collect(),
    }
}

// ---------------------------------------------------------------------------
// WHERE-clause analysis
// ---------------------------------------------------------------------------

fn flatten_and<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
    if let ExprKind::Binary {
        op: BinaryOp::And,
        left,
        right,
    } = &e.kind
    {
        flatten_and(left, out);
        flatten_and(right, out);
    } else {
        out.push(e);
    }
}

/// Column references of an expression (subqueries excluded — they bind
/// against their own scopes).
fn collect_columns<'a>(e: &'a Expr, out: &mut Vec<(&'a Option<String>, &'a str, Span)>) {
    use ExprKind::*;
    match &e.kind {
        Column { qualifier, name } => out.push((qualifier, name, e.span)),
        Int(_) | Float(_) | Str(_) | Date { .. } => {}
        Binary { left, right, .. } => {
            collect_columns(left, out);
            collect_columns(right, out);
        }
        Neg(x) | Not(x) | ExtractYear(x) => collect_columns(x, out),
        Between { expr, lo, hi, .. } => {
            collect_columns(expr, out);
            collect_columns(lo, out);
            collect_columns(hi, out);
        }
        InList { expr, list, .. } => {
            collect_columns(expr, out);
            for i in list {
                collect_columns(i, out);
            }
        }
        InSelect { expr, .. } => collect_columns(expr, out),
        Like { expr, .. } => collect_columns(expr, out),
        Case { when, then, els } => {
            collect_columns(when, out);
            collect_columns(then, out);
            collect_columns(els, out);
        }
        Agg { arg, .. } => {
            if let Some(a) = arg {
                collect_columns(a, out);
            }
        }
    }
}

fn collect_aggs<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
    use ExprKind::*;
    match &e.kind {
        Agg { .. } => out.push(e),
        Column { .. } | Int(_) | Float(_) | Str(_) | Date { .. } => {}
        Binary { left, right, .. } => {
            collect_aggs(left, out);
            collect_aggs(right, out);
        }
        Neg(x) | Not(x) | ExtractYear(x) => collect_aggs(x, out),
        Between { expr, lo, hi, .. } => {
            collect_aggs(expr, out);
            collect_aggs(lo, out);
            collect_aggs(hi, out);
        }
        InList { expr, list, .. } => {
            collect_aggs(expr, out);
            for i in list {
                collect_aggs(i, out);
            }
        }
        InSelect { expr, .. } => collect_aggs(expr, out),
        Like { expr, .. } => collect_aggs(expr, out),
        Case { when, then, els } => {
            collect_aggs(when, out);
            collect_aggs(then, out);
            collect_aggs(els, out);
        }
    }
}

fn dedup_by_shape(aggs: &mut Vec<&Expr>) {
    let mut kept: Vec<&Expr> = Vec::new();
    for a in aggs.iter() {
        if !kept.iter().any(|k| k.same_shape(a)) {
            kept.push(a);
        }
    }
    *aggs = kept;
}

fn resolve_in_rels(
    rels: &[Rel],
    qualifier: Option<&str>,
    name: &str,
    span: Span,
) -> Result<(usize, usize, DataType)> {
    let mut matches = Vec::new();
    for (r, rel) in rels.iter().enumerate() {
        for (c, sc) in rel.scope.cols.iter().enumerate() {
            let q_ok = match qualifier {
                Some(q) => rel.alias.as_deref() == Some(q),
                None => true,
            };
            if q_ok && sc.name == name {
                matches.push((r, c, sc.dtype));
            }
        }
    }
    match matches.len() {
        1 => Ok(matches[0]),
        0 => Err(PlanError::new(
            PlanErrorKind::UnknownColumn,
            match qualifier {
                Some(q) => format!("unknown column `{q}.{name}`"),
                None => format!("unknown column `{name}`"),
            },
            span,
        )),
        _ => Err(PlanError::new(
            PlanErrorKind::AmbiguousColumn,
            format!("column `{name}` matches more than one table; qualify it"),
            span,
        )),
    }
}

fn classify<'a>(e: &'a Expr, rels: &[Rel]) -> Result<Conjunct<'a>> {
    if let ExprKind::Agg { .. } = e.kind {
        return Err(PlanError::new(
            PlanErrorKind::TypeMismatch,
            "aggregates are not allowed in WHERE",
            e.span,
        ));
    }
    // IN (SELECT ...) becomes a semi/anti join.
    if let ExprKind::InSelect {
        expr,
        query,
        negated,
    } = &e.kind
    {
        let ExprKind::Column { qualifier, name } = &expr.kind else {
            return Err(PlanError::new(
                PlanErrorKind::Unsupported,
                "the left side of IN (SELECT ...) must be a column",
                expr.span,
            ));
        };
        let (r, c, _) = resolve_in_rels(rels, qualifier.as_deref(), name, expr.span)?;
        return Ok(Conjunct::Semi {
            app_step: r,
            left: (r, c),
            query,
            negated: *negated,
            span: e.span,
        });
    }
    // Which rels does the conjunct touch?
    let mut cols = Vec::new();
    collect_columns(e, &mut cols);
    let mut touched: Vec<usize> = Vec::new();
    let mut resolved = Vec::new();
    for (q, n, span) in &cols {
        let rc = resolve_in_rels(rels, q.as_deref(), n, *span)?;
        if !touched.contains(&rc.0) {
            touched.push(rc.0);
        }
        resolved.push(rc);
    }
    if touched.len() <= 1 {
        return Ok(Conjunct::Local {
            rel: touched.first().copied().unwrap_or(0),
            expr: e,
        });
    }
    // `a.x = b.y` across two rels → join key.
    if touched.len() == 2 {
        if let ExprKind::Binary {
            op: BinaryOp::Eq,
            left,
            right,
        } = &e.kind
        {
            if let (ExprKind::Column { .. }, ExprKind::Column { .. }) = (&left.kind, &right.kind) {
                let (lr, lc, _) = resolved[0];
                let (rr, rc, _) = resolved[1];
                // The later-joining rel is the build side of that step.
                let (step, probe, build_col) = if lr > rr {
                    (lr, (rr, rc), lc)
                } else {
                    (rr, (lr, lc), rc)
                };
                return Ok(Conjunct::JoinKey {
                    step,
                    probe,
                    build_col,
                    span: e.span,
                });
            }
        }
    }
    let app_step = touched.iter().copied().max().unwrap_or(0);
    Ok(Conjunct::Residual { app_step, expr: e })
}

// ---------------------------------------------------------------------------
// Expression binding
// ---------------------------------------------------------------------------

/// Aggregate-aware rewrite context for post-aggregate binding (HAVING, the
/// select list, ORDER BY): group expressions map to the leading output
/// columns, aggregate calls to the trailing ones.
struct AggCtx<'a> {
    /// The resolved group expressions (alias-substituted AST).
    group_sources: &'a [Expr],
    /// The deduplicated aggregate calls.
    aggs: &'a [&'a Expr],
}

struct BindCtx<'a> {
    scope: &'a Scope,
    agg: Option<AggCtx<'a>>,
}

impl<'a> BindCtx<'a> {
    fn plain(scope: &'a Scope) -> Self {
        BindCtx { scope, agg: None }
    }
}

fn bind_scalar(e: &Expr, ctx: &BindCtx) -> Result<ScalarExpr> {
    // Post-aggregate rewriting first: a group expression or an aggregate
    // call becomes a positional reference into the aggregate's output.
    if let Some(agg) = &ctx.agg {
        if let Some(i) = agg.group_sources.iter().position(|g| g.same_shape(e)) {
            return Ok(col(i));
        }
        if let Some(j) = agg.aggs.iter().position(|a| a.same_shape(e)) {
            return Ok(col(agg.group_sources.len() + j));
        }
    }
    use ExprKind::*;
    match &e.kind {
        Column { qualifier, name } => {
            let i = ctx.scope.resolve(qualifier.as_deref(), name, e.span)?;
            Ok(col(i))
        }
        Int(v) => Ok(lit(*v)),
        Float(v) => Ok(lit(*v)),
        Str(s) => Ok(ScalarExpr::Literal(Value::Str(s.clone()))),
        Date { days, .. } => Ok(ScalarExpr::Literal(Value::Date(*days))),
        Binary { op, left, right } => {
            let bin_op = match op {
                BinaryOp::Add => BinOp::Add,
                BinaryOp::Sub => BinOp::Sub,
                BinaryOp::Mul => BinOp::Mul,
                BinaryOp::Div => BinOp::Div,
                _ => {
                    return Err(PlanError::new(
                        PlanErrorKind::TypeMismatch,
                        format!("`{}` is a predicate, not a value", op_text(*op)),
                        e.span,
                    ))
                }
            };
            let l = bind_scalar(left, ctx)?;
            let r = bind_scalar(right, ctx)?;
            let out = l.bin(bin_op, r);
            check_scalar_type(&out, ctx, e.span)?;
            Ok(out)
        }
        Neg(inner) => {
            let x = bind_scalar(inner, ctx)?;
            let out = lit(0i64).sub(x);
            check_scalar_type(&out, ctx, e.span)?;
            Ok(out)
        }
        Case { when, then, els } => {
            let p = bind_pred(when, ctx)?;
            let t = bind_scalar(then, ctx)?;
            let f = bind_scalar(els, ctx)?;
            let out = ScalarExpr::case_when(p, t, f);
            check_scalar_type(&out, ctx, e.span)?;
            Ok(out)
        }
        ExtractYear(inner) => {
            let x = bind_scalar(inner, ctx)?;
            let out = x.year();
            check_scalar_type(&out, ctx, e.span)?;
            Ok(out)
        }
        Agg { .. } => Err(PlanError::new(
            PlanErrorKind::TypeMismatch,
            "aggregate calls are only allowed in the select list, HAVING and ORDER BY \
             of a grouped query",
            e.span,
        )),
        Not(_) | Between { .. } | InList { .. } | InSelect { .. } | Like { .. } => {
            Err(PlanError::new(
                PlanErrorKind::TypeMismatch,
                "predicate used where a value is expected",
                e.span,
            ))
        }
    }
}

fn op_text(op: BinaryOp) -> &'static str {
    match op {
        BinaryOp::Eq => "=",
        BinaryOp::Ne => "<>",
        BinaryOp::Lt => "<",
        BinaryOp::Le => "<=",
        BinaryOp::Gt => ">",
        BinaryOp::Ge => ">=",
        BinaryOp::And => "AND",
        BinaryOp::Or => "OR",
        BinaryOp::Add => "+",
        BinaryOp::Sub => "-",
        BinaryOp::Mul => "*",
        BinaryOp::Div => "/",
    }
}

/// Type check a bound scalar against the context's input schema, converting
/// engine errors to spanned plan errors. Post-aggregate contexts type check
/// against the aggregate output schema via the scope.
fn check_scalar_type(e: &ScalarExpr, ctx: &BindCtx, span: Span) -> Result<DataType> {
    e.output_type(&ctx.scope.schema())
        .map_err(|err| PlanError::new(PlanErrorKind::TypeMismatch, err.to_string(), span))
}

fn bind_pred(e: &Expr, ctx: &BindCtx) -> Result<Predicate> {
    use ExprKind::*;
    match &e.kind {
        Binary {
            op: BinaryOp::And,
            left,
            right,
        } => Ok(bind_pred(left, ctx)?.and(bind_pred(right, ctx)?)),
        Binary {
            op: BinaryOp::Or,
            left,
            right,
        } => Ok(bind_pred(left, ctx)?.or(bind_pred(right, ctx)?)),
        Binary { op, left, right }
            if matches!(
                op,
                BinaryOp::Eq
                    | BinaryOp::Ne
                    | BinaryOp::Lt
                    | BinaryOp::Le
                    | BinaryOp::Gt
                    | BinaryOp::Ge
            ) =>
        {
            bind_comparison(e, *op, left, right, ctx)
        }
        Not(inner) => Ok(bind_pred(inner, ctx)?.negate()),
        Between {
            expr,
            lo,
            hi,
            negated,
        } => {
            let x = bind_scalar(expr, ctx)?;
            let l = bind_scalar(lo, ctx)?;
            let h = bind_scalar(hi, ctx)?;
            check_comparable(&x, &l, ctx, e.span)?;
            check_comparable(&x, &h, ctx, e.span)?;
            let p = cmp(x.clone(), CmpOp::Ge, l).and(cmp(x, CmpOp::Le, h));
            Ok(if *negated { p.negate() } else { p })
        }
        InList {
            expr,
            list,
            negated,
        } => {
            let p = bind_in_list(expr, list, ctx, e.span)?;
            Ok(if *negated { p.negate() } else { p })
        }
        Like {
            expr,
            pattern,
            negated,
        } => {
            let c = char_column(expr, ctx)?;
            let p = bind_like(c, pattern, expr.span)?;
            Ok(if *negated { p.negate() } else { p })
        }
        InSelect { .. } => Err(PlanError::new(
            PlanErrorKind::Unsupported,
            "IN (SELECT ...) is only supported as a top-level AND conjunct of WHERE",
            e.span,
        )),
        _ => Err(PlanError::new(
            PlanErrorKind::TypeMismatch,
            "expected a boolean predicate",
            e.span,
        )),
    }
}

/// Resolve `expr` as a `Char` column reference for string predicates.
fn char_column(expr: &Expr, ctx: &BindCtx) -> Result<usize> {
    let ExprKind::Column { qualifier, name } = &expr.kind else {
        return Err(PlanError::new(
            PlanErrorKind::Unsupported,
            "string predicates require a plain column on the left",
            expr.span,
        ));
    };
    let i = ctx.scope.resolve(qualifier.as_deref(), name, expr.span)?;
    match ctx.scope.cols[i].dtype {
        DataType::Char(_) => Ok(i),
        other => Err(PlanError::new(
            PlanErrorKind::TypeMismatch,
            format!("string predicate on {} column `{name}`", other.name()),
            expr.span,
        )),
    }
}

fn bind_like(col_idx: usize, pattern: &str, span: Span) -> Result<Predicate> {
    let inner = pattern.trim_matches('%');
    if inner.contains('%') || inner.contains('_') || pattern.contains('_') {
        return Err(PlanError::new(
            PlanErrorKind::Unsupported,
            format!(
                "LIKE pattern `{pattern}` is not supported; only 'prefix%', \
                 '%substring%' and exact patterns are"
            ),
            span,
        ));
    }
    Ok(
        if pattern.starts_with('%') && pattern.ends_with('%') && pattern.len() >= 2 {
            Predicate::StrContains {
                col: col_idx,
                needle: inner.to_string(),
            }
        } else if pattern.ends_with('%') {
            Predicate::StrStartsWith {
                col: col_idx,
                prefix: inner.to_string(),
            }
        } else if pattern.starts_with('%') {
            return Err(PlanError::new(
                PlanErrorKind::Unsupported,
                format!("LIKE pattern `{pattern}` (suffix match) is not supported"),
                span,
            ));
        } else {
            Predicate::StrEq {
                col: col_idx,
                value: pattern.to_string(),
            }
        },
    )
}

fn bind_in_list(expr: &Expr, list: &[Expr], ctx: &BindCtx, span: Span) -> Result<Predicate> {
    let all_strings = list.iter().all(|i| matches!(i.kind, ExprKind::Str(_)));
    if all_strings && !list.is_empty() {
        let c = char_column(expr, ctx)?;
        let values = list
            .iter()
            .map(|i| match &i.kind {
                ExprKind::Str(s) => s.clone(),
                _ => unreachable!("checked all_strings"),
            })
            .collect();
        return Ok(Predicate::StrIn { col: c, values });
    }
    // Numeric / date list: a disjunction of equalities.
    let x = bind_scalar(expr, ctx)?;
    let mut alts = Vec::new();
    for item in list {
        let v = bind_scalar(item, ctx)?;
        check_comparable(&x, &v, ctx, span)?;
        alts.push(cmp(x.clone(), CmpOp::Eq, v));
    }
    if alts.is_empty() {
        return Err(PlanError::new(PlanErrorKind::Parse, "empty IN list", span));
    }
    Ok(Predicate::Or(alts))
}

fn bind_comparison(
    e: &Expr,
    op: BinaryOp,
    left: &Expr,
    right: &Expr,
    ctx: &BindCtx,
) -> Result<Predicate> {
    // `char_col = 'literal'` (either side) lowers to the engine's string
    // predicates.
    let str_side = |a: &Expr, b: &Expr| -> Option<(Expr, String)> {
        if let ExprKind::Str(s) = &b.kind {
            if matches!(a.kind, ExprKind::Column { .. }) {
                return Some((a.clone(), s.clone()));
            }
        }
        None
    };
    if let Some((col_expr, value)) = str_side(left, right).or_else(|| str_side(right, left)) {
        if matches!(op, BinaryOp::Eq | BinaryOp::Ne) {
            // Only if the column really is a string; numeric = 'str' is a
            // type error reported below.
            if let ExprKind::Column { qualifier, name } = &col_expr.kind {
                let i = ctx
                    .scope
                    .resolve(qualifier.as_deref(), name, col_expr.span)?;
                if let DataType::Char(_) = ctx.scope.cols[i].dtype {
                    let p = Predicate::StrEq { col: i, value };
                    return Ok(if op == BinaryOp::Ne { p.negate() } else { p });
                }
            }
        }
        return Err(PlanError::new(
            PlanErrorKind::TypeMismatch,
            "strings support only = and <> comparisons",
            e.span,
        ));
    }
    let cmp_op = match op {
        BinaryOp::Eq => CmpOp::Eq,
        BinaryOp::Ne => CmpOp::Ne,
        BinaryOp::Lt => CmpOp::Lt,
        BinaryOp::Le => CmpOp::Le,
        BinaryOp::Gt => CmpOp::Gt,
        BinaryOp::Ge => CmpOp::Ge,
        _ => unreachable!("caller filtered"),
    };
    let l = bind_scalar(left, ctx)?;
    let r = bind_scalar(right, ctx)?;
    check_comparable(&l, &r, ctx, e.span)?;
    Ok(cmp(l, cmp_op, r))
}

// ---------------------------------------------------------------------------
// Aggregation and projection
// ---------------------------------------------------------------------------

/// Output-column name of a select item: alias, else column name, else the
/// aggregate function name, else a positional fallback.
fn item_out_name(expr: &Expr, alias: &Option<String>, idx: usize) -> String {
    if let Some(a) = alias {
        return a.clone();
    }
    match &expr.kind {
        ExprKind::Column { name, .. } => name.clone(),
        ExprKind::Agg { func, .. } => func.as_str().to_string(),
        _ => format!("col{idx}"),
    }
}

fn uniquify(name: String, taken: &[String]) -> String {
    if !taken.contains(&name) {
        return name;
    }
    let mut n = 2;
    loop {
        let cand = format!("{name}_{n}");
        if !taken.contains(&cand) {
            return cand;
        }
        n += 1;
    }
}

fn agg_func_of(name: AggFuncName) -> AggFunc {
    match name {
        AggFuncName::CountStar => AggFunc::CountStar,
        AggFuncName::Count => AggFunc::Count,
        AggFuncName::Sum => AggFunc::Sum,
        AggFuncName::Avg => AggFunc::Avg,
        AggFuncName::Min => AggFunc::Min,
        AggFuncName::Max => AggFunc::Max,
    }
}

/// Plan the grouped/aggregated tail of the query: optional pre-projection,
/// the aggregate itself, HAVING, and the final projection. Returns the plan
/// plus the output column names (for ORDER BY resolution).
fn bind_aggregate(
    query: &Select,
    acc: Logical,
    scope: &Scope,
    agg_calls: &[&Expr],
) -> Result<(Logical, Vec<String>)> {
    for item in &query.items {
        if let SelectItem::Wildcard { span } = item {
            return Err(PlanError::new(
                PlanErrorKind::Unsupported,
                "`*` cannot be combined with GROUP BY or aggregates",
                *span,
            ));
        }
    }
    // Resolve each GROUP BY expression to its source expression: an output
    // alias or a 1-based position refers back to the select item.
    let mut group_sources: Vec<Expr> = Vec::new();
    let mut group_aliases: Vec<Option<String>> = Vec::new();
    for g in &query.group_by {
        let (source, alias) = match &g.kind {
            ExprKind::Int(k) => {
                let idx = (*k as usize)
                    .checked_sub(1)
                    .filter(|i| *i < query.items.len());
                let Some(i) = idx else {
                    return Err(PlanError::new(
                        PlanErrorKind::UnknownColumn,
                        format!("GROUP BY position {k} is out of range"),
                        g.span,
                    ));
                };
                let SelectItem::Expr { expr, alias } = &query.items[i] else {
                    unreachable!("wildcards rejected above")
                };
                (expr.clone(), alias.clone())
            }
            ExprKind::Column {
                qualifier: None,
                name,
            } => {
                let aliased = query.items.iter().find_map(|it| match it {
                    SelectItem::Expr {
                        expr,
                        alias: Some(a),
                    } if a == name => Some((expr.clone(), Some(a.clone()))),
                    _ => None,
                });
                aliased.unwrap_or((g.clone(), None))
            }
            _ => (g.clone(), None),
        };
        if source.contains_agg() {
            return Err(PlanError::new(
                PlanErrorKind::TypeMismatch,
                "cannot GROUP BY an aggregate",
                g.span,
            ));
        }
        group_sources.push(source);
        group_aliases.push(alias);
    }

    let ctx = BindCtx::plain(scope);
    let mut group_bound = Vec::new();
    for (g, src) in query.group_by.iter().zip(&group_sources) {
        let b = bind_scalar(src, &ctx)?;
        let t = check_scalar_type(&b, &ctx, g.span)?;
        if !t.hashable() {
            return Err(PlanError::new(
                PlanErrorKind::TypeMismatch,
                format!("cannot group by a {} expression", t.name()),
                g.span,
            ));
        }
        group_bound.push(b);
    }

    // Bind the aggregate arguments over the accumulator scope.
    let mut arg_bound: Vec<Option<ScalarExpr>> = Vec::new();
    for a in agg_calls {
        let ExprKind::Agg { arg, .. } = &a.kind else {
            unreachable!("collect_aggs only yields Agg nodes")
        };
        arg_bound.push(match arg {
            Some(x) => Some(bind_scalar(x, &ctx)?),
            None => None,
        });
    }

    // If every group key is a bare column, aggregate the accumulator
    // directly; otherwise materialize keys and arguments in a pre-projection
    // (e.g. grouping by EXTRACT(YEAR FROM ...)).
    let all_bare = group_bound.iter().all(|e| e.as_col().is_some());
    let (agg_input, group_cols, agg_args, group_out_names) = if all_bare {
        let cols: Vec<usize> = group_bound.iter().map(|e| e.as_col().unwrap()).collect();
        let names: Vec<String> = cols.iter().map(|&c| scope.cols[c].name.clone()).collect();
        (acc, cols, arg_bound.clone(), names)
    } else {
        let mut projections = group_bound.clone();
        let mut names: Vec<String> = Vec::new();
        for (i, (src, alias)) in group_sources.iter().zip(&group_aliases).enumerate() {
            let name = alias.clone().unwrap_or_else(|| match &src.kind {
                ExprKind::Column { name, .. } => name.clone(),
                _ => format!("g{i}"),
            });
            names.push(uniquify(name, &names));
        }
        let mut args: Vec<Option<ScalarExpr>> = Vec::new();
        for (j, a) in arg_bound.iter().enumerate() {
            match a {
                Some(x) => {
                    args.push(Some(col(projections.len())));
                    projections.push(x.clone());
                    names.push(uniquify(format!("agg{j}"), &names));
                }
                None => args.push(None),
            }
        }
        let in_schema = acc.schema();
        let mut pairs = Vec::new();
        for (p, n) in projections.iter().zip(&names) {
            let t = p.output_type(&in_schema).map_err(|e| {
                PlanError::new(PlanErrorKind::TypeMismatch, e.to_string(), query.span)
            })?;
            pairs.push((n.clone(), t));
        }
        let schema = Schema::from_pairs(
            &pairs
                .iter()
                .map(|(n, t)| (n.as_str(), *t))
                .collect::<Vec<_>>(),
        );
        let group_names = names[..group_bound.len()].to_vec();
        let pre = Logical::Select {
            input: Box::new(acc),
            predicate: Predicate::True,
            projections,
            schema,
        };
        let cols: Vec<usize> = (0..group_bound.len()).collect();
        (pre, cols, args, group_names)
    };

    // Aggregate output names: select-list aliases when the item is exactly
    // the aggregate call, the function name otherwise.
    let mut taken = group_out_names.clone();
    let mut agg_names = Vec::new();
    for a in agg_calls {
        let alias = query.items.iter().find_map(|it| match it {
            SelectItem::Expr {
                expr,
                alias: Some(al),
            } if expr.same_shape(a) => Some(al.clone()),
            _ => None,
        });
        let ExprKind::Agg { func, .. } = &a.kind else {
            unreachable!()
        };
        let name = uniquify(alias.unwrap_or_else(|| func.as_str().to_string()), &taken);
        taken.push(name.clone());
        agg_names.push(name);
    }

    // Build the AggSpecs and the aggregate's output schema.
    let in_schema = agg_input.schema();
    let mut aggs = Vec::new();
    let mut pairs: Vec<(String, DataType)> = group_cols
        .iter()
        .zip(&group_out_names)
        .map(|(&c, n)| (n.clone(), in_schema.dtype(c)))
        .collect();
    for ((a, arg), name) in agg_calls.iter().zip(agg_args).zip(&agg_names) {
        let ExprKind::Agg { func, .. } = &a.kind else {
            unreachable!()
        };
        let spec = AggSpec {
            func: agg_func_of(*func),
            arg,
        };
        let t = spec
            .output_type(&in_schema)
            .map_err(|e| PlanError::new(PlanErrorKind::TypeMismatch, e.to_string(), a.span))?;
        pairs.push((name.clone(), t));
        aggs.push(spec);
    }
    let agg_schema = Schema::from_pairs(
        &pairs
            .iter()
            .map(|(n, t)| (n.as_str(), *t))
            .collect::<Vec<_>>(),
    );
    let mut plan = Logical::Aggregate {
        input: Box::new(agg_input),
        group_by: group_cols,
        aggs,
        agg_names: agg_names.clone(),
        schema: agg_schema.clone(),
    };

    // HAVING and the select list bind against the aggregate's output, with
    // group expressions and aggregate calls rewritten positionally.
    let post_scope = Scope::from_schema(&agg_schema, None);
    let post_ctx = BindCtx {
        scope: &post_scope,
        agg: Some(AggCtx {
            group_sources: &group_sources,
            aggs: agg_calls,
        }),
    };
    if let Some(h) = &query.having {
        let pred = bind_pred(h, &post_ctx)?;
        plan = Logical::Filter {
            input: Box::new(plan),
            predicate: pred,
        };
    }

    let mut projections = Vec::new();
    let mut out_names = Vec::new();
    for (i, item) in query.items.iter().enumerate() {
        let SelectItem::Expr { expr, alias } = item else {
            unreachable!("wildcards rejected above")
        };
        projections.push(bind_scalar(expr, &post_ctx)?);
        out_names.push(uniquify(item_out_name(expr, alias, i), &out_names));
    }
    let identity = projections.len() == agg_schema.len()
        && projections
            .iter()
            .enumerate()
            .all(|(i, p)| p.as_col() == Some(i))
        && out_names
            .iter()
            .enumerate()
            .all(|(i, n)| agg_schema.column(i).name == *n);
    if !identity {
        let mut pairs = Vec::new();
        for ((p, n), item) in projections.iter().zip(&out_names).zip(&query.items) {
            let span = match item {
                SelectItem::Expr { expr, .. } => expr.span,
                SelectItem::Wildcard { span } => *span,
            };
            let t = p
                .output_type(&agg_schema)
                .map_err(|e| PlanError::new(PlanErrorKind::TypeMismatch, e.to_string(), span))?;
            pairs.push((n.clone(), t));
        }
        let schema = Schema::from_pairs(
            &pairs
                .iter()
                .map(|(n, t)| (n.as_str(), *t))
                .collect::<Vec<_>>(),
        );
        plan = Logical::Select {
            input: Box::new(plan),
            predicate: Predicate::True,
            projections,
            schema,
        };
    }
    Ok((plan, out_names))
}

/// Plan the ungrouped tail: the final projection over the join accumulator.
fn bind_projection(query: &Select, acc: Logical, scope: &Scope) -> Result<(Logical, Vec<String>)> {
    let ctx = BindCtx::plain(scope);
    let mut projections = Vec::new();
    let mut out_names = Vec::new();
    let mut spans = Vec::new();
    for (i, item) in query.items.iter().enumerate() {
        match item {
            SelectItem::Wildcard { span } => {
                for (c, sc) in scope.cols.iter().enumerate() {
                    projections.push(col(c));
                    out_names.push(uniquify(sc.name.clone(), &out_names));
                    spans.push(*span);
                }
            }
            SelectItem::Expr { expr, alias } => {
                projections.push(bind_scalar(expr, &ctx)?);
                out_names.push(uniquify(item_out_name(expr, alias, i), &out_names));
                spans.push(expr.span);
            }
        }
    }
    let in_schema = acc.schema();
    let identity = projections.len() == in_schema.len()
        && projections
            .iter()
            .enumerate()
            .all(|(i, p)| p.as_col() == Some(i))
        && out_names
            .iter()
            .enumerate()
            .all(|(i, n)| in_schema.column(i).name == *n);
    if identity {
        return Ok((acc, out_names));
    }
    let mut pairs = Vec::new();
    for ((p, n), span) in projections.iter().zip(&out_names).zip(&spans) {
        let t = p
            .output_type(&in_schema)
            .map_err(|e| PlanError::new(PlanErrorKind::TypeMismatch, e.to_string(), *span))?;
        pairs.push((n.clone(), t));
    }
    let schema = Schema::from_pairs(
        &pairs
            .iter()
            .map(|(n, t)| (n.as_str(), *t))
            .collect::<Vec<_>>(),
    );
    let plan = Logical::Select {
        input: Box::new(acc),
        predicate: Predicate::True,
        projections,
        schema,
    };
    Ok((plan, out_names))
}

/// Resolve one ORDER BY key against the final output: by name/alias, by
/// 1-based position, or structurally against a select item.
fn resolve_order_key(
    expr: &Expr,
    schema: &Schema,
    out_names: &[String],
    query: &Select,
) -> Result<usize> {
    match &expr.kind {
        ExprKind::Int(k) => {
            let idx = (*k as usize).checked_sub(1).filter(|i| *i < schema.len());
            idx.ok_or_else(|| {
                PlanError::new(
                    PlanErrorKind::UnknownColumn,
                    format!("ORDER BY position {k} is out of range"),
                    expr.span,
                )
            })
        }
        ExprKind::Column {
            qualifier: None,
            name,
        } => out_names.iter().position(|n| n == name).ok_or_else(|| {
            PlanError::new(
                PlanErrorKind::UnknownColumn,
                format!("ORDER BY column `{name}` is not in the output"),
                expr.span,
            )
        }),
        _ => {
            // Structural match against the select items (position == output
            // column only when no wildcard expanded the list).
            if query.items.len() == out_names.len() {
                for (i, item) in query.items.iter().enumerate() {
                    if let SelectItem::Expr { expr: e, .. } = item {
                        if e.same_shape(expr) {
                            return Ok(i);
                        }
                    }
                }
            }
            Err(PlanError::new(
                PlanErrorKind::Unsupported,
                "ORDER BY must name an output column, a 1-based position, \
                 or repeat a select-list expression",
                expr.span,
            ))
        }
    }
}

/// Both sides must be numbers, or both dates.
fn check_comparable(l: &ScalarExpr, r: &ScalarExpr, ctx: &BindCtx, span: Span) -> Result<()> {
    let schema = ctx.scope.schema();
    let lt = l
        .output_type(&schema)
        .map_err(|e| PlanError::new(PlanErrorKind::TypeMismatch, e.to_string(), span))?;
    let rt = r
        .output_type(&schema)
        .map_err(|e| PlanError::new(PlanErrorKind::TypeMismatch, e.to_string(), span))?;
    let numeric = |t: DataType| matches!(t, DataType::Int32 | DataType::Int64 | DataType::Float64);
    let ok = (numeric(lt) && numeric(rt)) || (lt == DataType::Date && rt == DataType::Date);
    if ok {
        Ok(())
    } else {
        Err(PlanError::new(
            PlanErrorKind::TypeMismatch,
            format!("cannot compare {} with {}", lt.name(), rt.name()),
            span,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use uot_storage::{BlockFormat, TableBuilder};

    fn catalog() -> Arc<Catalog> {
        let c = Catalog::new();
        let s = Schema::from_pairs(&[
            ("k", DataType::Int32),
            ("price", DataType::Float64),
            ("tag", DataType::Char(4)),
            ("d", DataType::Date),
        ]);
        let mut tb = TableBuilder::new("fact", s, BlockFormat::Column, 1024);
        for i in 0..20 {
            tb.append(&[
                Value::I32(i % 5),
                Value::F64(i as f64),
                Value::Str(format!("t{}", i % 3)),
                Value::Date(100 + i),
            ])
            .unwrap();
        }
        c.register(tb.finish()).unwrap();
        let s = Schema::from_pairs(&[("k", DataType::Int32), ("name", DataType::Char(8))]);
        let mut tb = TableBuilder::new("dim", s, BlockFormat::Column, 1024);
        for i in 0..5 {
            tb.append(&[Value::I32(i), Value::Str(format!("n{i}"))])
                .unwrap();
        }
        c.register(tb.finish()).unwrap();
        c
    }

    fn plan_of(sql: &str) -> Result<Logical> {
        bind(&parse(sql).unwrap(), &catalog())
    }

    #[test]
    fn binds_filter_projection() {
        let p = plan_of("SELECT k, price FROM fact WHERE price < 10.0").unwrap();
        let schema = p.schema();
        assert_eq!(schema.len(), 2);
        assert_eq!(schema.column(0).name, "k");
        assert_eq!(schema.dtype(1), DataType::Float64);
        assert!(matches!(p, Logical::Select { .. }));
    }

    #[test]
    fn binds_join_pipeline() {
        let p = plan_of(
            "SELECT name, sum(price) AS total FROM fact, dim \
             WHERE fact.k = dim.k AND price > 2.0 GROUP BY name",
        )
        .unwrap();
        let schema = p.schema();
        assert_eq!(schema.column(0).name, "name");
        assert_eq!(schema.column(1).name, "total");
        // aggregate over a join over two (filtered) scans
        assert!(p.node_count() >= 4);
    }

    #[test]
    fn semi_join_from_in_subquery() {
        let p =
            plan_of("SELECT k FROM dim WHERE k IN (SELECT k FROM fact WHERE price > 3.0)").unwrap();
        fn has_semi(l: &Logical) -> bool {
            match l {
                Logical::Join {
                    kind: JoinKind::Semi,
                    ..
                } => true,
                Logical::Join { probe, build, .. } => has_semi(probe) || has_semi(build),
                Logical::Select { input, .. }
                | Logical::Filter { input, .. }
                | Logical::Aggregate { input, .. }
                | Logical::Sort { input, .. }
                | Logical::Limit { input, .. } => has_semi(input),
                Logical::Scan { .. } => false,
            }
        }
        assert!(has_semi(&p));
    }

    #[test]
    fn unknown_table_and_column_are_spanned_errors() {
        let e = plan_of("SELECT x FROM nope").unwrap_err();
        assert_eq!(e.kind, PlanErrorKind::UnknownTable);
        assert!(e.span.is_some());
        let e = plan_of("SELECT missing FROM fact").unwrap_err();
        assert_eq!(e.kind, PlanErrorKind::UnknownColumn);
        assert!(e.span.is_some());
        let e = plan_of("SELECT k FROM fact, dim WHERE fact.k = dim.k").unwrap_err();
        assert_eq!(e.kind, PlanErrorKind::AmbiguousColumn);
    }

    #[test]
    fn type_errors_are_spanned() {
        // float join key cannot be hashed
        let e = plan_of("SELECT name FROM fact, dim WHERE price = dim.k").unwrap_err();
        assert_eq!(e.kind, PlanErrorKind::TypeMismatch);
        assert!(e.span.is_some());
        // date compared with number
        let e = plan_of("SELECT k FROM fact WHERE d < 5").unwrap_err();
        assert_eq!(e.kind, PlanErrorKind::TypeMismatch);
        // string predicate on numeric column
        let e = plan_of("SELECT k FROM fact WHERE k = 'x'").unwrap_err();
        assert_eq!(e.kind, PlanErrorKind::TypeMismatch);
        // arithmetic on strings
        let e = plan_of("SELECT tag + 1 FROM fact").unwrap_err();
        assert_eq!(e.kind, PlanErrorKind::TypeMismatch);
        // aggregates in WHERE
        let e = plan_of("SELECT k FROM fact WHERE sum(price) > 1.0").unwrap_err();
        assert_eq!(e.kind, PlanErrorKind::TypeMismatch);
    }

    #[test]
    fn cross_join_rejected() {
        let e = plan_of("SELECT fact.k FROM fact, dim").unwrap_err();
        assert_eq!(e.kind, PlanErrorKind::Unsupported);
        assert!(e.message.contains("equi-join"));
    }

    #[test]
    fn group_by_alias_and_position() {
        for sql in [
            "SELECT EXTRACT(YEAR FROM d) AS y, count(*) AS n FROM fact GROUP BY y",
            "SELECT EXTRACT(YEAR FROM d) AS y, count(*) AS n FROM fact GROUP BY 1",
        ] {
            let p = plan_of(sql).unwrap();
            let s = p.schema();
            assert_eq!(s.column(0).name, "y");
            assert_eq!(s.dtype(0), DataType::Int32);
            assert_eq!(s.column(1).name, "n");
        }
    }

    #[test]
    fn order_by_and_limit_shapes() {
        let p = plan_of("SELECT k, price FROM fact ORDER BY price DESC, 1 LIMIT 3").unwrap();
        let Logical::Sort { keys, limit, .. } = &p else {
            panic!("expected sort, got {p:?}")
        };
        assert_eq!(limit, &Some(3));
        assert_eq!(keys[0], SortSpec { col: 1, desc: true });
        assert_eq!(
            keys[1],
            SortSpec {
                col: 0,
                desc: false
            }
        );
        let p = plan_of("SELECT k FROM fact LIMIT 7").unwrap();
        assert!(matches!(p, Logical::Limit { n: 7, .. }));
    }

    #[test]
    fn string_predicates_lower_to_engine_forms() {
        let p =
            plan_of("SELECT k FROM fact WHERE tag = 't1' OR tag LIKE 't%' OR tag IN ('a', 'b')")
                .unwrap();
        let Logical::Select { predicate, .. } = &p else {
            panic!()
        };
        let text = format!("{predicate:?}");
        assert!(text.contains("StrEq"), "{text}");
        assert!(text.contains("StrStartsWith"), "{text}");
        assert!(text.contains("StrIn"), "{text}");
    }

    #[test]
    fn bare_scan_gets_wrapped() {
        let p = plan_of("SELECT * FROM dim").unwrap();
        assert!(matches!(p, Logical::Select { .. }));
        assert_eq!(p.schema().len(), 2);
    }
}
