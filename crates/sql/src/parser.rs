//! Recursive-descent parser: tokens → [`Select`] AST.
//!
//! Precedence, loosest to tightest: `OR`, `AND`, `NOT`, comparisons
//! (`= <> < <= > >=`, `BETWEEN`, `IN`, `LIKE`), `+ -`, `* /`, unary minus,
//! primaries. Arithmetic is left-associative, which fixes the evaluation
//! (and float-summation) order: `a * (1 - d) * (1 + t)` parses as
//! `(a * (1 - d)) * (1 + t)`.

use crate::ast::{
    AggFuncName, BinaryOp, Expr, ExprKind, OrderItem, Select, SelectItem, TableRef, TableSource,
};
use crate::error::{PlanError, PlanErrorKind, Result, Span};
use crate::lexer::{lex, Sym, Tok, Token};
use uot_storage::date_from_ymd;

/// Parse one SELECT statement (an optional trailing `;` is allowed).
pub fn parse(sql: &str) -> Result<Select> {
    let tokens = lex(sql)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        eof: sql.len(),
    };
    let select = p.parse_select()?;
    p.eat_sym(Sym::Semi);
    if let Some(t) = p.peek() {
        return Err(PlanError::new(
            PlanErrorKind::Parse,
            format!("unexpected trailing input `{}`", p.describe(&t.tok)),
            t.span,
        ));
    }
    Ok(select)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    eof: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn here(&self) -> Span {
        self.peek()
            .map(|t| t.span)
            .unwrap_or(Span::new(self.eof, self.eof))
    }

    fn describe(&self, tok: &Tok) -> String {
        match tok {
            Tok::Ident(s) => s.clone(),
            Tok::Number(n) => n.clone(),
            Tok::Str(s) => format!("'{s}'"),
            Tok::Sym(s) => s.as_str().to_string(),
        }
    }

    fn err_here(&self, message: impl Into<String>) -> PlanError {
        PlanError::new(PlanErrorKind::Parse, message, self.here())
    }

    /// Is the next token the keyword `kw` (case-insensitive)?
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token { tok: Tok::Ident(s), .. }) if s == kw)
    }

    /// Consume the keyword `kw` if present; return whether it was.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Require the keyword `kw`.
    fn expect_kw(&mut self, kw: &str) -> Result<Span> {
        if self.at_kw(kw) {
            let span = self.here();
            self.pos += 1;
            Ok(span)
        } else {
            Err(self.err_here(format!(
                "expected `{}`{}",
                kw.to_uppercase(),
                match self.peek() {
                    Some(t) => format!(", found `{}`", self.describe(&t.tok)),
                    None => ", found end of input".into(),
                }
            )))
        }
    }

    fn at_sym(&self, sym: Sym) -> bool {
        matches!(self.peek(), Some(Token { tok: Tok::Sym(s), .. }) if *s == sym)
    }

    fn eat_sym(&mut self, sym: Sym) -> bool {
        if self.at_sym(sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: Sym) -> Result<Span> {
        if self.at_sym(sym) {
            let span = self.here();
            self.pos += 1;
            Ok(span)
        } else {
            Err(self.err_here(format!(
                "expected `{}`{}",
                sym.as_str(),
                match self.peek() {
                    Some(t) => format!(", found `{}`", self.describe(&t.tok)),
                    None => ", found end of input".into(),
                }
            )))
        }
    }

    /// An identifier that is not one of the clause keywords.
    fn ident(&mut self, what: &str) -> Result<(String, Span)> {
        match self.peek() {
            Some(Token {
                tok: Tok::Ident(s),
                span,
            }) if !is_reserved(s) => {
                let out = (s.clone(), *span);
                self.pos += 1;
                Ok(out)
            }
            Some(t) => {
                let msg = format!("expected {what}, found `{}`", self.describe(&t.tok));
                Err(self.err_here(msg))
            }
            None => Err(self.err_here(format!("expected {what}, found end of input"))),
        }
    }

    fn parse_select(&mut self) -> Result<Select> {
        let start = self.expect_kw("select")?;
        let mut items = Vec::new();
        loop {
            if self.at_sym(Sym::Star) {
                let span = self.here();
                self.pos += 1;
                items.push(SelectItem::Wildcard { span });
            } else {
                let expr = self.parse_expr()?;
                let alias = if self.eat_kw("as") {
                    Some(self.ident("an alias after AS")?.0)
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        let mut from = Vec::new();
        if self.eat_kw("from") {
            loop {
                from.push(self.parse_table_ref()?);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
        }
        let where_clause = if self.eat_kw("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw("having") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.parse_expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            let span = self.here();
            match self.bump() {
                Some(Token {
                    tok: Tok::Number(n),
                    ..
                }) => Some(n.parse::<usize>().map_err(|_| {
                    PlanError::new(
                        PlanErrorKind::Parse,
                        "LIMIT requires a non-negative integer",
                        span,
                    )
                })?),
                _ => {
                    return Err(PlanError::new(
                        PlanErrorKind::Parse,
                        "LIMIT requires a non-negative integer",
                        span,
                    ))
                }
            }
        } else {
            None
        };
        let end = self
            .tokens
            .get(self.pos.saturating_sub(1))
            .map(|t| t.span)
            .unwrap_or(start);
        Ok(Select {
            items,
            from,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
            span: start.to(end),
        })
    }

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        let start = self.here();
        if self.eat_sym(Sym::LParen) {
            let sub = self.parse_select()?;
            let close = self.expect_sym(Sym::RParen)?;
            self.eat_kw("as");
            let alias = if matches!(self.peek(), Some(Token { tok: Tok::Ident(s), .. }) if !is_reserved(s))
            {
                Some(self.ident("an alias")?.0)
            } else {
                None
            };
            Ok(TableRef {
                source: TableSource::Derived(Box::new(sub)),
                alias,
                span: start.to(close),
            })
        } else {
            let (name, span) = self.ident("a table name")?;
            let mut end = span;
            self.eat_kw("as");
            let alias = if matches!(self.peek(), Some(Token { tok: Tok::Ident(s), .. }) if !is_reserved(s))
            {
                let (a, s) = self.ident("an alias")?;
                end = s;
                Some(a)
            } else {
                None
            };
            Ok(TableRef {
                source: TableSource::Named(name),
                alias,
                span: start.to(end),
            })
        }
    }

    fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_kw("or") {
            let right = self.parse_and()?;
            let span = left.span.to(right.span);
            left = Expr::new(
                ExprKind::Binary {
                    op: BinaryOp::Or,
                    left: Box::new(left),
                    right: Box::new(right),
                },
                span,
            );
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_kw("and") {
            let right = self.parse_not()?;
            let span = left.span.to(right.span);
            left = Expr::new(
                ExprKind::Binary {
                    op: BinaryOp::And,
                    left: Box::new(left),
                    right: Box::new(right),
                },
                span,
            );
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.at_kw("not") {
            let start = self.here();
            self.pos += 1;
            let inner = self.parse_not()?;
            let span = start.to(inner.span);
            return Ok(Expr::new(ExprKind::Not(Box::new(inner)), span));
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        let left = self.parse_additive()?;
        // `NOT` here can only begin `NOT BETWEEN` / `NOT IN` / `NOT LIKE`.
        let negated = if self.at_kw("not")
            && matches!(self.peek2(), Some(Token { tok: Tok::Ident(s), .. })
                if s == "between" || s == "in" || s == "like")
        {
            self.pos += 1;
            true
        } else {
            false
        };
        if self.eat_kw("between") {
            let lo = self.parse_additive()?;
            self.expect_kw("and")?;
            let hi = self.parse_additive()?;
            let span = left.span.to(hi.span);
            return Ok(Expr::new(
                ExprKind::Between {
                    expr: Box::new(left),
                    lo: Box::new(lo),
                    hi: Box::new(hi),
                    negated,
                },
                span,
            ));
        }
        if self.eat_kw("in") {
            self.expect_sym(Sym::LParen)?;
            if self.at_kw("select") {
                let sub = self.parse_select()?;
                let close = self.expect_sym(Sym::RParen)?;
                let span = left.span.to(close);
                return Ok(Expr::new(
                    ExprKind::InSelect {
                        expr: Box::new(left),
                        query: Box::new(sub),
                        negated,
                    },
                    span,
                ));
            }
            let mut list = Vec::new();
            loop {
                list.push(self.parse_expr()?);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
            let close = self.expect_sym(Sym::RParen)?;
            let span = left.span.to(close);
            return Ok(Expr::new(
                ExprKind::InList {
                    expr: Box::new(left),
                    list,
                    negated,
                },
                span,
            ));
        }
        if self.eat_kw("like") {
            let span_start = left.span;
            match self.bump() {
                Some(Token {
                    tok: Tok::Str(pattern),
                    span,
                }) => {
                    return Ok(Expr::new(
                        ExprKind::Like {
                            expr: Box::new(left),
                            pattern,
                            negated,
                        },
                        span_start.to(span),
                    ));
                }
                _ => return Err(self.err_here("LIKE requires a string literal pattern")),
            }
        }
        if negated {
            return Err(self.err_here("expected BETWEEN, IN or LIKE after NOT"));
        }
        let op = match self.peek() {
            Some(Token {
                tok: Tok::Sym(Sym::Eq),
                ..
            }) => Some(BinaryOp::Eq),
            Some(Token {
                tok: Tok::Sym(Sym::Ne),
                ..
            }) => Some(BinaryOp::Ne),
            Some(Token {
                tok: Tok::Sym(Sym::Lt),
                ..
            }) => Some(BinaryOp::Lt),
            Some(Token {
                tok: Tok::Sym(Sym::Le),
                ..
            }) => Some(BinaryOp::Le),
            Some(Token {
                tok: Tok::Sym(Sym::Gt),
                ..
            }) => Some(BinaryOp::Gt),
            Some(Token {
                tok: Tok::Sym(Sym::Ge),
                ..
            }) => Some(BinaryOp::Ge),
            _ => None,
        };
        let Some(op) = op else {
            return Ok(left);
        };
        self.pos += 1;
        let right = self.parse_additive()?;
        let span = left.span.to(right.span);
        Ok(Expr::new(
            ExprKind::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            },
            span,
        ))
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = if self.at_sym(Sym::Plus) {
                BinaryOp::Add
            } else if self.at_sym(Sym::Minus) {
                BinaryOp::Sub
            } else {
                break;
            };
            self.pos += 1;
            let right = self.parse_multiplicative()?;
            let span = left.span.to(right.span);
            left = Expr::new(
                ExprKind::Binary {
                    op,
                    left: Box::new(left),
                    right: Box::new(right),
                },
                span,
            );
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = if self.at_sym(Sym::Star) {
                BinaryOp::Mul
            } else if self.at_sym(Sym::Slash) {
                BinaryOp::Div
            } else {
                break;
            };
            self.pos += 1;
            let right = self.parse_unary()?;
            let span = left.span.to(right.span);
            left = Expr::new(
                ExprKind::Binary {
                    op,
                    left: Box::new(left),
                    right: Box::new(right),
                },
                span,
            );
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.at_sym(Sym::Minus) {
            let start = self.here();
            self.pos += 1;
            let inner = self.parse_unary()?;
            let span = start.to(inner.span);
            // Fold negation into numeric literals so `-3` is a literal, not
            // an expression tree.
            return Ok(match inner.kind {
                ExprKind::Int(v) => Expr::new(ExprKind::Int(-v), span),
                ExprKind::Float(v) => Expr::new(ExprKind::Float(-v), span),
                _ => Expr::new(ExprKind::Neg(Box::new(inner)), span),
            });
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        let Some(t) = self.peek().cloned() else {
            return Err(self.err_here("expected an expression, found end of input"));
        };
        match t.tok {
            Tok::Sym(Sym::LParen) => {
                self.pos += 1;
                let inner = self.parse_expr()?;
                self.expect_sym(Sym::RParen)?;
                Ok(inner)
            }
            Tok::Number(n) => {
                self.pos += 1;
                if n.contains('.') || n.contains('e') || n.contains('E') {
                    let v: f64 = n.parse().map_err(|_| {
                        PlanError::new(PlanErrorKind::Parse, format!("bad number `{n}`"), t.span)
                    })?;
                    Ok(Expr::new(ExprKind::Float(v), t.span))
                } else {
                    let v: i64 = n.parse().map_err(|_| {
                        PlanError::new(PlanErrorKind::Parse, format!("bad number `{n}`"), t.span)
                    })?;
                    Ok(Expr::new(ExprKind::Int(v), t.span))
                }
            }
            Tok::Str(s) => {
                self.pos += 1;
                Ok(Expr::new(ExprKind::Str(s), t.span))
            }
            Tok::Ident(word) => match word.as_str() {
                "date" => {
                    self.pos += 1;
                    match self.bump() {
                        Some(Token {
                            tok: Tok::Str(text),
                            span,
                        }) => {
                            let full = t.span.to(span);
                            let days = parse_date(&text).ok_or_else(|| {
                                PlanError::new(
                                    PlanErrorKind::Parse,
                                    format!("bad date literal `{text}` (expected 'yyyy-mm-dd')"),
                                    span,
                                )
                            })?;
                            Ok(Expr::new(ExprKind::Date { days, text }, full))
                        }
                        _ => Err(self.err_here("DATE requires a 'yyyy-mm-dd' string literal")),
                    }
                }
                "case" => {
                    self.pos += 1;
                    self.expect_kw("when")?;
                    let when = self.parse_expr()?;
                    self.expect_kw("then")?;
                    let then = self.parse_expr()?;
                    self.expect_kw("else")?;
                    let els = self.parse_expr()?;
                    let end = self.expect_kw("end")?;
                    Ok(Expr::new(
                        ExprKind::Case {
                            when: Box::new(when),
                            then: Box::new(then),
                            els: Box::new(els),
                        },
                        t.span.to(end),
                    ))
                }
                "extract" => {
                    self.pos += 1;
                    self.expect_sym(Sym::LParen)?;
                    self.expect_kw("year")?;
                    self.expect_kw("from")?;
                    let arg = self.parse_expr()?;
                    let end = self.expect_sym(Sym::RParen)?;
                    Ok(Expr::new(
                        ExprKind::ExtractYear(Box::new(arg)),
                        t.span.to(end),
                    ))
                }
                "count" | "sum" | "avg" | "min" | "max"
                    if matches!(
                        self.peek2(),
                        Some(Token {
                            tok: Tok::Sym(Sym::LParen),
                            ..
                        })
                    ) =>
                {
                    self.pos += 2;
                    if word == "count" && self.at_sym(Sym::Star) {
                        self.pos += 1;
                        let end = self.expect_sym(Sym::RParen)?;
                        return Ok(Expr::new(
                            ExprKind::Agg {
                                func: AggFuncName::CountStar,
                                arg: None,
                            },
                            t.span.to(end),
                        ));
                    }
                    let arg = self.parse_expr()?;
                    let end = self.expect_sym(Sym::RParen)?;
                    let func = match word.as_str() {
                        "count" => AggFuncName::Count,
                        "sum" => AggFuncName::Sum,
                        "avg" => AggFuncName::Avg,
                        "min" => AggFuncName::Min,
                        _ => AggFuncName::Max,
                    };
                    Ok(Expr::new(
                        ExprKind::Agg {
                            func,
                            arg: Some(Box::new(arg)),
                        },
                        t.span.to(end),
                    ))
                }
                _ if is_reserved(&word) => {
                    Err(self.err_here(format!("expected an expression, found keyword `{word}`")))
                }
                _ => {
                    self.pos += 1;
                    // Qualified column: `alias.column`.
                    if self.at_sym(Sym::Dot) {
                        self.pos += 1;
                        let (name, nspan) = self.ident("a column name after `.`")?;
                        return Ok(Expr::new(
                            ExprKind::Column {
                                qualifier: Some(word),
                                name,
                            },
                            t.span.to(nspan),
                        ));
                    }
                    Ok(Expr::new(
                        ExprKind::Column {
                            qualifier: None,
                            name: word,
                        },
                        t.span,
                    ))
                }
            },
            Tok::Sym(s) => Err(PlanError::new(
                PlanErrorKind::Parse,
                format!("expected an expression, found `{}`", s.as_str()),
                t.span,
            )),
        }
    }
}

/// Keywords that cannot double as identifiers/aliases in this dialect.
fn is_reserved(word: &str) -> bool {
    matches!(
        word,
        "select"
            | "from"
            | "where"
            | "group"
            | "by"
            | "having"
            | "order"
            | "limit"
            | "and"
            | "or"
            | "not"
            | "in"
            | "between"
            | "like"
            | "as"
            | "case"
            | "when"
            | "then"
            | "else"
            | "end"
            | "asc"
            | "desc"
            | "date"
            | "extract"
    )
}

/// `'yyyy-mm-dd'` → engine day number (the same encoding as
/// [`uot_storage::date_from_ymd`]).
fn parse_date(text: &str) -> Option<i32> {
    let mut parts = text.split('-');
    let y: i32 = parts.next()?.parse().ok()?;
    let m: u32 = parts.next()?.parse().ok()?;
    let d: u32 = parts.next()?.parse().ok()?;
    if parts.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    Some(date_from_ymd(y, m, d))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_statement() {
        let q = parse(
            "SELECT l_returnflag, sum(l_extendedprice * (1 - l_discount)) AS revenue \
             FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' \
             GROUP BY l_returnflag HAVING count(*) > 3 \
             ORDER BY revenue DESC LIMIT 10;",
        )
        .unwrap();
        assert_eq!(q.items.len(), 2);
        assert_eq!(q.from.len(), 1);
        assert!(q.where_clause.is_some());
        assert_eq!(q.group_by.len(), 1);
        assert!(q.having.is_some());
        assert_eq!(q.order_by.len(), 1);
        assert!(q.order_by[0].desc);
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn arithmetic_is_left_associative() {
        let q = parse("SELECT a * b * c FROM t").unwrap();
        let SelectItem::Expr { expr, .. } = &q.items[0] else {
            panic!("expected expr")
        };
        // (a * b) * c
        let ExprKind::Binary {
            op: BinaryOp::Mul,
            left,
            ..
        } = &expr.kind
        else {
            panic!("expected mul, got {expr:?}")
        };
        assert!(matches!(
            left.kind,
            ExprKind::Binary {
                op: BinaryOp::Mul,
                ..
            }
        ));
    }

    #[test]
    fn precedence_and_or_cmp() {
        let q = parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        let w = q.where_clause.unwrap();
        // OR at the top, AND underneath on the right.
        let ExprKind::Binary {
            op: BinaryOp::Or,
            right,
            ..
        } = &w.kind
        else {
            panic!("expected OR at root, got {w:?}")
        };
        assert!(matches!(
            right.kind,
            ExprKind::Binary {
                op: BinaryOp::And,
                ..
            }
        ));
    }

    #[test]
    fn derived_tables_and_subqueries() {
        let q = parse(
            "SELECT x FROM (SELECT a AS x FROM t WHERE a > 0) s \
             WHERE x IN (SELECT b FROM u) AND x NOT IN (1, 2)",
        )
        .unwrap();
        assert!(matches!(q.from[0].source, TableSource::Derived(_)));
        assert_eq!(q.from[0].alias.as_deref(), Some("s"));
    }

    #[test]
    fn round_trips_through_display() {
        let texts = [
            "SELECT a, b + 1 AS c FROM t WHERE a < 10 ORDER BY c DESC LIMIT 5",
            "SELECT sum(CASE WHEN p LIKE 'PROMO%' THEN e ELSE 0.0 END) AS s FROM t",
            "SELECT * FROM t WHERE d BETWEEN DATE '1994-01-01' AND DATE '1994-12-31'",
            "SELECT n.x FROM t n, u WHERE n.x = u.y AND u.z IN ('A', 'B')",
            "SELECT EXTRACT(YEAR FROM d) AS y, count(*) FROM t GROUP BY y",
            "SELECT a FROM t WHERE NOT (a = 1 OR a = 2)",
            "SELECT a - -3 AS k, a * (1 - b) * (1 + c) FROM t",
        ];
        for sql in texts {
            let once = parse(sql).unwrap();
            let printed = once.to_string();
            let twice = parse(&printed).unwrap_or_else(|e| panic!("reparse `{printed}`: {e}"));
            assert!(
                printed == twice.to_string(),
                "round-trip mismatch:\n  {printed}\n  {twice}"
            );
        }
    }

    #[test]
    fn errors_not_panics_with_spans() {
        for bad in [
            "",
            "SELECT",
            "SELECT FROM t",
            "SELECT a FROM",
            "SELECT a FROM t WHERE",
            "SELECT a FROM t GROUP",
            "SELECT a FROM t LIMIT x",
            "SELECT a b c FROM t",
            "SELECT (a FROM t",
            "SELECT a FROM t WHERE a LIKE 5",
            "SELECT a FROM t WHERE a NOT 5",
            "SELECT a FROM t WHERE a IN (",
            "SELECT CASE WHEN a THEN 1 END FROM t",
            "SELECT a FROM t WHERE d = DATE 'nope'",
        ] {
            let e = parse(bad).unwrap_err();
            assert!(e.span.is_some(), "`{bad}` produced spanless {e}");
        }
    }

    #[test]
    fn date_literals_match_engine_encoding() {
        let q = parse("SELECT * FROM t WHERE d < DATE '1998-09-02'").unwrap();
        let w = q.where_clause.unwrap();
        let ExprKind::Binary { right, .. } = w.kind else {
            panic!()
        };
        let ExprKind::Date { days, .. } = right.kind else {
            panic!()
        };
        assert_eq!(days, date_from_ymd(1998, 9, 2));
    }
}
