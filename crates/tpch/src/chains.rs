//! The select → probe operator chains of Figs. 5, 6, 9 and 10.
//!
//! The paper's microbenchmarks isolate "key deep operator chains
//! (select → probe) from the TPC-H queries" and time the first consumer
//! operator (the probe) per task. Each [`ChainSpec`] is a standalone plan:
//! a hash build (the pipeline's prerequisite), the select producer, and the
//! probe consumer as the sink.

use crate::dbgen::TpchDb;
use crate::queries::util::{dl, revenue};
use crate::schema::{li, ord, part, supp};
use uot_core::{JoinType, OpId, PlanBuilder, QueryPlan, Result, Source};
use uot_expr::{between_half_open, cmp, col, CmpOp, Predicate};
use uot_storage::{date_from_ymd, Value};

/// One extracted chain.
#[derive(Debug)]
pub struct ChainSpec {
    /// Label ("Q03", "Q07-small-ht", ...).
    pub name: &'static str,
    /// The chain plan; the probe is the sink.
    pub plan: QueryPlan,
    /// The build operator (pipeline prerequisite).
    pub build_op: OpId,
    /// The select operator (producer).
    pub select_op: OpId,
    /// The probe operator (the consumer whose tasks Fig. 5 times).
    pub probe_op: OpId,
}

/// Build a chain: `build(hash)` ← prerequisite, `select(lineitem)` →
/// `probe`.
#[allow(clippy::too_many_arguments)]
fn chain(
    name: &'static str,
    build_src: Source,
    build_key: Vec<usize>,
    build_payload: Vec<usize>,
    li_src: Source,
    li_pred: Predicate,
    li_proj: Vec<uot_expr::ScalarExpr>,
    li_names: &[&str],
    probe_key: Vec<usize>,
    probe_out: Vec<usize>,
    build_out: Vec<usize>,
) -> Result<ChainSpec> {
    let mut pb = PlanBuilder::new();
    let build_op = pb.build_hash(build_src, build_key, build_payload)?;
    let select_op = pb.select(li_src, li_pred, li_proj, li_names)?;
    let probe_op = pb.probe(
        Source::Op(select_op),
        build_op,
        probe_key,
        probe_out,
        build_out,
        JoinType::Inner,
    )?;
    Ok(ChainSpec {
        name,
        plan: pb.build(probe_op)?,
        build_op,
        select_op,
        probe_op,
    })
}

/// All chains evaluated in Figs. 5/6 (plus the two Q07 scalability probes
/// of Figs. 9/10, distinguished by hash-table size).
pub fn chain_specs(db: &TpchDb) -> Result<Vec<ChainSpec>> {
    let mut out = Vec::new();

    // Q03: lineitem(shipdate > 1995-03-15) ⋈ orders(orderdate < 1995-03-15)
    {
        let mut pb = PlanBuilder::new();
        let o = pb.select(
            Source::Table(db.orders()),
            cmp(col(ord::ORDERDATE), CmpOp::Lt, dl(1995, 3, 15)),
            vec![col(ord::ORDERKEY), col(ord::SHIPPRIORITY)],
            &["o_orderkey", "o_shippriority"],
        )?;
        let b = pb.build_hash(Source::Op(o), vec![0], vec![1])?;
        let s = pb.select(
            Source::Table(db.lineitem()),
            cmp(col(li::SHIPDATE), CmpOp::Gt, dl(1995, 3, 15)),
            vec![col(li::ORDERKEY), revenue(li::EXTENDEDPRICE, li::DISCOUNT)],
            &["l_orderkey", "rev"],
        )?;
        let p = pb.probe(Source::Op(s), b, vec![0], vec![1], vec![0], JoinType::Inner)?;
        out.push(ChainSpec {
            name: "Q03",
            plan: pb.build(p)?,
            build_op: b,
            select_op: s,
            probe_op: p,
        });
    }

    // Q05: lineitem (all) ⋈ orders(1994)
    {
        let mut pb = PlanBuilder::new();
        let o = pb.select(
            Source::Table(db.orders()),
            between_half_open(
                col(ord::ORDERDATE),
                Value::Date(date_from_ymd(1994, 1, 1)),
                Value::Date(date_from_ymd(1995, 1, 1)),
            ),
            vec![col(ord::ORDERKEY)],
            &["o_orderkey"],
        )?;
        let b = pb.build_hash(Source::Op(o), vec![0], vec![])?;
        let s = pb.select(
            Source::Table(db.lineitem()),
            Predicate::True,
            vec![
                col(li::ORDERKEY),
                col(li::SUPPKEY),
                revenue(li::EXTENDEDPRICE, li::DISCOUNT),
            ],
            &["l_orderkey", "l_suppkey", "rev"],
        )?;
        let p = pb.probe(
            Source::Op(s),
            b,
            vec![0],
            vec![1, 2],
            vec![],
            JoinType::Inner,
        )?;
        out.push(ChainSpec {
            name: "Q05",
            plan: pb.build(p)?,
            build_op: b,
            select_op: s,
            probe_op: p,
        });
    }

    // Q07 (large hash table): lineitem(1995-96) ⋈ orders(all) — the
    // poor-scalability probe of Fig. 9.
    out.push(chain(
        "Q07-large-ht",
        Source::Table(db.orders()),
        vec![ord::ORDERKEY],
        vec![ord::CUSTKEY],
        Source::Table(db.lineitem()),
        cmp(col(li::SHIPDATE), CmpOp::Ge, dl(1995, 1, 1)).and(cmp(
            col(li::SHIPDATE),
            CmpOp::Le,
            dl(1996, 12, 31),
        )),
        vec![col(li::ORDERKEY), revenue(li::EXTENDEDPRICE, li::DISCOUNT)],
        &["l_orderkey", "volume"],
        vec![0],
        vec![1],
        vec![0],
    )?);

    // Q07 (small hash table): lineitem(1995-96) ⋈ supplier — the
    // better-scalability probe of Fig. 9.
    out.push(chain(
        "Q07-small-ht",
        Source::Table(db.supplier()),
        vec![supp::SUPPKEY],
        vec![supp::NATIONKEY],
        Source::Table(db.lineitem()),
        cmp(col(li::SHIPDATE), CmpOp::Ge, dl(1995, 1, 1)).and(cmp(
            col(li::SHIPDATE),
            CmpOp::Le,
            dl(1996, 12, 31),
        )),
        vec![col(li::SUPPKEY), revenue(li::EXTENDEDPRICE, li::DISCOUNT)],
        &["l_suppkey", "volume"],
        vec![0],
        vec![1],
        vec![0],
    )?);

    // Q10: lineitem(returnflag = R) ⋈ orders(quarter)
    {
        let mut pb = PlanBuilder::new();
        let o = pb.select(
            Source::Table(db.orders()),
            between_half_open(
                col(ord::ORDERDATE),
                Value::Date(date_from_ymd(1993, 10, 1)),
                Value::Date(date_from_ymd(1994, 1, 1)),
            ),
            vec![col(ord::ORDERKEY), col(ord::CUSTKEY)],
            &["o_orderkey", "o_custkey"],
        )?;
        let b = pb.build_hash(Source::Op(o), vec![0], vec![1])?;
        let s = pb.select(
            Source::Table(db.lineitem()),
            Predicate::StrEq {
                col: li::RETURNFLAG,
                value: "R".into(),
            },
            vec![col(li::ORDERKEY), revenue(li::EXTENDEDPRICE, li::DISCOUNT)],
            &["l_orderkey", "rev"],
        )?;
        let p = pb.probe(Source::Op(s), b, vec![0], vec![1], vec![0], JoinType::Inner)?;
        out.push(ChainSpec {
            name: "Q10",
            plan: pb.build(p)?,
            build_op: b,
            select_op: s,
            probe_op: p,
        });
    }

    // Q14: lineitem(month) ⋈ part(all)
    out.push(chain(
        "Q14",
        Source::Table(db.part()),
        vec![part::PARTKEY],
        vec![part::TYPE],
        Source::Table(db.lineitem()),
        between_half_open(
            col(li::SHIPDATE),
            Value::Date(date_from_ymd(1995, 9, 1)),
            Value::Date(date_from_ymd(1995, 10, 1)),
        ),
        vec![col(li::PARTKEY), revenue(li::EXTENDEDPRICE, li::DISCOUNT)],
        &["l_partkey", "rev"],
        vec![0],
        vec![1],
        vec![0],
    )?);

    // Q19: lineitem(shipmode/instruct) ⋈ part(all, wide payload)
    out.push(chain(
        "Q19",
        Source::Table(db.part()),
        vec![part::PARTKEY],
        vec![part::BRAND, part::CONTAINER, part::SIZE],
        Source::Table(db.lineitem()),
        Predicate::StrIn {
            col: li::SHIPMODE,
            values: vec!["AIR".into(), "AIR REG".into()],
        }
        .and(Predicate::StrEq {
            col: li::SHIPINSTRUCT,
            value: "DELIVER IN PERSON".into(),
        }),
        vec![
            col(li::PARTKEY),
            col(li::QUANTITY),
            revenue(li::EXTENDEDPRICE, li::DISCOUNT),
        ],
        &["l_partkey", "qty", "rev"],
        vec![0],
        vec![1, 2],
        vec![0, 1, 2],
    )?);

    Ok(out)
}
