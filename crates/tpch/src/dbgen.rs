//! Seeded TPC-H data generation.
//!
//! A laptop-scale replacement for `dbgen`: cardinalities scale with the
//! scale factor (SF 1 ≈ 6 M lineitem rows, exactly like the spec), value
//! domains follow the spec closely enough that every predicate in the
//! evaluated query subset has its spec-intended selectivity regime (date
//! windows, flag derivations from dates, brand/type/container vocabularies,
//! key references), and everything is deterministic given the seed.

use crate::schema;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use uot_storage::{date_from_ymd, BlockFormat, Catalog, Table, TableBuilder, Value};

/// The 25 spec nations with their region keys.
pub const NATIONS: [(&str, i32); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("ROMANIA", 3),
    ("RUSSIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
    ("CHINA", 2),
];

/// The 5 spec regions.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// Ship modes (Q19 probes `AIR` / `AIR REG`).
pub const SHIP_MODES: [&str; 7] = ["AIR", "AIR REG", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

/// Ship instructions (Q19 probes `DELIVER IN PERSON`).
pub const SHIP_INSTRUCTS: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];

/// Order priorities (Q4/Q12).
pub const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

/// Market segments (Q3 probes `BUILDING`).
pub const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];

const TYPE_1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
const TYPE_2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
const TYPE_3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];
const CONTAINER_1: [&str; 5] = ["SM", "LG", "MED", "JUMBO", "WRAP"];
const CONTAINER_2: [&str; 8] = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];
const WORDS: [&str; 12] = [
    "quick", "final", "silent", "pending", "ironic", "express", "bold", "regular", "even",
    "special", "furious", "careful",
];
const NAME_WORDS: [&str; 16] = [
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "green",
    "forest",
    "lime",
    "olive",
    "plum",
    "rose",
];

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct TpchConfig {
    /// TPC-H scale factor (SF 1 = 1.5 M orders / ~6 M lineitems).
    pub scale_factor: f64,
    /// Storage block size for every table.
    pub block_bytes: usize,
    /// Storage format of the base tables.
    pub format: BlockFormat,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            scale_factor: 0.01,
            block_bytes: 128 * 1024,
            format: BlockFormat::Column,
            seed: 19920101,
        }
    }
}

impl TpchConfig {
    /// Configuration at a given scale factor (other fields default).
    pub fn scale(sf: f64) -> Self {
        TpchConfig {
            scale_factor: sf,
            ..Default::default()
        }
    }

    /// Builder-style block-size override.
    pub fn with_block_bytes(mut self, bytes: usize) -> Self {
        self.block_bytes = bytes;
        self
    }

    /// Builder-style format override.
    pub fn with_format(mut self, format: BlockFormat) -> Self {
        self.format = format;
        self
    }

    /// Number of `part` rows at this scale.
    pub fn n_part(&self) -> i32 {
        ((200_000.0 * self.scale_factor) as i32).max(50)
    }

    /// Number of `supplier` rows.
    pub fn n_supplier(&self) -> i32 {
        ((10_000.0 * self.scale_factor) as i32).max(10)
    }

    /// Number of `customer` rows.
    pub fn n_customer(&self) -> i32 {
        ((150_000.0 * self.scale_factor) as i32).max(30)
    }

    /// Number of `orders` rows.
    pub fn n_orders(&self) -> i32 {
        ((1_500_000.0 * self.scale_factor) as i32).max(100)
    }
}

/// A fully generated TPC-H database.
#[derive(Debug)]
pub struct TpchDb {
    /// The configuration used.
    pub config: TpchConfig,
    catalog: Arc<Catalog>,
}

/// Spec retail price for a part key.
fn retail_price(partkey: i32) -> f64 {
    let pk = partkey as i64;
    (90_000 + ((pk / 10) % 20_001) + 100 * (pk % 1_000)) as f64 / 100.0
}

fn comment(rng: &mut StdRng, width: usize) -> String {
    let mut s = String::new();
    while s.len() + 8 < width / 2 {
        if !s.is_empty() {
            s.push(' ');
        }
        s.push_str(WORDS[rng.gen_range(0..WORDS.len())]);
    }
    s.truncate(width);
    s
}

impl TpchDb {
    /// Generate all eight tables.
    pub fn generate(config: TpchConfig) -> Self {
        let catalog = Catalog::new();
        let mut rng = StdRng::seed_from_u64(config.seed);

        Self::gen_region(&catalog, &config);
        Self::gen_nation(&catalog, &config);
        Self::gen_supplier(&catalog, &config, &mut rng);
        Self::gen_part(&catalog, &config, &mut rng);
        Self::gen_partsupp(&catalog, &config, &mut rng);
        Self::gen_customer(&catalog, &config, &mut rng);
        Self::gen_orders_and_lineitem(&catalog, &config, &mut rng);

        TpchDb { config, catalog }
    }

    /// The catalog of generated tables.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// Look up one of the eight tables by name.
    pub fn table(&self, name: &str) -> Arc<Table> {
        self.catalog.get(name).expect("generated table")
    }

    /// `lineitem`.
    pub fn lineitem(&self) -> Arc<Table> {
        self.table("lineitem")
    }

    /// `orders`.
    pub fn orders(&self) -> Arc<Table> {
        self.table("orders")
    }

    /// `customer`.
    pub fn customer(&self) -> Arc<Table> {
        self.table("customer")
    }

    /// `part`.
    pub fn part(&self) -> Arc<Table> {
        self.table("part")
    }

    /// `supplier`.
    pub fn supplier(&self) -> Arc<Table> {
        self.table("supplier")
    }

    /// `partsupp`.
    pub fn partsupp(&self) -> Arc<Table> {
        self.table("partsupp")
    }

    /// `nation`.
    pub fn nation(&self) -> Arc<Table> {
        self.table("nation")
    }

    /// `region`.
    pub fn region(&self) -> Arc<Table> {
        self.table("region")
    }

    fn gen_region(catalog: &Catalog, config: &TpchConfig) {
        let mut tb = TableBuilder::new(
            "region",
            schema::region(),
            config.format,
            config.block_bytes,
        );
        for (i, name) in REGIONS.iter().enumerate() {
            tb.append(&[
                Value::I32(i as i32),
                Value::Str(name.to_string()),
                Value::Str(format!("region of {name}").to_lowercase()),
            ])
            .expect("region row");
        }
        catalog.register(tb.finish()).expect("register region");
    }

    fn gen_nation(catalog: &Catalog, config: &TpchConfig) {
        let mut tb = TableBuilder::new(
            "nation",
            schema::nation(),
            config.format,
            config.block_bytes,
        );
        for (i, (name, region)) in NATIONS.iter().enumerate() {
            tb.append(&[
                Value::I32(i as i32),
                Value::Str(name.to_string()),
                Value::I32(*region),
                Value::Str(format!("nation of {name}").to_lowercase()),
            ])
            .expect("nation row");
        }
        catalog.register(tb.finish()).expect("register nation");
    }

    fn gen_supplier(catalog: &Catalog, config: &TpchConfig, rng: &mut StdRng) {
        let mut tb = TableBuilder::new(
            "supplier",
            schema::supplier(),
            config.format,
            config.block_bytes,
        );
        for k in 1..=config.n_supplier() {
            tb.append(&[
                Value::I32(k),
                Value::Str(format!("Supplier#{k:09}")),
                Value::Str(format!("addr-{k}")),
                Value::I32(rng.gen_range(0..25)),
                Value::Str(format!("{:02}-{:07}", 10 + k % 25, k)),
                Value::F64(rng.gen_range(-999.99..9999.99)),
                Value::Str(comment(rng, 101)),
            ])
            .expect("supplier row");
        }
        catalog.register(tb.finish()).expect("register supplier");
    }

    fn gen_part(catalog: &Catalog, config: &TpchConfig, rng: &mut StdRng) {
        let mut tb = TableBuilder::new("part", schema::part(), config.format, config.block_bytes);
        for k in 1..=config.n_part() {
            let t1 = TYPE_1[rng.gen_range(0..TYPE_1.len())];
            let t2 = TYPE_2[rng.gen_range(0..TYPE_2.len())];
            let t3 = TYPE_3[rng.gen_range(0..TYPE_3.len())];
            let c1 = CONTAINER_1[rng.gen_range(0..CONTAINER_1.len())];
            let c2 = CONTAINER_2[rng.gen_range(0..CONTAINER_2.len())];
            let m = rng.gen_range(1..=5);
            let n = rng.gen_range(1..=5);
            let name = format!(
                "{} {}",
                NAME_WORDS[rng.gen_range(0..NAME_WORDS.len())],
                NAME_WORDS[rng.gen_range(0..NAME_WORDS.len())]
            );
            tb.append(&[
                Value::I32(k),
                Value::Str(name),
                Value::Str(format!("Manufacturer#{m}")),
                Value::Str(format!("Brand#{m}{n}")),
                Value::Str(format!("{t1} {t2} {t3}")),
                Value::I32(rng.gen_range(1..=50)),
                Value::Str(format!("{c1} {c2}")),
                Value::F64(retail_price(k)),
                Value::Str(comment(rng, 23)),
            ])
            .expect("part row");
        }
        catalog.register(tb.finish()).expect("register part");
    }

    fn gen_partsupp(catalog: &Catalog, config: &TpchConfig, rng: &mut StdRng) {
        let mut tb = TableBuilder::new(
            "partsupp",
            schema::partsupp(),
            config.format,
            config.block_bytes,
        );
        let n_supp = config.n_supplier();
        for pk in 1..=config.n_part() {
            for i in 0..4 {
                let sk = ((pk as i64 + i * (n_supp as i64 / 4 + 1)) % n_supp as i64) as i32 + 1;
                tb.append(&[
                    Value::I32(pk),
                    Value::I32(sk),
                    Value::I32(rng.gen_range(1..10_000)),
                    Value::F64(rng.gen_range(1.0..1000.0)),
                    Value::Str(comment(rng, 199)),
                ])
                .expect("partsupp row");
            }
        }
        catalog.register(tb.finish()).expect("register partsupp");
    }

    fn gen_customer(catalog: &Catalog, config: &TpchConfig, rng: &mut StdRng) {
        let mut tb = TableBuilder::new(
            "customer",
            schema::customer(),
            config.format,
            config.block_bytes,
        );
        for k in 1..=config.n_customer() {
            tb.append(&[
                Value::I32(k),
                Value::Str(format!("Customer#{k:09}")),
                Value::Str(format!("addr-{k}")),
                Value::I32(rng.gen_range(0..25)),
                Value::Str(format!("{:02}-{:07}", 10 + k % 25, k)),
                Value::F64(rng.gen_range(-999.99..9999.99)),
                Value::Str(SEGMENTS[rng.gen_range(0..SEGMENTS.len())].to_string()),
                Value::Str(comment(rng, 117)),
            ])
            .expect("customer row");
        }
        catalog.register(tb.finish()).expect("register customer");
    }

    /// Orders and lineitems are generated together so `o_orderstatus` can be
    /// derived from the line statuses (the spec rule).
    fn gen_orders_and_lineitem(catalog: &Catalog, config: &TpchConfig, rng: &mut StdRng) {
        let mut ob = TableBuilder::new(
            "orders",
            schema::orders(),
            config.format,
            config.block_bytes,
        );
        let mut lb = TableBuilder::new(
            "lineitem",
            schema::lineitem(),
            config.format,
            config.block_bytes,
        );
        let start = date_from_ymd(1992, 1, 1);
        let end = date_from_ymd(1998, 8, 2);
        let current = date_from_ymd(1995, 6, 17);
        let n_cust = config.n_customer();
        let n_part = config.n_part();
        let n_supp = config.n_supplier();

        for ok in 1..=config.n_orders() {
            let orderdate = rng.gen_range(start..=end - 151);
            let n_lines = rng.gen_range(1..=7);
            let mut total = 0.0;
            let mut all_f = true;
            let mut all_o = true;
            for line in 1..=n_lines {
                let pk = rng.gen_range(1..=n_part);
                let sk = rng.gen_range(1..=n_supp);
                let qty = rng.gen_range(1..=50) as f64;
                let extended = qty * retail_price(pk);
                let discount = rng.gen_range(0..=10) as f64 / 100.0;
                let tax = rng.gen_range(0..=8) as f64 / 100.0;
                let shipdate = orderdate + rng.gen_range(1..=121);
                let commitdate = orderdate + rng.gen_range(30..=90);
                let receiptdate = shipdate + rng.gen_range(1..=30);
                let returnflag = if receiptdate <= current {
                    if rng.gen_bool(0.5) {
                        "R"
                    } else {
                        "A"
                    }
                } else {
                    "N"
                };
                let linestatus = if shipdate > current { "O" } else { "F" };
                all_f &= linestatus == "F";
                all_o &= linestatus == "O";
                total += extended * (1.0 + tax) * (1.0 - discount);
                lb.append(&[
                    Value::I32(ok),
                    Value::I32(pk),
                    Value::I32(sk),
                    Value::I32(line),
                    Value::F64(qty),
                    Value::F64(extended),
                    Value::F64(discount),
                    Value::F64(tax),
                    Value::Str(returnflag.to_string()),
                    Value::Str(linestatus.to_string()),
                    Value::Date(shipdate),
                    Value::Date(commitdate),
                    Value::Date(receiptdate),
                    Value::Str(SHIP_INSTRUCTS[rng.gen_range(0..SHIP_INSTRUCTS.len())].to_string()),
                    Value::Str(SHIP_MODES[rng.gen_range(0..SHIP_MODES.len())].to_string()),
                    Value::Str(comment(rng, 44)),
                ])
                .expect("lineitem row");
            }
            let status = if all_f {
                "F"
            } else if all_o {
                "O"
            } else {
                "P"
            };
            ob.append(&[
                Value::I32(ok),
                Value::I32(rng.gen_range(1..=n_cust)),
                Value::Str(status.to_string()),
                Value::F64(total),
                Value::Date(orderdate),
                Value::Str(PRIORITIES[rng.gen_range(0..PRIORITIES.len())].to_string()),
                Value::Str(format!("Clerk#{:09}", rng.gen_range(1..=1000))),
                Value::I32(0),
                Value::Str(comment(rng, 79)),
            ])
            .expect("orders row");
        }
        catalog.register(ob.finish()).expect("register orders");
        catalog.register(lb.finish()).expect("register lineitem");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{li, ord};

    fn tiny() -> TpchDb {
        TpchDb::generate(TpchConfig {
            scale_factor: 0.002,
            block_bytes: 16 * 1024,
            format: BlockFormat::Column,
            seed: 7,
        })
    }

    #[test]
    fn cardinalities_scale() {
        let db = tiny();
        assert_eq!(db.region().num_rows(), 5);
        assert_eq!(db.nation().num_rows(), 25);
        assert_eq!(db.part().num_rows(), 400);
        assert_eq!(db.supplier().num_rows(), 20);
        assert_eq!(db.customer().num_rows(), 300);
        assert_eq!(db.orders().num_rows(), 3000);
        assert_eq!(db.partsupp().num_rows(), 1600);
        // ~4 lineitems per order
        let n = db.lineitem().num_rows();
        assert!((3000 * 2..=3000 * 7).contains(&n), "{n}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.lineitem().num_rows(), b.lineitem().num_rows());
        let ra = a.lineitem().blocks()[0].row_values(0).unwrap();
        let rb = b.lineitem().blocks()[0].row_values(0).unwrap();
        assert_eq!(ra, rb);
        // different seed, different data
        let c = TpchDb::generate(TpchConfig {
            seed: 8,
            scale_factor: 0.002,
            block_bytes: 16 * 1024,
            format: BlockFormat::Column,
        });
        assert_ne!(c.lineitem().blocks()[0].row_values(0).unwrap(), ra);
    }

    #[test]
    fn date_relationships_hold() {
        let db = tiny();
        let li_t = db.lineitem();
        for b in li_t.blocks() {
            for r in 0..b.num_rows() {
                let ship = b.date_at(r, li::SHIPDATE);
                let receipt = b.date_at(r, li::RECEIPTDATE);
                assert!(receipt > ship);
                assert!(receipt - ship <= 30);
            }
        }
        let o = db.orders();
        let lo = date_from_ymd(1992, 1, 1);
        let hi = date_from_ymd(1998, 8, 2);
        for b in o.blocks() {
            for r in 0..b.num_rows() {
                let d = b.date_at(r, ord::ORDERDATE);
                assert!(d >= lo && d <= hi);
            }
        }
    }

    #[test]
    fn flags_derive_from_dates() {
        let db = tiny();
        let cur = date_from_ymd(1995, 6, 17);
        for b in db.lineitem().blocks() {
            for r in 0..b.num_rows() {
                let receipt = b.date_at(r, li::RECEIPTDATE);
                let flag = b.char_at(r, li::RETURNFLAG)[0];
                let status = b.char_at(r, li::LINESTATUS)[0];
                if receipt <= cur {
                    assert!(flag == b'R' || flag == b'A');
                } else {
                    assert_eq!(flag, b'N');
                }
                assert!(status == b'O' || status == b'F');
            }
        }
    }

    #[test]
    fn foreign_keys_are_valid() {
        let db = tiny();
        let n_part = db.part().num_rows() as i32;
        let n_supp = db.supplier().num_rows() as i32;
        let n_cust = db.customer().num_rows() as i32;
        for b in db.lineitem().blocks() {
            for r in 0..b.num_rows() {
                let pk = b.i32_at(r, li::PARTKEY);
                let sk = b.i32_at(r, li::SUPPKEY);
                assert!(pk >= 1 && pk <= n_part);
                assert!(sk >= 1 && sk <= n_supp);
            }
        }
        for b in db.orders().blocks() {
            for r in 0..b.num_rows() {
                let ck = b.i32_at(r, ord::CUSTKEY);
                assert!(ck >= 1 && ck <= n_cust);
            }
        }
    }

    #[test]
    fn orderkeys_match_between_orders_and_lineitem() {
        let db = tiny();
        let mut order_keys = std::collections::HashSet::new();
        for b in db.orders().blocks() {
            for r in 0..b.num_rows() {
                order_keys.insert(b.i32_at(r, ord::ORDERKEY));
            }
        }
        for b in db.lineitem().blocks() {
            for r in 0..b.num_rows() {
                assert!(order_keys.contains(&b.i32_at(r, li::ORDERKEY)));
            }
        }
    }

    #[test]
    fn selectivity_regimes_are_sane() {
        // Date-window predicates should select plausible fractions, so the
        // Tables III/IV reproduction lands in the right regime.
        let db = TpchDb::generate(TpchConfig::scale(0.005));
        let cut = date_from_ymd(1995, 3, 15);
        let mut selected = 0usize;
        let mut total = 0usize;
        for b in db.lineitem().blocks() {
            for r in 0..b.num_rows() {
                total += 1;
                if b.date_at(r, li::SHIPDATE) > cut {
                    selected += 1;
                }
            }
        }
        let s = selected as f64 / total as f64;
        // Paper Table III reports 53.9% for Q3's l_shipdate > 1995-03-15.
        assert!((0.4..0.7).contains(&s), "Q3 lineitem selectivity {s}");
    }

    #[test]
    fn retail_price_formula() {
        assert_eq!(retail_price(1), 901.00);
        // spec range: [900.01, 2098.99] for keys within SF 1
        for pk in [1, 97, 1000, 54_321, 199_999] {
            let p = retail_price(pk);
            assert!((900.0..=2100.0).contains(&p), "pk={pk} p={p}");
        }
    }
}
