//! # uot-tpch
//!
//! The TPC-H substrate for the UoT experiments:
//!
//! * [`schema`] — the eight TPC-H table schemas (fixed-width `Char` strings,
//!   spec column widths) plus readable column-index constants.
//! * [`dbgen`] — a seeded, scale-factor-parameterized data generator that
//!   honors the value domains and cross-table relationships the evaluated
//!   queries depend on (date windows, flag derivations, key references).
//! * [`queries`] — hand-built physical plans for the query subset used in
//!   the paper's figures (the paper studies the post-optimizer scheduling
//!   phase, so fixed plans are the right substrate).
//! * [`chains`] — the extracted select → probe operator chains of Figs. 5/6.
//! * [`analysis`] — the selectivity/projectivity measurements of Tables
//!   III/IV.

pub mod analysis;
pub mod chains;
pub mod dbgen;
pub mod queries;
pub mod schema;

pub use chains::{chain_specs, ChainSpec};
pub use dbgen::{TpchConfig, TpchDb};
pub use queries::{all_queries, build_query, build_query_lip, sql_text, QueryId};
