//! Selectivity / projectivity measurement — Tables III and IV.
//!
//! For each paper-listed query, the selection on the big table (`lineitem`
//! or `orders`) is characterized by its **selectivity** (`s = N_s/N`, rows
//! passing the predicate) and **projectivity** (`p = C_s/C`, bytes projected
//! per tuple), giving the materialized output's relative size `s·p` — the
//! memory overhead of the high-UoT strategy (Section VI-A). Following the
//! paper, the projections are the *unoptimized* ones (no expression
//! folding), so the numbers are "on the higher side".

use crate::dbgen::TpchDb;
use crate::queries::util::dl;
use crate::schema::{li, ord};
use uot_core::Result;
use uot_expr::{between_half_open, cmp, col, CmpOp, Predicate};
use uot_storage::{date_from_ymd, Table, Value};

/// One row of Table III/IV: a query's selection on a base table.
#[derive(Debug, Clone)]
pub struct SelectionCase {
    /// Query label ("Q03", ...).
    pub query: &'static str,
    /// Base table name.
    pub table: &'static str,
    /// The selection predicate.
    pub predicate: Predicate,
    /// Columns the (unoptimized) plan projects out of the table.
    pub projected_cols: Vec<usize>,
}

/// A measured reduction row (percentages, as the paper reports them).
#[derive(Debug, Clone, PartialEq)]
pub struct ReductionRow {
    /// Query label.
    pub query: String,
    /// Selectivity in percent.
    pub selectivity_pct: f64,
    /// Projectivity in percent.
    pub projectivity_pct: f64,
    /// Total relative output size in percent (`s · p`).
    pub total_pct: f64,
}

/// Table III: selections on `lineitem`.
pub fn lineitem_cases() -> Vec<SelectionCase> {
    vec![
        SelectionCase {
            query: "Q03",
            table: "lineitem",
            predicate: cmp(col(li::SHIPDATE), CmpOp::Gt, dl(1995, 3, 15)),
            projected_cols: vec![li::ORDERKEY, li::EXTENDEDPRICE, li::DISCOUNT],
        },
        SelectionCase {
            query: "Q07",
            table: "lineitem",
            predicate: cmp(col(li::SHIPDATE), CmpOp::Ge, dl(1995, 1, 1)).and(cmp(
                col(li::SHIPDATE),
                CmpOp::Le,
                dl(1996, 12, 31),
            )),
            projected_cols: vec![
                li::SUPPKEY,
                li::ORDERKEY,
                li::EXTENDEDPRICE,
                li::DISCOUNT,
                li::SHIPDATE,
            ],
        },
        SelectionCase {
            query: "Q10",
            table: "lineitem",
            predicate: Predicate::StrEq {
                col: li::RETURNFLAG,
                value: "R".into(),
            },
            projected_cols: vec![li::ORDERKEY, li::EXTENDEDPRICE, li::DISCOUNT],
        },
        SelectionCase {
            query: "Q19",
            table: "lineitem",
            predicate: Predicate::StrIn {
                col: li::SHIPMODE,
                values: vec!["AIR".into(), "AIR REG".into()],
            }
            .and(Predicate::StrEq {
                col: li::SHIPINSTRUCT,
                value: "DELIVER IN PERSON".into(),
            })
            // the quantity ranges of the three Q19 groups, union-bounded
            .and(cmp(col(li::QUANTITY), CmpOp::Ge, uot_expr::lit(1.0)))
            .and(cmp(col(li::QUANTITY), CmpOp::Le, uot_expr::lit(30.0))),
            projected_cols: vec![li::PARTKEY, li::QUANTITY, li::EXTENDEDPRICE, li::DISCOUNT],
        },
    ]
}

/// Table IV: selections on `orders`.
pub fn orders_cases() -> Vec<SelectionCase> {
    vec![
        SelectionCase {
            query: "Q03",
            table: "orders",
            predicate: cmp(col(ord::ORDERDATE), CmpOp::Lt, dl(1995, 3, 15)),
            projected_cols: vec![
                ord::ORDERKEY,
                ord::CUSTKEY,
                ord::ORDERDATE,
                ord::SHIPPRIORITY,
            ],
        },
        SelectionCase {
            query: "Q04",
            table: "orders",
            predicate: between_half_open(
                col(ord::ORDERDATE),
                Value::Date(date_from_ymd(1993, 7, 1)),
                Value::Date(date_from_ymd(1993, 10, 1)),
            ),
            projected_cols: vec![ord::ORDERKEY, ord::ORDERPRIORITY],
        },
        SelectionCase {
            query: "Q05",
            table: "orders",
            predicate: between_half_open(
                col(ord::ORDERDATE),
                Value::Date(date_from_ymd(1994, 1, 1)),
                Value::Date(date_from_ymd(1995, 1, 1)),
            ),
            projected_cols: vec![ord::ORDERKEY, ord::CUSTKEY],
        },
        SelectionCase {
            query: "Q08",
            table: "orders",
            predicate: cmp(col(ord::ORDERDATE), CmpOp::Ge, dl(1995, 1, 1)).and(cmp(
                col(ord::ORDERDATE),
                CmpOp::Le,
                dl(1996, 12, 31),
            )),
            projected_cols: vec![ord::ORDERKEY, ord::CUSTKEY, ord::ORDERDATE],
        },
        SelectionCase {
            query: "Q10",
            table: "orders",
            predicate: between_half_open(
                col(ord::ORDERDATE),
                Value::Date(date_from_ymd(1993, 10, 1)),
                Value::Date(date_from_ymd(1994, 1, 1)),
            ),
            projected_cols: vec![ord::ORDERKEY, ord::CUSTKEY],
        },
        SelectionCase {
            query: "Q21",
            table: "orders",
            predicate: Predicate::StrEq {
                col: ord::ORDERSTATUS,
                value: "F".into(),
            },
            projected_cols: vec![ord::ORDERKEY],
        },
    ]
}

/// Measure one case against the generated data.
pub fn measure(db: &TpchDb, case: &SelectionCase) -> Result<ReductionRow> {
    let table: std::sync::Arc<Table> = db.table(case.table);
    let mut rows_in = 0usize;
    let mut rows_out = 0usize;
    for block in table.blocks() {
        rows_in += block.num_rows();
        rows_out += case
            .predicate
            .eval(block)
            .map_err(uot_core::EngineError::from)?
            .count_ones();
    }
    let in_width = table.schema().tuple_width();
    let out_width: usize = case
        .projected_cols
        .iter()
        .map(|&c| table.schema().dtype(c).width())
        .sum();
    let s = if rows_in == 0 {
        0.0
    } else {
        rows_out as f64 / rows_in as f64
    };
    let p = out_width as f64 / in_width as f64;
    Ok(ReductionRow {
        query: case.query.to_string(),
        selectivity_pct: 100.0 * s,
        projectivity_pct: 100.0 * p,
        total_pct: 100.0 * s * p,
    })
}

/// Arithmetic mean of measured rows (the paper's "Average" line).
pub fn average(rows: &[ReductionRow]) -> ReductionRow {
    let n = rows.len().max(1) as f64;
    ReductionRow {
        query: "Average".to_string(),
        selectivity_pct: rows.iter().map(|r| r.selectivity_pct).sum::<f64>() / n,
        projectivity_pct: rows.iter().map(|r| r.projectivity_pct).sum::<f64>() / n,
        total_pct: rows.iter().map(|r| r.total_pct).sum::<f64>() / n,
    }
}
