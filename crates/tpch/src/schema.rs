//! TPC-H table schemas with spec-faithful fixed-width types.
//!
//! Variable-length `varchar` columns become space-padded `Char(n)` at their
//! spec maximum — matching the engine's fixed-width row format (and footnote
//! 2 of the paper). Monetary `decimal(15,2)` columns map to `Float64`.

use std::sync::Arc;
use uot_storage::{DataType, Schema};

/// `lineitem` column indices.
pub mod li {
    /// l_orderkey
    pub const ORDERKEY: usize = 0;
    /// l_partkey
    pub const PARTKEY: usize = 1;
    /// l_suppkey
    pub const SUPPKEY: usize = 2;
    /// l_linenumber
    pub const LINENUMBER: usize = 3;
    /// l_quantity
    pub const QUANTITY: usize = 4;
    /// l_extendedprice
    pub const EXTENDEDPRICE: usize = 5;
    /// l_discount
    pub const DISCOUNT: usize = 6;
    /// l_tax
    pub const TAX: usize = 7;
    /// l_returnflag
    pub const RETURNFLAG: usize = 8;
    /// l_linestatus
    pub const LINESTATUS: usize = 9;
    /// l_shipdate
    pub const SHIPDATE: usize = 10;
    /// l_commitdate
    pub const COMMITDATE: usize = 11;
    /// l_receiptdate
    pub const RECEIPTDATE: usize = 12;
    /// l_shipinstruct
    pub const SHIPINSTRUCT: usize = 13;
    /// l_shipmode
    pub const SHIPMODE: usize = 14;
    /// l_comment
    pub const COMMENT: usize = 15;
}

/// `orders` column indices.
pub mod ord {
    /// o_orderkey
    pub const ORDERKEY: usize = 0;
    /// o_custkey
    pub const CUSTKEY: usize = 1;
    /// o_orderstatus
    pub const ORDERSTATUS: usize = 2;
    /// o_totalprice
    pub const TOTALPRICE: usize = 3;
    /// o_orderdate
    pub const ORDERDATE: usize = 4;
    /// o_orderpriority
    pub const ORDERPRIORITY: usize = 5;
    /// o_clerk
    pub const CLERK: usize = 6;
    /// o_shippriority
    pub const SHIPPRIORITY: usize = 7;
    /// o_comment
    pub const COMMENT: usize = 8;
}

/// `customer` column indices.
pub mod cust {
    /// c_custkey
    pub const CUSTKEY: usize = 0;
    /// c_name
    pub const NAME: usize = 1;
    /// c_address
    pub const ADDRESS: usize = 2;
    /// c_nationkey
    pub const NATIONKEY: usize = 3;
    /// c_phone
    pub const PHONE: usize = 4;
    /// c_acctbal
    pub const ACCTBAL: usize = 5;
    /// c_mktsegment
    pub const MKTSEGMENT: usize = 6;
    /// c_comment
    pub const COMMENT: usize = 7;
}

/// `part` column indices.
pub mod part {
    /// p_partkey
    pub const PARTKEY: usize = 0;
    /// p_name
    pub const NAME: usize = 1;
    /// p_mfgr
    pub const MFGR: usize = 2;
    /// p_brand
    pub const BRAND: usize = 3;
    /// p_type
    pub const TYPE: usize = 4;
    /// p_size
    pub const SIZE: usize = 5;
    /// p_container
    pub const CONTAINER: usize = 6;
    /// p_retailprice
    pub const RETAILPRICE: usize = 7;
    /// p_comment
    pub const COMMENT: usize = 8;
}

/// `supplier` column indices.
pub mod supp {
    /// s_suppkey
    pub const SUPPKEY: usize = 0;
    /// s_name
    pub const NAME: usize = 1;
    /// s_address
    pub const ADDRESS: usize = 2;
    /// s_nationkey
    pub const NATIONKEY: usize = 3;
    /// s_phone
    pub const PHONE: usize = 4;
    /// s_acctbal
    pub const ACCTBAL: usize = 5;
    /// s_comment
    pub const COMMENT: usize = 6;
}

/// `partsupp` column indices.
pub mod ps {
    /// ps_partkey
    pub const PARTKEY: usize = 0;
    /// ps_suppkey
    pub const SUPPKEY: usize = 1;
    /// ps_availqty
    pub const AVAILQTY: usize = 2;
    /// ps_supplycost
    pub const SUPPLYCOST: usize = 3;
    /// ps_comment
    pub const COMMENT: usize = 4;
}

/// `nation` column indices.
pub mod nat {
    /// n_nationkey
    pub const NATIONKEY: usize = 0;
    /// n_name
    pub const NAME: usize = 1;
    /// n_regionkey
    pub const REGIONKEY: usize = 2;
    /// n_comment
    pub const COMMENT: usize = 3;
}

/// `region` column indices.
pub mod reg {
    /// r_regionkey
    pub const REGIONKEY: usize = 0;
    /// r_name
    pub const NAME: usize = 1;
    /// r_comment
    pub const COMMENT: usize = 2;
}

/// Schema of `lineitem`.
pub fn lineitem() -> Arc<Schema> {
    Schema::from_pairs(&[
        ("l_orderkey", DataType::Int32),
        ("l_partkey", DataType::Int32),
        ("l_suppkey", DataType::Int32),
        ("l_linenumber", DataType::Int32),
        ("l_quantity", DataType::Float64),
        ("l_extendedprice", DataType::Float64),
        ("l_discount", DataType::Float64),
        ("l_tax", DataType::Float64),
        ("l_returnflag", DataType::Char(1)),
        ("l_linestatus", DataType::Char(1)),
        ("l_shipdate", DataType::Date),
        ("l_commitdate", DataType::Date),
        ("l_receiptdate", DataType::Date),
        ("l_shipinstruct", DataType::Char(25)),
        ("l_shipmode", DataType::Char(10)),
        ("l_comment", DataType::Char(44)),
    ])
}

/// Schema of `orders`.
pub fn orders() -> Arc<Schema> {
    Schema::from_pairs(&[
        ("o_orderkey", DataType::Int32),
        ("o_custkey", DataType::Int32),
        ("o_orderstatus", DataType::Char(1)),
        ("o_totalprice", DataType::Float64),
        ("o_orderdate", DataType::Date),
        ("o_orderpriority", DataType::Char(15)),
        ("o_clerk", DataType::Char(15)),
        ("o_shippriority", DataType::Int32),
        ("o_comment", DataType::Char(79)),
    ])
}

/// Schema of `customer`.
pub fn customer() -> Arc<Schema> {
    Schema::from_pairs(&[
        ("c_custkey", DataType::Int32),
        ("c_name", DataType::Char(25)),
        ("c_address", DataType::Char(40)),
        ("c_nationkey", DataType::Int32),
        ("c_phone", DataType::Char(15)),
        ("c_acctbal", DataType::Float64),
        ("c_mktsegment", DataType::Char(10)),
        ("c_comment", DataType::Char(117)),
    ])
}

/// Schema of `part`.
pub fn part() -> Arc<Schema> {
    Schema::from_pairs(&[
        ("p_partkey", DataType::Int32),
        ("p_name", DataType::Char(55)),
        ("p_mfgr", DataType::Char(25)),
        ("p_brand", DataType::Char(10)),
        ("p_type", DataType::Char(25)),
        ("p_size", DataType::Int32),
        ("p_container", DataType::Char(10)),
        ("p_retailprice", DataType::Float64),
        ("p_comment", DataType::Char(23)),
    ])
}

/// Schema of `supplier`.
pub fn supplier() -> Arc<Schema> {
    Schema::from_pairs(&[
        ("s_suppkey", DataType::Int32),
        ("s_name", DataType::Char(25)),
        ("s_address", DataType::Char(40)),
        ("s_nationkey", DataType::Int32),
        ("s_phone", DataType::Char(15)),
        ("s_acctbal", DataType::Float64),
        ("s_comment", DataType::Char(101)),
    ])
}

/// Schema of `partsupp`.
pub fn partsupp() -> Arc<Schema> {
    Schema::from_pairs(&[
        ("ps_partkey", DataType::Int32),
        ("ps_suppkey", DataType::Int32),
        ("ps_availqty", DataType::Int32),
        ("ps_supplycost", DataType::Float64),
        ("ps_comment", DataType::Char(199)),
    ])
}

/// Schema of `nation`.
pub fn nation() -> Arc<Schema> {
    Schema::from_pairs(&[
        ("n_nationkey", DataType::Int32),
        ("n_name", DataType::Char(25)),
        ("n_regionkey", DataType::Int32),
        ("n_comment", DataType::Char(152)),
    ])
}

/// Schema of `region`.
pub fn region() -> Arc<Schema> {
    Schema::from_pairs(&[
        ("r_regionkey", DataType::Int32),
        ("r_name", DataType::Char(25)),
        ("r_comment", DataType::Char(152)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineitem_indices_match_schema() {
        let s = lineitem();
        assert_eq!(s.len(), 16);
        assert_eq!(s.column(li::ORDERKEY).name, "l_orderkey");
        assert_eq!(s.column(li::SHIPDATE).name, "l_shipdate");
        assert_eq!(s.column(li::COMMENT).name, "l_comment");
        assert_eq!(s.dtype(li::QUANTITY), DataType::Float64);
        assert_eq!(s.dtype(li::RETURNFLAG), DataType::Char(1));
    }

    #[test]
    fn orders_indices_match_schema() {
        let s = orders();
        assert_eq!(s.column(ord::ORDERDATE).name, "o_orderdate");
        assert_eq!(s.column(ord::SHIPPRIORITY).name, "o_shippriority");
        assert_eq!(s.dtype(ord::ORDERDATE), DataType::Date);
    }

    #[test]
    fn tuple_widths_are_spec_scale() {
        // lineitem: 4*4 + 4*8 + 1 + 1 + 3*4 + 25 + 10 + 44 = 141 bytes
        assert_eq!(lineitem().tuple_width(), 141);
        // orders: 4+4+1+8+4+15+15+4+79 = 134
        assert_eq!(orders().tuple_width(), 134);
    }

    #[test]
    fn all_schemas_build() {
        for (s, cols) in [
            (customer(), 8),
            (part(), 9),
            (supplier(), 7),
            (partsupp(), 5),
            (nation(), 4),
            (region(), 3),
        ] {
            assert_eq!(s.len(), cols);
            assert!(s.tuple_width() > 0);
        }
        assert_eq!(part().column(part::BRAND).name, "p_brand");
        assert_eq!(nation().column(nat::NAME).name, "n_name");
        assert_eq!(region().column(reg::NAME).name, "r_name");
        assert_eq!(supplier().column(supp::NATIONKEY).name, "s_nationkey");
        assert_eq!(customer().column(cust::MKTSEGMENT).name, "c_mktsegment");
        assert_eq!(partsupp().column(ps::SUPPLYCOST).name, "ps_supplycost");
    }
}
