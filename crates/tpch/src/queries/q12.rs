//! TPC-H Q12: shipping modes and order priority — CASE-counted categories
//! over a lineitem → orders join.

use crate::dbgen::TpchDb;
use crate::schema::{li, ord};
use uot_core::{JoinType, PlanBuilder, QueryPlan, Result, SortKey, Source};
use uot_expr::{between_half_open, cmp, col, lit, AggSpec, CmpOp, Predicate, ScalarExpr};
use uot_storage::date_from_ymd;
use uot_storage::Value;

/// Build the Q12 plan.
pub fn plan(db: &TpchDb) -> Result<QueryPlan> {
    let mut pb = PlanBuilder::new();
    let pred = Predicate::StrIn {
        col: li::SHIPMODE,
        values: vec!["MAIL".into(), "SHIP".into()],
    }
    .and(cmp(col(li::COMMITDATE), CmpOp::Lt, col(li::RECEIPTDATE)))
    .and(cmp(col(li::SHIPDATE), CmpOp::Lt, col(li::COMMITDATE)))
    .and(between_half_open(
        col(li::RECEIPTDATE),
        Value::Date(date_from_ymd(1994, 1, 1)),
        Value::Date(date_from_ymd(1995, 1, 1)),
    ));
    let l = pb.select(
        Source::Table(db.lineitem()),
        pred,
        vec![col(li::ORDERKEY), col(li::SHIPMODE)],
        &["l_orderkey", "l_shipmode"],
    )?;
    let b_l = pb.build_hash(Source::Op(l), vec![0], vec![1])?;
    let p = pb.probe(
        Source::Table(db.orders()),
        b_l,
        vec![ord::ORDERKEY],
        vec![ord::ORDERPRIORITY],
        vec![0],
        JoinType::Inner,
    )?;
    // (o_orderpriority, l_shipmode)
    let urgent = Predicate::StrIn {
        col: 0,
        values: vec!["1-URGENT".into(), "2-HIGH".into()],
    };
    let high = ScalarExpr::case_when(urgent.clone(), lit(1i64), lit(0i64));
    let low = ScalarExpr::case_when(urgent, lit(0i64), lit(1i64));
    let a = pb.aggregate(
        Source::Op(p),
        vec![1],
        vec![AggSpec::sum(high), AggSpec::sum(low)],
        &["high_line_count", "low_line_count"],
    )?;
    let so = pb.sort(Source::Op(a), vec![SortKey::asc(0)], None)?;
    pb.build(so)
}
