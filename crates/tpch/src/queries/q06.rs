//! TPC-H Q6: forecasting revenue change — a pure scan + scalar aggregate.
//! The "leaf-dominant" query shape of Fig. 3 where UoT cannot matter.

use super::util::dl;
use crate::dbgen::TpchDb;
use crate::schema::li;
use uot_core::{PlanBuilder, QueryPlan, Result, Source};
use uot_expr::{cmp, col, lit, AggSpec, CmpOp};

/// Build the Q6 plan.
pub fn plan(db: &TpchDb) -> Result<QueryPlan> {
    let mut pb = PlanBuilder::new();
    let pred = cmp(col(li::SHIPDATE), CmpOp::Ge, dl(1994, 1, 1))
        .and(cmp(col(li::SHIPDATE), CmpOp::Lt, dl(1995, 1, 1)))
        .and(cmp(col(li::DISCOUNT), CmpOp::Ge, lit(0.05)))
        .and(cmp(col(li::DISCOUNT), CmpOp::Le, lit(0.07)))
        .and(cmp(col(li::QUANTITY), CmpOp::Lt, lit(24.0)));
    let s = pb.select(
        Source::Table(db.lineitem()),
        pred,
        vec![col(li::EXTENDEDPRICE).mul(col(li::DISCOUNT))],
        &["rev"],
    )?;
    let a = pb.aggregate(
        Source::Op(s),
        vec![],
        vec![AggSpec::sum(col(0))],
        &["revenue"],
    )?;
    pb.build(a)
}
