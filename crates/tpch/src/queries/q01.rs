//! TPC-H Q1: pricing summary report.
//!
//! A scan-dominated aggregation: `select` keeps ~98% of lineitem, then a
//! 4-group hash aggregation computes eight aggregates. In Fig. 3 of the
//! paper Q1's dominant operator (the aggregation over the base table) takes
//! the majority of the query time — UoT barely matters here.

use super::util::dl;
use crate::dbgen::TpchDb;
use crate::schema::li;
use uot_core::{PlanBuilder, QueryPlan, Result, SortKey, Source};
use uot_expr::{cmp, col, lit, AggSpec, CmpOp};

/// Build the Q1 plan.
pub fn plan(db: &TpchDb) -> Result<QueryPlan> {
    let mut pb = PlanBuilder::new();
    let disc_price = col(li::EXTENDEDPRICE).mul(lit(1.0).sub(col(li::DISCOUNT)));
    let charge = disc_price.clone().mul(lit(1.0).add(col(li::TAX)));
    let s = pb.select(
        Source::Table(db.lineitem()),
        cmp(col(li::SHIPDATE), CmpOp::Le, dl(1998, 9, 2)),
        vec![
            col(li::RETURNFLAG),
            col(li::LINESTATUS),
            col(li::QUANTITY),
            col(li::EXTENDEDPRICE),
            col(li::DISCOUNT),
            disc_price,
            charge,
        ],
        &[
            "l_returnflag",
            "l_linestatus",
            "qty",
            "ext",
            "disc",
            "disc_price",
            "charge",
        ],
    )?;
    let a = pb.aggregate(
        Source::Op(s),
        vec![0, 1],
        vec![
            AggSpec::sum(col(2)),
            AggSpec::sum(col(3)),
            AggSpec::sum(col(5)),
            AggSpec::sum(col(6)),
            AggSpec::avg(col(2)),
            AggSpec::avg(col(3)),
            AggSpec::avg(col(4)),
            AggSpec::count_star(),
        ],
        &[
            "sum_qty",
            "sum_base_price",
            "sum_disc_price",
            "sum_charge",
            "avg_qty",
            "avg_price",
            "avg_disc",
            "count_order",
        ],
    )?;
    let so = pb.sort(Source::Op(a), vec![SortKey::asc(0), SortKey::asc(1)], None)?;
    pb.build(so)
}
