//! TPC-H Q14: promotion effect — `100 * sum(case p_type like 'PROMO%' ...)
//! / sum(revenue)` over a one-month lineitem → part join.

use super::util::revenue;
use crate::dbgen::TpchDb;
use crate::schema::{li, part};
use uot_core::{JoinType, PlanBuilder, QueryPlan, Result, Source};
use uot_expr::{between_half_open, col, lit, AggSpec, Predicate, ScalarExpr};
use uot_storage::date_from_ymd;
use uot_storage::Value;

/// Build the Q14 plan.
pub fn plan(db: &TpchDb) -> Result<QueryPlan> {
    let mut pb = PlanBuilder::new();
    let l = pb.select(
        Source::Table(db.lineitem()),
        between_half_open(
            col(li::SHIPDATE),
            Value::Date(date_from_ymd(1995, 9, 1)),
            Value::Date(date_from_ymd(1995, 10, 1)),
        ),
        vec![col(li::PARTKEY), revenue(li::EXTENDEDPRICE, li::DISCOUNT)],
        &["l_partkey", "rev"],
    )?;
    let b_p = pb.build_hash(
        Source::Table(db.part()),
        vec![part::PARTKEY],
        vec![part::TYPE],
    )?;
    let p = pb.probe(
        Source::Op(l),
        b_p,
        vec![0],
        vec![1],
        vec![0],
        JoinType::Inner,
    )?;
    // (rev, p_type)
    let promo = ScalarExpr::case_when(
        Predicate::StrStartsWith {
            col: 1,
            prefix: "PROMO".into(),
        },
        col(0),
        lit(0.0),
    );
    let a = pb.aggregate(
        Source::Op(p),
        vec![],
        vec![AggSpec::sum(promo), AggSpec::sum(col(0))],
        &["promo_revenue", "total_revenue"],
    )?;
    let share = pb.select(
        Source::Op(a),
        Predicate::True,
        vec![lit(100.0).mul(col(0)).div(col(1))],
        &["promo_share"],
    )?;
    pb.build(share)
}
