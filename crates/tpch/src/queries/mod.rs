//! Physical plans for the evaluated TPC-H query subset.
//!
//! The paper runs the full TPC-H suite on Quickstep's optimizer output; we
//! reproduce the *scheduler-phase* study with hand-built plans for twelve
//! queries that cover every plan shape the figures exercise: scan-heavy
//! aggregation (Q1, Q6), select → probe pipelines of increasing depth (Q3,
//! Q5, Q7, Q8, Q9, Q10, Q12, Q14, Q19), semi joins (Q4), and aggregation-
//! driven joins (Q17, Q18). Queries whose plans need operators outside the
//! engine's algebra (correlated subqueries with inequality correlation,
//! outer joins, string aggregation: Q2, Q11, Q13, Q15, Q16, Q20-22) are
//! documented as out of scope in EXPERIMENTS.md.

mod q01;
mod q03;
mod q04;
mod q05;
mod q06;
mod q07;
mod q08;
mod q09;
mod q10;
mod q12;
mod q14;
mod q17;
mod q18;
mod q19;
mod sql;
pub(crate) mod util;

pub use sql::sql_text;

use crate::dbgen::TpchDb;
use uot_core::{QueryPlan, Result};

/// Identifier of an implemented TPC-H query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryId {
    /// Pricing summary report.
    Q1,
    /// Shipping priority.
    Q3,
    /// Order priority checking (semi join).
    Q4,
    /// Local supplier volume (deep join tree).
    Q5,
    /// Forecasting revenue change (pure scan).
    Q6,
    /// Volume shipping (two nation sides).
    Q7,
    /// National market share (CASE aggregation).
    Q8,
    /// Product type profit measure (substring filter, widest join fan).
    Q9,
    /// Returned item reporting.
    Q10,
    /// Shipping modes and order priority (CASE counts).
    Q12,
    /// Promotion effect (CASE revenue share).
    Q14,
    /// Small-quantity-order revenue (aggregate-driven correlated filter).
    Q17,
    /// Large volume customer (aggregate-driven join).
    Q18,
    /// Discounted revenue (disjunctive join predicate).
    Q19,
}

impl QueryId {
    /// Display label ("Q01", ...).
    pub fn label(&self) -> String {
        format!("Q{:02}", self.number())
    }

    /// The TPC-H query number.
    pub fn number(&self) -> u32 {
        match self {
            QueryId::Q1 => 1,
            QueryId::Q3 => 3,
            QueryId::Q4 => 4,
            QueryId::Q5 => 5,
            QueryId::Q6 => 6,
            QueryId::Q7 => 7,
            QueryId::Q8 => 8,
            QueryId::Q9 => 9,
            QueryId::Q10 => 10,
            QueryId::Q12 => 12,
            QueryId::Q14 => 14,
            QueryId::Q17 => 17,
            QueryId::Q18 => 18,
            QueryId::Q19 => 19,
        }
    }
}

/// All implemented queries, in TPC-H order.
pub fn all_queries() -> Vec<QueryId> {
    vec![
        QueryId::Q1,
        QueryId::Q3,
        QueryId::Q4,
        QueryId::Q5,
        QueryId::Q6,
        QueryId::Q7,
        QueryId::Q8,
        QueryId::Q9,
        QueryId::Q10,
        QueryId::Q12,
        QueryId::Q14,
        QueryId::Q17,
        QueryId::Q18,
        QueryId::Q19,
    ]
}

/// Build the LIP-enhanced variant of `query` (Bloom-filter pruning at the
/// big-table scan). Supported for the select→probe queries where the paper's
/// Section VI-C technique applies; other queries return their plain plan.
pub fn build_query_lip(query: QueryId, db: &TpchDb) -> Result<QueryPlan> {
    match query {
        QueryId::Q3 => q03::plan_lip(db),
        QueryId::Q10 => q10::plan_lip(db),
        other => build_query(other, db),
    }
}

/// Build the physical plan for `query` over `db`.
pub fn build_query(query: QueryId, db: &TpchDb) -> Result<QueryPlan> {
    match query {
        QueryId::Q1 => q01::plan(db),
        QueryId::Q3 => q03::plan(db),
        QueryId::Q4 => q04::plan(db),
        QueryId::Q5 => q05::plan(db),
        QueryId::Q6 => q06::plan(db),
        QueryId::Q7 => q07::plan(db),
        QueryId::Q8 => q08::plan(db),
        QueryId::Q9 => q09::plan(db),
        QueryId::Q10 => q10::plan(db),
        QueryId::Q12 => q12::plan(db),
        QueryId::Q14 => q14::plan(db),
        QueryId::Q17 => q17::plan(db),
        QueryId::Q18 => q18::plan(db),
        QueryId::Q19 => q19::plan(db),
    }
}
