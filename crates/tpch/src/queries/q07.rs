//! TPC-H Q7: volume shipping between FRANCE and GERMANY — the query the
//! paper uses for its scalability (Fig. 9/10) and prefetching (Table VI)
//! microbenchmarks. Its chain has one probe with a small hash table
//! (supplier side) and one with a large one (orders side).

use super::util::{dl, revenue};
use crate::dbgen::TpchDb;
use crate::schema::{cust, li, nat, ord, supp};
use uot_core::{JoinType, PlanBuilder, QueryPlan, Result, SortKey, Source};
use uot_expr::{cmp, col, AggSpec, CmpOp, Predicate, ScalarExpr};

fn nation_filter() -> Predicate {
    Predicate::StrIn {
        col: nat::NAME,
        values: vec!["FRANCE".into(), "GERMANY".into()],
    }
}

/// Build the Q7 plan.
pub fn plan(db: &TpchDb) -> Result<QueryPlan> {
    let mut pb = PlanBuilder::new();
    // supplier -> nation (FRANCE/GERMANY)
    let n1 = pb.select(
        Source::Table(db.nation()),
        nation_filter(),
        vec![col(nat::NATIONKEY), col(nat::NAME)],
        &["n_nationkey", "supp_nation"],
    )?;
    let b_n1 = pb.build_hash(Source::Op(n1), vec![0], vec![1])?;
    let s = pb.probe(
        Source::Table(db.supplier()),
        b_n1,
        vec![supp::NATIONKEY],
        vec![supp::SUPPKEY],
        vec![0],
        JoinType::Inner,
    )?;
    // (s_suppkey, supp_nation)
    let b_s = pb.build_hash(Source::Op(s), vec![0], vec![1])?;

    // customer -> nation (FRANCE/GERMANY) -> orders
    let n2 = pb.select(
        Source::Table(db.nation()),
        nation_filter(),
        vec![col(nat::NATIONKEY), col(nat::NAME)],
        &["n_nationkey", "cust_nation"],
    )?;
    let b_n2 = pb.build_hash(Source::Op(n2), vec![0], vec![1])?;
    let c = pb.probe(
        Source::Table(db.customer()),
        b_n2,
        vec![cust::NATIONKEY],
        vec![cust::CUSTKEY],
        vec![0],
        JoinType::Inner,
    )?;
    let b_c = pb.build_hash(Source::Op(c), vec![0], vec![1])?;
    let o = pb.probe(
        Source::Table(db.orders()),
        b_c,
        vec![ord::CUSTKEY],
        vec![ord::ORDERKEY],
        vec![0],
        JoinType::Inner,
    )?;
    // (o_orderkey, cust_nation)
    let b_o = pb.build_hash(Source::Op(o), vec![0], vec![1])?;

    // lineitem shipped in 1995-1996
    let l = pb.select(
        Source::Table(db.lineitem()),
        cmp(col(li::SHIPDATE), CmpOp::Ge, dl(1995, 1, 1)).and(cmp(
            col(li::SHIPDATE),
            CmpOp::Le,
            dl(1996, 12, 31),
        )),
        vec![
            col(li::ORDERKEY),
            col(li::SUPPKEY),
            revenue(li::EXTENDEDPRICE, li::DISCOUNT),
            ScalarExpr::Col(li::SHIPDATE).year(),
        ],
        &["l_orderkey", "l_suppkey", "volume", "l_year"],
    )?;
    let p1 = pb.probe(
        Source::Op(l),
        b_o,
        vec![0],
        vec![1, 2, 3],
        vec![0],
        JoinType::Inner,
    )?;
    // (l_suppkey, volume, l_year, cust_nation)
    let p2 = pb.probe(
        Source::Op(p1),
        b_s,
        vec![0],
        vec![1, 2, 3],
        vec![0],
        JoinType::Inner,
    )?;
    // (volume, l_year, cust_nation, supp_nation)
    let cross = pb.select(
        Source::Op(p2),
        Predicate::StrEq {
            col: 3,
            value: "FRANCE".into(),
        }
        .and(Predicate::StrEq {
            col: 2,
            value: "GERMANY".into(),
        })
        .or(Predicate::StrEq {
            col: 3,
            value: "GERMANY".into(),
        }
        .and(Predicate::StrEq {
            col: 2,
            value: "FRANCE".into(),
        })),
        vec![col(0), col(1), col(2), col(3)],
        &["volume", "l_year", "cust_nation", "supp_nation"],
    )?;
    let a = pb.aggregate(
        Source::Op(cross),
        vec![3, 2, 1],
        vec![AggSpec::sum(col(0))],
        &["revenue"],
    )?;
    let so = pb.sort(
        Source::Op(a),
        vec![SortKey::asc(0), SortKey::asc(1), SortKey::asc(2)],
        None,
    )?;
    pb.build(so)
}
