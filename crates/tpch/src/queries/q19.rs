//! TPC-H Q19: discounted revenue — the disjunction of three conjunctive
//! groups mixing part and lineitem attributes, evaluated as a residual
//! select over the partkey equi-join (the standard rewrite).

use super::util::revenue;
use crate::dbgen::TpchDb;
use crate::schema::{li, part};
use uot_core::{JoinType, PlanBuilder, QueryPlan, Result, Source};
use uot_expr::{cmp, col, lit, AggSpec, CmpOp, Predicate};

/// One of the three (brand, containers, qty, size) groups. Columns refer to
/// the probe output (quantity, rev, p_brand, p_container, p_size).
fn group(brand: &str, containers: &[&str], qty_lo: f64, qty_hi: f64, size_hi: i32) -> Predicate {
    Predicate::StrEq {
        col: 2,
        value: brand.into(),
    }
    .and(Predicate::StrIn {
        col: 3,
        values: containers.iter().map(|s| s.to_string()).collect(),
    })
    .and(cmp(col(0), CmpOp::Ge, lit(qty_lo)))
    .and(cmp(col(0), CmpOp::Le, lit(qty_hi)))
    .and(cmp(col(4), CmpOp::Ge, lit(1i32)))
    .and(cmp(col(4), CmpOp::Le, lit(size_hi)))
}

/// Build the Q19 plan.
pub fn plan(db: &TpchDb) -> Result<QueryPlan> {
    let mut pb = PlanBuilder::new();
    let l = pb.select(
        Source::Table(db.lineitem()),
        Predicate::StrIn {
            col: li::SHIPMODE,
            values: vec!["AIR".into(), "AIR REG".into()],
        }
        .and(Predicate::StrEq {
            col: li::SHIPINSTRUCT,
            value: "DELIVER IN PERSON".into(),
        }),
        vec![
            col(li::PARTKEY),
            col(li::QUANTITY),
            revenue(li::EXTENDEDPRICE, li::DISCOUNT),
        ],
        &["l_partkey", "qty", "rev"],
    )?;
    let b_p = pb.build_hash(
        Source::Table(db.part()),
        vec![part::PARTKEY],
        vec![part::BRAND, part::CONTAINER, part::SIZE],
    )?;
    let p = pb.probe(
        Source::Op(l),
        b_p,
        vec![0],
        vec![1, 2],
        vec![0, 1, 2],
        JoinType::Inner,
    )?;
    // (qty, rev, p_brand, p_container, p_size)
    let residual = group(
        "Brand#12",
        &["SM CASE", "SM BOX", "SM PACK", "SM PKG"],
        1.0,
        11.0,
        5,
    )
    .or(group(
        "Brand#23",
        &["MED BAG", "MED BOX", "MED PKG", "MED PACK"],
        10.0,
        20.0,
        10,
    ))
    .or(group(
        "Brand#34",
        &["LG CASE", "LG BOX", "LG PACK", "LG PKG"],
        20.0,
        30.0,
        15,
    ));
    let f = pb.select(Source::Op(p), residual, vec![col(1)], &["rev"])?;
    let a = pb.aggregate(
        Source::Op(f),
        vec![],
        vec![AggSpec::sum(col(0))],
        &["revenue"],
    )?;
    pb.build(a)
}
