//! TPC-H Q10: returned item reporting — lineitem(returnflag = R) probing
//! a quarter of orders, then customer/nation decoration and a top-20 sort.

use super::util::revenue;
use crate::dbgen::TpchDb;
use crate::schema::{cust, li, nat, ord};
use uot_core::{JoinType, PlanBuilder, QueryPlan, Result, SortKey, Source};
use uot_expr::{between_half_open, col, AggSpec, Predicate};
use uot_storage::date_from_ymd;
use uot_storage::Value;

/// Build the Q10 plan.
pub fn plan(db: &TpchDb) -> Result<QueryPlan> {
    plan_impl(db, false)
}

/// Build the Q10 plan with a LIP filter on the lineitem scan.
pub fn plan_lip(db: &TpchDb) -> Result<QueryPlan> {
    plan_impl(db, true)
}

fn plan_impl(db: &TpchDb, lip: bool) -> Result<QueryPlan> {
    let mut pb = PlanBuilder::new();
    let o = pb.select(
        Source::Table(db.orders()),
        between_half_open(
            col(ord::ORDERDATE),
            Value::Date(date_from_ymd(1993, 10, 1)),
            Value::Date(date_from_ymd(1994, 1, 1)),
        ),
        vec![col(ord::ORDERKEY), col(ord::CUSTKEY)],
        &["o_orderkey", "o_custkey"],
    )?;
    let b_o = pb.build_hash(Source::Op(o), vec![0], vec![1])?;
    let l = pb.select(
        Source::Table(db.lineitem()),
        Predicate::StrEq {
            col: li::RETURNFLAG,
            value: "R".into(),
        },
        vec![col(li::ORDERKEY), revenue(li::EXTENDEDPRICE, li::DISCOUNT)],
        &["l_orderkey", "rev"],
    )?;
    if lip {
        pb.add_lip(l, b_o, vec![li::ORDERKEY])?;
    }
    let p = pb.probe(
        Source::Op(l),
        b_o,
        vec![0],
        vec![1],
        vec![0],
        JoinType::Inner,
    )?;
    // (rev, o_custkey)
    let a = pb.aggregate(
        Source::Op(p),
        vec![1],
        vec![AggSpec::sum(col(0))],
        &["revenue"],
    )?;
    // (o_custkey, revenue) — decorate with customer and nation attributes
    let b_cu = pb.build_hash(
        Source::Table(db.customer()),
        vec![cust::CUSTKEY],
        vec![
            cust::NAME,
            cust::ACCTBAL,
            cust::NATIONKEY,
            cust::PHONE,
            cust::ADDRESS,
            cust::COMMENT,
        ],
    )?;
    let p2 = pb.probe(
        Source::Op(a),
        b_cu,
        vec![0],
        vec![0, 1],
        vec![0, 1, 2, 3, 4, 5],
        JoinType::Inner,
    )?;
    // (custkey, revenue, c_name, c_acctbal, c_nationkey, c_phone, c_address, c_comment)
    let b_nn = pb.build_hash(
        Source::Table(db.nation()),
        vec![nat::NATIONKEY],
        vec![nat::NAME],
    )?;
    let p3 = pb.probe(
        Source::Op(p2),
        b_nn,
        vec![4],
        vec![0, 1, 2, 3, 5, 6, 7],
        vec![0],
        JoinType::Inner,
    )?;
    // (custkey, revenue, c_name, c_acctbal, c_phone, c_address, c_comment, n_name)
    let so = pb.sort(Source::Op(p3), vec![SortKey::desc(1)], Some(20))?;
    pb.build(so)
}
