//! TPC-H Q18: large volume customers — a HAVING realized as a filter over
//! an aggregation, which then *drives* the join (the aggregate output is
//! the build side).

use crate::dbgen::TpchDb;
use crate::schema::{cust, li, ord};
use uot_core::{JoinType, PlanBuilder, QueryPlan, Result, SortKey, Source};
use uot_expr::{cmp, col, lit, AggSpec, CmpOp};

/// Build the Q18 plan.
pub fn plan(db: &TpchDb) -> Result<QueryPlan> {
    let mut pb = PlanBuilder::new();
    let a = pb.aggregate(
        Source::Table(db.lineitem()),
        vec![li::ORDERKEY],
        vec![AggSpec::sum(col(li::QUANTITY))],
        &["sum_qty"],
    )?;
    // HAVING sum(l_quantity) > 300 — the spec constant selects almost
    // nothing at tiny scale factors, so the threshold scales with the
    // generator's ~4 lines/order: keep the spec shape, not the constant.
    let f = pb.filter(Source::Op(a), cmp(col(1), CmpOp::Gt, lit(140.0)))?;
    let b = pb.build_hash(Source::Op(f), vec![0], vec![1])?;
    let p = pb.probe(
        Source::Table(db.orders()),
        b,
        vec![ord::ORDERKEY],
        vec![ord::CUSTKEY, ord::ORDERKEY, ord::ORDERDATE, ord::TOTALPRICE],
        vec![0],
        JoinType::Inner,
    )?;
    // (o_custkey, o_orderkey, o_orderdate, o_totalprice, sum_qty)
    let b_c = pb.build_hash(
        Source::Table(db.customer()),
        vec![cust::CUSTKEY],
        vec![cust::NAME],
    )?;
    let p2 = pb.probe(
        Source::Op(p),
        b_c,
        vec![0],
        vec![0, 1, 2, 3, 4],
        vec![0],
        JoinType::Inner,
    )?;
    // (custkey, orderkey, orderdate, totalprice, sum_qty, c_name)
    let so = pb.sort(
        Source::Op(p2),
        vec![SortKey::desc(3), SortKey::asc(2)],
        Some(100),
    )?;
    pb.build(so)
}
