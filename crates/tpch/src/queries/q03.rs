//! TPC-H Q3: shipping priority.
//!
//! The canonical select → probe pipeline on lineitem the paper's model
//! analyzes (Section V), with the revenue expression folded into the select
//! to lower projectivity (Section VI-C's technique).

use super::util::{dl, revenue};
use crate::dbgen::TpchDb;
use crate::schema::{cust, li, ord};
use uot_core::{JoinType, PlanBuilder, QueryPlan, Result, SortKey, Source};
use uot_expr::{cmp, col, AggSpec, CmpOp, Predicate};

/// Build the Q3 plan.
pub fn plan(db: &TpchDb) -> Result<QueryPlan> {
    plan_impl(db, false)
}

/// Build the Q3 plan with a LIP filter on the lineitem scan (orders keys).
pub fn plan_lip(db: &TpchDb) -> Result<QueryPlan> {
    plan_impl(db, true)
}

fn plan_impl(db: &TpchDb, lip: bool) -> Result<QueryPlan> {
    let mut pb = PlanBuilder::new();
    // customer filtered to the BUILDING segment -> semi-filter for orders
    let c = pb.select(
        Source::Table(db.customer()),
        Predicate::StrEq {
            col: cust::MKTSEGMENT,
            value: "BUILDING".into(),
        },
        vec![col(cust::CUSTKEY)],
        &["c_custkey"],
    )?;
    let b_c = pb.build_hash(Source::Op(c), vec![0], vec![])?;
    let o = pb.select(
        Source::Table(db.orders()),
        cmp(col(ord::ORDERDATE), CmpOp::Lt, dl(1995, 3, 15)),
        vec![
            col(ord::ORDERKEY),
            col(ord::CUSTKEY),
            col(ord::ORDERDATE),
            col(ord::SHIPPRIORITY),
        ],
        &["o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"],
    )?;
    // c_custkey is unique: an inner probe without payload is a semi filter
    let p_o = pb.probe(
        Source::Op(o),
        b_c,
        vec![1],
        vec![0, 2, 3],
        vec![],
        JoinType::Inner,
    )?;
    let b_o = pb.build_hash(Source::Op(p_o), vec![0], vec![1, 2])?;
    let l = pb.select(
        Source::Table(db.lineitem()),
        cmp(col(li::SHIPDATE), CmpOp::Gt, dl(1995, 3, 15)),
        vec![col(li::ORDERKEY), revenue(li::EXTENDEDPRICE, li::DISCOUNT)],
        &["l_orderkey", "rev"],
    )?;
    if lip {
        // Drop lineitems whose orderkey cannot match the (BUILDING-segment,
        // pre-cutoff) orders — Section VI-C's selectivity-reduction technique.
        pb.add_lip(l, b_o, vec![li::ORDERKEY])?;
    }
    let p_l = pb.probe(
        Source::Op(l),
        b_o,
        vec![0],
        vec![0, 1],
        vec![0, 1],
        JoinType::Inner,
    )?;
    // (l_orderkey, rev, o_orderdate, o_shippriority)
    let a = pb.aggregate(
        Source::Op(p_l),
        vec![0, 2, 3],
        vec![AggSpec::sum(col(1))],
        &["revenue"],
    )?;
    let so = pb.sort(
        Source::Op(a),
        vec![SortKey::desc(3), SortKey::asc(1)],
        Some(10),
    )?;
    pb.build(so)
}
