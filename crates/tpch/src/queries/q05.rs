//! TPC-H Q5: local supplier volume — the deepest probe cascade in the
//! suite (region → nation → customer → orders → lineitem → supplier), the
//! Fig. 4 shape of the paper. The `s_nationkey = c_nationkey` condition is
//! realized as a composite-key probe on (suppkey, nationkey).

use super::util::revenue;
use crate::dbgen::TpchDb;
use crate::schema::{cust, li, nat, ord, reg, supp};
use uot_core::{JoinType, PlanBuilder, QueryPlan, Result, SortKey, Source};
use uot_expr::{between_half_open, col, AggSpec, Predicate};
use uot_storage::date_from_ymd;
use uot_storage::Value;

/// Build the Q5 plan.
pub fn plan(db: &TpchDb) -> Result<QueryPlan> {
    let mut pb = PlanBuilder::new();
    let r = pb.select(
        Source::Table(db.region()),
        Predicate::StrEq {
            col: reg::NAME,
            value: "ASIA".into(),
        },
        vec![col(reg::REGIONKEY)],
        &["r_regionkey"],
    )?;
    let b_r = pb.build_hash(Source::Op(r), vec![0], vec![])?;
    let n = pb.probe(
        Source::Table(db.nation()),
        b_r,
        vec![nat::REGIONKEY],
        vec![nat::NATIONKEY, nat::NAME],
        vec![],
        JoinType::Inner,
    )?;
    let b_n = pb.build_hash(Source::Op(n), vec![0], vec![0, 1])?;
    let c = pb.probe(
        Source::Table(db.customer()),
        b_n,
        vec![cust::NATIONKEY],
        vec![cust::CUSTKEY],
        vec![0, 1],
        JoinType::Inner,
    )?;
    // (c_custkey, n_nationkey, n_name)
    let b_c = pb.build_hash(Source::Op(c), vec![0], vec![1, 2])?;
    let o = pb.select(
        Source::Table(db.orders()),
        between_half_open(
            col(ord::ORDERDATE),
            Value::Date(date_from_ymd(1994, 1, 1)),
            Value::Date(date_from_ymd(1995, 1, 1)),
        ),
        vec![col(ord::ORDERKEY), col(ord::CUSTKEY)],
        &["o_orderkey", "o_custkey"],
    )?;
    let p_o = pb.probe(
        Source::Op(o),
        b_c,
        vec![1],
        vec![0],
        vec![0, 1],
        JoinType::Inner,
    )?;
    // (o_orderkey, n_nationkey, n_name)
    let b_o = pb.build_hash(Source::Op(p_o), vec![0], vec![1, 2])?;
    let l = pb.select(
        Source::Table(db.lineitem()),
        Predicate::True,
        vec![
            col(li::ORDERKEY),
            col(li::SUPPKEY),
            revenue(li::EXTENDEDPRICE, li::DISCOUNT),
        ],
        &["l_orderkey", "l_suppkey", "rev"],
    )?;
    let p_l = pb.probe(
        Source::Op(l),
        b_o,
        vec![0],
        vec![1, 2],
        vec![0, 1],
        JoinType::Inner,
    )?;
    // (l_suppkey, rev, n_nationkey, n_name)
    let b_s = pb.build_hash(
        Source::Table(db.supplier()),
        vec![supp::SUPPKEY, supp::NATIONKEY],
        vec![],
    )?;
    let p_s = pb.probe(
        Source::Op(p_l),
        b_s,
        vec![0, 2],
        vec![3, 1],
        vec![],
        JoinType::Inner,
    )?;
    // (n_name, rev)
    let a = pb.aggregate(
        Source::Op(p_s),
        vec![0],
        vec![AggSpec::sum(col(1))],
        &["revenue"],
    )?;
    let so = pb.sort(Source::Op(a), vec![SortKey::desc(1)], None)?;
    pb.build(so)
}
