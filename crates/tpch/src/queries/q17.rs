//! TPC-H Q17: small-quantity-order revenue — the per-part average quantity
//! "subquery" realized as an aggregation whose output drives a second probe
//! (the aggregate-as-build-side pattern, like Q18), followed by a residual
//! comparison between probe and payload columns.

use crate::dbgen::TpchDb;
use crate::schema::{li, part};
use uot_core::{JoinType, PlanBuilder, QueryPlan, Result, Source};
use uot_expr::{cmp, col, lit, AggSpec, CmpOp, Predicate};

fn part_filter() -> Predicate {
    Predicate::StrEq {
        col: part::BRAND,
        value: "Brand#23".into(),
    }
    .and(Predicate::StrEq {
        col: part::CONTAINER,
        value: "MED BOX".into(),
    })
}

/// Build the Q17 plan.
pub fn plan(db: &TpchDb) -> Result<QueryPlan> {
    let mut pb = PlanBuilder::new();
    // First pass: per-part average quantity over the target parts.
    let pa1 = pb.select(
        Source::Table(db.part()),
        part_filter(),
        vec![col(part::PARTKEY)],
        &["p_partkey"],
    )?;
    let b_pa1 = pb.build_hash(Source::Op(pa1), vec![0], vec![])?;
    let l1 = pb.select(
        Source::Table(db.lineitem()),
        Predicate::True,
        vec![col(li::PARTKEY), col(li::QUANTITY)],
        &["l_partkey", "qty"],
    )?;
    let p1 = pb.probe(
        Source::Op(l1),
        b_pa1,
        vec![0],
        vec![0, 1],
        vec![],
        JoinType::Inner,
    )?;
    let avg = pb.aggregate(
        Source::Op(p1),
        vec![0],
        vec![AggSpec::avg(col(1))],
        &["avg_qty"],
    )?;
    let b_avg = pb.build_hash(Source::Op(avg), vec![0], vec![1])?;

    // Second pass: the same lineitems, joined to the per-part averages.
    let pa2 = pb.select(
        Source::Table(db.part()),
        part_filter(),
        vec![col(part::PARTKEY)],
        &["p_partkey"],
    )?;
    let b_pa2 = pb.build_hash(Source::Op(pa2), vec![0], vec![])?;
    let l2 = pb.select(
        Source::Table(db.lineitem()),
        Predicate::True,
        vec![col(li::PARTKEY), col(li::QUANTITY), col(li::EXTENDEDPRICE)],
        &["l_partkey", "qty", "ext"],
    )?;
    let p2 = pb.probe(
        Source::Op(l2),
        b_pa2,
        vec![0],
        vec![0, 1, 2],
        vec![],
        JoinType::Inner,
    )?;
    let p3 = pb.probe(
        Source::Op(p2),
        b_avg,
        vec![0],
        vec![1, 2],
        vec![0],
        JoinType::Inner,
    )?;
    // (qty, ext, avg_qty): keep rows with qty < 0.2 * avg(qty)
    let f = pb.select(
        Source::Op(p3),
        cmp(col(0), CmpOp::Lt, lit(0.2).mul(col(2))),
        vec![col(1)],
        &["ext"],
    )?;
    let a = pb.aggregate(
        Source::Op(f),
        vec![],
        vec![AggSpec::sum(col(0))],
        &["sum_ext"],
    )?;
    // avg_yearly = sum(ext) / 7.0
    let out = pb.select(
        Source::Op(a),
        Predicate::True,
        vec![col(0).div(lit(7.0))],
        &["avg_yearly"],
    )?;
    pb.build(out)
}
