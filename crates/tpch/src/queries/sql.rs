//! SQL text for the evaluated TPC-H query subset.
//!
//! Each statement is written in the engine's SQL dialect so that compiling
//! it through the front door (`uot_core::sql::compile`) produces the *same*
//! physical plan — operator for operator, output column for output column —
//! as the hand-built constructor in the sibling `qNN` module. The FROM-list
//! order encodes the join tree (first relation streams as the probe side,
//! every later relation becomes a hash build), so these texts double as a
//! readable specification of each plan's shape.
//!
//! `crates/tpch/tests/sql_equivalence.rs` asserts byte-identical results
//! between both paths for every query.

use super::QueryId;

/// The SQL text of `query` in the engine dialect.
pub fn sql_text(query: QueryId) -> &'static str {
    match query {
        QueryId::Q1 => Q01,
        QueryId::Q3 => Q03,
        QueryId::Q4 => Q04,
        QueryId::Q5 => Q05,
        QueryId::Q6 => Q06,
        QueryId::Q7 => Q07,
        QueryId::Q8 => Q08,
        QueryId::Q9 => Q09,
        QueryId::Q10 => Q10,
        QueryId::Q12 => Q12,
        QueryId::Q14 => Q14,
        QueryId::Q17 => Q17,
        QueryId::Q18 => Q18,
        QueryId::Q19 => Q19,
    }
}

const Q01: &str = "\
SELECT l_returnflag, l_linestatus,
       SUM(l_quantity) AS sum_qty,
       SUM(l_extendedprice) AS sum_base_price,
       SUM(l_extendedprice * (1.0 - l_discount)) AS sum_disc_price,
       SUM(l_extendedprice * (1.0 - l_discount) * (1.0 + l_tax)) AS sum_charge,
       AVG(l_quantity) AS avg_qty,
       AVG(l_extendedprice) AS avg_price,
       AVG(l_discount) AS avg_disc,
       COUNT(*) AS count_order
FROM lineitem
WHERE l_shipdate <= DATE '1998-09-02'
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus";

const Q03: &str = "\
SELECT l_orderkey, o_orderdate, o_shippriority,
       SUM(l_extendedprice * (1.0 - l_discount)) AS revenue
FROM lineitem, orders, customer
WHERE l_orderkey = o_orderkey
  AND c_custkey = o_custkey
  AND c_mktsegment = 'BUILDING'
  AND o_orderdate < DATE '1995-03-15'
  AND l_shipdate > DATE '1995-03-15'
GROUP BY l_orderkey, o_orderdate, o_shippriority
ORDER BY revenue DESC, o_orderdate
LIMIT 10";

const Q04: &str = "\
SELECT o_orderpriority, COUNT(*) AS order_count
FROM orders
WHERE o_orderdate >= DATE '1993-07-01'
  AND o_orderdate < DATE '1993-10-01'
  AND o_orderkey IN
      (SELECT l_orderkey FROM lineitem WHERE l_commitdate < l_receiptdate)
GROUP BY o_orderpriority
ORDER BY o_orderpriority";

const Q05: &str = "\
SELECT n_name, SUM(l_extendedprice * (1.0 - l_discount)) AS revenue
FROM lineitem, orders, customer, nation, region, supplier
WHERE l_orderkey = o_orderkey
  AND o_custkey = c_custkey
  AND c_nationkey = n_nationkey
  AND n_regionkey = r_regionkey
  AND r_name = 'ASIA'
  AND s_suppkey = l_suppkey
  AND s_nationkey = c_nationkey
  AND o_orderdate >= DATE '1994-01-01'
  AND o_orderdate < DATE '1995-01-01'
GROUP BY n_name
ORDER BY revenue DESC";

const Q06: &str = "\
SELECT SUM(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= DATE '1994-01-01'
  AND l_shipdate < DATE '1995-01-01'
  AND l_discount BETWEEN 0.05 AND 0.07
  AND l_quantity < 24.0";

const Q07: &str = "\
SELECT supp_nation, cust_nation, l_year, SUM(volume) AS revenue
FROM (SELECT n1.n_name AS supp_nation,
             n2.n_name AS cust_nation,
             EXTRACT(YEAR FROM l_shipdate) AS l_year,
             l_extendedprice * (1.0 - l_discount) AS volume
      FROM lineitem, orders, customer, nation n2, supplier, nation n1
      WHERE o_orderkey = l_orderkey
        AND c_custkey = o_custkey
        AND c_nationkey = n2.n_nationkey
        AND s_suppkey = l_suppkey
        AND s_nationkey = n1.n_nationkey
        AND (n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY'
             OR n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE')
        AND l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31') shipping
GROUP BY supp_nation, cust_nation, l_year
ORDER BY supp_nation, cust_nation, l_year";

const Q08: &str = "\
SELECT o_year,
       SUM(CASE WHEN nation = 'BRAZIL' THEN volume ELSE 0.0 END) / SUM(volume)
           AS mkt_share
FROM (SELECT EXTRACT(YEAR FROM o_orderdate) AS o_year,
             l_extendedprice * (1.0 - l_discount) AS volume,
             n2.n_name AS nation
      FROM lineitem, part, orders, customer, nation n1, region, supplier,
           nation n2
      WHERE p_partkey = l_partkey
        AND o_orderkey = l_orderkey
        AND c_custkey = o_custkey
        AND n1.n_nationkey = c_nationkey
        AND r_regionkey = n1.n_regionkey
        AND r_name = 'AMERICA'
        AND s_suppkey = l_suppkey
        AND n2.n_nationkey = s_nationkey
        AND o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
        AND p_type = 'ECONOMY ANODIZED STEEL') all_nations
GROUP BY o_year
ORDER BY o_year";

const Q09: &str = "\
SELECT n_name, o_year, SUM(amount) AS sum_profit
FROM (SELECT n_name,
             EXTRACT(YEAR FROM o_orderdate) AS o_year,
             l_extendedprice * (1.0 - l_discount)
                 - ps_supplycost * l_quantity AS amount
      FROM lineitem, partsupp, part, orders, supplier, nation
      WHERE ps_partkey = l_partkey
        AND ps_suppkey = l_suppkey
        AND p_partkey = l_partkey
        AND o_orderkey = l_orderkey
        AND s_suppkey = l_suppkey
        AND n_nationkey = s_nationkey
        AND p_name LIKE '%green%') profit
GROUP BY n_name, o_year
ORDER BY n_name, o_year DESC";

const Q10: &str = "\
SELECT o_custkey, revenue, c_name, c_acctbal, c_phone, c_address, c_comment,
       n_name
FROM (SELECT o_custkey, SUM(l_extendedprice * (1.0 - l_discount)) AS revenue
      FROM lineitem, orders
      WHERE l_orderkey = o_orderkey
        AND l_returnflag = 'R'
        AND o_orderdate >= DATE '1993-10-01'
        AND o_orderdate < DATE '1994-01-01'
      GROUP BY o_custkey) cust_rev, customer, nation
WHERE c_custkey = o_custkey
  AND n_nationkey = c_nationkey
ORDER BY revenue DESC
LIMIT 20";

const Q12: &str = "\
SELECT l_shipmode,
       SUM(CASE WHEN o_orderpriority IN ('1-URGENT', '2-HIGH')
                THEN 1 ELSE 0 END) AS high_line_count,
       SUM(CASE WHEN o_orderpriority IN ('1-URGENT', '2-HIGH')
                THEN 0 ELSE 1 END) AS low_line_count
FROM orders, lineitem
WHERE o_orderkey = l_orderkey
  AND l_shipmode IN ('MAIL', 'SHIP')
  AND l_commitdate < l_receiptdate
  AND l_shipdate < l_commitdate
  AND l_receiptdate >= DATE '1994-01-01'
  AND l_receiptdate < DATE '1995-01-01'
GROUP BY l_shipmode
ORDER BY l_shipmode";

const Q14: &str = "\
SELECT 100.0 * SUM(CASE WHEN p_type LIKE 'PROMO%'
                        THEN l_extendedprice * (1.0 - l_discount)
                        ELSE 0.0 END)
             / SUM(l_extendedprice * (1.0 - l_discount)) AS promo_share
FROM lineitem, part
WHERE l_partkey = p_partkey
  AND l_shipdate >= DATE '1995-09-01'
  AND l_shipdate < DATE '1995-10-01'";

const Q17: &str = "\
SELECT sum_ext / 7.0 AS avg_yearly
FROM (SELECT SUM(l_extendedprice) AS sum_ext
      FROM lineitem, part,
           (SELECT l_partkey AS a_partkey, AVG(l_quantity) AS avg_qty
            FROM lineitem, part
            WHERE p_partkey = l_partkey
              AND p_brand = 'Brand#23'
              AND p_container = 'MED BOX'
            GROUP BY l_partkey) pq
      WHERE p_partkey = l_partkey
        AND p_brand = 'Brand#23'
        AND p_container = 'MED BOX'
        AND a_partkey = l_partkey
        AND l_quantity < 0.2 * avg_qty) t";

const Q18: &str = "\
SELECT o_custkey, o_orderkey, o_orderdate, o_totalprice, sum_qty, c_name
FROM orders,
     (SELECT l_orderkey, SUM(l_quantity) AS sum_qty
      FROM lineitem
      GROUP BY l_orderkey
      HAVING SUM(l_quantity) > 140.0) big,
     customer
WHERE l_orderkey = o_orderkey
  AND c_custkey = o_custkey
ORDER BY o_totalprice DESC, o_orderdate
LIMIT 100";

const Q19: &str = "\
SELECT SUM(l_extendedprice * (1.0 - l_discount)) AS revenue
FROM lineitem, part
WHERE p_partkey = l_partkey
  AND l_shipmode IN ('AIR', 'AIR REG')
  AND l_shipinstruct = 'DELIVER IN PERSON'
  AND (p_brand = 'Brand#12'
       AND p_container IN ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')
       AND l_quantity BETWEEN 1.0 AND 11.0
       AND p_size BETWEEN 1 AND 5
       OR p_brand = 'Brand#23'
       AND p_container IN ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK')
       AND l_quantity BETWEEN 10.0 AND 20.0
       AND p_size BETWEEN 1 AND 10
       OR p_brand = 'Brand#34'
       AND p_container IN ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG')
       AND l_quantity BETWEEN 20.0 AND 30.0
       AND p_size BETWEEN 1 AND 15)";
