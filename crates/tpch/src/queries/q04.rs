//! TPC-H Q4: order priority checking — an EXISTS realized as a hash
//! **semi join** (orders probing a table built on late lineitems).

use crate::dbgen::TpchDb;
use crate::schema::{li, ord};
use uot_core::{JoinType, PlanBuilder, QueryPlan, Result, SortKey, Source};
use uot_expr::{between_half_open, cmp, col, AggSpec, CmpOp};
use uot_storage::date_from_ymd;
use uot_storage::Value;

/// Build the Q4 plan.
pub fn plan(db: &TpchDb) -> Result<QueryPlan> {
    let mut pb = PlanBuilder::new();
    let l = pb.select(
        Source::Table(db.lineitem()),
        cmp(col(li::COMMITDATE), CmpOp::Lt, col(li::RECEIPTDATE)),
        vec![col(li::ORDERKEY)],
        &["l_orderkey"],
    )?;
    let b_l = pb.build_hash(Source::Op(l), vec![0], vec![])?;
    let o = pb.select(
        Source::Table(db.orders()),
        between_half_open(
            col(ord::ORDERDATE),
            Value::Date(date_from_ymd(1993, 7, 1)),
            Value::Date(date_from_ymd(1993, 10, 1)),
        ),
        vec![col(ord::ORDERKEY), col(ord::ORDERPRIORITY)],
        &["o_orderkey", "o_orderpriority"],
    )?;
    let p = pb.probe(Source::Op(o), b_l, vec![0], vec![1], vec![], JoinType::Semi)?;
    let a = pb.aggregate(
        Source::Op(p),
        vec![0],
        vec![AggSpec::count_star()],
        &["order_count"],
    )?;
    let so = pb.sort(Source::Op(a), vec![SortKey::asc(0)], None)?;
    pb.build(so)
}
