//! Shared helpers for query plan construction.

use uot_expr::ScalarExpr;
use uot_storage::date_from_ymd;
use uot_storage::Value;

/// A date literal expression.
pub(crate) fn dl(y: i32, m: u32, d: u32) -> ScalarExpr {
    ScalarExpr::Literal(Value::Date(date_from_ymd(y, m, d)))
}

/// `l_extendedprice * (1 - l_discount)` over (ext, disc) column indices.
pub(crate) fn revenue(ext: usize, disc: usize) -> ScalarExpr {
    uot_expr::col(ext).mul(uot_expr::lit(1.0).sub(uot_expr::col(disc)))
}
