//! TPC-H Q8: national market share — the CASE-based conditional aggregate
//! (`sum(case when nation = 'BRAZIL' then volume else 0) / sum(volume)`).

use super::util::{dl, revenue};
use crate::dbgen::TpchDb;
use crate::schema::{cust, li, nat, ord, part, reg, supp};
use uot_core::{JoinType, PlanBuilder, QueryPlan, Result, SortKey, Source};
use uot_expr::{cmp, col, lit, AggSpec, CmpOp, Predicate, ScalarExpr};

/// Build the Q8 plan.
pub fn plan(db: &TpchDb) -> Result<QueryPlan> {
    let mut pb = PlanBuilder::new();
    // AMERICA customers
    let r = pb.select(
        Source::Table(db.region()),
        Predicate::StrEq {
            col: reg::NAME,
            value: "AMERICA".into(),
        },
        vec![col(reg::REGIONKEY)],
        &["r_regionkey"],
    )?;
    let b_r = pb.build_hash(Source::Op(r), vec![0], vec![])?;
    let n = pb.probe(
        Source::Table(db.nation()),
        b_r,
        vec![nat::REGIONKEY],
        vec![nat::NATIONKEY],
        vec![],
        JoinType::Inner,
    )?;
    let b_n = pb.build_hash(Source::Op(n), vec![0], vec![])?;
    let c = pb.probe(
        Source::Table(db.customer()),
        b_n,
        vec![cust::NATIONKEY],
        vec![cust::CUSTKEY],
        vec![],
        JoinType::Inner,
    )?;
    let b_c = pb.build_hash(Source::Op(c), vec![0], vec![])?;
    // orders in 1995-1996 from those customers
    let o = pb.select(
        Source::Table(db.orders()),
        cmp(col(ord::ORDERDATE), CmpOp::Ge, dl(1995, 1, 1)).and(cmp(
            col(ord::ORDERDATE),
            CmpOp::Le,
            dl(1996, 12, 31),
        )),
        vec![
            col(ord::ORDERKEY),
            col(ord::CUSTKEY),
            ScalarExpr::Col(ord::ORDERDATE).year(),
        ],
        &["o_orderkey", "o_custkey", "o_year"],
    )?;
    let p_o = pb.probe(
        Source::Op(o),
        b_c,
        vec![1],
        vec![0, 2],
        vec![],
        JoinType::Inner,
    )?;
    // (o_orderkey, o_year)
    let b_o = pb.build_hash(Source::Op(p_o), vec![0], vec![1])?;
    // parts of the target type
    let pa = pb.select(
        Source::Table(db.part()),
        Predicate::StrEq {
            col: part::TYPE,
            value: "ECONOMY ANODIZED STEEL".into(),
        },
        vec![col(part::PARTKEY)],
        &["p_partkey"],
    )?;
    let b_p = pb.build_hash(Source::Op(pa), vec![0], vec![])?;
    // lineitem joined to part, orders, supplier-nation
    let l = pb.select(
        Source::Table(db.lineitem()),
        Predicate::True,
        vec![
            col(li::ORDERKEY),
            col(li::PARTKEY),
            col(li::SUPPKEY),
            revenue(li::EXTENDEDPRICE, li::DISCOUNT),
        ],
        &["l_orderkey", "l_partkey", "l_suppkey", "volume"],
    )?;
    let pl1 = pb.probe(
        Source::Op(l),
        b_p,
        vec![1],
        vec![0, 2, 3],
        vec![],
        JoinType::Inner,
    )?;
    // (l_orderkey, l_suppkey, volume)
    let pl2 = pb.probe(
        Source::Op(pl1),
        b_o,
        vec![0],
        vec![1, 2],
        vec![0],
        JoinType::Inner,
    )?;
    // (l_suppkey, volume, o_year)
    let b_s = pb.build_hash(
        Source::Table(db.supplier()),
        vec![supp::SUPPKEY],
        vec![supp::NATIONKEY],
    )?;
    let pl3 = pb.probe(
        Source::Op(pl2),
        b_s,
        vec![0],
        vec![1, 2],
        vec![0],
        JoinType::Inner,
    )?;
    // (volume, o_year, s_nationkey)
    let b_nn = pb.build_hash(
        Source::Table(db.nation()),
        vec![nat::NATIONKEY],
        vec![nat::NAME],
    )?;
    let pl4 = pb.probe(
        Source::Op(pl3),
        b_nn,
        vec![2],
        vec![0, 1],
        vec![0],
        JoinType::Inner,
    )?;
    // (volume, o_year, n_name)
    let brazil = ScalarExpr::case_when(
        Predicate::StrEq {
            col: 2,
            value: "BRAZIL".into(),
        },
        col(0),
        lit(0.0),
    );
    let a = pb.aggregate(
        Source::Op(pl4),
        vec![1],
        vec![AggSpec::sum(brazil), AggSpec::sum(col(0))],
        &["brazil_volume", "total_volume"],
    )?;
    // (o_year, brazil_volume, total_volume) -> share
    let share = pb.select(
        Source::Op(a),
        Predicate::True,
        vec![col(0), col(1).div(col(2))],
        &["o_year", "mkt_share"],
    )?;
    let so = pb.sort(Source::Op(share), vec![SortKey::asc(0)], None)?;
    pb.build(so)
}
