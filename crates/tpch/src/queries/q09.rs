//! TPC-H Q9: product type profit measure — the widest join fan in the
//! implemented suite (part, partsupp, lineitem, orders, supplier, nation)
//! with a substring filter on `p_name` and a computed profit expression.

use crate::dbgen::TpchDb;
use crate::schema::{li, nat, ord, part, ps, supp};
use uot_core::{JoinType, PlanBuilder, QueryPlan, Result, SortKey, Source};
use uot_expr::{col, lit, AggSpec, Predicate, ScalarExpr};

/// Build the Q9 plan.
pub fn plan(db: &TpchDb) -> Result<QueryPlan> {
    let mut pb = PlanBuilder::new();
    // parts whose name mentions "green"
    let pa = pb.select(
        Source::Table(db.part()),
        Predicate::StrContains {
            col: part::NAME,
            needle: "green".into(),
        },
        vec![col(part::PARTKEY)],
        &["p_partkey"],
    )?;
    let b_pa = pb.build_hash(Source::Op(pa), vec![0], vec![])?;
    // partsupp restricted to those parts, keyed (partkey, suppkey)
    let pssel = pb.probe(
        Source::Table(db.partsupp()),
        b_pa,
        vec![ps::PARTKEY],
        vec![ps::PARTKEY, ps::SUPPKEY, ps::SUPPLYCOST],
        vec![],
        JoinType::Inner,
    )?;
    let b_ps = pb.build_hash(Source::Op(pssel), vec![0, 1], vec![2])?;
    // lineitem joined on the composite key; supplycost attached
    let l = pb.select(
        Source::Table(db.lineitem()),
        Predicate::True,
        vec![
            col(li::ORDERKEY),
            col(li::PARTKEY),
            col(li::SUPPKEY),
            col(li::QUANTITY),
            col(li::EXTENDEDPRICE),
            col(li::DISCOUNT),
        ],
        &["l_orderkey", "l_partkey", "l_suppkey", "qty", "ext", "disc"],
    )?;
    let p1 = pb.probe(
        Source::Op(l),
        b_ps,
        vec![1, 2],
        vec![0, 2, 3, 4, 5],
        vec![0],
        JoinType::Inner,
    )?;
    // (l_orderkey, l_suppkey, qty, ext, disc, ps_supplycost)
    // amount = ext*(1-disc) - supplycost*qty, folded with the projection
    let amount = col(3).mul(lit(1.0).sub(col(4))).sub(col(5).mul(col(2)));
    let am = pb.select(
        Source::Op(p1),
        Predicate::True,
        vec![col(0), col(1), amount],
        &["l_orderkey", "l_suppkey", "amount"],
    )?;
    // orders for the year
    let b_o = pb.build_hash(
        Source::Table(db.orders()),
        vec![ord::ORDERKEY],
        vec![ord::ORDERDATE],
    )?;
    let p2 = pb.probe(
        Source::Op(am),
        b_o,
        vec![0],
        vec![1, 2],
        vec![0],
        JoinType::Inner,
    )?;
    // (l_suppkey, amount, o_orderdate)
    let ym = pb.select(
        Source::Op(p2),
        Predicate::True,
        vec![col(0), col(1), ScalarExpr::Col(2).year()],
        &["l_suppkey", "amount", "o_year"],
    )?;
    // supplier -> nation name
    let b_s = pb.build_hash(
        Source::Table(db.supplier()),
        vec![supp::SUPPKEY],
        vec![supp::NATIONKEY],
    )?;
    let p3 = pb.probe(
        Source::Op(ym),
        b_s,
        vec![0],
        vec![1, 2],
        vec![0],
        JoinType::Inner,
    )?;
    // (amount, o_year, s_nationkey)
    let b_n = pb.build_hash(
        Source::Table(db.nation()),
        vec![nat::NATIONKEY],
        vec![nat::NAME],
    )?;
    let p4 = pb.probe(
        Source::Op(p3),
        b_n,
        vec![2],
        vec![0, 1],
        vec![0],
        JoinType::Inner,
    )?;
    // (amount, o_year, n_name)
    let a = pb.aggregate(
        Source::Op(p4),
        vec![2, 1],
        vec![AggSpec::sum(col(0))],
        &["sum_profit"],
    )?;
    let so = pb.sort(Source::Op(a), vec![SortKey::asc(0), SortKey::desc(1)], None)?;
    pb.build(so)
}
