//! Correctness of the TPC-H plans.
//!
//! Two layers of evidence:
//! 1. **Reference checks** — Q1 and Q6 are recomputed naively from the raw
//!    generated rows and compared exactly.
//! 2. **Invariance** — every query returns identical rows for low UoT,
//!    mid UoT and table UoT, for serial and parallel execution, and for
//!    row- vs column-store base tables (the engine-level guarantee the
//!    paper's performance study relies on).

use std::collections::BTreeMap;
use uot_core::{Engine, EngineConfig, ExecMode, Uot};
use uot_storage::{date_from_ymd, BlockFormat, Value};
use uot_tpch::schema::li;
use uot_tpch::{all_queries, build_query, QueryId, TpchConfig, TpchDb};

fn db() -> TpchDb {
    TpchDb::generate(TpchConfig {
        scale_factor: 0.003,
        block_bytes: 8 * 1024,
        format: BlockFormat::Column,
        seed: 42,
    })
}

fn run(db: &TpchDb, q: QueryId, cfg: EngineConfig) -> Vec<Vec<Value>> {
    let plan = build_query(q, db).expect("plan builds");
    let r = Engine::new(cfg).execute(plan).expect("query runs");
    r.sorted_rows()
}

/// Compare result sets, allowing floating-point aggregates to differ by
/// summation order (different UoTs partition the partial sums differently).
fn assert_rows_approx_eq(a: &[Vec<Value>], b: &[Vec<Value>], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: row counts differ");
    for (i, (ra, rb)) in a.iter().zip(b).enumerate() {
        assert_eq!(ra.len(), rb.len(), "{context}: row {i} arity");
        for (x, y) in ra.iter().zip(rb) {
            match (x, y) {
                (Value::F64(p), Value::F64(q)) => {
                    let tol = 1e-9 * p.abs().max(q.abs()).max(1.0);
                    assert!((p - q).abs() <= tol, "{context}: row {i}: {p} vs {q}");
                }
                _ => assert_eq!(x, y, "{context}: row {i}"),
            }
        }
    }
}

#[test]
fn q6_matches_reference() {
    let db = db();
    let lo = date_from_ymd(1994, 1, 1);
    let hi = date_from_ymd(1995, 1, 1);
    let mut expect = 0.0f64;
    for b in db.lineitem().blocks() {
        for r in 0..b.num_rows() {
            let ship = b.date_at(r, li::SHIPDATE);
            let disc = b.f64_at(r, li::DISCOUNT);
            let qty = b.f64_at(r, li::QUANTITY);
            if ship >= lo && ship < hi && (0.05..=0.07).contains(&disc) && qty < 24.0 {
                expect += b.f64_at(r, li::EXTENDEDPRICE) * disc;
            }
        }
    }
    let rows = run(&db, QueryId::Q6, EngineConfig::serial());
    assert_eq!(rows.len(), 1);
    let got = rows[0][0].as_f64();
    assert!(
        (got - expect).abs() < 1e-6 * expect.abs().max(1.0),
        "{got} vs {expect}"
    );
    assert!(expect > 0.0, "workload should select something");
}

#[test]
fn q1_matches_reference() {
    let db = db();
    let cut = date_from_ymd(1998, 9, 2);
    // (returnflag, linestatus) -> (sum_qty, sum_base, sum_disc_price, sum_charge, count)
    type Q1Groups = BTreeMap<(String, String), (f64, f64, f64, f64, i64)>;
    let mut groups: Q1Groups = BTreeMap::new();
    for b in db.lineitem().blocks() {
        for r in 0..b.num_rows() {
            if b.date_at(r, li::SHIPDATE) > cut {
                continue;
            }
            let rf = String::from_utf8_lossy(b.char_at(r, li::RETURNFLAG)).to_string();
            let ls = String::from_utf8_lossy(b.char_at(r, li::LINESTATUS)).to_string();
            let qty = b.f64_at(r, li::QUANTITY);
            let ext = b.f64_at(r, li::EXTENDEDPRICE);
            let disc = b.f64_at(r, li::DISCOUNT);
            let tax = b.f64_at(r, li::TAX);
            let e = groups.entry((rf, ls)).or_insert((0.0, 0.0, 0.0, 0.0, 0));
            e.0 += qty;
            e.1 += ext;
            e.2 += ext * (1.0 - disc);
            e.3 += ext * (1.0 - disc) * (1.0 + tax);
            e.4 += 1;
        }
    }
    let rows = run(&db, QueryId::Q1, EngineConfig::serial());
    assert_eq!(rows.len(), groups.len());
    for row in &rows {
        let key = (row[0].as_str().to_string(), row[1].as_str().to_string());
        let e = groups.get(&key).expect("group exists");
        let close = |a: f64, b: f64| (a - b).abs() < 1e-6 * b.abs().max(1.0);
        assert!(close(row[2].as_f64(), e.0), "sum_qty {key:?}");
        assert!(close(row[3].as_f64(), e.1), "sum_base {key:?}");
        assert!(close(row[4].as_f64(), e.2), "sum_disc_price {key:?}");
        assert!(close(row[5].as_f64(), e.3), "sum_charge {key:?}");
        assert_eq!(row[9].as_i64(), e.4, "count {key:?}");
        assert!(close(row[6].as_f64(), e.0 / e.4 as f64), "avg_qty {key:?}");
    }
    // TPC-H Q1 famously produces exactly 4 groups (A/F, N/F, N/O, R/F).
    assert_eq!(rows.len(), 4);
}

#[test]
fn all_queries_run_and_return_rows() {
    let db = db();
    for q in all_queries() {
        let rows = run(&db, q, EngineConfig::serial());
        // Every query should produce at least one row on generated data
        // (scalar aggregates always do; the others are checked to have
        // matching data by construction of the generator).
        assert!(!rows.is_empty(), "{} returned no rows", q.label());
    }
}

#[test]
fn results_invariant_across_uot_and_mode() {
    let db = db();
    for q in all_queries() {
        let reference = run(&db, q, EngineConfig::serial());
        for uot in [Uot::Blocks(1), Uot::Blocks(4), Uot::Table] {
            for mode in [ExecMode::Serial, ExecMode::Parallel { workers: 4 }] {
                let cfg = EngineConfig {
                    mode,
                    default_uot: uot,
                    block_bytes: 4 * 1024,
                    ..Default::default()
                };
                let rows = run(&db, q, cfg);
                assert_rows_approx_eq(
                    &rows,
                    &reference,
                    &format!("{} under {uot} {mode:?}", q.label()),
                );
            }
        }
    }
}

#[test]
fn results_invariant_across_base_format() {
    let col_db = db();
    let row_db = TpchDb::generate(TpchConfig {
        scale_factor: 0.003,
        block_bytes: 8 * 1024,
        format: BlockFormat::Row,
        seed: 42,
    });
    for q in all_queries() {
        let a = run(&col_db, q, EngineConfig::serial());
        let b = run(&row_db, q, EngineConfig::serial());
        assert_rows_approx_eq(&a, &b, &format!("{} across base formats", q.label()));
    }
}

#[test]
fn sorted_queries_respect_order_and_limits() {
    let db = db();
    // Q3: top 10 by revenue desc
    let plan = build_query(QueryId::Q3, &db).unwrap();
    let r = Engine::new(EngineConfig::parallel(4))
        .execute(plan)
        .unwrap();
    let rows = r.rows();
    assert!(rows.len() <= 10);
    for w in rows.windows(2) {
        assert!(w[0][3].as_f64() >= w[1][3].as_f64(), "Q3 revenue order");
    }
    // Q10: top 20 by revenue desc
    let plan = build_query(QueryId::Q10, &db).unwrap();
    let r = Engine::new(EngineConfig::serial()).execute(plan).unwrap();
    let rows = r.rows();
    assert!(rows.len() <= 20);
    for w in rows.windows(2) {
        assert!(w[0][1].as_f64() >= w[1][1].as_f64(), "Q10 revenue order");
    }
}

#[test]
fn q4_semi_join_counts_orders_not_lineitems() {
    let db = db();
    let rows = run(&db, QueryId::Q4, EngineConfig::serial());
    // counts per priority must not exceed the total number of orders in the
    // quarter, and there are at most 5 priorities.
    assert!(rows.len() <= 5);
    let total: i64 = rows.iter().map(|r| r[1].as_i64()).sum();
    let quarter_orders = {
        use uot_tpch::schema::ord;
        let lo = date_from_ymd(1993, 7, 1);
        let hi = date_from_ymd(1993, 10, 1);
        let mut n = 0i64;
        for b in db.orders().blocks() {
            for r in 0..b.num_rows() {
                let d = b.date_at(r, ord::ORDERDATE);
                if d >= lo && d < hi {
                    n += 1;
                }
            }
        }
        n
    };
    assert!(total <= quarter_orders);
    assert!(total > 0);
}

#[test]
fn q8_share_is_a_fraction() {
    let db = db();
    let rows = run(&db, QueryId::Q8, EngineConfig::serial());
    for r in &rows {
        let share = r[1].as_f64();
        assert!((0.0..=1.0).contains(&share), "market share {share}");
        let year = r[0].as_i32();
        assert!((1995..=1996).contains(&year));
    }
}

#[test]
fn q14_promo_share_is_a_percentage() {
    let db = db();
    let rows = run(&db, QueryId::Q14, EngineConfig::serial());
    assert_eq!(rows.len(), 1);
    let pct = rows[0][0].as_f64();
    assert!((0.0..=100.0).contains(&pct), "promo share {pct}");
    // the generator gives PROMO 1/6 of types; expect a non-trivial share
    assert!(pct > 2.0);
}

#[test]
fn q12_partitions_counts() {
    let db = db();
    let rows = run(&db, QueryId::Q12, EngineConfig::serial());
    assert_eq!(rows.len(), 2); // MAIL and SHIP
    for r in &rows {
        let high = r[1].as_i64();
        let low = r[2].as_i64();
        assert!(high >= 0 && low >= 0);
        assert!(high + low > 0);
    }
}

#[test]
fn lip_variants_agree_with_plain_plans() {
    let db = db();
    for q in [QueryId::Q3, QueryId::Q10] {
        let plain = run(&db, q, EngineConfig::serial());
        let plan = uot_tpch::build_query_lip(q, &db).expect("lip plan builds");
        let r = Engine::new(EngineConfig::serial())
            .execute(plan)
            .expect("runs");
        assert_rows_approx_eq(&r.sorted_rows(), &plain, &format!("{} with LIP", q.label()));
        // the lineitem scan must actually have pruned something
        let sel = r
            .metrics
            .ops
            .iter()
            .find(|o| o.name == "select(lineitem)")
            .expect("lineitem select present");
        assert!(sel.lip_pruned_rows > 0, "{} pruned nothing", q.label());
    }
}
