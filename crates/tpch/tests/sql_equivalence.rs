//! SQL front door vs. hand-built plans: byte-identical results.
//!
//! For every implemented TPC-H query, compiling the dialect SQL text
//! (`sql_text`) through `uot_core::sql::compile` and executing it must
//! produce exactly the same output as the hand-built constructor plan
//! (`build_query`): same output column names, same rows, same row order,
//! bit-identical floats. Serial execution makes row order deterministic on
//! both paths; float aggregates then accumulate in the same order, so `==`
//! on `Value::F64` is the right comparison (not an epsilon).

use uot_core::{compile, Engine, EngineConfig};
use uot_tpch::{all_queries, build_query, sql_text, TpchConfig, TpchDb};

fn db() -> TpchDb {
    TpchDb::generate(TpchConfig {
        scale_factor: 0.004,
        block_bytes: 16 * 1024,
        seed: 7,
        ..TpchConfig::default()
    })
}

#[test]
fn sql_plans_match_constructor_plans_byte_for_byte() {
    let db = db();
    let engine = Engine::new(EngineConfig::serial());
    for q in all_queries() {
        let ctor_plan = build_query(q, &db).expect("constructor plan");
        let sql_plan = compile(sql_text(q), db.catalog())
            .unwrap_or_else(|e| panic!("{}: SQL failed to compile: {e}", q.label()));

        let ctor = engine.execute(ctor_plan).expect("constructor execution");
        let sql = engine.execute(sql_plan).expect("SQL execution");

        let ctor_names: Vec<&str> = ctor
            .schema
            .columns()
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        let sql_names: Vec<&str> = sql
            .schema
            .columns()
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(
            sql_names,
            ctor_names,
            "{}: output schema names differ",
            q.label()
        );

        let ctor_rows = ctor.rows();
        let sql_rows = sql.rows();
        assert_eq!(
            sql_rows.len(),
            ctor_rows.len(),
            "{}: row count differs",
            q.label()
        );
        for (i, (s, c)) in sql_rows.iter().zip(ctor_rows.iter()).enumerate() {
            assert_eq!(s, c, "{}: row {i} differs", q.label());
        }
        assert!(
            !ctor_rows.is_empty(),
            "{}: empty result — data set too small to exercise the plan",
            q.label()
        );
    }
}

#[test]
fn sql_results_stable_across_parallel_execution_where_deterministic() {
    // Q4's output (order priority, count) is order-independent under
    // aggregation and fully ordered by the sort, so even parallel execution
    // must match the serial constructor result exactly.
    let db = db();
    let serial = Engine::new(EngineConfig::serial())
        .execute(build_query(uot_tpch::QueryId::Q4, &db).unwrap())
        .unwrap();
    let parallel = Engine::new(EngineConfig::default())
        .execute(compile(sql_text(uot_tpch::QueryId::Q4), db.catalog()).unwrap())
        .unwrap();
    assert_eq!(parallel.rows(), serial.rows());
}
