//! Tests for the extracted operator chains (Figs. 5/6 substrate) and the
//! selectivity/projectivity analysis (Tables III/IV substrate).

use uot_core::{Engine, EngineConfig, Uot};
use uot_storage::BlockFormat;
use uot_tpch::analysis::{average, lineitem_cases, measure, orders_cases};
use uot_tpch::{chain_specs, TpchConfig, TpchDb};

fn db() -> TpchDb {
    TpchDb::generate(TpchConfig {
        scale_factor: 0.003,
        block_bytes: 8 * 1024,
        format: BlockFormat::Column,
        seed: 11,
    })
}

#[test]
fn chains_build_and_run_under_both_uots() {
    let db = db();
    let chains = chain_specs(&db).unwrap();
    assert!(chains.len() >= 7);
    for spec in &chains {
        // Staged execution: the per-operator work-order assertions below
        // count probe/select work orders, which fused pipelines fold into
        // the chain head.
        let low = Engine::new(
            EngineConfig::serial()
                .with_uot(Uot::LOW)
                .with_fusion(uot_core::FusionPolicy::Never),
        )
        .execute(spec.plan.clone().with_uniform_uot(Uot::LOW))
        .unwrap();
        let high = Engine::new(
            EngineConfig::serial()
                .with_uot(Uot::HIGH)
                .with_fusion(uot_core::FusionPolicy::Never),
        )
        .execute(spec.plan.clone().with_uniform_uot(Uot::HIGH))
        .unwrap();
        assert_eq!(
            low.sorted_rows(),
            high.sorted_rows(),
            "chain {} differs across UoT",
            spec.name
        );
        // the probe is the sink and must have run work orders
        assert!(
            low.metrics.ops[spec.probe_op].work_orders > 0,
            "{}",
            spec.name
        );
        assert!(low.metrics.ops[spec.select_op].work_orders > 0);
        assert!(low.metrics.ops[spec.build_op].work_orders > 0);
    }
}

#[test]
fn q07_chains_have_contrasting_hash_table_sizes() {
    let db = db();
    let chains = chain_specs(&db).unwrap();
    let large = chains.iter().find(|c| c.name == "Q07-large-ht").unwrap();
    let small = chains.iter().find(|c| c.name == "Q07-small-ht").unwrap();
    let run = |spec: &uot_tpch::ChainSpec| {
        Engine::new(EngineConfig::serial())
            .execute(spec.plan.clone())
            .unwrap()
            .metrics
            .hash_table_bytes[0]
            .1
    };
    let lb = run(large);
    let sb = run(small);
    assert!(
        lb > 10 * sb,
        "orders hash table ({lb}B) should dwarf supplier's ({sb}B)"
    );
}

#[test]
fn table3_lineitem_profile_matches_paper_regime() {
    let db = TpchDb::generate(TpchConfig::scale(0.005));
    let rows: Vec<_> = lineitem_cases()
        .iter()
        .map(|c| measure(&db, c).unwrap())
        .collect();
    let by = |q: &str| rows.iter().find(|r| r.query == q).unwrap();

    // Paper Table III: Q03 s=53.9, Q07 s=30.4, Q10 s=24.7.
    assert!((45.0..65.0).contains(&by("Q03").selectivity_pct));
    assert!((25.0..36.0).contains(&by("Q07").selectivity_pct));
    assert!((18.0..32.0).contains(&by("Q10").selectivity_pct));
    // Q19's shipmode/instruct filters land well under 10%.
    assert!(by("Q19").selectivity_pct < 10.0);
    // Projectivity is low for every case (the paper's point).
    for r in &rows {
        assert!(
            r.projectivity_pct < 25.0,
            "{}: projectivity {}",
            r.query,
            r.projectivity_pct
        );
        assert!(r.total_pct <= r.selectivity_pct);
    }
    // The headline: average total memory reduction is a few percent.
    let avg = average(&rows);
    assert!(
        avg.total_pct < 10.0,
        "average lineitem reduction {}",
        avg.total_pct
    );
}

#[test]
fn table4_orders_profile_matches_paper_regime() {
    let db = TpchDb::generate(TpchConfig::scale(0.005));
    let rows: Vec<_> = orders_cases()
        .iter()
        .map(|c| measure(&db, c).unwrap())
        .collect();
    let by = |q: &str| rows.iter().find(|r| r.query == q).unwrap();
    // Paper Table IV: Q03 48.6, Q04 3.8, Q05 15.2, Q08 30.4, Q10 3.8, Q21 48.7.
    assert!((40.0..60.0).contains(&by("Q03").selectivity_pct));
    assert!((2.0..7.0).contains(&by("Q04").selectivity_pct));
    assert!((10.0..20.0).contains(&by("Q05").selectivity_pct));
    assert!((24.0..36.0).contains(&by("Q08").selectivity_pct));
    assert!((2.0..7.0).contains(&by("Q10").selectivity_pct));
    assert!((35.0..60.0).contains(&by("Q21").selectivity_pct));
    let avg = average(&rows);
    // Paper average: 1.8% total.
    assert!(
        avg.total_pct < 6.0,
        "average orders reduction {}",
        avg.total_pct
    );
}

#[test]
fn average_of_empty_is_zero() {
    let avg = average(&[]);
    assert_eq!(avg.selectivity_pct, 0.0);
    assert_eq!(avg.total_pct, 0.0);
}
