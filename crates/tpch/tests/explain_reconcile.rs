//! `EXPLAIN ANALYZE` reconciliation: the annotated tree attached to every
//! [`QueryResult`](uot_core::QueryResult) must agree *exactly* with the other
//! two sources of truth about the same execution — the per-operator
//! [`QueryMetrics`] aggregates and the structured trace — across TPC-H
//! queries, execution modes and UoTs. Explain is a pure fold of plan +
//! metrics, so any disagreement means double counting or dropped events
//! somewhere in the scheduler's accounting.

use uot_core::{Engine, EngineConfig, ExecMode, Source, TraceConfig, TraceEventKind, Uot};
use uot_storage::BlockFormat;
use uot_tpch::{build_query, sql_text, QueryId, TpchConfig, TpchDb};

fn db() -> TpchDb {
    TpchDb::generate(TpchConfig {
        scale_factor: 0.005,
        block_bytes: 8 * 1024,
        format: BlockFormat::Column,
        seed: 7,
    })
}

/// Cross-check one executed query: explain vs metrics (field-exact), explain
/// vs trace (work-order counts), and edge flow vs consumer input accounting.
fn reconcile(db: &TpchDb, q: QueryId, cfg: EngineConfig, label: &str) {
    let plan = build_query(q, db).expect("plan builds");
    let r = Engine::new(cfg).execute(plan.clone()).expect("query runs");
    let m = &r.metrics;
    let ex = r.explain.as_ref().expect("explain is always attached");

    // Shape: one annotation per plan operator, rooted at the sink.
    assert_eq!(ex.ops.len(), plan.len(), "{label}: op count");
    assert_eq!(ex.root, plan.sink(), "{label}: root");

    // Field-exact agreement with QueryMetrics, operator by operator.
    for (id, (op, om)) in ex.ops.iter().zip(m.ops.iter()).enumerate() {
        let ctx = format!("{label}: op {id} ({})", op.name);
        assert_eq!(op.id, id, "{ctx}: id");
        assert_eq!(op.name, om.name, "{ctx}: name");
        assert_eq!(op.kind, om.kind, "{ctx}: kind");
        assert_eq!(op.work_orders, om.work_orders, "{ctx}: work orders");
        assert_eq!(op.input_blocks, om.input_blocks, "{ctx}: input blocks");
        assert_eq!(op.input_rows, om.input_rows, "{ctx}: input rows");
        assert_eq!(op.produced_blocks, om.produced_blocks, "{ctx}: out blocks");
        assert_eq!(op.produced_rows, om.produced_rows, "{ctx}: out rows");
        assert_eq!(op.produced_bytes, om.produced_bytes, "{ctx}: out bytes");
        assert_eq!(op.total_task_time, om.total_task_time, "{ctx}: task time");
        assert_eq!(op.max_task_time, om.max_task_time(), "{ctx}: max task");
        assert_eq!(op.lip_pruned_rows, om.lip_pruned_rows, "{ctx}: lip");
        assert_eq!(&op.edge.rows, &m.edges[id].rows, "{ctx}: edge rows");
        assert_eq!(&op.edge.blocks, &m.edges[id].blocks, "{ctx}: edge blocks");
        assert_eq!(&op.edge.flushes, &m.edges[id].flushes, "{ctx}: flushes");
    }

    // Query-level totals.
    assert_eq!(ex.wall_time, m.wall_time, "{label}: wall time");
    assert_eq!(ex.result_rows, m.result_rows, "{label}: result rows");
    assert_eq!(ex.workers, m.workers, "{label}: workers");
    assert_eq!(
        ex.degradations,
        m.degradations.len(),
        "{label}: degradations"
    );
    assert_eq!(ex.fused_pipelines, m.fused_pipelines, "{label}: fused");
    assert_eq!(ex.spill_events, m.spill_events, "{label}: spills");
    assert_eq!(ex.spilled_bytes, m.spilled_bytes, "{label}: spilled bytes");
    assert_eq!(ex.peak_temp_bytes, m.peak_temp_bytes, "{label}: peak temp");

    // Explain vs the task log and the trace: three independent recordings
    // of "a work order finished" must agree on the total.
    let explain_orders: usize = ex.ops.iter().map(|o| o.work_orders).sum();
    assert_eq!(explain_orders, m.tasks.len(), "{label}: task log total");
    let trace = r.trace.as_ref().expect("tracing was enabled");
    assert_eq!(trace.dropped, 0, "{label}: trace must be complete");
    assert_eq!(
        explain_orders,
        trace.count(|k| matches!(k, TraceEventKind::WorkOrderFinished { .. })),
        "{label}: trace work-order total"
    );

    // Flow conservation: everything a consumer reports as input arrived
    // over the transfer edges that name it as their consumer. Operators
    // that scan a base table additionally count the scanned blocks as
    // input, so for those the edge total is only a lower bound; fused
    // chain interiors see zero on both sides (blocks are pushed, never
    // staged), so the equality still holds for them.
    for (c, om) in m.ops.iter().enumerate() {
        let (rows_in, blocks_in) = ex
            .ops
            .iter()
            .filter(|o| o.edge.consumer == Some(c))
            .fold((0, 0), |(r, b), o| (r + o.edge.rows, b + o.edge.blocks));
        if matches!(plan.ops()[c].kind.stream_source(), Source::Op(_)) {
            assert_eq!(rows_in, om.input_rows, "{label}: rows into op {c}");
            assert_eq!(blocks_in, om.input_blocks, "{label}: blocks into op {c}");
        } else {
            assert!(
                rows_in <= om.input_rows && blocks_in <= om.input_blocks,
                "{label}: op {c} edge input exceeds recorded input"
            );
        }
    }

    // The rendering exists and carries one line per operator at minimum.
    let text = ex.render();
    assert!(
        text.lines().count() > plan.len(),
        "{label}: render too short:\n{text}"
    );
}

#[test]
fn explain_reconciles_across_queries_modes_and_uots() {
    let db = db();
    for q in [QueryId::Q1, QueryId::Q3, QueryId::Q6] {
        for mode in [ExecMode::Serial, ExecMode::Parallel { workers: 4 }] {
            for uot in [Uot::Blocks(1), Uot::Blocks(4), Uot::Table] {
                let cfg = EngineConfig {
                    mode,
                    trace: Some(TraceConfig::default()),
                    ..EngineConfig::default()
                }
                .with_block_bytes(8 * 1024)
                .with_uot(uot);
                let label = format!("{q:?}/{mode:?}/{uot:?}");
                reconcile(&db, q, cfg, &label);
            }
        }
    }
}

/// The SQL front door: `EXPLAIN ANALYZE <stmt>` really runs the statement,
/// returns the annotated tree as its rows, and keeps the real execution's
/// metrics (and explain struct) attached.
#[test]
fn sql_explain_analyze_returns_the_annotated_tree() {
    let db = db();
    let engine = Engine::new(EngineConfig::serial().with_block_bytes(8 * 1024))
        .with_catalog(db.catalog().clone());

    let sql = sql_text(QueryId::Q6);
    let plain = engine.execute_sql(&sql).expect("plain run");
    let explained = engine
        .execute_sql(&format!("EXPLAIN ANALYZE {sql}"))
        .expect("explain analyze run");

    // The statement really executed: its measured result cardinality matches
    // the plain run, even though the returned rows are the plan rendering.
    let ex = explained.explain.as_ref().expect("explain attached");
    assert_eq!(ex.result_rows, plain.metrics.result_rows);
    assert_eq!(explained.metrics.result_rows, plain.metrics.result_rows);
    let total_orders: usize = ex.ops.iter().map(|o| o.work_orders).sum();
    assert!(total_orders > 0, "the inner statement must have run");

    // The visible result is the rendering, one row per line, one column.
    assert_eq!(explained.schema.len(), 1);
    let rows: usize = explained.blocks.iter().map(|b| b.num_rows()).sum();
    assert_eq!(rows, ex.render().lines().count());
}
