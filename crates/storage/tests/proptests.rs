//! Property-based tests for the storage layer invariants:
//! * row/column blocks are interchangeable representations of the same rows,
//! * blocks round-trip arbitrary values exactly,
//! * the table builder partitions any row stream losslessly,
//! * bitmaps behave like the reference `Vec<bool>` model.

use proptest::prelude::*;
use std::sync::Arc;
use uot_storage::{
    Bitmap, BlockFormat, DataType, HashKey, Schema, StorageBlock, TableBuilder, Value,
};

fn arb_value(dtype: DataType) -> BoxedStrategy<Value> {
    match dtype {
        DataType::Int32 => any::<i32>().prop_map(Value::I32).boxed(),
        DataType::Int64 => any::<i64>().prop_map(Value::I64).boxed(),
        DataType::Float64 => {
            // finite, non-NaN floats so equality is well-defined
            (-1e12f64..1e12f64).prop_map(Value::F64).boxed()
        }
        DataType::Date => (-30000i32..30000).prop_map(Value::Date).boxed(),
        DataType::Char(n) => proptest::collection::vec(b'a'..=b'z', 0..=n as usize)
            .prop_map(|bytes| Value::Str(String::from_utf8(bytes).unwrap()))
            .boxed(),
    }
}

fn arb_schema() -> impl Strategy<Value = Arc<Schema>> {
    proptest::collection::vec(
        prop_oneof![
            Just(DataType::Int32),
            Just(DataType::Int64),
            Just(DataType::Float64),
            Just(DataType::Date),
            (1u16..12).prop_map(DataType::Char),
        ],
        1..6,
    )
    .prop_map(|types| {
        Schema::new(
            types
                .into_iter()
                .enumerate()
                .map(|(i, t)| uot_storage::Column::new(format!("c{i}"), t))
                .collect(),
        )
    })
}

fn arb_rows(schema: Arc<Schema>, max_rows: usize) -> impl Strategy<Value = Vec<Vec<Value>>> {
    let row = schema
        .columns()
        .iter()
        .map(|c| arb_value(c.dtype))
        .collect::<Vec<_>>();
    proptest::collection::vec(row, 0..max_rows)
}

/// Strings read back from Char columns lose their trailing spaces (padding is
/// indistinguishable from content spaces by design); normalize for comparison.
fn normalize(rows: &[Vec<Value>]) -> Vec<Vec<Value>> {
    rows.iter()
        .map(|r| {
            r.iter()
                .map(|v| match v {
                    Value::Str(s) => Value::Str(s.trim_end().to_string()),
                    other => other.clone(),
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn row_and_column_blocks_agree(
        (schema, rows) in arb_schema().prop_flat_map(|s| {
            let rows = arb_rows(s.clone(), 40);
            (Just(s), rows)
        })
    ) {
        let mut rb = StorageBlock::new(schema.clone(), BlockFormat::Row, 1 << 20).unwrap();
        let mut cb = StorageBlock::new(schema.clone(), BlockFormat::Column, 1 << 20).unwrap();
        for r in &rows {
            prop_assert!(rb.append_row(r).unwrap());
            prop_assert!(cb.append_row(r).unwrap());
        }
        prop_assert_eq!(rb.all_rows(), cb.all_rows());
        prop_assert_eq!(rb.all_rows(), normalize(&rows));
    }

    #[test]
    fn append_projected_preserves_rows(
        (schema, rows) in arb_schema().prop_flat_map(|s| {
            let rows = arb_rows(s.clone(), 30);
            (Just(s), rows)
        }),
        src_fmt in prop_oneof![Just(BlockFormat::Row), Just(BlockFormat::Column)],
        dst_fmt in prop_oneof![Just(BlockFormat::Row), Just(BlockFormat::Column)],
    ) {
        let mut src = StorageBlock::new(schema.clone(), src_fmt, 1 << 20).unwrap();
        for r in &rows {
            prop_assert!(src.append_row(r).unwrap());
        }
        let cols: Vec<usize> = (0..schema.len()).collect();
        let mut dst = StorageBlock::new(schema.clone(), dst_fmt, 1 << 20).unwrap();
        for i in 0..src.num_rows() {
            prop_assert!(dst.append_projected(&src, i, &cols));
        }
        prop_assert_eq!(dst.all_rows(), src.all_rows());
    }

    #[test]
    fn table_builder_is_lossless(
        (schema, rows) in arb_schema().prop_flat_map(|s| {
            let rows = arb_rows(s.clone(), 100);
            (Just(s), rows)
        }),
        // small blocks force multi-block tables
        block_tuples in 1usize..8,
    ) {
        let block_bytes = schema.tuple_width() * block_tuples;
        let mut tb = TableBuilder::new("t", schema.clone(), BlockFormat::Column, block_bytes);
        for r in &rows {
            tb.append(r).unwrap();
        }
        let t = tb.finish();
        prop_assert_eq!(t.num_rows(), rows.len());
        prop_assert_eq!(t.all_rows(), normalize(&rows));
        // every non-final block is exactly full
        for b in t.blocks().iter().rev().skip(1) {
            prop_assert!(b.is_full());
        }
    }

    #[test]
    fn bitmap_matches_bool_vec_model(bools in proptest::collection::vec(any::<bool>(), 0..300)) {
        let mut bm = Bitmap::zeros(bools.len());
        for (i, &b) in bools.iter().enumerate() {
            bm.assign(i, b);
        }
        prop_assert_eq!(bm.count_ones(), bools.iter().filter(|&&b| b).count());
        let expected: Vec<usize> = bools
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
            .collect();
        prop_assert_eq!(bm.iter_ones().collect::<Vec<_>>(), expected);
        // double negation is identity
        let mut neg = bm.clone();
        neg.not_inplace();
        neg.not_inplace();
        prop_assert_eq!(neg, bm);
    }

    #[test]
    fn bitmap_and_or_match_model(
        (a, b) in proptest::collection::vec(any::<(bool, bool)>(), 0..300)
            .prop_map(|pairs| pairs.into_iter().unzip::<bool, bool, Vec<_>, Vec<_>>())
    ) {
        let mut ba = Bitmap::zeros(a.len());
        let mut bb = Bitmap::zeros(b.len());
        for i in 0..a.len() {
            ba.assign(i, a[i]);
            bb.assign(i, b[i]);
        }
        let mut and = ba.clone();
        and.and_with(&bb);
        let mut or = ba.clone();
        or.or_with(&bb);
        for i in 0..a.len() {
            prop_assert_eq!(and.get(i), a[i] && b[i]);
            prop_assert_eq!(or.get(i), a[i] || b[i]);
        }
    }

    #[test]
    fn hash_keys_injective_on_rows(vals in proptest::collection::hash_set(any::<i64>(), 0..100)) {
        // distinct i64 keys must produce distinct HashKeys
        let keys: std::collections::HashSet<HashKey> =
            vals.iter().map(|&v| HashKey::from_i64(v)).collect();
        prop_assert_eq!(keys.len(), vals.len());
    }
}
