//! # uot-storage
//!
//! Block-based storage layer for the UoT query engine, modeled after the
//! storage manager described in Section III-A of *"On inter-operator data
//! transfers in query processing"* (ICDE 2022):
//!
//! * Tables are horizontally partitioned into fixed-size **storage blocks**
//!   ([`StorageBlock`]). The block size is configurable per table and the two
//!   classic layouts are supported: [`RowBlock`] (N-ary / row store) and
//!   [`ColumnBlock`] (decomposed / column store).
//! * Intermediate results of operators are written to **temporary blocks**
//!   checked out from a thread-safe global [`BlockPool`] and returned when
//!   the work order finishes, exactly as the paper describes ("a block is
//!   used by at most one operator work order at any given point in time").
//! * All allocations are metered through a [`MemoryTracker`] so experiments
//!   can report peak memory footprints (Section VI of the paper).
//!
//! The layer is deliberately simple — fixed-width types only, no compression —
//! because the paper's experiments hinge on block geometry (how many tuples
//! fit in a 128 KB vs 2 MB block) and access patterns (sequential column scans
//! vs strided row scans), not on exotic encodings.

pub mod bitmap;
pub mod block;
pub mod catalog;
pub mod column_block;
pub mod error;
pub mod hash_key;
pub mod key_batch;
pub mod pool;
pub mod row_block;
pub mod schema;
pub mod spill;
pub mod table;
pub mod types;
pub mod value;

pub use bitmap::Bitmap;
pub use block::{BlockFormat, StorageBlock};
pub use catalog::Catalog;
pub use column_block::{ColumnBlock, ColumnData};
pub use error::StorageError;
pub use hash_key::{fx_mix, hash_fixed, hash_of, hash_var, FxBuildHasher, FxHasher, HashKey};
pub use key_batch::{KeyBatch, KeyExtractor};
pub use pool::{BlockPool, MemoryTracker, PoolStats};
pub use row_block::RowBlock;
pub use schema::{Column, Schema};
pub use spill::{SpillIo, SpillObserver, SpillSlot, SpillStats, SpillStore, SpilledHandle};
pub use table::{Table, TableBuilder};
pub use types::{date_from_ymd, date_to_ymd, format_date, DataType};
pub use value::Value;

/// Result alias used throughout the storage crate.
pub type Result<T> = std::result::Result<T, StorageError>;
