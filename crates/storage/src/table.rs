//! Tables: horizontally partitioned sequences of storage blocks.

use crate::block::{BlockFormat, StorageBlock};
use crate::pool::MemoryTracker;
use crate::schema::Schema;
use crate::value::Value;
use crate::Result;
use std::sync::Arc;

/// An immutable, fully-loaded base table.
///
/// Matches Section III-A of the paper: "data in a table is horizontally
/// partitioned in small independent storage blocks; the size of each block is
/// fixed, yet configurable".
#[derive(Debug)]
pub struct Table {
    name: String,
    schema: Arc<Schema>,
    format: BlockFormat,
    block_bytes: usize,
    blocks: Vec<Arc<StorageBlock>>,
    num_rows: usize,
}

impl Table {
    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Storage format of every block in the table.
    pub fn format(&self) -> BlockFormat {
        self.format
    }

    /// Configured block size in bytes.
    pub fn block_bytes(&self) -> usize {
        self.block_bytes
    }

    /// The table's blocks, in insertion order.
    pub fn blocks(&self) -> &[Arc<StorageBlock>] {
        &self.blocks
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Total bytes reserved by the table's blocks.
    pub fn allocated_bytes(&self) -> usize {
        self.blocks.iter().map(|b| b.allocated_bytes()).sum()
    }

    /// Materialize every row (tests / small results only).
    pub fn all_rows(&self) -> Vec<Vec<Value>> {
        let mut out = Vec::with_capacity(self.num_rows);
        for b in &self.blocks {
            out.extend(b.all_rows());
        }
        out
    }
}

/// Incremental builder that packs appended rows into fixed-size blocks.
#[derive(Debug)]
pub struct TableBuilder {
    name: String,
    schema: Arc<Schema>,
    format: BlockFormat,
    block_bytes: usize,
    blocks: Vec<Arc<StorageBlock>>,
    current: Option<StorageBlock>,
    num_rows: usize,
    tracker: Option<Arc<MemoryTracker>>,
}

impl TableBuilder {
    /// Start building a table. `block_bytes` is the fixed block size.
    pub fn new(
        name: impl Into<String>,
        schema: Arc<Schema>,
        format: BlockFormat,
        block_bytes: usize,
    ) -> Self {
        TableBuilder {
            name: name.into(),
            schema,
            format,
            block_bytes,
            blocks: Vec::new(),
            current: None,
            num_rows: 0,
            tracker: None,
        }
    }

    /// Meter block allocations through `tracker` (base tables usually are
    /// *not* metered — the paper's memory analysis concerns temporary data —
    /// but loaders can opt in).
    pub fn with_tracker(mut self, tracker: Arc<MemoryTracker>) -> Self {
        self.tracker = Some(tracker);
        self
    }

    /// Append one row, sealing and starting blocks as needed.
    pub fn append(&mut self, row: &[Value]) -> Result<()> {
        loop {
            if self.current.is_none() {
                let b = StorageBlock::new(self.schema.clone(), self.format, self.block_bytes)?;
                if let Some(t) = &self.tracker {
                    t.alloc(b.allocated_bytes());
                }
                self.current = Some(b);
            }
            let cur = self.current.as_mut().expect("just ensured");
            if cur.append_row(row)? {
                self.num_rows += 1;
                if cur.is_full() {
                    self.blocks
                        .push(Arc::new(self.current.take().expect("present")));
                }
                return Ok(());
            }
            // Full (shouldn't happen given the is_full check above, but a
            // zero-capacity guard keeps this loop safe): seal and retry.
            self.blocks
                .push(Arc::new(self.current.take().expect("present")));
        }
    }

    /// Finish, sealing any partially filled final block.
    pub fn finish(mut self) -> Table {
        if let Some(cur) = self.current.take() {
            if cur.num_rows() > 0 {
                self.blocks.push(Arc::new(cur));
            } else if let Some(t) = &self.tracker {
                t.free(cur.allocated_bytes());
            }
        }
        Table {
            name: self.name,
            schema: self.schema,
            format: self.format,
            block_bytes: self.block_bytes,
            blocks: self.blocks,
            num_rows: self.num_rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;

    fn build(n: i32, block_bytes: usize, format: BlockFormat) -> Table {
        let s = Schema::from_pairs(&[("k", DataType::Int32), ("v", DataType::Int64)]);
        let mut tb = TableBuilder::new("t", s, format, block_bytes);
        for i in 0..n {
            tb.append(&[Value::I32(i), Value::I64(i as i64 * 3)])
                .unwrap();
        }
        tb.finish()
    }

    #[test]
    fn rows_partition_into_blocks() {
        // 12-byte tuples, 48-byte blocks -> 4 rows per block
        let t = build(10, 48, BlockFormat::Row);
        assert_eq!(t.num_rows(), 10);
        assert_eq!(t.num_blocks(), 3);
        assert_eq!(t.blocks()[0].num_rows(), 4);
        assert_eq!(t.blocks()[1].num_rows(), 4);
        assert_eq!(t.blocks()[2].num_rows(), 2); // partial final block
    }

    #[test]
    fn exact_multiple_has_no_partial_block() {
        let t = build(8, 48, BlockFormat::Column);
        assert_eq!(t.num_blocks(), 2);
        assert!(t.blocks().iter().all(|b| b.is_full()));
    }

    #[test]
    fn contents_survive_partitioning() {
        let t = build(10, 48, BlockFormat::Column);
        let rows = t.all_rows();
        assert_eq!(rows.len(), 10);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r[0], Value::I32(i as i32));
            assert_eq!(r[1], Value::I64(i as i64 * 3));
        }
    }

    #[test]
    fn empty_table() {
        let t = build(0, 48, BlockFormat::Row);
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.num_blocks(), 0);
        assert_eq!(t.allocated_bytes(), 0);
    }

    #[test]
    fn tracker_meters_block_allocation() {
        let s = Schema::from_pairs(&[("k", DataType::Int32)]);
        let tr = MemoryTracker::new();
        let mut tb = TableBuilder::new("t", s, BlockFormat::Row, 16).with_tracker(tr.clone());
        for i in 0..6 {
            tb.append(&[Value::I32(i)]).unwrap(); // 4 rows per block
        }
        let t = tb.finish();
        assert_eq!(t.num_blocks(), 2);
        assert_eq!(tr.current_bytes(), 32);
    }

    #[test]
    fn tracker_releases_empty_trailing_block() {
        let s = Schema::from_pairs(&[("k", DataType::Int32)]);
        let tr = MemoryTracker::new();
        let mut tb = TableBuilder::new("t", s, BlockFormat::Row, 16).with_tracker(tr.clone());
        for i in 0..4 {
            tb.append(&[Value::I32(i)]).unwrap();
        }
        // Exactly one full block; no trailing empty block should be charged.
        let t = tb.finish();
        assert_eq!(t.num_blocks(), 1);
        assert_eq!(tr.current_bytes(), 16);
    }

    #[test]
    fn metadata_accessors() {
        let t = build(4, 48, BlockFormat::Row);
        assert_eq!(t.name(), "t");
        assert_eq!(t.format(), BlockFormat::Row);
        assert_eq!(t.block_bytes(), 48);
        assert_eq!(t.schema().len(), 2);
        assert_eq!(t.allocated_bytes(), 48);
    }
}
