//! Selection bitmaps.
//!
//! Predicates evaluate to a [`Bitmap`] over the rows of one block; operators
//! then iterate the set bits. A word-at-a-time representation keeps predicate
//! conjunction/disjunction cheap and the "count selected" path branch-free.

/// A fixed-length bitmap over the rows of a block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Create a bitmap of `len` bits, all zero.
    pub fn zeros(len: usize) -> Self {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Create a bitmap of `len` bits, all one.
    pub fn ones(len: usize) -> Self {
        let mut b = Bitmap {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        b.clear_tail();
        b
    }

    /// Zero out the bits beyond `len` in the last word so that popcounts and
    /// equality are exact.
    fn clear_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `i` to 1.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Set bit `i` to `v`.
    #[inline]
    pub fn assign(&mut self, i: usize, v: bool) {
        debug_assert!(i < self.len);
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        if v {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    /// Read bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// In-place conjunction with `other` (must be the same length).
    pub fn and_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// In-place disjunction with `other` (must be the same length).
    pub fn or_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// In-place negation.
    pub fn not_inplace(&mut self) {
        for w in self.words.iter_mut() {
            *w = !*w;
        }
        self.clear_tail();
    }

    /// Iterate the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> OnesIter<'_> {
        OnesIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
            base: 0,
            len: self.len,
        }
    }
}

/// Iterator over set-bit indices of a [`Bitmap`].
pub struct OnesIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
    base: usize,
    len: usize,
}

impl Iterator for OnesIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1; // clear lowest set bit
                let idx = self.base + bit;
                if idx < self.len {
                    return Some(idx);
                }
                // tail bits beyond len are always zero, but be defensive
                return None;
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
            self.base = self.word_idx * 64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = Bitmap::zeros(100);
        assert_eq!(z.count_ones(), 0);
        let o = Bitmap::ones(100);
        assert_eq!(o.count_ones(), 100);
        // Tail bits beyond len must not be counted.
        let o65 = Bitmap::ones(65);
        assert_eq!(o65.count_ones(), 65);
    }

    #[test]
    fn set_get_assign() {
        let mut b = Bitmap::zeros(70);
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(69);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(69));
        assert!(!b.get(1));
        b.assign(64, false);
        assert!(!b.get(64));
        b.assign(1, true);
        assert!(b.get(1));
        assert_eq!(b.count_ones(), 4);
    }

    #[test]
    fn logical_ops() {
        let mut a = Bitmap::zeros(10);
        let mut b = Bitmap::zeros(10);
        a.set(1);
        a.set(3);
        b.set(3);
        b.set(5);
        let mut and = a.clone();
        and.and_with(&b);
        assert_eq!(and.iter_ones().collect::<Vec<_>>(), vec![3]);
        let mut or = a.clone();
        or.or_with(&b);
        assert_eq!(or.iter_ones().collect::<Vec<_>>(), vec![1, 3, 5]);
        a.not_inplace();
        assert_eq!(a.count_ones(), 8);
        assert!(!a.get(1) && !a.get(3));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn and_length_mismatch_panics() {
        let mut a = Bitmap::zeros(10);
        let b = Bitmap::zeros(11);
        a.and_with(&b);
    }

    #[test]
    fn iter_ones_crosses_word_boundaries() {
        let mut b = Bitmap::zeros(200);
        let idxs = [0usize, 1, 62, 63, 64, 65, 127, 128, 199];
        for &i in &idxs {
            b.set(i);
        }
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), idxs.to_vec());
    }

    #[test]
    fn iter_ones_empty_and_full() {
        assert_eq!(Bitmap::zeros(0).iter_ones().count(), 0);
        assert_eq!(Bitmap::zeros(130).iter_ones().count(), 0);
        assert_eq!(Bitmap::ones(130).iter_ones().count(), 130);
        assert_eq!(
            Bitmap::ones(3).iter_ones().collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn not_clears_tail() {
        let mut b = Bitmap::zeros(65);
        b.not_inplace();
        assert_eq!(b.count_ones(), 65);
        b.not_inplace();
        assert_eq!(b.count_ones(), 0);
    }
}
