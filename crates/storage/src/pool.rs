//! The global temporary-block pool and memory accounting.
//!
//! Quickstep (Section III-A of the paper) keeps "a thread-safe global pool of
//! partially filled temporary storage blocks": a work order checks a block
//! out, writes its output, and returns it, so each block is touched by at
//! most one work order at a time. [`BlockPool`] reproduces that design and
//! adds precise byte accounting via [`MemoryTracker`], which the memory
//! experiments (Section VI) read.
//!
//! Reuse can be disabled (`reuse_enabled(false)`) to quantify how much the
//! pool actually saves — the `ablation_pool` experiment.

use crate::block::{BlockFormat, StorageBlock};
use crate::schema::Schema;
use crate::spill::{SpillSlot, SpillStore};
use crate::Result;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Thread-safe allocation meter.
///
/// Tracks bytes currently allocated to blocks and the high-water mark. Shared
/// (`Arc`) between the pool, tables and the engine.
#[derive(Debug, Default)]
pub struct MemoryTracker {
    current: AtomicUsize,
    peak: AtomicUsize,
    total_allocated: AtomicUsize,
    /// Optional upstream tracker every charge/release is mirrored to, with
    /// the budget enforced at that level. Lets a per-query tracker carve its
    /// reservation out of a process-wide pool: the query-local budget bounds
    /// one query, the parent budget bounds the sum across queries.
    parent: Option<(Arc<MemoryTracker>, usize)>,
}

impl MemoryTracker {
    /// New tracker with all counters at zero.
    pub fn new() -> Arc<Self> {
        Arc::new(MemoryTracker::default())
    }

    /// New tracker that mirrors every charge and release into `parent` and
    /// refuses `try_alloc` when the *parent's* total would exceed
    /// `parent_budget`. When the child drains back to zero, so does its
    /// contribution to the parent — the existing per-query teardown
    /// invariants compose into a global "pool returns to 0" guarantee.
    pub fn with_parent(parent: Arc<MemoryTracker>, parent_budget: usize) -> Arc<Self> {
        Arc::new(MemoryTracker {
            parent: Some((parent, parent_budget)),
            ..MemoryTracker::default()
        })
    }

    /// Record an allocation of `bytes`.
    pub fn alloc(&self, bytes: usize) {
        if let Some((parent, _)) = &self.parent {
            parent.alloc(bytes);
        }
        let cur = self.current.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.total_allocated.fetch_add(bytes, Ordering::Relaxed);
        self.peak.fetch_max(cur, Ordering::Relaxed);
    }

    /// Record an allocation of `bytes` only if the resulting total stays
    /// within `limit` — and, for a parented tracker, within the parent's
    /// budget as well. Each check-and-charge is a single atomic update, so
    /// concurrent allocators can never jointly overshoot either limit.
    /// Returns whether the allocation was charged.
    pub fn try_alloc(&self, bytes: usize, limit: usize) -> bool {
        if let Some((parent, parent_budget)) = &self.parent {
            if !parent.try_alloc(bytes, *parent_budget) {
                return false;
            }
        }
        let charged = self
            .current
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                cur.checked_add(bytes).filter(|&next| next <= limit)
            })
            .is_ok();
        if charged {
            self.total_allocated.fetch_add(bytes, Ordering::Relaxed);
            let cur = self.current.load(Ordering::Relaxed);
            self.peak.fetch_max(cur, Ordering::Relaxed);
        } else if let Some((parent, _)) = &self.parent {
            // Back out the speculative parent charge.
            parent.free(bytes);
        }
        charged
    }

    /// Record a release of `bytes`.
    pub fn free(&self, bytes: usize) {
        self.current.fetch_sub(bytes, Ordering::Relaxed);
        if let Some((parent, _)) = &self.parent {
            parent.free(bytes);
        }
    }

    /// For a parented tracker: the parent's current bytes and the budget
    /// enforced at the parent level. `None` for a standalone tracker.
    pub fn parent_usage(&self) -> Option<(usize, usize)> {
        self.parent
            .as_ref()
            .map(|(parent, budget)| (parent.current_bytes(), *budget))
    }

    /// Bytes currently allocated.
    pub fn current_bytes(&self) -> usize {
        self.current.load(Ordering::Relaxed)
    }

    /// High-water mark of allocated bytes.
    pub fn peak_bytes(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Cumulative bytes ever allocated (ignores frees).
    pub fn total_allocated_bytes(&self) -> usize {
        self.total_allocated.load(Ordering::Relaxed)
    }

    /// Reset peak to the current level (between experiment phases).
    pub fn reset_peak(&self) {
        self.peak
            .store(self.current.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// Key identifying a free-list: blocks are only reusable for the same
/// (schema, format, size) combination because column blocks hold typed
/// vectors.
#[derive(PartialEq, Eq, Hash)]
struct PoolKey(Arc<Schema>, BlockFormat, usize);

/// Counters describing pool behavior, for experiments and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Blocks newly allocated because no reusable block existed.
    pub created: usize,
    /// Checkouts served from the free lists.
    pub reused: usize,
    /// Blocks returned to the pool.
    pub returned: usize,
    /// Blocks discarded (memory released).
    pub discarded: usize,
}

/// Thread-safe pool of reusable temporary storage blocks.
#[derive(Debug)]
pub struct BlockPool {
    tracker: Arc<MemoryTracker>,
    free: Mutex<HashMap<PoolKey, Vec<StorageBlock>>>,
    reuse: AtomicBool,
    /// Allocation budget in bytes; `usize::MAX` means unlimited.
    budget: AtomicUsize,
    created: AtomicUsize,
    reused: AtomicUsize,
    returned: AtomicUsize,
    discarded: AtomicUsize,
    /// Optional disk tier. With a store installed, a checkout that would
    /// exceed the budget evicts cold registered victims instead of failing.
    spill: Mutex<Option<Arc<SpillStore>>>,
    /// Eviction candidates, coldest first (registration order). Slots that
    /// were meanwhile taken or spilled are skipped and dropped lazily.
    victims: Mutex<VecDeque<Arc<SpillSlot>>>,
}

// PoolKey's manual Debug via the map would be noisy; keep the derive happy.
impl std::fmt::Debug for PoolKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PoolKey({}, {:?}, {})", self.0, self.1, self.2)
    }
}

impl BlockPool {
    /// Create a pool metering through `tracker`, with no allocation budget.
    pub fn new(tracker: Arc<MemoryTracker>) -> Arc<Self> {
        BlockPool::with_budget(tracker, usize::MAX)
    }

    /// Create a pool metering through `tracker` that refuses allocations once
    /// the tracker's current bytes would exceed `budget`. Checkouts past the
    /// budget return [`StorageError::BudgetExceeded`] instead of growing;
    /// reuse of already-charged free-list blocks is always allowed (it does
    /// not allocate).
    pub fn with_budget(tracker: Arc<MemoryTracker>, budget: usize) -> Arc<Self> {
        Arc::new(BlockPool {
            tracker,
            free: Mutex::new(HashMap::new()),
            reuse: AtomicBool::new(true),
            budget: AtomicUsize::new(budget),
            created: AtomicUsize::new(0),
            reused: AtomicUsize::new(0),
            returned: AtomicUsize::new(0),
            discarded: AtomicUsize::new(0),
            spill: Mutex::new(None),
            victims: Mutex::new(VecDeque::new()),
        })
    }

    /// Install the disk tier: checkouts past the budget now evict cold
    /// registered victims ([`BlockPool::register_victim`]) and retry before
    /// surfacing [`StorageError::BudgetExceeded`](crate::StorageError::BudgetExceeded).
    pub fn enable_spill(&self, store: Arc<SpillStore>) {
        *self.spill.lock() = Some(store);
    }

    /// The installed disk tier, if any.
    pub fn spill_store(&self) -> Option<Arc<SpillStore>> {
        self.spill.lock().clone()
    }

    /// Offer a staged block as an eviction candidate. No-op without a spill
    /// tier. Registration order is the eviction order (coldest first).
    pub fn register_victim(&self, slot: &Arc<SpillSlot>) {
        if self.spill.lock().is_some() {
            self.victims.lock().push_back(slot.clone());
        }
    }

    /// Release RAM by draining idle free-list blocks, then evicting the
    /// coldest spillable victim. Returns the bytes released (`0` = nothing
    /// left to reclaim). Errors only on a spill-I/O failure.
    fn reclaim_some(&self, store: &SpillStore) -> Result<usize> {
        let freed = self.drain_free_lists();
        if freed > 0 {
            return Ok(freed);
        }
        loop {
            let slot = match self.victims.lock().pop_front() {
                Some(s) => s,
                None => return Ok(0),
            };
            let freed = slot.try_evict(store)?;
            if freed > 0 {
                // Still staged, now on disk: keep it known so teardown paths
                // that walk the scheduler's edges find it there.
                return Ok(freed);
            }
            // Taken or already spilled: drop it and keep looking.
        }
    }

    /// Change the allocation budget (`None` = unlimited). Takes effect for
    /// subsequent checkouts; already-allocated blocks are never reclaimed.
    pub fn set_budget(&self, budget: Option<usize>) {
        self.budget
            .store(budget.unwrap_or(usize::MAX), Ordering::Relaxed);
    }

    /// The configured allocation budget, if any.
    pub fn budget(&self) -> Option<usize> {
        let b = self.budget.load(Ordering::Relaxed);
        (b != usize::MAX).then_some(b)
    }

    /// Enable or disable block reuse (the `ablation_pool` knob). With reuse
    /// off, `give_back` releases the block's memory immediately and every
    /// checkout allocates fresh.
    pub fn set_reuse_enabled(&self, enabled: bool) {
        self.reuse.store(enabled, Ordering::Relaxed);
    }

    /// The tracker this pool meters through.
    pub fn tracker(&self) -> &Arc<MemoryTracker> {
        &self.tracker
    }

    /// Check out an empty block of the requested shape: reuses a returned
    /// block when possible, otherwise allocates a new one.
    pub fn checkout(
        &self,
        schema: &Arc<Schema>,
        format: BlockFormat,
        capacity_bytes: usize,
    ) -> Result<StorageBlock> {
        if self.reuse.load(Ordering::Relaxed) {
            let mut free = self.free.lock();
            if let Some(list) = free.get_mut(&PoolKey(schema.clone(), format, capacity_bytes)) {
                if let Some(mut b) = list.pop() {
                    drop(free);
                    b.clear();
                    self.reused.fetch_add(1, Ordering::Relaxed);
                    return Ok(b);
                }
            }
        }
        let b = StorageBlock::new(schema.clone(), format, capacity_bytes)?;
        let bytes = b.allocated_bytes();
        let budget = self.budget.load(Ordering::Relaxed);
        while !self.tracker.try_alloc(bytes, budget) {
            // Second tier: push cold staged blocks out to disk and retry.
            // Each round either releases bytes or proves nothing is left to
            // reclaim, so the loop terminates.
            if let Some(store) = self.spill_store() {
                if self.reclaim_some(&store)? > 0 {
                    continue;
                }
            }
            // `b` was never charged; dropping it here leaves accounting
            // untouched, so a failed checkout is side-effect free.
            let in_use = self.tracker.current_bytes();
            let (global_in_use, global_budget) =
                self.tracker.parent_usage().unwrap_or((in_use, budget));
            return Err(crate::error::StorageError::BudgetExceeded {
                requested: bytes,
                in_use,
                budget,
                global_in_use,
                global_budget,
            });
        }
        self.created.fetch_add(1, Ordering::Relaxed);
        Ok(b)
    }

    /// Return a block to the pool for reuse. Its contents are discarded; its
    /// memory stays allocated (it is still counted by the tracker) so that it
    /// can be handed out again without a fresh allocation.
    pub fn give_back(&self, mut block: StorageBlock) {
        if !self.reuse.load(Ordering::Relaxed) {
            self.discard(block);
            return;
        }
        self.returned.fetch_add(1, Ordering::Relaxed);
        block.clear();
        let key = PoolKey(
            block.schema().clone(),
            block.format(),
            block.allocated_bytes(),
        );
        // invariant: parking_lot mutexes cannot poison, so `lock()` cannot
        // fail even if a holder panicked (panics are contained upstream).
        self.free.lock().entry(key).or_default().push(block);
    }

    /// Drop a block and release its memory from the tracker.
    pub fn discard(&self, block: StorageBlock) {
        self.discarded.fetch_add(1, Ordering::Relaxed);
        self.tracker.free(block.allocated_bytes());
        drop(block);
    }

    /// Release every pooled free block (e.g. at the end of a query, or as
    /// the cheapest reclaim step under memory pressure). Returns the bytes
    /// released.
    pub fn drain_free_lists(&self) -> usize {
        let mut free = self.free.lock();
        let mut freed = 0;
        for (_, list) in free.drain() {
            for b in list {
                self.discarded.fetch_add(1, Ordering::Relaxed);
                freed += b.allocated_bytes();
                self.tracker.free(b.allocated_bytes());
            }
        }
        freed
    }

    /// Snapshot of the pool counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            created: self.created.load(Ordering::Relaxed),
            reused: self.reused.load(Ordering::Relaxed),
            returned: self.returned.load(Ordering::Relaxed),
            discarded: self.discarded.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;
    use crate::value::Value;

    fn schema() -> Arc<Schema> {
        Schema::from_pairs(&[("k", DataType::Int32)])
    }

    #[test]
    fn tracker_counts_and_peaks() {
        let t = MemoryTracker::new();
        t.alloc(100);
        t.alloc(50);
        assert_eq!(t.current_bytes(), 150);
        assert_eq!(t.peak_bytes(), 150);
        t.free(100);
        assert_eq!(t.current_bytes(), 50);
        assert_eq!(t.peak_bytes(), 150);
        t.alloc(10);
        assert_eq!(t.peak_bytes(), 150); // below old peak
        assert_eq!(t.total_allocated_bytes(), 160);
        t.reset_peak();
        assert_eq!(t.peak_bytes(), 60);
    }

    #[test]
    fn checkout_allocates_and_meters() {
        let t = MemoryTracker::new();
        let p = BlockPool::new(t.clone());
        let b = p.checkout(&schema(), BlockFormat::Row, 1024).unwrap();
        assert_eq!(t.current_bytes(), b.allocated_bytes());
        assert_eq!(p.stats().created, 1);
    }

    #[test]
    fn give_back_enables_reuse() {
        let t = MemoryTracker::new();
        let p = BlockPool::new(t.clone());
        let mut b = p.checkout(&schema(), BlockFormat::Row, 1024).unwrap();
        b.append_row(&[Value::I32(1)]).unwrap();
        let bytes = b.allocated_bytes();
        p.give_back(b);
        assert_eq!(t.current_bytes(), bytes); // memory retained for reuse
        let b2 = p.checkout(&schema(), BlockFormat::Row, 1024).unwrap();
        assert_eq!(b2.num_rows(), 0); // cleared
        assert_eq!(p.stats().reused, 1);
        assert_eq!(p.stats().created, 1); // no second allocation
        assert_eq!(t.current_bytes(), bytes);
    }

    #[test]
    fn mismatched_shapes_do_not_reuse() {
        let t = MemoryTracker::new();
        let p = BlockPool::new(t);
        let b = p.checkout(&schema(), BlockFormat::Row, 1024).unwrap();
        p.give_back(b);
        // Different format
        let _ = p.checkout(&schema(), BlockFormat::Column, 1024).unwrap();
        // Different size
        let _ = p.checkout(&schema(), BlockFormat::Row, 2048).unwrap();
        // Different schema
        let s2 = Schema::from_pairs(&[("x", DataType::Int64)]);
        let _ = p.checkout(&s2, BlockFormat::Row, 1024).unwrap();
        assert_eq!(p.stats().created, 4);
        assert_eq!(p.stats().reused, 0);
    }

    #[test]
    fn discard_releases_memory() {
        let t = MemoryTracker::new();
        let p = BlockPool::new(t.clone());
        let b = p.checkout(&schema(), BlockFormat::Row, 1024).unwrap();
        p.discard(b);
        assert_eq!(t.current_bytes(), 0);
        assert!(t.peak_bytes() > 0);
    }

    #[test]
    fn reuse_disabled_discards_on_return() {
        let t = MemoryTracker::new();
        let p = BlockPool::new(t.clone());
        p.set_reuse_enabled(false);
        let b = p.checkout(&schema(), BlockFormat::Row, 1024).unwrap();
        p.give_back(b);
        assert_eq!(t.current_bytes(), 0);
        let _b2 = p.checkout(&schema(), BlockFormat::Row, 1024).unwrap();
        assert_eq!(p.stats().created, 2);
        assert_eq!(p.stats().reused, 0);
    }

    #[test]
    fn drain_free_lists_releases_all() {
        let t = MemoryTracker::new();
        let p = BlockPool::new(t.clone());
        // Three live blocks at once, all returned: three entries on the free list.
        let blocks: Vec<_> = (0..3)
            .map(|_| p.checkout(&schema(), BlockFormat::Row, 1024).unwrap())
            .collect();
        for b in blocks {
            p.give_back(b);
        }
        assert!(t.current_bytes() > 0);
        p.drain_free_lists();
        assert_eq!(t.current_bytes(), 0);
        assert_eq!(p.stats().discarded, 3);
    }

    #[test]
    fn budget_allows_checkouts_under_it() {
        let t = MemoryTracker::new();
        let p = BlockPool::with_budget(t.clone(), 1 << 20);
        let b = p.checkout(&schema(), BlockFormat::Row, 1024).unwrap();
        assert_eq!(t.current_bytes(), b.allocated_bytes());
        assert_eq!(p.budget(), Some(1 << 20));
    }

    #[test]
    fn over_budget_checkout_fails_without_side_effects() {
        let t = MemoryTracker::new();
        let p = BlockPool::with_budget(t.clone(), 4096);
        let b = p.checkout(&schema(), BlockFormat::Row, 2048).unwrap();
        let in_use = t.current_bytes();
        let created = p.stats().created;
        let err = p.checkout(&schema(), BlockFormat::Row, 4096).unwrap_err();
        match err {
            crate::StorageError::BudgetExceeded {
                requested,
                in_use: reported,
                budget,
                global_in_use,
                global_budget,
            } => {
                assert!(requested >= 4096);
                assert_eq!(reported, in_use);
                assert_eq!(budget, 4096);
                // Standalone pool: global mirrors local.
                assert_eq!(global_in_use, in_use);
                assert_eq!(global_budget, 4096);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        // Accounting and counters unchanged by the failed checkout.
        assert_eq!(t.current_bytes(), in_use);
        assert_eq!(p.stats().created, created);
        drop(b);
    }

    #[test]
    fn reuse_path_ignores_budget() {
        let t = MemoryTracker::new();
        let p = BlockPool::with_budget(t.clone(), usize::MAX);
        let b = p.checkout(&schema(), BlockFormat::Row, 2048).unwrap();
        p.give_back(b);
        // Tighten the budget below what is already charged: reuse still works
        // because pooled blocks are already paid for.
        p.set_budget(Some(1));
        let b2 = p.checkout(&schema(), BlockFormat::Row, 2048).unwrap();
        assert_eq!(p.stats().reused, 1);
        // ... but a fresh allocation of a different shape is refused.
        assert!(matches!(
            p.checkout(&schema(), BlockFormat::Column, 2048),
            Err(crate::StorageError::BudgetExceeded { .. })
        ));
        drop(b2);
    }

    #[test]
    fn set_budget_none_lifts_the_cap() {
        let t = MemoryTracker::new();
        let p = BlockPool::with_budget(t, 1);
        assert!(p.checkout(&schema(), BlockFormat::Row, 1024).is_err());
        p.set_budget(None);
        assert_eq!(p.budget(), None);
        assert!(p.checkout(&schema(), BlockFormat::Row, 1024).is_ok());
    }

    #[test]
    fn try_alloc_is_exact_at_the_limit() {
        let t = MemoryTracker::new();
        assert!(t.try_alloc(60, 100));
        assert!(t.try_alloc(40, 100)); // exactly at the limit is allowed
        assert!(!t.try_alloc(1, 100)); // one past is not
        assert_eq!(t.current_bytes(), 100);
        assert_eq!(t.peak_bytes(), 100);
        assert_eq!(t.total_allocated_bytes(), 100); // failed charge not counted
        t.free(100);
        assert_eq!(t.current_bytes(), 0);
    }

    #[test]
    fn concurrent_try_alloc_never_overshoots() {
        let t = MemoryTracker::new();
        let granted = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let t = t.clone();
                let granted = &granted;
                scope.spawn(move || {
                    for _ in 0..100 {
                        if t.try_alloc(7, 301) {
                            granted.fetch_add(7, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert!(t.current_bytes() <= 301);
        assert_eq!(t.current_bytes(), granted.load(Ordering::Relaxed));
    }

    #[test]
    fn parented_tracker_mirrors_charges_and_releases() {
        let global = MemoryTracker::new();
        let a = MemoryTracker::with_parent(global.clone(), 1000);
        let b = MemoryTracker::with_parent(global.clone(), 1000);
        a.alloc(100);
        b.alloc(200);
        assert_eq!(a.current_bytes(), 100);
        assert_eq!(b.current_bytes(), 200);
        assert_eq!(global.current_bytes(), 300);
        assert_eq!(a.parent_usage(), Some((300, 1000)));
        a.free(100);
        b.free(200);
        assert_eq!(global.current_bytes(), 0);
    }

    #[test]
    fn parent_budget_bounds_the_sum_across_children() {
        let global = MemoryTracker::new();
        let a = MemoryTracker::with_parent(global.clone(), 300);
        let b = MemoryTracker::with_parent(global.clone(), 300);
        assert!(a.try_alloc(200, usize::MAX));
        // b alone is under its own (unlimited) local limit, but the parent
        // budget is shared: 200 + 200 > 300.
        assert!(!b.try_alloc(200, usize::MAX));
        assert_eq!(global.current_bytes(), 200); // failed charge backed out
        assert!(b.try_alloc(100, usize::MAX));
        assert_eq!(global.current_bytes(), 300);
    }

    #[test]
    fn child_local_limit_failure_backs_out_parent_charge() {
        let global = MemoryTracker::new();
        let child = MemoryTracker::with_parent(global.clone(), usize::MAX);
        assert!(!child.try_alloc(100, 50)); // local limit refuses
        assert_eq!(child.current_bytes(), 0);
        assert_eq!(global.current_bytes(), 0);
    }

    #[test]
    fn carved_out_pool_reports_global_occupancy_on_budget_error() {
        let global = MemoryTracker::new();
        // Sibling already holding most of the shared budget.
        global.alloc(6000);
        let child = MemoryTracker::with_parent(global.clone(), 8192);
        let p = BlockPool::with_budget(child, usize::MAX);
        let err = p.checkout(&schema(), BlockFormat::Row, 4096).unwrap_err();
        match err {
            crate::StorageError::BudgetExceeded {
                in_use,
                global_in_use,
                global_budget,
                ..
            } => {
                assert_eq!(in_use, 0); // this query holds nothing...
                assert_eq!(global_in_use, 6000); // ...the contention is global
                assert_eq!(global_budget, 8192);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        global.free(6000);
    }

    #[test]
    fn checkout_under_pressure_drains_free_lists_first() {
        let t = MemoryTracker::new();
        let p = BlockPool::with_budget(t.clone(), 4096);
        let store = crate::spill::SpillStore::new(None, t.clone()).unwrap();
        p.enable_spill(store);
        // Fill the budget with idle returned blocks...
        let blocks: Vec<_> = (0..2)
            .map(|_| p.checkout(&schema(), BlockFormat::Row, 2048).unwrap())
            .collect();
        for b in blocks {
            p.give_back(b);
        }
        assert_eq!(t.current_bytes(), 4096);
        // ...then a differently-shaped checkout must succeed by reclaiming
        // them instead of failing.
        let b = p.checkout(&schema(), BlockFormat::Column, 4096).unwrap();
        assert!(t.current_bytes() <= 4096);
        p.discard(b);
        assert_eq!(t.current_bytes(), 0);
    }

    #[test]
    fn checkout_under_pressure_evicts_registered_victims() {
        let t = MemoryTracker::new();
        let p = BlockPool::with_budget(t.clone(), 4096);
        let store = crate::spill::SpillStore::new(None, t.clone()).unwrap();
        p.enable_spill(store.clone());
        p.set_reuse_enabled(false); // keep the free lists out of the picture
        let staged = Arc::new(p.checkout(&schema(), BlockFormat::Row, 2048).unwrap());
        let slot = crate::spill::SpillSlot::new(staged, 5);
        p.register_victim(&slot);
        // A full-budget checkout forces the staged block out to disk.
        let b = p.checkout(&schema(), BlockFormat::Row, 4096).unwrap();
        assert!(slot.is_spilled());
        assert_eq!(store.stats().spill_events, 1);
        assert_eq!(t.current_bytes(), b.allocated_bytes());
        // The staged data is intact behind the slot.
        let back = slot.take(Some(&store)).unwrap();
        assert_eq!(back.num_rows(), 0);
        t.free(back.allocated_bytes());
        p.discard(b);
        assert_eq!(t.current_bytes(), 0);
    }

    #[test]
    fn without_spill_tier_pressure_still_fails_cleanly() {
        let t = MemoryTracker::new();
        let p = BlockPool::with_budget(t.clone(), 1024);
        assert!(matches!(
            p.checkout(&schema(), BlockFormat::Row, 2048),
            Err(crate::StorageError::BudgetExceeded { .. })
        ));
        assert_eq!(t.current_bytes(), 0);
    }

    #[test]
    fn pool_is_thread_safe() {
        let t = MemoryTracker::new();
        let p = BlockPool::new(t.clone());
        let s = schema();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let p = p.clone();
                let s = s.clone();
                scope.spawn(move || {
                    for _ in 0..50 {
                        let b = p.checkout(&s, BlockFormat::Column, 4096).unwrap();
                        p.give_back(b);
                    }
                });
            }
        });
        let st = p.stats();
        assert_eq!(st.returned, 200);
        assert_eq!(st.created + st.reused, 200);
        // At most one live block per thread at a time.
        assert!(t.current_bytes() <= 4 * 4096);
    }
}
