//! Fixed-width data types supported by the storage layer.
//!
//! The paper's experiments use TPC-H, whose columns are integers, decimals,
//! dates and (bounded) strings. We keep every type **fixed width** so that a
//! row-store tuple has a fixed stride — matching footnote 2 of the paper
//! ("row store tuples are fixed width") and making the hardware-prefetching
//! discussion (Section IV-D) meaningful.

use std::fmt;

/// A fixed-width SQL-ish data type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 32-bit signed integer.
    Int32,
    /// 64-bit signed integer (TPC-H keys at large scale factors).
    Int64,
    /// 64-bit IEEE float (stands in for TPC-H `decimal(15,2)`).
    Float64,
    /// Date stored as days since 1970-01-01 (32-bit).
    Date,
    /// Fixed-width character string, space padded (TPC-H `char`/`varchar`).
    Char(u16),
}

impl DataType {
    /// Width of a value of this type in bytes, as stored in a block.
    #[inline]
    pub fn width(self) -> usize {
        match self {
            DataType::Int32 | DataType::Date => 4,
            DataType::Int64 | DataType::Float64 => 8,
            DataType::Char(n) => n as usize,
        }
    }

    /// Whether values of this type may be used as join/group keys.
    ///
    /// Floats are excluded: their bit patterns are not canonical (NaN, -0.0),
    /// which would make hash keys unreliable.
    #[inline]
    pub fn hashable(self) -> bool {
        !matches!(self, DataType::Float64)
    }

    /// A short human-readable name.
    pub fn name(self) -> String {
        match self {
            DataType::Int32 => "Int32".to_string(),
            DataType::Int64 => "Int64".to_string(),
            DataType::Float64 => "Float64".to_string(),
            DataType::Date => "Date".to_string(),
            DataType::Char(n) => format!("Char({n})"),
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Days in each month of a non-leap year.
const DAYS_IN_MONTH: [i64; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

fn is_leap(year: i64) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_year(year: i64) -> i64 {
    if is_leap(year) {
        366
    } else {
        365
    }
}

fn days_in_month(year: i64, month: i64) -> i64 {
    if month == 2 && is_leap(year) {
        29
    } else {
        DAYS_IN_MONTH[(month - 1) as usize]
    }
}

/// Convert a calendar date to days since 1970-01-01.
///
/// `month` is 1-based (1 = January), `day` is 1-based. Dates before 1970 are
/// supported (negative day counts). Panics on out-of-range month/day to catch
/// workload-generation bugs early.
pub fn date_from_ymd(year: i32, month: u32, day: u32) -> i32 {
    assert!((1..=12).contains(&month), "month out of range: {month}");
    let (year, month, day) = (year as i64, month as i64, day as i64);
    assert!(
        day >= 1 && day <= days_in_month(year, month),
        "day out of range: {year}-{month}-{day}"
    );
    let mut days: i64 = 0;
    if year >= 1970 {
        for y in 1970..year {
            days += days_in_year(y);
        }
    } else {
        for y in year..1970 {
            days -= days_in_year(y);
        }
    }
    for m in 1..month {
        days += days_in_month(year, m);
    }
    days += day - 1;
    days as i32
}

/// Convert days since 1970-01-01 back to `(year, month, day)`.
pub fn date_to_ymd(days: i32) -> (i32, u32, u32) {
    let mut year: i64 = 1970;
    let mut d = days as i64;
    while d < 0 {
        year -= 1;
        d += days_in_year(year);
    }
    while d >= days_in_year(year) {
        d -= days_in_year(year);
        year += 1;
    }
    let mut month: i64 = 1;
    while d >= days_in_month(year, month) {
        d -= days_in_month(year, month);
        month += 1;
    }
    (year as i32, month as u32, (d + 1) as u32)
}

/// Format a day count as `YYYY-MM-DD`.
pub fn format_date(days: i32) -> String {
    let (y, m, d) = date_to_ymd(days);
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(DataType::Int32.width(), 4);
        assert_eq!(DataType::Int64.width(), 8);
        assert_eq!(DataType::Float64.width(), 8);
        assert_eq!(DataType::Date.width(), 4);
        assert_eq!(DataType::Char(25).width(), 25);
    }

    #[test]
    fn hashability() {
        assert!(DataType::Int32.hashable());
        assert!(DataType::Char(4).hashable());
        assert!(!DataType::Float64.hashable());
    }

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(date_from_ymd(1970, 1, 1), 0);
        assert_eq!(date_to_ymd(0), (1970, 1, 1));
    }

    #[test]
    fn known_dates() {
        // TPC-H date range endpoints.
        assert_eq!(format_date(date_from_ymd(1992, 1, 1)), "1992-01-01");
        assert_eq!(format_date(date_from_ymd(1998, 12, 31)), "1998-12-31");
        // Leap day.
        assert_eq!(format_date(date_from_ymd(1996, 2, 29)), "1996-02-29");
        // One day after a leap day.
        assert_eq!(date_from_ymd(1996, 3, 1) - date_from_ymd(1996, 2, 29), 1);
    }

    #[test]
    fn dates_before_epoch() {
        assert_eq!(date_from_ymd(1969, 12, 31), -1);
        assert_eq!(date_to_ymd(-1), (1969, 12, 31));
        assert_eq!(format_date(date_from_ymd(1900, 1, 1)), "1900-01-01");
    }

    #[test]
    fn ordering_matches_calendar() {
        let a = date_from_ymd(1994, 1, 1);
        let b = date_from_ymd(1994, 12, 31);
        let c = date_from_ymd(1995, 1, 1);
        assert!(a < b && b < c);
        assert_eq!(c - a, 365);
    }

    #[test]
    fn roundtrip_many_days() {
        for days in (-20000..40000).step_by(17) {
            let (y, m, d) = date_to_ymd(days);
            assert_eq!(date_from_ymd(y, m, d), days, "roundtrip failed at {days}");
        }
    }

    #[test]
    #[should_panic(expected = "month out of range")]
    fn bad_month_panics() {
        date_from_ymd(1995, 13, 1);
    }

    #[test]
    #[should_panic(expected = "day out of range")]
    fn bad_day_panics() {
        date_from_ymd(1995, 2, 29); // 1995 is not a leap year
    }
}
