//! A minimal catalog mapping table names to loaded tables.

use crate::error::StorageError;
use crate::table::Table;
use crate::Result;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Thread-safe registry of base tables.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: RwLock<HashMap<String, Arc<Table>>>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Arc<Self> {
        Arc::new(Catalog::default())
    }

    /// Register a table; errors if the name is taken.
    pub fn register(&self, table: Table) -> Result<Arc<Table>> {
        let mut tables = self.tables.write();
        if tables.contains_key(table.name()) {
            return Err(StorageError::TableExists(table.name().to_string()));
        }
        let t = Arc::new(table);
        tables.insert(t.name().to_string(), t.clone());
        Ok(t)
    }

    /// Look up a table by name.
    pub fn get(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| StorageError::TableNotFound(name.to_string()))
    }

    /// Remove a table by name, returning it if present.
    pub fn drop_table(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .write()
            .remove(name)
            .ok_or_else(|| StorageError::TableNotFound(name.to_string()))
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockFormat;
    use crate::schema::Schema;
    use crate::table::TableBuilder;
    use crate::types::DataType;
    use crate::value::Value;

    fn table(name: &str) -> Table {
        let s = Schema::from_pairs(&[("k", DataType::Int32)]);
        let mut tb = TableBuilder::new(name, s, BlockFormat::Row, 64);
        tb.append(&[Value::I32(1)]).unwrap();
        tb.finish()
    }

    #[test]
    fn register_and_get() {
        let c = Catalog::new();
        c.register(table("a")).unwrap();
        assert_eq!(c.get("a").unwrap().num_rows(), 1);
        assert!(matches!(c.get("b"), Err(StorageError::TableNotFound(_))));
    }

    #[test]
    fn duplicate_names_rejected() {
        let c = Catalog::new();
        c.register(table("a")).unwrap();
        assert!(matches!(
            c.register(table("a")),
            Err(StorageError::TableExists(_))
        ));
    }

    #[test]
    fn drop_table_removes() {
        let c = Catalog::new();
        c.register(table("a")).unwrap();
        c.drop_table("a").unwrap();
        assert!(c.get("a").is_err());
        assert!(c.drop_table("a").is_err());
    }

    #[test]
    fn names_sorted() {
        let c = Catalog::new();
        c.register(table("zeta")).unwrap();
        c.register(table("alpha")).unwrap();
        assert_eq!(c.table_names(), vec!["alpha", "zeta"]);
    }
}
