//! Compact join/group keys and a fast non-cryptographic hasher.
//!
//! Join and aggregation operators key their hash tables by one or more
//! columns. [`HashKey`] packs any key whose encoded width fits in 16 bytes
//! into an inline `u128` (all TPC-H join keys qualify) and falls back to a
//! boxed byte string otherwise, so the hot probe path never allocates.
//!
//! Hashing uses the Fx algorithm (the multiply-xor hash used by rustc),
//! implemented here directly since we keep the dependency set minimal.

use crate::block::StorageBlock;
use crate::error::StorageError;
use crate::types::DataType;
use crate::Result;
use std::hash::{BuildHasherDefault, Hasher};

/// A compact, hashable encoding of one or more key columns of a row.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum HashKey {
    /// Keys up to 16 encoded bytes, packed little-endian into a `u128`.
    /// The second field is the encoded length, to keep e.g. `Char(4)` keys
    /// `"ab  "` distinct from `Char(2)` keys `"ab"` in mixed-width debugging
    /// scenarios (within one hash table the length is constant).
    Fixed(u128, u8),
    /// Wider keys.
    Var(Box<[u8]>),
}

/// Total encoded width in bytes of the key columns `cols` of `schema_types`.
fn encoded_width(block: &StorageBlock, cols: &[usize]) -> usize {
    cols.iter().map(|&c| block.schema().dtype(c).width()).sum()
}

impl HashKey {
    /// Build the key for row `row` of `block` from columns `cols`.
    ///
    /// Key-column types are validated once at plan-build time (see
    /// `PlanBuilder` in `uot-core`), so the hot path only carries a
    /// debug-assert; use [`HashKey::try_from_row`] for unvalidated input.
    pub fn from_row(block: &StorageBlock, row: usize, cols: &[usize]) -> HashKey {
        debug_assert!(
            cols.iter().all(|&c| block.schema().dtype(c).hashable()),
            "unhashable key column reached HashKey::from_row; \
             plan validation should have rejected it"
        );
        let width = encoded_width(block, cols);
        if width <= 16 {
            let mut buf = [0u8; 16];
            let mut off = 0;
            for &c in cols {
                match block.schema().dtype(c) {
                    DataType::Int32 => {
                        buf[off..off + 4].copy_from_slice(&block.i32_at(row, c).to_le_bytes());
                        off += 4;
                    }
                    DataType::Date => {
                        buf[off..off + 4].copy_from_slice(&block.date_at(row, c).to_le_bytes());
                        off += 4;
                    }
                    DataType::Int64 => {
                        buf[off..off + 8].copy_from_slice(&block.i64_at(row, c).to_le_bytes());
                        off += 8;
                    }
                    DataType::Char(n) => {
                        let bytes = block.char_at(row, c);
                        buf[off..off + n as usize].copy_from_slice(bytes);
                        off += n as usize;
                    }
                    DataType::Float64 => unreachable!("debug-asserted above"),
                }
            }
            HashKey::Fixed(u128::from_le_bytes(buf), width as u8)
        } else {
            let mut buf = Vec::with_capacity(width);
            for &c in cols {
                match block.schema().dtype(c) {
                    DataType::Int32 => buf.extend_from_slice(&block.i32_at(row, c).to_le_bytes()),
                    DataType::Date => buf.extend_from_slice(&block.date_at(row, c).to_le_bytes()),
                    DataType::Int64 => buf.extend_from_slice(&block.i64_at(row, c).to_le_bytes()),
                    DataType::Char(_) => buf.extend_from_slice(block.char_at(row, c)),
                    DataType::Float64 => unreachable!("debug-asserted above"),
                }
            }
            HashKey::Var(buf.into_boxed_slice())
        }
    }

    /// Validating variant of [`HashKey::from_row`] for unvalidated input
    /// (errors on float key columns, whose bit patterns are non-canonical).
    pub fn try_from_row(block: &StorageBlock, row: usize, cols: &[usize]) -> Result<HashKey> {
        for &c in cols {
            if !block.schema().dtype(c).hashable() {
                return Err(StorageError::UnhashableType(block.schema().dtype(c).name()));
            }
        }
        Ok(HashKey::from_row(block, row, cols))
    }

    /// Build a key from a single `i64` (convenience for synthetic workloads).
    pub fn from_i64(v: i64) -> HashKey {
        HashKey::Fixed(v as u64 as u128, 8)
    }

    /// Build a key from a single `i32`.
    pub fn from_i32(v: i32) -> HashKey {
        HashKey::Fixed(v as u32 as u128, 4)
    }
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One round of the Fx multiply-xor mix (the [`FxHasher`] step function),
/// exposed so batch hashing can run it in tight loops without going through
/// the `Hasher` trait machinery.
#[inline(always)]
pub fn fx_mix(state: u64, word: u64) -> u64 {
    (state.rotate_left(5) ^ word).wrapping_mul(FX_SEED)
}

/// Hash of a [`HashKey::Fixed`] key, computable directly from the packed
/// value without constructing the enum. `hash_of(&HashKey::Fixed(p, w)) ==
/// hash_fixed(p, w)` always holds — the batched key pipeline and the scalar
/// probe path must agree on shard and slot placement.
#[inline(always)]
pub fn hash_fixed(packed: u128, width: u8) -> u64 {
    let h = fx_mix(0, packed as u64);
    let h = fx_mix(h, (packed >> 64) as u64);
    fx_mix(h, width as u64)
}

/// Hash of a [`HashKey::Var`] key's encoded bytes.
#[inline]
pub fn hash_var(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

/// The canonical 64-bit hash of a [`HashKey`], used for hash-table shard and
/// slot placement and for Bloom-filter probe positions. Equal keys always
/// produce equal hashes regardless of which pipeline (scalar or batched)
/// computed them.
#[inline]
pub fn hash_of(key: &HashKey) -> u64 {
    match key {
        HashKey::Fixed(packed, width) => hash_fixed(*packed, *width),
        HashKey::Var(bytes) => hash_var(bytes),
    }
}

/// The Fx multiply-xor hasher (as used in rustc): fast on short keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`], for use with `HashMap::with_hasher`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Hash a [`HashKey`] to a bucket index in `[0, n_buckets)`.
#[inline]
pub fn bucket_of(key: &HashKey, n_buckets: usize) -> usize {
    use std::hash::BuildHasher;
    (FxBuildHasher::default().hash_one(key) % n_buckets as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockFormat;
    use crate::schema::Schema;
    use crate::value::Value;

    fn block() -> StorageBlock {
        let s = Schema::from_pairs(&[
            ("a", DataType::Int32),
            ("b", DataType::Int64),
            ("c", DataType::Char(3)),
            ("d", DataType::Float64),
            ("e", DataType::Char(20)),
        ]);
        let mut b = StorageBlock::new(s, BlockFormat::Column, 4096).unwrap();
        b.append_row(&[
            Value::I32(7),
            Value::I64(42),
            Value::Str("xy".into()),
            Value::F64(1.5),
            Value::Str("long-string-value".into()),
        ])
        .unwrap();
        b.append_row(&[
            Value::I32(7),
            Value::I64(43),
            Value::Str("xy".into()),
            Value::F64(2.5),
            Value::Str("other".into()),
        ])
        .unwrap();
        b
    }

    #[test]
    fn single_column_keys_match() {
        let b = block();
        let k0 = HashKey::from_row(&b, 0, &[0]);
        let k1 = HashKey::from_row(&b, 1, &[0]);
        assert_eq!(k0, k1); // same a=7
        assert_eq!(k0, HashKey::from_i32(7));
    }

    #[test]
    fn composite_keys_distinguish_rows() {
        let b = block();
        let k0 = HashKey::from_row(&b, 0, &[0, 1]);
        let k1 = HashKey::from_row(&b, 1, &[0, 1]);
        assert_ne!(k0, k1); // b differs
        assert!(matches!(k0, HashKey::Fixed(_, 12)));
    }

    #[test]
    fn wide_keys_use_var() {
        let b = block();
        let k = HashKey::from_row(&b, 0, &[4]);
        assert!(matches!(k, HashKey::Var(_)));
        let k2 = HashKey::from_row(&b, 1, &[4]);
        assert_ne!(k, k2);
    }

    #[test]
    fn char_keys_compare_padded() {
        let b = block();
        let k0 = HashKey::from_row(&b, 0, &[2]);
        let k1 = HashKey::from_row(&b, 1, &[2]);
        assert_eq!(k0, k1); // both "xy "
    }

    #[test]
    fn float_keys_rejected() {
        let b = block();
        assert!(matches!(
            HashKey::try_from_row(&b, 0, &[3]),
            Err(StorageError::UnhashableType(_))
        ));
        // ... including inside composites
        assert!(HashKey::try_from_row(&b, 0, &[0, 3]).is_err());
    }

    #[test]
    fn fx_hasher_is_deterministic_and_spreads() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000i64 {
            let k = HashKey::from_i64(i);
            let b1 = bucket_of(&k, 64);
            let b2 = bucket_of(&k, 64);
            assert_eq!(b1, b2);
            seen.insert(b1);
        }
        // 1000 keys into 64 buckets should touch nearly all buckets
        assert!(seen.len() > 56, "poor spread: {} buckets", seen.len());
    }

    #[test]
    fn fx_hasher_handles_all_write_paths() {
        use std::hash::Hasher;
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3]); // remainder path
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]); // chunk + remainder
        h.write_u8(5);
        h.write_u64(99);
        h.write_u128(u128::MAX);
        h.write_usize(3);
        let a = h.finish();
        assert_ne!(a, 0);
    }

    #[test]
    fn keys_work_in_hashmap() {
        use std::collections::HashMap;
        let mut m: HashMap<HashKey, usize, FxBuildHasher> = HashMap::default();
        let b = block();
        m.insert(HashKey::from_row(&b, 0, &[1]), 0);
        m.insert(HashKey::from_row(&b, 1, &[1]), 1);
        assert_eq!(m.len(), 2);
        assert_eq!(m[&HashKey::from_i64(42)], 0);
        assert_eq!(m[&HashKey::from_i64(43)], 1);
    }
}
