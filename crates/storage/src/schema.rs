//! Relation schemas: ordered, named, typed columns.

use crate::error::StorageError;
use crate::types::DataType;
use crate::value::Value;
use crate::Result;
use std::fmt;
use std::sync::Arc;

/// A single column definition.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Column {
    /// Column name (used for display and plan debugging; operators address
    /// columns by index).
    pub name: String,
    /// Fixed-width type of the column.
    pub dtype: DataType,
}

impl Column {
    /// Create a column definition.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Column {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered list of columns describing one relation.
///
/// Schemas are immutable and shared (`Arc<Schema>`) between tables, blocks and
/// the block pool, which uses schema identity for free-list bucketing.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Schema {
    columns: Vec<Column>,
    /// Byte offset of each column within a row-store tuple.
    offsets: Vec<usize>,
    /// Total width of one tuple in bytes.
    tuple_width: usize,
}

impl Schema {
    /// Build a schema from column definitions.
    pub fn new(columns: Vec<Column>) -> Arc<Self> {
        let mut offsets = Vec::with_capacity(columns.len());
        let mut off = 0usize;
        for c in &columns {
            offsets.push(off);
            off += c.dtype.width();
        }
        Arc::new(Schema {
            columns,
            offsets,
            tuple_width: off,
        })
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Arc<Self> {
        Schema::new(
            pairs
                .iter()
                .map(|(n, t)| Column::new(*n, *t))
                .collect::<Vec<_>>(),
        )
    }

    /// Number of columns.
    #[inline]
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True if the schema has no columns.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// All columns in order.
    #[inline]
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The column at `idx`.
    #[inline]
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Type of the column at `idx`.
    #[inline]
    pub fn dtype(&self, idx: usize) -> DataType {
        self.columns[idx].dtype
    }

    /// Byte offset of column `idx` within a row-store tuple.
    #[inline]
    pub fn offset(&self, idx: usize) -> usize {
        self.offsets[idx]
    }

    /// Width of one tuple in bytes (the row-store stride).
    #[inline]
    pub fn tuple_width(&self) -> usize {
        self.tuple_width
    }

    /// Index of the column with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Validate that `row` matches this schema (arity and per-column types).
    pub fn check_row(&self, row: &[Value]) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(StorageError::ArityMismatch {
                expected: self.columns.len(),
                found: row.len(),
            });
        }
        for (v, c) in row.iter().zip(&self.columns) {
            if !v.fits(c.dtype) {
                return Err(StorageError::TypeMismatch {
                    expected: format!("{} ({})", c.dtype, c.name),
                    found: format!("{v:?}"),
                });
            }
        }
        Ok(())
    }

    /// Build the schema produced by projecting `indices` out of this schema.
    pub fn project(&self, indices: &[usize]) -> Arc<Schema> {
        Schema::new(indices.iter().map(|&i| self.columns[i].clone()).collect())
    }

    /// Build the schema of a join output: all of `self`'s columns followed by
    /// the `right` columns listed in `right_indices`.
    pub fn join(&self, right: &Schema, right_indices: &[usize]) -> Arc<Schema> {
        let mut cols = self.columns.clone();
        cols.extend(right_indices.iter().map(|&i| right.columns[i].clone()));
        Schema::new(cols)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.dtype)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Arc<Schema> {
        Schema::from_pairs(&[
            ("id", DataType::Int32),
            ("amount", DataType::Float64),
            ("tag", DataType::Char(5)),
            ("when", DataType::Date),
        ])
    }

    #[test]
    fn offsets_and_width() {
        let s = sample();
        assert_eq!(s.tuple_width(), 4 + 8 + 5 + 4);
        assert_eq!(s.offset(0), 0);
        assert_eq!(s.offset(1), 4);
        assert_eq!(s.offset(2), 12);
        assert_eq!(s.offset(3), 17);
    }

    #[test]
    fn index_of_name() {
        let s = sample();
        assert_eq!(s.index_of("amount"), Some(1));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn check_row_accepts_valid() {
        let s = sample();
        let row = vec![
            Value::I32(1),
            Value::F64(9.5),
            Value::Str("abc".into()),
            Value::Date(100),
        ];
        assert!(s.check_row(&row).is_ok());
    }

    #[test]
    fn check_row_rejects_arity() {
        let s = sample();
        let row = vec![Value::I32(1)];
        assert!(matches!(
            s.check_row(&row),
            Err(StorageError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn check_row_rejects_types() {
        let s = sample();
        let row = vec![
            Value::I64(1), // wrong width
            Value::F64(9.5),
            Value::Str("abc".into()),
            Value::Date(100),
        ];
        assert!(matches!(
            s.check_row(&row),
            Err(StorageError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn check_row_rejects_oversized_string() {
        let s = sample();
        let row = vec![
            Value::I32(1),
            Value::F64(9.5),
            Value::Str("toolong".into()), // Char(5)
            Value::Date(100),
        ];
        assert!(s.check_row(&row).is_err());
    }

    #[test]
    fn projection_schema() {
        let s = sample();
        let p = s.project(&[2, 0]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.column(0).name, "tag");
        assert_eq!(p.column(1).name, "id");
        assert_eq!(p.tuple_width(), 5 + 4);
    }

    #[test]
    fn join_schema() {
        let left = Schema::from_pairs(&[("a", DataType::Int32)]);
        let right = sample();
        let j = left.join(&right, &[1, 3]);
        assert_eq!(j.len(), 3);
        assert_eq!(j.column(0).name, "a");
        assert_eq!(j.column(1).name, "amount");
        assert_eq!(j.column(2).name, "when");
    }

    #[test]
    fn display_lists_columns() {
        let s = sample();
        let d = s.to_string();
        assert!(d.contains("id Int32"));
        assert!(d.contains("tag Char(5)"));
    }
}
