//! Format-polymorphic storage blocks.
//!
//! [`StorageBlock`] unifies [`RowBlock`] and [`ColumnBlock`] behind one API so
//! that operators, the block pool and the scheduler are format-agnostic; hot
//! loops that care about layout match on the variant (or on
//! [`StorageBlock::column_data`]) to take the typed fast path.

use crate::column_block::{ColumnBlock, ColumnData};
use crate::row_block::RowBlock;
use crate::schema::Schema;
use crate::types::DataType;
use crate::value::Value;
use crate::Result;
use std::sync::Arc;

/// Physical layout of a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockFormat {
    /// N-ary row store.
    Row,
    /// Decomposed column store.
    Column,
}

impl BlockFormat {
    /// Short lowercase label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            BlockFormat::Row => "row",
            BlockFormat::Column => "column",
        }
    }
}

/// A storage block in either format.
#[derive(Debug, Clone)]
pub enum StorageBlock {
    /// Row-store block.
    Row(RowBlock),
    /// Column-store block.
    Column(ColumnBlock),
}

impl StorageBlock {
    /// Create an empty block of the given format and byte size.
    pub fn new(schema: Arc<Schema>, format: BlockFormat, capacity_bytes: usize) -> Result<Self> {
        Ok(match format {
            BlockFormat::Row => StorageBlock::Row(RowBlock::new(schema, capacity_bytes)?),
            BlockFormat::Column => StorageBlock::Column(ColumnBlock::new(schema, capacity_bytes)?),
        })
    }

    /// This block's format.
    #[inline]
    pub fn format(&self) -> BlockFormat {
        match self {
            StorageBlock::Row(_) => BlockFormat::Row,
            StorageBlock::Column(_) => BlockFormat::Column,
        }
    }

    /// The block's schema.
    #[inline]
    pub fn schema(&self) -> &Arc<Schema> {
        match self {
            StorageBlock::Row(b) => b.schema(),
            StorageBlock::Column(b) => b.schema(),
        }
    }

    /// Number of tuples currently stored.
    #[inline]
    pub fn num_rows(&self) -> usize {
        match self {
            StorageBlock::Row(b) => b.num_rows(),
            StorageBlock::Column(b) => b.num_rows(),
        }
    }

    /// Maximum number of tuples.
    #[inline]
    pub fn capacity_rows(&self) -> usize {
        match self {
            StorageBlock::Row(b) => b.capacity_rows(),
            StorageBlock::Column(b) => b.capacity_rows(),
        }
    }

    /// True when full.
    #[inline]
    pub fn is_full(&self) -> bool {
        match self {
            StorageBlock::Row(b) => b.is_full(),
            StorageBlock::Column(b) => b.is_full(),
        }
    }

    /// Bytes reserved by this block.
    #[inline]
    pub fn allocated_bytes(&self) -> usize {
        match self {
            StorageBlock::Row(b) => b.allocated_bytes(),
            StorageBlock::Column(b) => b.allocated_bytes(),
        }
    }

    /// Remove all tuples, keeping allocations.
    pub fn clear(&mut self) {
        match self {
            StorageBlock::Row(b) => b.clear(),
            StorageBlock::Column(b) => b.clear(),
        }
    }

    /// Append a row of [`Value`]s; `Ok(false)` when full.
    pub fn append_row(&mut self, row: &[Value]) -> Result<bool> {
        match self {
            StorageBlock::Row(b) => b.append_row(row),
            StorageBlock::Column(b) => b.append_row(row),
        }
    }

    /// Typed column data, available only for column-store blocks.
    #[inline]
    pub fn column_data(&self, col: usize) -> Option<&ColumnData> {
        match self {
            StorageBlock::Row(_) => None,
            StorageBlock::Column(b) => Some(b.column(col)),
        }
    }

    /// Read an `Int32` field.
    #[inline]
    pub fn i32_at(&self, row: usize, col: usize) -> i32 {
        match self {
            StorageBlock::Row(b) => b.i32_at(row, col),
            StorageBlock::Column(b) => b.i32_at(row, col),
        }
    }

    /// Read an `Int64` field.
    #[inline]
    pub fn i64_at(&self, row: usize, col: usize) -> i64 {
        match self {
            StorageBlock::Row(b) => b.i64_at(row, col),
            StorageBlock::Column(b) => b.i64_at(row, col),
        }
    }

    /// Read a `Float64` field.
    #[inline]
    pub fn f64_at(&self, row: usize, col: usize) -> f64 {
        match self {
            StorageBlock::Row(b) => b.f64_at(row, col),
            StorageBlock::Column(b) => b.f64_at(row, col),
        }
    }

    /// Read a `Date` field.
    #[inline]
    pub fn date_at(&self, row: usize, col: usize) -> i32 {
        match self {
            StorageBlock::Row(b) => b.date_at(row, col),
            StorageBlock::Column(b) => b.date_at(row, col),
        }
    }

    /// Read a `Char(n)` field as padded bytes.
    #[inline]
    pub fn char_at(&self, row: usize, col: usize) -> &[u8] {
        match self {
            StorageBlock::Row(b) => b.char_at(row, col),
            StorageBlock::Column(b) => b.char_at(row, col),
        }
    }

    /// Read any field as a [`Value`] (slow path).
    pub fn value_at(&self, row: usize, col: usize) -> Result<Value> {
        match self {
            StorageBlock::Row(b) => b.value_at(row, col),
            StorageBlock::Column(b) => b.value_at(row, col),
        }
    }

    /// Materialize row `row` as a `Vec<Value>` (slow path, tests/results).
    pub fn row_values(&self, row: usize) -> Result<Vec<Value>> {
        (0..self.schema().len())
            .map(|c| self.value_at(row, c))
            .collect()
    }

    /// Materialize every row (slow path, tests/results).
    pub fn all_rows(&self) -> Vec<Vec<Value>> {
        (0..self.num_rows())
            .map(|r| self.row_values(r).expect("in-bounds row"))
            .collect()
    }

    /// Append one projected row copied from `src` without constructing
    /// [`Value`]s: destination column `j` receives source column `cols[j]`.
    ///
    /// Returns `false` (and appends nothing) when this block is full. The
    /// destination schema must have exactly `cols.len()` columns whose types
    /// match the projected source columns — enforced by `debug_assert`s since
    /// this sits on operator hot paths.
    pub fn append_projected(&mut self, src: &StorageBlock, src_row: usize, cols: &[usize]) -> bool {
        if self.is_full() {
            return false;
        }
        debug_assert_eq!(self.schema().len(), cols.len());
        match self {
            StorageBlock::Row(dst) => {
                for (j, &c) in cols.iter().enumerate() {
                    match dst.schema().dtype(j) {
                        DataType::Int32 | DataType::Date => {
                            let v = match src.schema().dtype(c) {
                                DataType::Int32 => src.i32_at(src_row, c),
                                DataType::Date => src.date_at(src_row, c),
                                other => unreachable!("projected {other} into 4-byte column"),
                            };
                            dst.raw_push_i32(v);
                        }
                        DataType::Int64 => dst.raw_push_i64(src.i64_at(src_row, c)),
                        DataType::Float64 => dst.raw_push_f64(src.f64_at(src_row, c)),
                        DataType::Char(_) => dst.raw_push_char(src.char_at(src_row, c)),
                    }
                }
                dst.finish_raw_row();
            }
            StorageBlock::Column(dst) => {
                for (j, &c) in cols.iter().enumerate() {
                    match dst.schema().dtype(j) {
                        DataType::Int32 | DataType::Date => {
                            let v = match src.schema().dtype(c) {
                                DataType::Int32 => src.i32_at(src_row, c),
                                DataType::Date => src.date_at(src_row, c),
                                other => unreachable!("projected {other} into 4-byte column"),
                            };
                            dst.raw_push_i32(j, v);
                        }
                        DataType::Int64 => dst.raw_push_i64(j, src.i64_at(src_row, c)),
                        DataType::Float64 => dst.raw_push_f64(j, src.f64_at(src_row, c)),
                        DataType::Char(_) => dst.raw_push_char(j, src.char_at(src_row, c)),
                    }
                }
                dst.finish_raw_row();
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn schema() -> Arc<Schema> {
        Schema::from_pairs(&[
            ("k", DataType::Int32),
            ("v", DataType::Float64),
            ("tag", DataType::Char(3)),
            ("d", DataType::Date),
            ("big", DataType::Int64),
        ])
    }

    fn filled(format: BlockFormat, n: i32) -> StorageBlock {
        let mut b = StorageBlock::new(schema(), format, 4096).unwrap();
        for i in 0..n {
            b.append_row(&[
                Value::I32(i),
                Value::F64(i as f64),
                Value::Str(format!("t{i}")),
                Value::Date(100 + i),
                Value::I64(i as i64 * 2),
            ])
            .unwrap();
        }
        b
    }

    #[test]
    fn formats_agree_on_contents() {
        let r = filled(BlockFormat::Row, 6);
        let c = filled(BlockFormat::Column, 6);
        assert_eq!(r.all_rows(), c.all_rows());
        assert_eq!(r.format(), BlockFormat::Row);
        assert_eq!(c.format(), BlockFormat::Column);
    }

    #[test]
    fn column_data_only_for_column_format() {
        let r = filled(BlockFormat::Row, 2);
        let c = filled(BlockFormat::Column, 2);
        assert!(r.column_data(0).is_none());
        assert_eq!(c.column_data(0).unwrap().as_i32(), &[0, 1]);
    }

    #[test]
    fn append_projected_identity() {
        for fmt in [BlockFormat::Row, BlockFormat::Column] {
            for dst_fmt in [BlockFormat::Row, BlockFormat::Column] {
                let src = filled(fmt, 4);
                let mut dst = StorageBlock::new(schema(), dst_fmt, 4096).unwrap();
                for row in 0..4 {
                    assert!(dst.append_projected(&src, row, &[0, 1, 2, 3, 4]));
                }
                assert_eq!(dst.all_rows(), src.all_rows(), "{fmt:?}->{dst_fmt:?}");
            }
        }
    }

    #[test]
    fn append_projected_reorders_and_projects() {
        let src = filled(BlockFormat::Column, 3);
        let proj = src.schema().project(&[2, 0]);
        let mut dst = StorageBlock::new(proj, BlockFormat::Row, 4096).unwrap();
        assert!(dst.append_projected(&src, 1, &[2, 0]));
        assert_eq!(
            dst.row_values(0).unwrap(),
            vec![Value::Str("t1".into()), Value::I32(1)]
        );
    }

    #[test]
    fn append_projected_respects_capacity() {
        let src = filled(BlockFormat::Row, 3);
        let small = Schema::from_pairs(&[("k", DataType::Int32)]);
        let mut dst = StorageBlock::new(small, BlockFormat::Column, 8).unwrap(); // 2 rows
        assert!(dst.append_projected(&src, 0, &[0]));
        assert!(dst.append_projected(&src, 1, &[0]));
        assert!(!dst.append_projected(&src, 2, &[0]));
        assert_eq!(dst.num_rows(), 2);
    }

    #[test]
    fn clear_works_through_enum() {
        let mut b = filled(BlockFormat::Column, 5);
        assert_eq!(b.num_rows(), 5);
        b.clear();
        assert_eq!(b.num_rows(), 0);
    }

    #[test]
    fn label_strings() {
        assert_eq!(BlockFormat::Row.label(), "row");
        assert_eq!(BlockFormat::Column.label(), "column");
    }
}
