//! Column-store (decomposed) storage blocks.
//!
//! A [`ColumnBlock`] stores each column in its own contiguous typed vector.
//! Scanning one column is a pure sequential walk — the cache-friendly access
//! pattern the paper contrasts against row stores (Section IV-B).

use crate::error::StorageError;
use crate::schema::Schema;
use crate::types::DataType;
use crate::value::Value;
use crate::Result;
use std::sync::Arc;

/// Typed storage for one column of a [`ColumnBlock`].
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// `Int32` column.
    I32(Vec<i32>),
    /// `Int64` column.
    I64(Vec<i64>),
    /// `Float64` column.
    F64(Vec<f64>),
    /// `Date` column (days since epoch).
    Date(Vec<i32>),
    /// Fixed-width string column: `width` bytes per value, concatenated.
    Char {
        /// Declared width of each value in bytes.
        width: usize,
        /// `num_rows * width` bytes of space-padded values.
        data: Vec<u8>,
    },
}

impl ColumnData {
    fn with_capacity(dtype: DataType, rows: usize) -> Self {
        match dtype {
            DataType::Int32 => ColumnData::I32(Vec::with_capacity(rows)),
            DataType::Int64 => ColumnData::I64(Vec::with_capacity(rows)),
            DataType::Float64 => ColumnData::F64(Vec::with_capacity(rows)),
            DataType::Date => ColumnData::Date(Vec::with_capacity(rows)),
            DataType::Char(n) => ColumnData::Char {
                width: n as usize,
                data: Vec::with_capacity(rows * n as usize),
            },
        }
    }

    fn clear(&mut self) {
        match self {
            ColumnData::I32(v) => v.clear(),
            ColumnData::I64(v) => v.clear(),
            ColumnData::F64(v) => v.clear(),
            ColumnData::Date(v) => v.clear(),
            ColumnData::Char { data, .. } => data.clear(),
        }
    }

    /// View as an `i32` slice; panics if the column is not `Int32`.
    #[inline]
    pub fn as_i32(&self) -> &[i32] {
        match self {
            ColumnData::I32(v) => v,
            other => panic!("expected Int32 column, found {}", other.type_name()),
        }
    }

    /// View as an `i64` slice; panics if the column is not `Int64`.
    #[inline]
    pub fn as_i64(&self) -> &[i64] {
        match self {
            ColumnData::I64(v) => v,
            other => panic!("expected Int64 column, found {}", other.type_name()),
        }
    }

    /// View as an `f64` slice; panics if the column is not `Float64`.
    #[inline]
    pub fn as_f64(&self) -> &[f64] {
        match self {
            ColumnData::F64(v) => v,
            other => panic!("expected Float64 column, found {}", other.type_name()),
        }
    }

    /// View as a date slice; panics if the column is not `Date`.
    #[inline]
    pub fn as_date(&self) -> &[i32] {
        match self {
            ColumnData::Date(v) => v,
            other => panic!("expected Date column, found {}", other.type_name()),
        }
    }

    /// Width and raw bytes of a `Char` column; panics otherwise.
    #[inline]
    pub fn as_char(&self) -> (usize, &[u8]) {
        match self {
            ColumnData::Char { width, data } => (*width, data),
            other => panic!("expected Char column, found {}", other.type_name()),
        }
    }

    /// Value `row` of a `Char` column as padded bytes.
    #[inline]
    pub fn char_value(&self, row: usize) -> &[u8] {
        let (w, data) = self.as_char();
        &data[row * w..(row + 1) * w]
    }

    /// Number of values in this column.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::I32(v) => v.len(),
            ColumnData::I64(v) => v.len(),
            ColumnData::F64(v) => v.len(),
            ColumnData::Date(v) => v.len(),
            ColumnData::Char { width, data } => data.len().checked_div(*width).unwrap_or(0),
        }
    }

    /// True when the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn type_name(&self) -> &'static str {
        match self {
            ColumnData::I32(_) => "Int32",
            ColumnData::I64(_) => "Int64",
            ColumnData::F64(_) => "Float64",
            ColumnData::Date(_) => "Date",
            ColumnData::Char { .. } => "Char",
        }
    }
}

/// A fixed-capacity block of column-major tuples.
#[derive(Debug, Clone)]
pub struct ColumnBlock {
    schema: Arc<Schema>,
    columns: Vec<ColumnData>,
    capacity_rows: usize,
    num_rows: usize,
}

impl ColumnBlock {
    /// Create an empty block sized to `capacity_bytes` (same tuple capacity
    /// rule as [`crate::RowBlock`], so the two formats are comparable).
    pub fn new(schema: Arc<Schema>, capacity_bytes: usize) -> Result<Self> {
        let w = schema.tuple_width();
        if w == 0 || w > capacity_bytes {
            return Err(StorageError::TupleTooLarge {
                tuple_bytes: w,
                block_bytes: capacity_bytes,
            });
        }
        let capacity_rows = capacity_bytes / w;
        let columns = schema
            .columns()
            .iter()
            .map(|c| ColumnData::with_capacity(c.dtype, capacity_rows))
            .collect();
        Ok(ColumnBlock {
            schema,
            columns,
            capacity_rows,
            num_rows: 0,
        })
    }

    /// Assemble a block directly from pre-computed column vectors.
    ///
    /// Used by vectorized expression evaluation: an operator computes each
    /// output column as a [`ColumnData`] and wraps them as a "virtual" block
    /// so the regular block-to-block copy path can consume them. All columns
    /// must have `num_rows` entries and match the schema's types.
    pub fn from_columns(
        schema: Arc<Schema>,
        columns: Vec<ColumnData>,
        num_rows: usize,
    ) -> Result<Self> {
        if columns.len() != schema.len() {
            return Err(StorageError::ArityMismatch {
                expected: schema.len(),
                found: columns.len(),
            });
        }
        for (c, col) in schema.columns().iter().zip(&columns) {
            let (ok, rows) = match (c.dtype, col) {
                (DataType::Int32, ColumnData::I32(v)) => (true, v.len()),
                (DataType::Int64, ColumnData::I64(v)) => (true, v.len()),
                (DataType::Float64, ColumnData::F64(v)) => (true, v.len()),
                (DataType::Date, ColumnData::Date(v)) => (true, v.len()),
                (DataType::Char(n), ColumnData::Char { width, data }) => {
                    (*width == n as usize, data.len() / (*width).max(1))
                }
                _ => (false, 0),
            };
            if !ok {
                return Err(StorageError::TypeMismatch {
                    expected: c.dtype.name(),
                    found: col.type_name().to_string(),
                });
            }
            if rows != num_rows {
                return Err(StorageError::RowOutOfRange {
                    index: rows,
                    len: num_rows,
                });
            }
        }
        Ok(ColumnBlock {
            schema,
            columns,
            capacity_rows: num_rows,
            num_rows,
        })
    }

    /// The block's schema.
    #[inline]
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of tuples currently stored.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Maximum number of tuples this block can hold.
    #[inline]
    pub fn capacity_rows(&self) -> usize {
        self.capacity_rows
    }

    /// True when no further tuple can be appended.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.num_rows == self.capacity_rows
    }

    /// Bytes reserved by this block.
    #[inline]
    pub fn allocated_bytes(&self) -> usize {
        self.capacity_rows * self.schema.tuple_width()
    }

    /// Remove all tuples, keeping the allocations (pool reuse path).
    pub fn clear(&mut self) {
        for c in &mut self.columns {
            c.clear();
        }
        self.num_rows = 0;
    }

    /// The typed data of column `col`.
    #[inline]
    pub fn column(&self, col: usize) -> &ColumnData {
        &self.columns[col]
    }

    /// Append a row of [`Value`]s. Returns `Ok(false)` if the block is full.
    pub fn append_row(&mut self, row: &[Value]) -> Result<bool> {
        if self.is_full() {
            return Ok(false);
        }
        self.schema.check_row(row)?;
        for (v, c) in row.iter().zip(self.columns.iter_mut()) {
            match (v, c) {
                (Value::I32(x), ColumnData::I32(col)) => col.push(*x),
                (Value::I64(x), ColumnData::I64(col)) => col.push(*x),
                (Value::F64(x), ColumnData::F64(col)) => col.push(*x),
                (Value::Date(x), ColumnData::Date(col)) => col.push(*x),
                (Value::Str(s), ColumnData::Char { width, data }) => {
                    data.extend_from_slice(s.as_bytes());
                    data.extend(std::iter::repeat_n(b' ', *width - s.len()));
                }
                _ => unreachable!("check_row admitted a mismatched value"),
            }
        }
        self.num_rows += 1;
        Ok(true)
    }

    /// Read an `Int32` field.
    #[inline]
    pub fn i32_at(&self, row: usize, col: usize) -> i32 {
        self.columns[col].as_i32()[row]
    }

    /// Read an `Int64` field.
    #[inline]
    pub fn i64_at(&self, row: usize, col: usize) -> i64 {
        self.columns[col].as_i64()[row]
    }

    /// Read a `Float64` field.
    #[inline]
    pub fn f64_at(&self, row: usize, col: usize) -> f64 {
        self.columns[col].as_f64()[row]
    }

    /// Read a `Date` field.
    #[inline]
    pub fn date_at(&self, row: usize, col: usize) -> i32 {
        self.columns[col].as_date()[row]
    }

    /// Read a `Char(n)` field as padded bytes.
    #[inline]
    pub fn char_at(&self, row: usize, col: usize) -> &[u8] {
        self.columns[col].char_value(row)
    }

    // ----- raw field-at-a-time append path (used by StorageBlock bulk copy;
    // callers must push every column then call `finish_raw_row`) -----

    #[inline]
    pub(crate) fn raw_push_i32(&mut self, col: usize, v: i32) {
        match &mut self.columns[col] {
            ColumnData::I32(c) => c.push(v),
            ColumnData::Date(c) => c.push(v),
            _ => unreachable!("raw_push_i32 on non-i32 column"),
        }
    }

    #[inline]
    pub(crate) fn raw_push_i64(&mut self, col: usize, v: i64) {
        match &mut self.columns[col] {
            ColumnData::I64(c) => c.push(v),
            _ => unreachable!("raw_push_i64 on non-i64 column"),
        }
    }

    #[inline]
    pub(crate) fn raw_push_f64(&mut self, col: usize, v: f64) {
        match &mut self.columns[col] {
            ColumnData::F64(c) => c.push(v),
            _ => unreachable!("raw_push_f64 on non-f64 column"),
        }
    }

    #[inline]
    pub(crate) fn raw_push_char(&mut self, col: usize, padded: &[u8]) {
        match &mut self.columns[col] {
            ColumnData::Char { data, width } => {
                debug_assert_eq!(padded.len(), *width);
                data.extend_from_slice(padded);
            }
            _ => unreachable!("raw_push_char on non-char column"),
        }
    }

    #[inline]
    pub(crate) fn finish_raw_row(&mut self) {
        self.num_rows += 1;
    }

    /// Read any field as a [`Value`] (slow path).
    pub fn value_at(&self, row: usize, col: usize) -> Result<Value> {
        if col >= self.schema.len() {
            return Err(StorageError::ColumnOutOfRange {
                index: col,
                len: self.schema.len(),
            });
        }
        if row >= self.num_rows {
            return Err(StorageError::RowOutOfRange {
                index: row,
                len: self.num_rows,
            });
        }
        Ok(match &self.columns[col] {
            ColumnData::I32(v) => Value::I32(v[row]),
            ColumnData::I64(v) => Value::I64(v[row]),
            ColumnData::F64(v) => Value::F64(v[row]),
            ColumnData::Date(v) => Value::Date(v[row]),
            ColumnData::Char { .. } => Value::Str(
                String::from_utf8_lossy(self.char_at(row, col))
                    .trim_end()
                    .to_string(),
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Arc<Schema> {
        Schema::from_pairs(&[
            ("k", DataType::Int32),
            ("v", DataType::Float64),
            ("tag", DataType::Char(4)),
        ])
    }

    #[test]
    fn capacity_matches_row_block_rule() {
        let s = schema(); // width 16
        let b = ColumnBlock::new(s, 160).unwrap();
        assert_eq!(b.capacity_rows(), 10);
        assert_eq!(b.allocated_bytes(), 160);
    }

    #[test]
    fn append_and_typed_reads() {
        let s = schema();
        let mut b = ColumnBlock::new(s, 1024).unwrap();
        for i in 0..8 {
            b.append_row(&[
                Value::I32(i),
                Value::F64(i as f64 + 0.25),
                Value::Str(format!("x{i}")),
            ])
            .unwrap();
        }
        assert_eq!(b.num_rows(), 8);
        assert_eq!(b.column(0).as_i32(), &[0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(b.f64_at(3, 1), 3.25);
        assert_eq!(b.char_at(2, 2), b"x2  ");
        assert_eq!(b.value_at(2, 2).unwrap(), Value::Str("x2".into()));
    }

    #[test]
    fn columns_are_contiguous() {
        let s = Schema::from_pairs(&[("tag", DataType::Char(2))]);
        let mut b = ColumnBlock::new(s, 64).unwrap();
        b.append_row(&[Value::Str("ab".into())]).unwrap();
        b.append_row(&[Value::Str("c".into())]).unwrap();
        let (w, data) = b.column(0).as_char();
        assert_eq!(w, 2);
        assert_eq!(data, b"abc ");
    }

    #[test]
    fn fills_up_and_rejects() {
        let s = Schema::from_pairs(&[("k", DataType::Int32)]);
        let mut b = ColumnBlock::new(s, 12).unwrap(); // 3 tuples
        for i in 0..3 {
            assert!(b.append_row(&[Value::I32(i)]).unwrap());
        }
        assert!(b.is_full());
        assert!(!b.append_row(&[Value::I32(9)]).unwrap());
    }

    #[test]
    fn clear_retains_capacity() {
        let s = schema();
        let mut b = ColumnBlock::new(s, 1024).unwrap();
        b.append_row(&[Value::I32(1), Value::F64(1.0), Value::Str("a".into())])
            .unwrap();
        b.clear();
        assert_eq!(b.num_rows(), 0);
        b.append_row(&[Value::I32(2), Value::F64(2.0), Value::Str("b".into())])
            .unwrap();
        assert_eq!(b.i32_at(0, 0), 2);
    }

    #[test]
    fn type_mismatch_rejected() {
        let s = schema();
        let mut b = ColumnBlock::new(s, 1024).unwrap();
        let err = b.append_row(&[Value::I64(1), Value::F64(1.0), Value::Str("a".into())]);
        assert!(err.is_err());
        assert_eq!(b.num_rows(), 0);
    }

    #[test]
    #[should_panic(expected = "expected Int32 column")]
    fn wrong_typed_accessor_panics() {
        let s = schema();
        let b = ColumnBlock::new(s, 1024).unwrap();
        let _ = b.column(1).as_i32();
    }

    #[test]
    fn from_columns_builds_virtual_block() {
        let s = schema();
        let cols = vec![
            ColumnData::I32(vec![1, 2]),
            ColumnData::F64(vec![0.5, 1.5]),
            ColumnData::Char {
                width: 4,
                data: b"aaaabbbb".to_vec(),
            },
        ];
        let b = ColumnBlock::from_columns(s, cols, 2).unwrap();
        assert_eq!(b.num_rows(), 2);
        assert!(b.is_full());
        assert_eq!(b.i32_at(1, 0), 2);
        assert_eq!(b.char_at(1, 2), b"bbbb");
    }

    #[test]
    fn from_columns_validates() {
        let s = schema();
        // wrong arity
        assert!(ColumnBlock::from_columns(s.clone(), vec![ColumnData::I32(vec![1])], 1).is_err());
        // wrong type
        let cols = vec![
            ColumnData::I64(vec![1]),
            ColumnData::F64(vec![0.5]),
            ColumnData::Char {
                width: 4,
                data: b"aaaa".to_vec(),
            },
        ];
        assert!(ColumnBlock::from_columns(s.clone(), cols, 1).is_err());
        // wrong row count
        let cols = vec![
            ColumnData::I32(vec![1, 2]),
            ColumnData::F64(vec![0.5]),
            ColumnData::Char {
                width: 4,
                data: b"aaaa".to_vec(),
            },
        ];
        assert!(ColumnBlock::from_columns(s, cols, 1).is_err());
        // wrong char width
        let s2 = Schema::from_pairs(&[("t", DataType::Char(2))]);
        let cols = vec![ColumnData::Char {
            width: 3,
            data: b"abc".to_vec(),
        }];
        assert!(ColumnBlock::from_columns(s2, cols, 1).is_err());
    }

    #[test]
    fn column_len() {
        assert_eq!(ColumnData::I32(vec![1, 2, 3]).len(), 3);
        assert!(ColumnData::F64(vec![]).is_empty());
        assert_eq!(
            ColumnData::Char {
                width: 2,
                data: b"abcd".to_vec()
            }
            .len(),
            2
        );
    }

    #[test]
    fn value_at_bounds() {
        let s = schema();
        let b = ColumnBlock::new(s, 1024).unwrap();
        assert!(matches!(
            b.value_at(0, 0),
            Err(StorageError::RowOutOfRange { .. })
        ));
        assert!(matches!(
            b.value_at(0, 9),
            Err(StorageError::ColumnOutOfRange { .. })
        ));
    }
}
