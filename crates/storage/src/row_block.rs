//! Row-store (N-ary) storage blocks.
//!
//! A [`RowBlock`] packs fixed-width tuples back to back in a single byte
//! buffer. Scanning one column therefore strides through memory at
//! `tuple_width` intervals, dragging unreferenced columns through the caches —
//! the effect the paper measures in Sections VII-B4 and VII-B6.

use crate::error::StorageError;
use crate::schema::Schema;
use crate::types::DataType;
use crate::value::Value;
use crate::Result;
use std::sync::Arc;

/// A fixed-capacity block of row-major tuples.
#[derive(Debug, Clone)]
pub struct RowBlock {
    schema: Arc<Schema>,
    /// Tuple bytes, `num_rows * tuple_width` of them in use.
    data: Vec<u8>,
    capacity_rows: usize,
    num_rows: usize,
}

impl RowBlock {
    /// Create an empty block sized to `capacity_bytes`.
    ///
    /// The tuple capacity is `capacity_bytes / tuple_width`; errors if even a
    /// single tuple does not fit.
    pub fn new(schema: Arc<Schema>, capacity_bytes: usize) -> Result<Self> {
        let w = schema.tuple_width();
        if w == 0 || w > capacity_bytes {
            return Err(StorageError::TupleTooLarge {
                tuple_bytes: w,
                block_bytes: capacity_bytes,
            });
        }
        let capacity_rows = capacity_bytes / w;
        Ok(RowBlock {
            data: Vec::with_capacity(capacity_rows * w),
            schema,
            capacity_rows,
            num_rows: 0,
        })
    }

    /// The block's schema.
    #[inline]
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of tuples currently stored.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Maximum number of tuples this block can hold.
    #[inline]
    pub fn capacity_rows(&self) -> usize {
        self.capacity_rows
    }

    /// True when no further tuple can be appended.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.num_rows == self.capacity_rows
    }

    /// Bytes reserved by this block (the fixed block size, not bytes in use).
    #[inline]
    pub fn allocated_bytes(&self) -> usize {
        self.capacity_rows * self.schema.tuple_width()
    }

    /// Remove all tuples, keeping the allocation (pool reuse path).
    pub fn clear(&mut self) {
        self.data.clear();
        self.num_rows = 0;
    }

    /// Append a row of [`Value`]s. Returns `Ok(false)` if the block is full.
    pub fn append_row(&mut self, row: &[Value]) -> Result<bool> {
        if self.is_full() {
            return Ok(false);
        }
        self.schema.check_row(row)?;
        for (v, c) in row.iter().zip(self.schema.columns()) {
            match (v, c.dtype) {
                (Value::I32(x), DataType::Int32) => self.data.extend_from_slice(&x.to_le_bytes()),
                (Value::I64(x), DataType::Int64) => self.data.extend_from_slice(&x.to_le_bytes()),
                (Value::F64(x), DataType::Float64) => self.data.extend_from_slice(&x.to_le_bytes()),
                (Value::Date(x), DataType::Date) => self.data.extend_from_slice(&x.to_le_bytes()),
                (Value::Str(s), DataType::Char(n)) => {
                    self.data.extend_from_slice(s.as_bytes());
                    // space-pad to the declared width
                    self.data
                        .extend(std::iter::repeat_n(b' ', n as usize - s.len()));
                }
                // check_row above guarantees this is unreachable
                _ => unreachable!("check_row admitted a mismatched value"),
            }
        }
        self.num_rows += 1;
        Ok(true)
    }

    /// Raw bytes of tuple `row`.
    #[inline]
    pub fn tuple_bytes(&self, row: usize) -> &[u8] {
        let w = self.schema.tuple_width();
        &self.data[row * w..(row + 1) * w]
    }

    /// Append a tuple from its raw encoding (must match this schema's width).
    /// Returns `false` if the block is full.
    pub fn append_tuple_bytes(&mut self, bytes: &[u8]) -> bool {
        debug_assert_eq!(bytes.len(), self.schema.tuple_width());
        if self.is_full() {
            return false;
        }
        self.data.extend_from_slice(bytes);
        self.num_rows += 1;
        true
    }

    #[inline]
    fn field(&self, row: usize, col: usize) -> &[u8] {
        let w = self.schema.tuple_width();
        let off = row * w + self.schema.offset(col);
        let width = self.schema.dtype(col).width();
        &self.data[off..off + width]
    }

    /// Read an `Int32` field.
    #[inline]
    pub fn i32_at(&self, row: usize, col: usize) -> i32 {
        debug_assert_eq!(self.schema.dtype(col), DataType::Int32);
        i32::from_le_bytes(self.field(row, col).try_into().unwrap())
    }

    /// Read an `Int64` field.
    #[inline]
    pub fn i64_at(&self, row: usize, col: usize) -> i64 {
        debug_assert_eq!(self.schema.dtype(col), DataType::Int64);
        i64::from_le_bytes(self.field(row, col).try_into().unwrap())
    }

    /// Read a `Float64` field.
    #[inline]
    pub fn f64_at(&self, row: usize, col: usize) -> f64 {
        debug_assert_eq!(self.schema.dtype(col), DataType::Float64);
        f64::from_le_bytes(self.field(row, col).try_into().unwrap())
    }

    /// Read a `Date` field (days since epoch).
    #[inline]
    pub fn date_at(&self, row: usize, col: usize) -> i32 {
        debug_assert_eq!(self.schema.dtype(col), DataType::Date);
        i32::from_le_bytes(self.field(row, col).try_into().unwrap())
    }

    /// Read a `Char(n)` field as its padded bytes.
    #[inline]
    pub fn char_at(&self, row: usize, col: usize) -> &[u8] {
        debug_assert!(matches!(self.schema.dtype(col), DataType::Char(_)));
        self.field(row, col)
    }

    // ----- raw field-at-a-time append path (used by StorageBlock bulk copy;
    // callers must push every column in schema order then call
    // `finish_raw_row`) -----

    #[inline]
    pub(crate) fn raw_push_i32(&mut self, v: i32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    pub(crate) fn raw_push_i64(&mut self, v: i64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    pub(crate) fn raw_push_f64(&mut self, v: f64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    pub(crate) fn raw_push_char(&mut self, padded: &[u8]) {
        self.data.extend_from_slice(padded);
    }

    #[inline]
    pub(crate) fn finish_raw_row(&mut self) {
        self.num_rows += 1;
        debug_assert_eq!(self.data.len(), self.num_rows * self.schema.tuple_width());
    }

    /// Read any field as a [`Value`] (slow path, for result materialization
    /// and tests).
    pub fn value_at(&self, row: usize, col: usize) -> Result<Value> {
        if col >= self.schema.len() {
            return Err(StorageError::ColumnOutOfRange {
                index: col,
                len: self.schema.len(),
            });
        }
        if row >= self.num_rows {
            return Err(StorageError::RowOutOfRange {
                index: row,
                len: self.num_rows,
            });
        }
        Ok(match self.schema.dtype(col) {
            DataType::Int32 => Value::I32(self.i32_at(row, col)),
            DataType::Int64 => Value::I64(self.i64_at(row, col)),
            DataType::Float64 => Value::F64(self.f64_at(row, col)),
            DataType::Date => Value::Date(self.date_at(row, col)),
            DataType::Char(_) => Value::Str(
                String::from_utf8_lossy(self.char_at(row, col))
                    .trim_end()
                    .to_string(),
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn schema() -> Arc<Schema> {
        Schema::from_pairs(&[
            ("k", DataType::Int32),
            ("v", DataType::Float64),
            ("tag", DataType::Char(4)),
            ("d", DataType::Date),
            ("big", DataType::Int64),
        ])
    }

    fn row(i: i32) -> Vec<Value> {
        vec![
            Value::I32(i),
            Value::F64(i as f64 * 0.5),
            Value::Str(format!("t{i}")),
            Value::Date(1000 + i),
            Value::I64(i as i64 * 10),
        ]
    }

    #[test]
    fn capacity_from_bytes() {
        let s = schema(); // width 4+8+4+4+8 = 28
        let b = RowBlock::new(s.clone(), 280).unwrap();
        assert_eq!(b.capacity_rows(), 10);
        assert_eq!(b.allocated_bytes(), 280);
        // 283 bytes still gives 10 tuples
        let b = RowBlock::new(s, 283).unwrap();
        assert_eq!(b.capacity_rows(), 10);
        assert_eq!(b.allocated_bytes(), 280);
    }

    #[test]
    fn tuple_too_large() {
        let s = schema();
        assert!(matches!(
            RowBlock::new(s, 27),
            Err(StorageError::TupleTooLarge { .. })
        ));
    }

    #[test]
    fn append_and_read_back() {
        let s = schema();
        let mut b = RowBlock::new(s, 1024).unwrap();
        for i in 0..5 {
            assert!(b.append_row(&row(i)).unwrap());
        }
        assert_eq!(b.num_rows(), 5);
        for i in 0..5 {
            assert_eq!(b.i32_at(i as usize, 0), i);
            assert_eq!(b.f64_at(i as usize, 1), i as f64 * 0.5);
            assert_eq!(
                b.value_at(i as usize, 2).unwrap(),
                Value::Str(format!("t{i}"))
            );
            assert_eq!(b.date_at(i as usize, 3), 1000 + i);
            assert_eq!(b.i64_at(i as usize, 4), i as i64 * 10);
        }
    }

    #[test]
    fn char_fields_are_space_padded() {
        let s = Schema::from_pairs(&[("tag", DataType::Char(4))]);
        let mut b = RowBlock::new(s, 64).unwrap();
        b.append_row(&[Value::Str("ab".into())]).unwrap();
        assert_eq!(b.char_at(0, 0), b"ab  ");
        // value_at trims padding back off
        assert_eq!(b.value_at(0, 0).unwrap(), Value::Str("ab".into()));
    }

    #[test]
    fn fills_up_and_rejects() {
        let s = Schema::from_pairs(&[("k", DataType::Int32)]);
        let mut b = RowBlock::new(s, 8).unwrap(); // 2 tuples
        assert!(b.append_row(&[Value::I32(1)]).unwrap());
        assert!(!b.is_full());
        assert!(b.append_row(&[Value::I32(2)]).unwrap());
        assert!(b.is_full());
        assert!(!b.append_row(&[Value::I32(3)]).unwrap());
        assert_eq!(b.num_rows(), 2);
    }

    #[test]
    fn append_rejects_bad_row() {
        let s = schema();
        let mut b = RowBlock::new(s, 1024).unwrap();
        assert!(b.append_row(&[Value::I32(1)]).is_err());
        assert_eq!(b.num_rows(), 0);
    }

    #[test]
    fn raw_tuple_transfer() {
        let s = schema();
        let mut a = RowBlock::new(s.clone(), 1024).unwrap();
        a.append_row(&row(7)).unwrap();
        let mut b = RowBlock::new(s, 1024).unwrap();
        assert!(b.append_tuple_bytes(a.tuple_bytes(0)));
        assert_eq!(b.i32_at(0, 0), 7);
        assert_eq!(b.value_at(0, 2).unwrap(), Value::Str("t7".into()));
    }

    #[test]
    fn clear_retains_capacity() {
        let s = schema();
        let mut b = RowBlock::new(s, 1024).unwrap();
        b.append_row(&row(1)).unwrap();
        b.clear();
        assert_eq!(b.num_rows(), 0);
        assert!(b.append_row(&row(2)).unwrap());
        assert_eq!(b.i32_at(0, 0), 2);
    }

    #[test]
    fn value_at_bounds() {
        let s = schema();
        let mut b = RowBlock::new(s, 1024).unwrap();
        b.append_row(&row(0)).unwrap();
        assert!(matches!(
            b.value_at(0, 99),
            Err(StorageError::ColumnOutOfRange { .. })
        ));
        assert!(matches!(
            b.value_at(5, 0),
            Err(StorageError::RowOutOfRange { .. })
        ));
    }
}
