//! Dynamically-typed scalar values.
//!
//! [`Value`] is the slow-path representation used at API boundaries (row
//! construction, result inspection, literals in expressions). Hot operator
//! loops never touch `Value`; they read typed column data directly.

use crate::types::{format_date, DataType};
use std::cmp::Ordering;
use std::fmt;

/// A single scalar value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 32-bit integer.
    I32(i32),
    /// 64-bit integer.
    I64(i64),
    /// 64-bit float.
    F64(f64),
    /// Date as days since epoch.
    Date(i32),
    /// String (will be space-padded/truncated to the column width on store).
    Str(String),
}

impl Value {
    /// The [`DataType`] this value naturally maps to.
    ///
    /// For strings the width is the byte length of the string; schema columns
    /// may declare a wider `Char(n)`.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::I32(_) => DataType::Int32,
            Value::I64(_) => DataType::Int64,
            Value::F64(_) => DataType::Float64,
            Value::Date(_) => DataType::Date,
            Value::Str(s) => DataType::Char(s.len().min(u16::MAX as usize) as u16),
        }
    }

    /// Whether this value can be stored in a column of type `ty`.
    pub fn fits(&self, ty: DataType) -> bool {
        match (self, ty) {
            (Value::I32(_), DataType::Int32)
            | (Value::I64(_), DataType::Int64)
            | (Value::F64(_), DataType::Float64)
            | (Value::Date(_), DataType::Date) => true,
            (Value::Str(s), DataType::Char(n)) => s.len() <= n as usize,
            _ => false,
        }
    }

    /// Extract as `i32`, panicking on type mismatch (test/assertion helper).
    pub fn as_i32(&self) -> i32 {
        match self {
            Value::I32(v) => *v,
            other => panic!("expected I32, found {other:?}"),
        }
    }

    /// Extract as `i64`, panicking on type mismatch (test/assertion helper).
    pub fn as_i64(&self) -> i64 {
        match self {
            Value::I64(v) => *v,
            other => panic!("expected I64, found {other:?}"),
        }
    }

    /// Extract as `f64`, panicking on type mismatch (test/assertion helper).
    pub fn as_f64(&self) -> f64 {
        match self {
            Value::F64(v) => *v,
            other => panic!("expected F64, found {other:?}"),
        }
    }

    /// Extract as date days, panicking on type mismatch (test/assertion helper).
    pub fn as_date(&self) -> i32 {
        match self {
            Value::Date(v) => *v,
            other => panic!("expected Date, found {other:?}"),
        }
    }

    /// Extract as `&str`, panicking on type mismatch (test/assertion helper).
    pub fn as_str(&self) -> &str {
        match self {
            Value::Str(s) => s,
            other => panic!("expected Str, found {other:?}"),
        }
    }

    /// Numeric view of the value, if it has one (used by arithmetic).
    pub fn to_f64_lossy(&self) -> Option<f64> {
        match self {
            Value::I32(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            Value::Date(v) => Some(*v as f64),
            Value::Str(_) => None,
        }
    }
}

impl PartialOrd for Value {
    /// Order values of the same type; cross-type comparisons (other than the
    /// integer widths) return `None`.
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        match (self, other) {
            (Value::I32(a), Value::I32(b)) => a.partial_cmp(b),
            (Value::I64(a), Value::I64(b)) => a.partial_cmp(b),
            (Value::I32(a), Value::I64(b)) => (*a as i64).partial_cmp(b),
            (Value::I64(a), Value::I32(b)) => a.partial_cmp(&(*b as i64)),
            (Value::F64(a), Value::F64(b)) => a.partial_cmp(b),
            (Value::Date(a), Value::Date(b)) => a.partial_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.partial_cmp(b),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I32(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v:.2}"),
            Value::Date(v) => write!(f, "{}", format_date(*v)),
            Value::Str(s) => write!(f, "{}", s.trim_end()),
        }
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I32(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::date_from_ymd;

    #[test]
    fn fits_checks_type_and_width() {
        assert!(Value::I32(5).fits(DataType::Int32));
        assert!(!Value::I32(5).fits(DataType::Int64));
        assert!(Value::Str("abc".into()).fits(DataType::Char(3)));
        assert!(Value::Str("abc".into()).fits(DataType::Char(10)));
        assert!(!Value::Str("abcd".into()).fits(DataType::Char(3)));
        assert!(!Value::F64(1.0).fits(DataType::Int32));
    }

    #[test]
    fn cross_width_integer_comparison() {
        assert!(Value::I32(3) < Value::I64(4));
        assert!(Value::I64(5) > Value::I32(4));
        assert_eq!(
            Value::I32(7).partial_cmp(&Value::I64(7)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn incomparable_types_return_none() {
        assert_eq!(Value::I32(1).partial_cmp(&Value::Str("1".into())), None);
        assert_eq!(Value::F64(1.0).partial_cmp(&Value::I32(1)), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::I32(42).to_string(), "42");
        assert_eq!(Value::F64(1.5).to_string(), "1.50");
        assert_eq!(
            Value::Date(date_from_ymd(1995, 3, 15)).to_string(),
            "1995-03-15"
        );
        // Padded strings display trimmed.
        assert_eq!(Value::Str("ab   ".into()).to_string(), "ab");
    }

    #[test]
    fn numeric_views() {
        assert_eq!(Value::I32(2).to_f64_lossy(), Some(2.0));
        assert_eq!(Value::Str("x".into()).to_f64_lossy(), None);
    }

    #[test]
    fn from_conversions() {
        assert_eq!(Value::from(1i32), Value::I32(1));
        assert_eq!(Value::from(1i64), Value::I64(1));
        assert_eq!(Value::from(1.0f64), Value::F64(1.0));
        assert_eq!(Value::from("hi"), Value::Str("hi".into()));
    }
}
