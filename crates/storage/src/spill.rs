//! The disk-backed second tier of the block pool.
//!
//! A [`SpillStore`] turns a terminal `BudgetExceeded` into graceful
//! degradation: when the RAM tier is full, cold blocks are serialized to
//! per-query temp files (fixed-width row encoding, the same layout a
//! [`RowBlock`](crate::RowBlock) tuple uses) and their bytes are released
//! from the [`MemoryTracker`]; a later read faults the block back in and
//! re-charges exactly the bytes it releases on consumption, so the "tracker
//! drains to zero" teardown invariant is unchanged.
//!
//! Two kinds of state live in the second tier:
//!
//! * **Eviction victims** — staged transfer-edge blocks wrapped in a
//!   [`SpillSlot`]. The pool evicts the coldest registered slot when an
//!   allocation would exceed the budget ([`BlockPool::checkout`]
//!   (crate::BlockPool::checkout) retries after each eviction).
//! * **Grace-join partitions** — the engine spills build/probe partition
//!   blocks eagerly through [`SpillStore::spill_block`] and restores them
//!   one partition at a time.
//!
//! The store owns a unique directory under the OS temp dir (or a caller
//! override); dropping the store removes the directory, so no teardown path
//! can leak temp files. All I/O is observable through a [`SpillObserver`] —
//! the engine installs an adapter that injects deterministic faults
//! (chaos tests) and records `SpillOut`/`SpillIn` trace events.

use crate::block::{BlockFormat, StorageBlock};
use crate::error::StorageError;
use crate::pool::MemoryTracker;
use crate::schema::Schema;
use crate::types::DataType;
use crate::Result;
use parking_lot::Mutex;
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Which direction a spill I/O goes — fault-injection sites key off this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpillIo {
    /// Serializing a block out to a temp file.
    Write,
    /// Faulting a spilled block back in.
    Read,
}

/// Observation and fault-injection hook for spill I/O.
///
/// `before_io` runs before each write/read; returning `Err(detail)` aborts
/// the I/O with [`StorageError::SpillIo`] (the engine's chaos harness uses
/// this for deterministic I/O failures). `spilled`/`restored` fire after a
/// successful I/O — the engine records trace events there. `tag` is an
/// opaque attribution id chosen by the caller (the engine passes the
/// operator id that owns the block).
pub trait SpillObserver: Send + Sync {
    /// Called before each spill I/O; `Err(detail)` aborts it.
    fn before_io(&self, _io: SpillIo, _tag: usize) -> std::result::Result<(), String> {
        Ok(())
    }
    /// A block of `bytes` tracked bytes moved to the disk tier.
    fn spilled(&self, _tag: usize, _bytes: usize) {}
    /// A block of `bytes` tracked bytes was faulted back in.
    fn restored(&self, _tag: usize, _bytes: usize) {}
}

/// Counters describing second-tier activity, surfaced in `QueryMetrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Blocks written to the disk tier.
    pub spill_events: usize,
    /// Cumulative tracked bytes moved out to disk.
    pub spilled_bytes: usize,
    /// Cumulative tracked bytes faulted back in.
    pub restored_bytes: usize,
    /// Deepest grace-join re-partitioning recursion observed (0 = no
    /// partition ever had to be split again).
    pub respill_depth: usize,
}

/// Descriptor of one spilled block: everything needed to rebuild it, minus
/// the tuple bytes, which live in the store's temp file `id`.
#[derive(Debug, Clone)]
pub struct SpilledHandle {
    id: usize,
    schema: Arc<Schema>,
    format: BlockFormat,
    capacity_bytes: usize,
    rows: usize,
    /// Tracker bytes the resident block held (re-charged on restore).
    tracked_bytes: usize,
    tag: usize,
}

impl SpilledHandle {
    /// Tracker bytes the block will charge when faulted back in.
    pub fn tracked_bytes(&self) -> usize {
        self.tracked_bytes
    }

    /// Rows in the spilled block.
    pub fn rows(&self) -> usize {
        self.rows
    }
}

/// A disk-backed block store tied to one query's memory tracker.
#[derive(Debug)]
pub struct SpillStore {
    dir: PathBuf,
    tracker: Arc<MemoryTracker>,
    next_id: AtomicUsize,
    spill_events: AtomicUsize,
    spilled_bytes: AtomicUsize,
    restored_bytes: AtomicUsize,
    respill_depth: AtomicUsize,
    live: Mutex<HashSet<usize>>,
    observer: Mutex<Option<Arc<dyn SpillObserver>>>,
}

impl std::fmt::Debug for dyn SpillObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SpillObserver")
    }
}

static STORE_COUNTER: AtomicUsize = AtomicUsize::new(0);

impl SpillStore {
    /// Create a store with a unique directory under `base` (the OS temp dir
    /// when `None`), metering restores through `tracker`.
    pub fn new(base: Option<&Path>, tracker: Arc<MemoryTracker>) -> Result<Arc<Self>> {
        let base = base
            .map(Path::to_path_buf)
            .unwrap_or_else(std::env::temp_dir);
        let unique = format!(
            "uot-spill-{}-{}",
            std::process::id(),
            STORE_COUNTER.fetch_add(1, Ordering::Relaxed)
        );
        let dir = base.join(unique);
        std::fs::create_dir_all(&dir).map_err(|e| StorageError::SpillIo {
            detail: format!("creating spill dir {}: {e}", dir.display()),
        })?;
        Ok(Arc::new(SpillStore {
            dir,
            tracker,
            next_id: AtomicUsize::new(0),
            spill_events: AtomicUsize::new(0),
            spilled_bytes: AtomicUsize::new(0),
            restored_bytes: AtomicUsize::new(0),
            respill_depth: AtomicUsize::new(0),
            live: Mutex::new(HashSet::new()),
            observer: Mutex::new(None),
        }))
    }

    /// Install the observation/fault hook (the engine's adapter).
    pub fn set_observer(&self, observer: Arc<dyn SpillObserver>) {
        *self.observer.lock() = Some(observer);
    }

    /// The directory holding this store's temp files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Snapshot of the spill counters.
    pub fn stats(&self) -> SpillStats {
        SpillStats {
            spill_events: self.spill_events.load(Ordering::Relaxed),
            spilled_bytes: self.spilled_bytes.load(Ordering::Relaxed),
            restored_bytes: self.restored_bytes.load(Ordering::Relaxed),
            respill_depth: self.respill_depth.load(Ordering::Relaxed),
        }
    }

    /// Number of spilled blocks currently on disk (leak tests).
    pub fn live_files(&self) -> usize {
        self.live.lock().len()
    }

    /// Record that a grace join re-partitioned at recursion `depth`.
    pub fn note_respill(&self, depth: usize) {
        self.respill_depth.fetch_max(depth, Ordering::Relaxed);
    }

    fn path_of(&self, id: usize) -> PathBuf {
        self.dir.join(format!("{id}.blk"))
    }

    /// Serialize `block` to a temp file and release its tracked bytes.
    ///
    /// On any failure the tracker is untouched and the block stays usable —
    /// a failed spill is side-effect free, like a failed checkout.
    pub fn spill_block(&self, block: &StorageBlock, tag: usize) -> Result<SpilledHandle> {
        let observer = self.observer.lock().clone();
        if let Some(o) = &observer {
            o.before_io(SpillIo::Write, tag)
                .map_err(|detail| StorageError::SpillIo { detail })?;
        }
        let mut buf = Vec::with_capacity(block.num_rows() * block.schema().tuple_width());
        encode_block(block, &mut buf);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let path = self.path_of(id);
        std::fs::write(&path, &buf).map_err(|e| StorageError::SpillIo {
            detail: format!("writing {}: {e}", path.display()),
        })?;
        self.live.lock().insert(id);
        let tracked_bytes = block.allocated_bytes();
        self.spill_events.fetch_add(1, Ordering::Relaxed);
        self.spilled_bytes
            .fetch_add(tracked_bytes, Ordering::Relaxed);
        self.tracker.free(tracked_bytes);
        if let Some(o) = &observer {
            o.spilled(tag, tracked_bytes);
        }
        Ok(SpilledHandle {
            id,
            schema: block.schema().clone(),
            format: block.format(),
            capacity_bytes: block.allocated_bytes(),
            rows: block.num_rows(),
            tracked_bytes,
            tag,
        })
    }

    /// Fault a spilled block back in, re-charging its tracked bytes, and
    /// delete its temp file. The handle is consumed either way — on error the
    /// file is still removed (the data is unrecoverable; keeping the file
    /// would leak it).
    pub fn restore(&self, handle: SpilledHandle) -> Result<StorageBlock> {
        let path = self.path_of(handle.id);
        let result = self.restore_inner(&handle, &path);
        let _ = std::fs::remove_file(&path);
        self.live.lock().remove(&handle.id);
        result
    }

    fn restore_inner(&self, handle: &SpilledHandle, path: &Path) -> Result<StorageBlock> {
        let observer = self.observer.lock().clone();
        if let Some(o) = &observer {
            o.before_io(SpillIo::Read, handle.tag)
                .map_err(|detail| StorageError::SpillIo { detail })?;
        }
        let bytes = std::fs::read(path).map_err(|e| StorageError::SpillIo {
            detail: format!("reading {}: {e}", path.display()),
        })?;
        let block = decode_block(
            handle.schema.clone(),
            handle.format,
            handle.capacity_bytes,
            handle.rows,
            &bytes,
        )?;
        // The fault-in is charged unconditionally (not `try_alloc`): the
        // caller is about to consume the block, and refusing the charge here
        // would deadlock the spill path against the very pressure it exists
        // to relieve. Transient overshoot is bounded by one block.
        self.tracker.alloc(handle.tracked_bytes);
        self.restored_bytes
            .fetch_add(handle.tracked_bytes, Ordering::Relaxed);
        if let Some(o) = &observer {
            o.restored(handle.tag, handle.tracked_bytes);
        }
        Ok(block)
    }

    /// Delete a spilled block without restoring it (query teardown). Its
    /// tracked bytes were already released at spill time, so accounting is
    /// untouched.
    pub fn discard(&self, handle: SpilledHandle) {
        let _ = std::fs::remove_file(self.path_of(handle.id));
        self.live.lock().remove(&handle.id);
    }
}

impl Drop for SpillStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// One staged block that the pool may transparently move between tiers.
///
/// A slot starts `Resident`, may be evicted to `Spilled` by the pool under
/// pressure, and ends `Taken` when its consumer claims the block with
/// [`SpillSlot::take`]. The eviction guard requires the slot to be the sole
/// owner of the block `Arc`, so a block another component still references
/// can never be spilled out from under it.
#[derive(Debug)]
pub struct SpillSlot {
    state: Mutex<SlotState>,
    tag: usize,
}

#[derive(Debug)]
enum SlotState {
    Resident(Arc<StorageBlock>),
    Spilled(SpilledHandle),
    Taken,
}

impl SpillSlot {
    /// Wrap a freshly produced block, attributed to operator `tag`.
    pub fn new(block: Arc<StorageBlock>, tag: usize) -> Arc<Self> {
        Arc::new(SpillSlot {
            state: Mutex::new(SlotState::Resident(block)),
            tag,
        })
    }

    /// The attribution tag (operator id) this slot was created with.
    pub fn tag(&self) -> usize {
        self.tag
    }

    /// Rows in the block, resident or spilled (`0` once taken).
    pub fn rows(&self) -> usize {
        match &*self.state.lock() {
            SlotState::Resident(b) => b.num_rows(),
            SlotState::Spilled(h) => h.rows(),
            SlotState::Taken => 0,
        }
    }

    /// Tracked bytes currently held in RAM by this slot.
    pub fn resident_bytes(&self) -> usize {
        match &*self.state.lock() {
            SlotState::Resident(b) => b.allocated_bytes(),
            _ => 0,
        }
    }

    /// Is the block currently on the disk tier?
    pub fn is_spilled(&self) -> bool {
        matches!(&*self.state.lock(), SlotState::Spilled(_))
    }

    /// Claim the block, faulting it back in from `store` if it was evicted.
    /// A slot can be taken exactly once.
    pub fn take(&self, store: Option<&SpillStore>) -> Result<Arc<StorageBlock>> {
        let mut state = self.state.lock();
        match std::mem::replace(&mut *state, SlotState::Taken) {
            SlotState::Resident(b) => Ok(b),
            SlotState::Spilled(handle) => {
                let store = store.ok_or_else(|| StorageError::SpillIo {
                    detail: "spilled slot taken without a spill store".into(),
                })?;
                store.restore(handle).map(Arc::new)
            }
            SlotState::Taken => Err(StorageError::SpillIo {
                detail: "spill slot already taken".into(),
            }),
        }
    }

    /// Drop the block without consuming it, releasing tracked bytes of a
    /// resident block from `tracker` and deleting a spilled one's temp file
    /// (query teardown). Idempotent.
    pub fn discard(&self, tracker: &MemoryTracker, store: Option<&SpillStore>) {
        let mut state = self.state.lock();
        match std::mem::replace(&mut *state, SlotState::Taken) {
            SlotState::Resident(b) => tracker.free(b.allocated_bytes()),
            SlotState::Spilled(handle) => {
                if let Some(store) = store {
                    store.discard(handle);
                }
            }
            SlotState::Taken => {}
        }
    }

    /// Try to move a resident block to the disk tier. Returns the tracked
    /// bytes released — `0` when the slot is not evictable (already spilled,
    /// taken, or its block is shared). Errors only on spill I/O failure, in
    /// which case the slot is left resident and untouched.
    pub(crate) fn try_evict(&self, store: &SpillStore) -> Result<usize> {
        let mut state = self.state.lock();
        let block = match &*state {
            SlotState::Resident(b) if Arc::strong_count(b) == 1 => b.clone(),
            _ => return Ok(0),
        };
        // `block` is a second Arc; drop the guard's view only after the spill
        // succeeds so a failed write leaves the slot resident.
        let handle = store.spill_block(&block, self.tag)?;
        let bytes = handle.tracked_bytes();
        *state = SlotState::Spilled(handle);
        Ok(bytes)
    }
}

/// Serialize every row of `block` as fixed-width tuples (the row-store
/// encoding), appending to `out`. Char columns are copied as raw padded
/// bytes — never through [`Value`](crate::Value), which trims padding.
fn encode_block(block: &StorageBlock, out: &mut Vec<u8>) {
    match block {
        StorageBlock::Row(b) => {
            for row in 0..b.num_rows() {
                out.extend_from_slice(b.tuple_bytes(row));
            }
        }
        StorageBlock::Column(b) => {
            let schema = b.schema().clone();
            for row in 0..b.num_rows() {
                for col in 0..schema.len() {
                    match schema.dtype(col) {
                        DataType::Int32 => out.extend_from_slice(&b.i32_at(row, col).to_le_bytes()),
                        DataType::Date => out.extend_from_slice(&b.date_at(row, col).to_le_bytes()),
                        DataType::Int64 => out.extend_from_slice(&b.i64_at(row, col).to_le_bytes()),
                        DataType::Float64 => {
                            out.extend_from_slice(&b.f64_at(row, col).to_le_bytes())
                        }
                        DataType::Char(_) => out.extend_from_slice(b.char_at(row, col)),
                    }
                }
            }
        }
    }
}

/// Rebuild a block from its fixed-width tuple encoding.
fn decode_block(
    schema: Arc<Schema>,
    format: BlockFormat,
    capacity_bytes: usize,
    rows: usize,
    bytes: &[u8],
) -> Result<StorageBlock> {
    let w = schema.tuple_width();
    if bytes.len() != rows * w {
        return Err(StorageError::SpillIo {
            detail: format!(
                "spill file holds {} bytes, expected {} ({} rows of {} bytes)",
                bytes.len(),
                rows * w,
                rows,
                w
            ),
        });
    }
    let mut block = StorageBlock::new(schema.clone(), format, capacity_bytes)?;
    for row in 0..rows {
        let tuple = &bytes[row * w..(row + 1) * w];
        match &mut block {
            StorageBlock::Row(b) => {
                b.append_tuple_bytes(tuple);
            }
            StorageBlock::Column(b) => {
                for col in 0..schema.len() {
                    let off = schema.offset(col);
                    match schema.dtype(col) {
                        DataType::Int32 | DataType::Date => {
                            let v = i32::from_le_bytes(tuple[off..off + 4].try_into().unwrap());
                            match schema.dtype(col) {
                                DataType::Date => b.raw_push_i32(col, v),
                                _ => b.raw_push_i32(col, v),
                            }
                        }
                        DataType::Int64 => b.raw_push_i64(
                            col,
                            i64::from_le_bytes(tuple[off..off + 8].try_into().unwrap()),
                        ),
                        DataType::Float64 => b.raw_push_f64(
                            col,
                            f64::from_le_bytes(tuple[off..off + 8].try_into().unwrap()),
                        ),
                        DataType::Char(n) => b.raw_push_char(col, &tuple[off..off + n as usize]),
                    }
                }
                b.finish_raw_row();
            }
        }
    }
    Ok(block)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn schema() -> Arc<Schema> {
        Schema::from_pairs(&[
            ("k", DataType::Int32),
            ("v", DataType::Float64),
            ("tag", DataType::Char(4)),
            ("d", DataType::Date),
            ("big", DataType::Int64),
        ])
    }

    fn filled(format: BlockFormat, n: i32) -> StorageBlock {
        let mut b = StorageBlock::new(schema(), format, 4096).unwrap();
        for i in 0..n {
            b.append_row(&[
                Value::I32(i),
                Value::F64(i as f64 * 0.5),
                Value::Str(format!("t{i}")), // padded: raw bytes must survive
                Value::Date(7000 + i),
                Value::I64(i as i64 * 3),
            ])
            .unwrap();
        }
        b
    }

    #[test]
    fn spill_and_restore_round_trips_both_formats() {
        for format in [BlockFormat::Row, BlockFormat::Column] {
            let t = MemoryTracker::new();
            let store = SpillStore::new(None, t.clone()).unwrap();
            let block = filled(format, 9);
            let bytes = block.allocated_bytes();
            t.alloc(bytes); // simulate the pool charge
            let expected = block.all_rows();

            let handle = store.spill_block(&block, 3).unwrap();
            assert_eq!(t.current_bytes(), 0, "spill releases the charge");
            assert_eq!(store.live_files(), 1);
            drop(block);

            let back = store.restore(handle).unwrap();
            assert_eq!(t.current_bytes(), bytes, "restore re-charges");
            assert_eq!(back.all_rows(), expected, "{format:?}");
            assert_eq!(back.format(), format);
            assert_eq!(store.live_files(), 0, "restore deletes the file");
            t.free(bytes);
        }
    }

    #[test]
    fn char_padding_survives_the_round_trip() {
        // "t1" in Char(4) is stored as "t1  "; a Value round-trip would trim.
        let t = MemoryTracker::new();
        let store = SpillStore::new(None, t.clone()).unwrap();
        let block = filled(BlockFormat::Column, 2);
        t.alloc(block.allocated_bytes());
        let raw: Vec<u8> = block.char_at(1, 2).to_vec();
        assert_eq!(&raw, b"t1  ");
        let handle = store.spill_block(&block, 0).unwrap();
        let back = store.restore(handle).unwrap();
        assert_eq!(back.char_at(1, 2), b"t1  ");
    }

    #[test]
    fn stats_and_drop_cleanup() {
        let t = MemoryTracker::new();
        let dir;
        {
            let store = SpillStore::new(None, t.clone()).unwrap();
            dir = store.dir().to_path_buf();
            let b1 = filled(BlockFormat::Row, 4);
            let b2 = filled(BlockFormat::Column, 4);
            t.alloc(b1.allocated_bytes() + b2.allocated_bytes());
            let h1 = store.spill_block(&b1, 0).unwrap();
            let _h2 = store.spill_block(&b2, 1).unwrap();
            let s = store.stats();
            assert_eq!(s.spill_events, 2);
            assert_eq!(s.spilled_bytes, b1.allocated_bytes() + b2.allocated_bytes());
            assert_eq!(store.live_files(), 2);
            let _ = store.restore(h1).unwrap();
            assert_eq!(store.stats().restored_bytes, b1.allocated_bytes());
            store.note_respill(2);
            store.note_respill(1);
            assert_eq!(store.stats().respill_depth, 2);
            assert!(dir.exists());
            t.free(b1.allocated_bytes()); // restore charged it
        }
        assert!(!dir.exists(), "drop removes the spill directory");
        assert_eq!(t.current_bytes(), 0);
    }

    #[test]
    fn discard_deletes_without_recharging() {
        let t = MemoryTracker::new();
        let store = SpillStore::new(None, t.clone()).unwrap();
        let block = filled(BlockFormat::Row, 3);
        t.alloc(block.allocated_bytes());
        let handle = store.spill_block(&block, 0).unwrap();
        assert_eq!(t.current_bytes(), 0);
        store.discard(handle);
        assert_eq!(store.live_files(), 0);
        assert_eq!(t.current_bytes(), 0);
    }

    struct FailWrites;
    impl SpillObserver for FailWrites {
        fn before_io(&self, io: SpillIo, _tag: usize) -> std::result::Result<(), String> {
            match io {
                SpillIo::Write => Err("injected write failure".into()),
                SpillIo::Read => Ok(()),
            }
        }
    }

    #[test]
    fn failed_spill_is_side_effect_free() {
        let t = MemoryTracker::new();
        let store = SpillStore::new(None, t.clone()).unwrap();
        store.set_observer(Arc::new(FailWrites));
        let block = filled(BlockFormat::Row, 3);
        t.alloc(block.allocated_bytes());
        let before = t.current_bytes();
        let err = store.spill_block(&block, 0).unwrap_err();
        assert!(matches!(err, StorageError::SpillIo { .. }));
        assert!(err.to_string().contains("injected write failure"));
        assert_eq!(t.current_bytes(), before, "tracker untouched");
        assert_eq!(store.live_files(), 0);
        assert_eq!(store.stats().spill_events, 0);
        t.free(before);
    }

    struct FailReads;
    impl SpillObserver for FailReads {
        fn before_io(&self, io: SpillIo, _tag: usize) -> std::result::Result<(), String> {
            match io {
                SpillIo::Read => Err("injected read failure".into()),
                SpillIo::Write => Ok(()),
            }
        }
    }

    #[test]
    fn failed_restore_still_cleans_the_file() {
        let t = MemoryTracker::new();
        let store = SpillStore::new(None, t.clone()).unwrap();
        let block = filled(BlockFormat::Row, 3);
        t.alloc(block.allocated_bytes());
        let handle = store.spill_block(&block, 0).unwrap();
        store.set_observer(Arc::new(FailReads));
        let err = store.restore(handle).unwrap_err();
        assert!(matches!(err, StorageError::SpillIo { .. }));
        assert_eq!(store.live_files(), 0, "file removed even on failure");
        assert_eq!(t.current_bytes(), 0, "failed restore charges nothing");
    }

    #[test]
    fn slot_lifecycle_resident_evict_take() {
        let t = MemoryTracker::new();
        let store = SpillStore::new(None, t.clone()).unwrap();
        let block = filled(BlockFormat::Column, 5);
        let bytes = block.allocated_bytes();
        t.alloc(bytes);
        let expected = block.all_rows();
        let slot = SpillSlot::new(Arc::new(block), 7);
        assert_eq!(slot.tag(), 7);
        assert_eq!(slot.rows(), 5);
        assert_eq!(slot.resident_bytes(), bytes);
        assert!(!slot.is_spilled());

        let freed = slot.try_evict(&store).unwrap();
        assert_eq!(freed, bytes);
        assert!(slot.is_spilled());
        assert_eq!(slot.resident_bytes(), 0);
        assert_eq!(slot.rows(), 5, "rows visible while spilled");
        assert_eq!(t.current_bytes(), 0);
        // Second eviction attempt is a no-op.
        assert_eq!(slot.try_evict(&store).unwrap(), 0);

        let back = slot.take(Some(&store)).unwrap();
        assert_eq!(back.all_rows(), expected);
        assert_eq!(t.current_bytes(), bytes);
        assert!(slot.take(Some(&store)).is_err(), "taken exactly once");
        t.free(bytes);
    }

    #[test]
    fn shared_blocks_are_not_evictable() {
        let t = MemoryTracker::new();
        let store = SpillStore::new(None, t.clone()).unwrap();
        let block = Arc::new(filled(BlockFormat::Row, 2));
        let extra_ref = block.clone();
        let slot = SpillSlot::new(block, 0);
        assert_eq!(slot.try_evict(&store).unwrap(), 0, "shared: not evictable");
        drop(extra_ref);
        assert!(slot.try_evict(&store).unwrap() > 0);
    }

    #[test]
    fn slot_discard_handles_both_tiers() {
        let t = MemoryTracker::new();
        let store = SpillStore::new(None, t.clone()).unwrap();
        // Resident slot: discard frees tracked bytes.
        let b = filled(BlockFormat::Row, 2);
        let bytes = b.allocated_bytes();
        t.alloc(bytes);
        let slot = SpillSlot::new(Arc::new(b), 0);
        slot.discard(&t, Some(&store));
        assert_eq!(t.current_bytes(), 0);
        // Spilled slot: discard deletes the file, accounting untouched.
        let b = filled(BlockFormat::Row, 2);
        t.alloc(b.allocated_bytes());
        let slot = SpillSlot::new(Arc::new(b), 0);
        slot.try_evict(&store).unwrap();
        assert_eq!(store.live_files(), 1);
        slot.discard(&t, Some(&store));
        assert_eq!(store.live_files(), 0);
        assert_eq!(t.current_bytes(), 0);
        // Discard is idempotent.
        slot.discard(&t, Some(&store));
        assert_eq!(t.current_bytes(), 0);
    }
}
