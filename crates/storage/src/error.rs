//! Error type for the storage layer.

use std::fmt;

/// Errors produced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A value's type did not match the column's declared type.
    TypeMismatch {
        /// What the schema expected.
        expected: String,
        /// What was provided.
        found: String,
    },
    /// A row was wider than the block can ever hold.
    TupleTooLarge {
        /// Width of the tuple in bytes.
        tuple_bytes: usize,
        /// Capacity of the block in bytes.
        block_bytes: usize,
    },
    /// Referenced a column index that does not exist.
    ColumnOutOfRange {
        /// Index that was requested.
        index: usize,
        /// Number of columns in the schema.
        len: usize,
    },
    /// Referenced a row index that does not exist.
    RowOutOfRange {
        /// Index that was requested.
        index: usize,
        /// Number of rows in the block.
        len: usize,
    },
    /// Looked up a table that is not in the catalog.
    TableNotFound(String),
    /// A table with this name already exists in the catalog.
    TableExists(String),
    /// Attempted to build a hash key out of an unsupported type (e.g. floats).
    UnhashableType(String),
    /// The provided row had the wrong number of fields for the schema.
    ArityMismatch {
        /// Number of columns in the schema.
        expected: usize,
        /// Number of values supplied.
        found: usize,
    },
    /// An allocation would push the pool's memory tracker past its configured
    /// budget. The allocation was **not** performed; accounting is unchanged.
    BudgetExceeded {
        /// Bytes the allocation asked for.
        requested: usize,
        /// Bytes currently charged to the tracker.
        in_use: usize,
        /// The configured budget in bytes.
        budget: usize,
        /// Bytes charged process-wide (the parent tracker when the pool is a
        /// per-query carve-out of a shared budget; equals `in_use` otherwise).
        global_in_use: usize,
        /// The process-wide budget (equals `budget` for a standalone pool).
        global_budget: usize,
    },
    /// An I/O failure in the disk spill tier (writing an evicted block or
    /// faulting one back in). Carries the rendered cause instead of the
    /// `std::io::Error` so the error type stays `Clone`/`Eq`.
    SpillIo {
        /// What failed, with the path and OS error rendered in.
        detail: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            StorageError::TupleTooLarge {
                tuple_bytes,
                block_bytes,
            } => write!(
                f,
                "tuple of {tuple_bytes} bytes cannot fit in a {block_bytes}-byte block"
            ),
            StorageError::ColumnOutOfRange { index, len } => {
                write!(f, "column index {index} out of range for {len} columns")
            }
            StorageError::RowOutOfRange { index, len } => {
                write!(f, "row index {index} out of range for {len} rows")
            }
            StorageError::TableNotFound(name) => write!(f, "table not found: {name}"),
            StorageError::TableExists(name) => write!(f, "table already exists: {name}"),
            StorageError::UnhashableType(t) => write!(f, "type {t} cannot be used as a hash key"),
            StorageError::ArityMismatch { expected, found } => {
                write!(
                    f,
                    "row arity mismatch: schema has {expected} columns, got {found}"
                )
            }
            StorageError::BudgetExceeded {
                requested,
                in_use,
                budget,
                global_in_use,
                global_budget,
            } => {
                write!(
                    f,
                    "memory budget exceeded: requested {requested} bytes with {in_use} of {budget} in use"
                )?;
                if (global_in_use, global_budget) != (in_use, budget) {
                    write!(f, " (global: {global_in_use} of {global_budget})")?;
                }
                Ok(())
            }
            StorageError::SpillIo { detail } => write!(f, "spill I/O failure: {detail}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StorageError::TypeMismatch {
            expected: "Int32".into(),
            found: "Float64".into(),
        };
        assert!(e.to_string().contains("Int32"));
        assert!(e.to_string().contains("Float64"));

        let e = StorageError::TableNotFound("lineitem".into());
        assert!(e.to_string().contains("lineitem"));

        let e = StorageError::ArityMismatch {
            expected: 3,
            found: 2,
        };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('2'));

        let e = StorageError::BudgetExceeded {
            requested: 4096,
            in_use: 60000,
            budget: 61440,
            global_in_use: 60000,
            global_budget: 61440,
        };
        assert!(e.to_string().contains("4096"));
        assert!(e.to_string().contains("60000"));
        assert!(e.to_string().contains("61440"));
        assert!(!e.to_string().contains("global")); // standalone pool: no noise

        let e = StorageError::BudgetExceeded {
            requested: 4096,
            in_use: 1024,
            budget: 8192,
            global_in_use: 120000,
            global_budget: 131072,
        };
        assert!(e.to_string().contains("global"));
        assert!(e.to_string().contains("120000"));
        assert!(e.to_string().contains("131072"));

        let e = StorageError::SpillIo {
            detail: "writing /tmp/x/3.blk: disk full".into(),
        };
        assert!(e.to_string().contains("spill I/O failure"));
        assert!(e.to_string().contains("disk full"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            StorageError::TableNotFound("t".into()),
            StorageError::TableNotFound("t".into())
        );
        assert_ne!(
            StorageError::TableNotFound("t".into()),
            StorageError::TableExists("t".into())
        );
    }
}
