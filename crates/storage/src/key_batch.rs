//! Batched key extraction and hashing.
//!
//! Row-at-a-time key construction ([`HashKey::from_row`]) re-dispatches on the
//! schema for every row of every block. A [`KeyExtractor`] is compiled once
//! per (schema, key-columns) pair — at plan-build time in `uot-core` — and
//! turns a whole block into a [`KeyBatch`] (packed keys + Fx hashes) with one
//! dispatch: single `Int32`/`Int64`/`Date` keys read the typed column slice
//! directly and never touch the `HashKey` enum on the way in, composite keys
//! up to 16 encoded bytes are packed column-at-a-time into `u128`s, and only
//! wide keys fall back to per-row [`HashKey::Var`] construction.
//!
//! The batch owns reusable buffers, so a per-work-order scratch `KeyBatch`
//! amortizes allocation across every block the work order touches. Hashes are
//! always [`hash_of`]-consistent: the batched pipeline and the scalar
//! reference path agree on every shard, slot, and Bloom position.

use crate::block::StorageBlock;
use crate::error::StorageError;
use crate::hash_key::{hash_fixed, hash_var, HashKey};
use crate::schema::Schema;
use crate::types::DataType;
use crate::Result;

/// Reusable output of one batched key-extraction pass: one packed key and one
/// 64-bit Fx hash per (selected) input row.
#[derive(Debug, Default, Clone)]
pub struct KeyBatch {
    hashes: Vec<u64>,
    data: KeyData,
}

/// Packed key storage. Fixed keys (≤ 16 encoded bytes — every TPC-H join and
/// group-by key) stay as raw `u128`s and only become [`HashKey`]s when an
/// operator must retain one (hash-table insert, group map); wide keys are
/// materialized eagerly.
#[derive(Debug, Clone)]
enum KeyData {
    Fixed { packed: Vec<u128>, width: u8 },
    Var(Vec<HashKey>),
}

impl Default for KeyData {
    fn default() -> Self {
        KeyData::Fixed {
            packed: Vec::new(),
            width: 0,
        }
    }
}

impl KeyBatch {
    /// An empty batch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of keys extracted by the last pass.
    #[inline]
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// True when the last pass selected no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// The Fx hash of every extracted key, in input-row order.
    #[inline]
    pub fn hashes(&self) -> &[u64] {
        &self.hashes
    }

    /// Compare extracted key `i` against a stored [`HashKey`] without
    /// materializing it (no allocation for fixed-width keys).
    #[inline]
    pub fn key_eq(&self, i: usize, other: &HashKey) -> bool {
        match &self.data {
            KeyData::Fixed { packed, width } => {
                matches!(other, HashKey::Fixed(p, w) if *p == packed[i] && *w == *width)
            }
            KeyData::Var(keys) => keys[i] == *other,
        }
    }

    /// Materialize extracted key `i` as an owned [`HashKey`] (cheap for fixed
    /// keys, a clone for wide keys). Bit-identical to what
    /// [`HashKey::from_row`] produces for the same row.
    #[inline]
    pub fn key_at(&self, i: usize) -> HashKey {
        match &self.data {
            KeyData::Fixed { packed, width } => HashKey::Fixed(packed[i], *width),
            KeyData::Var(keys) => keys[i].clone(),
        }
    }

    /// Reset buffers for a fixed-width pass, keeping allocations.
    fn reset_fixed(&mut self, width: u8, n: usize) -> &mut Vec<u128> {
        self.hashes.clear();
        self.hashes.reserve(n);
        if !matches!(self.data, KeyData::Fixed { .. }) {
            self.data = KeyData::Fixed {
                packed: Vec::new(),
                width,
            };
        }
        match &mut self.data {
            KeyData::Fixed { packed, width: w } => {
                *w = width;
                packed.clear();
                packed.reserve(n);
                packed
            }
            KeyData::Var(_) => unreachable!("reset to Fixed above"),
        }
    }

    /// Reset buffers for a wide-key pass, keeping allocations.
    fn reset_var(&mut self, n: usize) -> &mut Vec<HashKey> {
        self.hashes.clear();
        self.hashes.reserve(n);
        if !matches!(self.data, KeyData::Var(_)) {
            self.data = KeyData::Var(Vec::new());
        }
        match &mut self.data {
            KeyData::Var(keys) => {
                keys.clear();
                keys.reserve(n);
                keys
            }
            KeyData::Fixed { .. } => unreachable!("reset to Var above"),
        }
    }
}

/// One field of a packed composite key: source column, type, and byte offset
/// inside the little-endian `u128` encoding.
#[derive(Debug, Clone, Copy)]
struct FieldPlan {
    col: usize,
    dtype: DataType,
    off: usize,
}

/// A key-extraction routine compiled once per (schema, key-columns) pair.
///
/// Compilation resolves column indices, types, offsets and the fast-path
/// shape, so extraction itself performs a single dispatch per block (or per
/// field for composites) instead of one per row.
#[derive(Debug, Clone)]
pub struct KeyExtractor(Shape);

/// The compiled fast-path shape (private: callers only extract).
#[derive(Debug, Clone)]
enum Shape {
    /// Single 4-byte integer key (`Int32`, or `Date` when `date`).
    I32 { col: usize, date: bool },
    /// Single `Int64` key.
    I64 { col: usize },
    /// Composite (or single `Char`) key with encoded width ≤ 16 bytes.
    Fixed { fields: Vec<FieldPlan>, width: u8 },
    /// Wide keys (> 16 encoded bytes): per-row [`HashKey::Var`] fallback.
    Var { cols: Vec<usize> },
}

impl KeyExtractor {
    /// Compile an extractor for key columns `cols` of `schema`.
    ///
    /// Errors on out-of-range columns or unhashable (float) key types — the
    /// same validation `PlanBuilder` applies, so compiled extractors certify
    /// that the hot path needs no per-row checks.
    pub fn compile(schema: &Schema, cols: &[usize]) -> Result<KeyExtractor> {
        for &c in cols {
            if c >= schema.len() {
                return Err(StorageError::ColumnOutOfRange {
                    index: c,
                    len: schema.len(),
                });
            }
            if !schema.dtype(c).hashable() {
                return Err(StorageError::UnhashableType(schema.dtype(c).name()));
            }
        }
        if let [col] = *cols {
            match schema.dtype(col) {
                DataType::Int32 => return Ok(KeyExtractor(Shape::I32 { col, date: false })),
                DataType::Date => return Ok(KeyExtractor(Shape::I32 { col, date: true })),
                DataType::Int64 => return Ok(KeyExtractor(Shape::I64 { col })),
                _ => {}
            }
        }
        let width: usize = cols.iter().map(|&c| schema.dtype(c).width()).sum();
        if width <= 16 {
            let mut fields = Vec::with_capacity(cols.len());
            let mut off = 0;
            for &c in cols {
                let dtype = schema.dtype(c);
                fields.push(FieldPlan { col: c, dtype, off });
                off += dtype.width();
            }
            Ok(KeyExtractor(Shape::Fixed {
                fields,
                width: width as u8,
            }))
        } else {
            Ok(KeyExtractor(Shape::Var {
                cols: cols.to_vec(),
            }))
        }
    }

    /// Extract keys and hashes for every row of `block` into `batch`.
    pub fn extract_block(&self, block: &StorageBlock, batch: &mut KeyBatch) {
        let n = block.num_rows();
        match &self.0 {
            Shape::I32 { col, date } => {
                let packed = batch.reset_fixed(4, n);
                if let Some(data) = block.column_data(*col) {
                    let vals = if *date { data.as_date() } else { data.as_i32() };
                    packed.extend(vals.iter().map(|&v| v as u32 as u128));
                } else if *date {
                    packed.extend((0..n).map(|r| block.date_at(r, *col) as u32 as u128));
                } else {
                    packed.extend((0..n).map(|r| block.i32_at(r, *col) as u32 as u128));
                }
                batch
                    .hashes
                    .extend(fixed_packed(&batch.data).iter().map(|&p| hash_fixed(p, 4)));
            }
            Shape::I64 { col } => {
                let packed = batch.reset_fixed(8, n);
                if let Some(data) = block.column_data(*col) {
                    packed.extend(data.as_i64().iter().map(|&v| v as u64 as u128));
                } else {
                    packed.extend((0..n).map(|r| block.i64_at(r, *col) as u64 as u128));
                }
                batch
                    .hashes
                    .extend(fixed_packed(&batch.data).iter().map(|&p| hash_fixed(p, 8)));
            }
            Shape::Fixed { fields, width } => {
                let packed = batch.reset_fixed(*width, n);
                packed.resize(n, 0);
                for f in fields {
                    pack_field_all(block, *f, packed);
                }
                let w = *width;
                batch
                    .hashes
                    .extend(fixed_packed(&batch.data).iter().map(|&p| hash_fixed(p, w)));
            }
            Shape::Var { cols } => {
                let keys = batch.reset_var(n);
                keys.extend((0..n).map(|r| HashKey::from_row(block, r, cols)));
                batch.hashes.extend(var_keys(&batch.data).iter().map(|k| {
                    let HashKey::Var(bytes) = k else {
                        unreachable!("Var extractor emits Var keys")
                    };
                    hash_var(bytes)
                }));
            }
        }
    }

    /// Extract keys and hashes for the selected `rows` of `block` (e.g. the
    /// survivors of a selection bitmap) into `batch`.
    pub fn extract_rows(&self, block: &StorageBlock, rows: &[u32], batch: &mut KeyBatch) {
        let n = rows.len();
        match &self.0 {
            Shape::I32 { col, date } => {
                let packed = batch.reset_fixed(4, n);
                if let Some(data) = block.column_data(*col) {
                    let vals = if *date { data.as_date() } else { data.as_i32() };
                    packed.extend(rows.iter().map(|&r| vals[r as usize] as u32 as u128));
                } else if *date {
                    packed.extend(
                        rows.iter()
                            .map(|&r| block.date_at(r as usize, *col) as u32 as u128),
                    );
                } else {
                    packed.extend(
                        rows.iter()
                            .map(|&r| block.i32_at(r as usize, *col) as u32 as u128),
                    );
                }
                batch
                    .hashes
                    .extend(fixed_packed(&batch.data).iter().map(|&p| hash_fixed(p, 4)));
            }
            Shape::I64 { col } => {
                let packed = batch.reset_fixed(8, n);
                if let Some(data) = block.column_data(*col) {
                    let vals = data.as_i64();
                    packed.extend(rows.iter().map(|&r| vals[r as usize] as u64 as u128));
                } else {
                    packed.extend(
                        rows.iter()
                            .map(|&r| block.i64_at(r as usize, *col) as u64 as u128),
                    );
                }
                batch
                    .hashes
                    .extend(fixed_packed(&batch.data).iter().map(|&p| hash_fixed(p, 8)));
            }
            Shape::Fixed { fields, width } => {
                let packed = batch.reset_fixed(*width, n);
                packed.resize(n, 0);
                for f in fields {
                    pack_field_rows(block, *f, rows, packed);
                }
                let w = *width;
                batch
                    .hashes
                    .extend(fixed_packed(&batch.data).iter().map(|&p| hash_fixed(p, w)));
            }
            Shape::Var { cols } => {
                let keys = batch.reset_var(n);
                keys.extend(
                    rows.iter()
                        .map(|&r| HashKey::from_row(block, r as usize, cols)),
                );
                batch.hashes.extend(var_keys(&batch.data).iter().map(|k| {
                    let HashKey::Var(bytes) = k else {
                        unreachable!("Var extractor emits Var keys")
                    };
                    hash_var(bytes)
                }));
            }
        }
    }
}

#[inline]
fn fixed_packed(data: &KeyData) -> &[u128] {
    match data {
        KeyData::Fixed { packed, .. } => packed,
        KeyData::Var(_) => unreachable!("fixed pass"),
    }
}

#[inline]
fn var_keys(data: &KeyData) -> &[HashKey] {
    match data {
        KeyData::Var(keys) => keys,
        KeyData::Fixed { .. } => unreachable!("var pass"),
    }
}

/// OR one field's little-endian encoding into every packed key (all rows).
/// Column-store blocks get one typed slice loop per field; row-store blocks
/// use the precompiled typed accessor (no per-row schema lookup).
fn pack_field_all(block: &StorageBlock, f: FieldPlan, packed: &mut [u128]) {
    let shift = 8 * f.off as u32;
    match f.dtype {
        DataType::Int32 | DataType::Date => {
            let is_date = matches!(f.dtype, DataType::Date);
            if let Some(data) = block.column_data(f.col) {
                let vals = if is_date {
                    data.as_date()
                } else {
                    data.as_i32()
                };
                for (p, &v) in packed.iter_mut().zip(vals) {
                    *p |= (v as u32 as u128) << shift;
                }
            } else {
                for (r, p) in packed.iter_mut().enumerate() {
                    let v = if is_date {
                        block.date_at(r, f.col)
                    } else {
                        block.i32_at(r, f.col)
                    };
                    *p |= (v as u32 as u128) << shift;
                }
            }
        }
        DataType::Int64 => {
            if let Some(data) = block.column_data(f.col) {
                for (p, &v) in packed.iter_mut().zip(data.as_i64()) {
                    *p |= (v as u64 as u128) << shift;
                }
            } else {
                for (r, p) in packed.iter_mut().enumerate() {
                    *p |= (block.i64_at(r, f.col) as u64 as u128) << shift;
                }
            }
        }
        DataType::Char(_) => {
            for (r, p) in packed.iter_mut().enumerate() {
                for (j, &b) in block.char_at(r, f.col).iter().enumerate() {
                    *p |= (b as u128) << (shift + 8 * j as u32);
                }
            }
        }
        DataType::Float64 => unreachable!("unhashable type rejected at compile"),
    }
}

/// OR one field's little-endian encoding into every packed key (selected rows).
fn pack_field_rows(block: &StorageBlock, f: FieldPlan, rows: &[u32], packed: &mut [u128]) {
    let shift = 8 * f.off as u32;
    match f.dtype {
        DataType::Int32 | DataType::Date => {
            let is_date = matches!(f.dtype, DataType::Date);
            if let Some(data) = block.column_data(f.col) {
                let vals = if is_date {
                    data.as_date()
                } else {
                    data.as_i32()
                };
                for (p, &r) in packed.iter_mut().zip(rows) {
                    *p |= (vals[r as usize] as u32 as u128) << shift;
                }
            } else {
                for (p, &r) in packed.iter_mut().zip(rows) {
                    let v = if is_date {
                        block.date_at(r as usize, f.col)
                    } else {
                        block.i32_at(r as usize, f.col)
                    };
                    *p |= (v as u32 as u128) << shift;
                }
            }
        }
        DataType::Int64 => {
            if let Some(data) = block.column_data(f.col) {
                let vals = data.as_i64();
                for (p, &r) in packed.iter_mut().zip(rows) {
                    *p |= (vals[r as usize] as u64 as u128) << shift;
                }
            } else {
                for (p, &r) in packed.iter_mut().zip(rows) {
                    *p |= (block.i64_at(r as usize, f.col) as u64 as u128) << shift;
                }
            }
        }
        DataType::Char(_) => {
            for (p, &r) in packed.iter_mut().zip(rows) {
                for (j, &b) in block.char_at(r as usize, f.col).iter().enumerate() {
                    *p |= (b as u128) << (shift + 8 * j as u32);
                }
            }
        }
        DataType::Float64 => unreachable!("unhashable type rejected at compile"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockFormat;
    use crate::hash_key::hash_of;
    use crate::value::Value;

    fn block(format: BlockFormat) -> StorageBlock {
        let s = Schema::from_pairs(&[
            ("a", DataType::Int32),
            ("b", DataType::Int64),
            ("c", DataType::Char(3)),
            ("d", DataType::Date),
            ("e", DataType::Char(24)),
            ("f", DataType::Float64),
        ]);
        let mut b = StorageBlock::new(s, format, 1 << 14).unwrap();
        for i in 0..37 {
            b.append_row(&[
                Value::I32(i * 7 - 5),
                Value::I64(i as i64 * 1_000_003),
                Value::Str(format!("s{}", i % 9)),
                Value::Date(7000 + i),
                Value::Str(format!("wide-string-{i}-padding")),
                Value::F64(i as f64),
            ])
            .unwrap();
        }
        b
    }

    fn check_matches_scalar(cols: &[usize]) {
        for format in [BlockFormat::Row, BlockFormat::Column] {
            let b = block(format);
            let ex = KeyExtractor::compile(b.schema(), cols).unwrap();
            let mut batch = KeyBatch::new();
            ex.extract_block(&b, &mut batch);
            assert_eq!(batch.len(), b.num_rows());
            for r in 0..b.num_rows() {
                let scalar = HashKey::from_row(&b, r, cols);
                assert_eq!(batch.key_at(r), scalar, "{format:?} cols {cols:?} row {r}");
                assert!(batch.key_eq(r, &scalar));
                assert_eq!(batch.hashes()[r], hash_of(&scalar));
            }
            // Selected-rows extraction agrees with full extraction.
            let rows: Vec<u32> = (0..b.num_rows() as u32).step_by(3).collect();
            let mut sel = KeyBatch::new();
            ex.extract_rows(&b, &rows, &mut sel);
            assert_eq!(sel.len(), rows.len());
            for (i, &r) in rows.iter().enumerate() {
                assert_eq!(sel.key_at(i), batch.key_at(r as usize));
                assert_eq!(sel.hashes()[i], batch.hashes()[r as usize]);
            }
        }
    }

    #[test]
    fn single_i32_matches_scalar() {
        check_matches_scalar(&[0]);
    }

    #[test]
    fn single_i64_matches_scalar() {
        check_matches_scalar(&[1]);
    }

    #[test]
    fn single_date_matches_scalar() {
        check_matches_scalar(&[3]);
    }

    #[test]
    fn single_char_matches_scalar() {
        check_matches_scalar(&[2]);
    }

    #[test]
    fn composite_fixed_matches_scalar() {
        check_matches_scalar(&[0, 1]);
        check_matches_scalar(&[3, 2, 0]);
    }

    #[test]
    fn wide_var_matches_scalar() {
        check_matches_scalar(&[4]);
        check_matches_scalar(&[4, 0]);
        check_matches_scalar(&[0, 1, 2, 3]);
    }

    #[test]
    fn batch_reuse_across_shapes() {
        let b = block(BlockFormat::Column);
        let mut batch = KeyBatch::new();
        for cols in [vec![0], vec![4], vec![0, 1], vec![2]] {
            let ex = KeyExtractor::compile(b.schema(), &cols).unwrap();
            ex.extract_block(&b, &mut batch);
            for r in 0..b.num_rows() {
                assert_eq!(batch.key_at(r), HashKey::from_row(&b, r, &cols));
            }
        }
    }

    #[test]
    fn compile_rejects_bad_columns() {
        let b = block(BlockFormat::Row);
        assert!(matches!(
            KeyExtractor::compile(b.schema(), &[5]),
            Err(StorageError::UnhashableType(_))
        ));
        assert!(KeyExtractor::compile(b.schema(), &[99]).is_err());
    }
}
