//! The engine facade: configuration, execution, results.

use crate::cancel::CancellationToken;
use crate::error::EngineError;
use crate::exec_options::ExecOptions;
use crate::fault::FaultPlan;
use crate::fusion::FusionPolicy;
use crate::metrics::{Degradation, QueryMetrics};
use crate::obs::hub::{HubCounter, HubHistogram, HubObserver, MaybeHubObserver, MetricsHub};
use crate::obs::observer::MaybeTracingObserver;
use crate::obs::{CompositeObserver, ExplainAnalyze, TracingObserver};
use crate::plan::{OperatorKind, QueryPlan};
use crate::scheduler::{run_query, MetricsObserver, SchedulerConfig};
use crate::state::ExecContext;
use crate::trace::{Trace, TraceEvent, TraceEventKind, TraceSink, DEFAULT_TRACE_CAPACITY};
use crate::uot::Uot;
use crate::Result;
use std::sync::Arc;
use std::time::Duration;
use uot_sql::{CacheStats, PlanCache};
use uot_storage::{
    BlockFormat, BlockPool, Catalog, MemoryTracker, Schema, StorageBlock, StorageError, Value,
};

pub use crate::scheduler::ExecMode;

/// What to do when a query trips its memory budget.
///
/// A lower UoT drains intermediates sooner (the paper's Section VI footprint
/// argument), so degrading the transfer unit is the natural first response
/// to memory pressure. [`DegradePolicy::Spill`] goes further: it arms a
/// disk-backed second tier up front, so a working set beyond the budget
/// degrades to out-of-core execution instead of a terminal error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradePolicy {
    /// Surface [`EngineError::BudgetExceeded`] to the caller (default).
    #[default]
    Off,
    /// Retry once with the default UoT halved toward [`Uot::LOW`]; the
    /// degradation is recorded in [`QueryMetrics::degradations`].
    LowerUot,
    /// Arm the disk spill tier: cold staged edge blocks evict to temp files
    /// under pressure (faulting back in at transfer time), joins whose build
    /// side is estimated past the budget run as grace/partitioned hash joins,
    /// and fusion is disabled so every edge stays evictable. If the budget
    /// still trips, fall back to one [`DegradePolicy::LowerUot`]-style retry
    /// (spill is tried *before* lowering the UoT).
    Spill,
}

/// Structured-tracing knobs (see [`EngineConfig::tracing`]).
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Maximum events the per-query [`TraceSink`] retains; past it events
    /// are dropped (and counted in [`Trace::dropped`]) instead of growing
    /// without bound.
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            capacity: DEFAULT_TRACE_CAPACITY,
        }
    }
}

/// Engine configuration. The fields mirror the experimental dimensions of
/// Section IV of the paper: block size, storage format (of temporaries),
/// UoT, and parallelism.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Size of temporary storage blocks in bytes.
    pub block_bytes: usize,
    /// Format of temporary blocks. The paper's Quickstep uses **row store
    /// for temporary tables regardless of the base-table format**
    /// (Section IV-B); that is the default here too.
    pub temp_format: BlockFormat,
    /// Default unit of transfer for every edge without an override.
    pub default_uot: Uot,
    /// Execution mode.
    pub mode: ExecMode,
    /// Optional per-operator concurrency cap.
    pub max_dop_per_op: Option<usize>,
    /// Shards per join hash table (lock granularity of concurrent builds).
    pub hash_table_shards: usize,
    /// Whether the block pool reuses returned blocks (the `ablation_pool`
    /// knob; `true` matches Quickstep).
    pub pool_reuse: bool,
    /// Hard cap on temporary bytes (pool blocks) a query may hold at once.
    /// `None` = unlimited. An allocation past the cap fails with
    /// [`EngineError::BudgetExceeded`] naming the operator that hit it.
    pub memory_budget: Option<usize>,
    /// Response to a tripped memory budget.
    pub degrade: DegradePolicy,
    /// Optional wall-clock deadline per query; past it the query is
    /// cancelled and yields [`EngineError::Cancelled`].
    pub deadline: Option<Duration>,
    /// Structured tracing: `Some` records every scheduler/work-order event
    /// into a per-query [`Trace`] returned on [`QueryResult::trace`]. `None`
    /// (the default) leaves the untraced fast path untouched.
    pub trace: Option<TraceConfig>,
    /// Fused-pipeline policy: whether eligible select/probe/aggregate chains
    /// run as single push-based loops (UoT -> 0) instead of staging blocks
    /// on their interior transfer edges. [`FusionPolicy::Auto`] (the
    /// default) asks the cost model per pipeline.
    pub fusion: FusionPolicy,
    /// Always-on live metrics: when set, every execution streams its
    /// scheduler events into this [`MetricsHub`] (counters + log-bucketed
    /// histograms) in addition to the per-query [`QueryMetrics`]. `None`
    /// (the default) keeps the untraced fast path observer-free.
    pub hub: Option<Arc<MetricsHub>>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            block_bytes: 128 * 1024,
            temp_format: BlockFormat::Row,
            default_uot: Uot::LOW,
            mode: ExecMode::Parallel {
                workers: std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4),
            },
            max_dop_per_op: None,
            hash_table_shards: 64,
            pool_reuse: true,
            memory_budget: None,
            degrade: DegradePolicy::Off,
            deadline: None,
            trace: None,
            fusion: FusionPolicy::Auto,
            hub: None,
        }
    }
}

impl EngineConfig {
    /// Serial configuration with sane defaults (tests, examples).
    pub fn serial() -> Self {
        EngineConfig {
            mode: ExecMode::Serial,
            ..Default::default()
        }
    }

    /// Parallel configuration with `workers` threads.
    pub fn parallel(workers: usize) -> Self {
        EngineConfig {
            mode: ExecMode::Parallel { workers },
            ..Default::default()
        }
    }

    /// Builder-style setter for the block size.
    pub fn with_block_bytes(mut self, bytes: usize) -> Self {
        self.block_bytes = bytes;
        self
    }

    /// Builder-style setter for the default UoT.
    pub fn with_uot(mut self, uot: Uot) -> Self {
        self.default_uot = uot;
        self
    }

    /// Builder-style setter for the temporary-block format.
    pub fn with_temp_format(mut self, format: BlockFormat) -> Self {
        self.temp_format = format;
        self
    }

    /// Builder-style setter for the memory budget.
    pub fn with_memory_budget(mut self, bytes: Option<usize>) -> Self {
        self.memory_budget = bytes;
        self
    }

    /// Builder-style setter for the budget degradation policy.
    pub fn with_degrade(mut self, policy: DegradePolicy) -> Self {
        self.degrade = policy;
        self
    }

    /// Builder-style setter for the per-query deadline.
    pub fn with_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Builder-style setter for the fused-pipeline policy.
    pub fn with_fusion(mut self, fusion: FusionPolicy) -> Self {
        self.fusion = fusion;
        self
    }

    /// Builder-style setter for the live metrics hub: every execution under
    /// this config streams its scheduler events into `hub`.
    pub fn with_hub(mut self, hub: Arc<MetricsHub>) -> Self {
        self.hub = Some(hub);
        self
    }

    /// Enable structured tracing: every execution records a [`Trace`]
    /// (returned on [`QueryResult::trace`]) that the exporters under
    /// [`crate::obs`] turn into Chrome `trace_event` JSON, Prometheus-style
    /// snapshots, and per-edge UoT-occupancy timelines.
    pub fn tracing(mut self, trace: TraceConfig) -> Self {
        self.trace = Some(trace);
        self
    }
}

/// A materialized query result plus its execution metrics.
#[derive(Debug)]
pub struct QueryResult {
    /// Result schema.
    pub schema: Arc<Schema>,
    /// Result blocks (in completion order — unordered unless the sink was a
    /// sort).
    pub blocks: Vec<Arc<StorageBlock>>,
    /// Execution metrics.
    pub metrics: QueryMetrics,
    /// The structured trace, when the engine was configured with
    /// [`EngineConfig::tracing`].
    pub trace: Option<Trace>,
    /// The executed plan annotated with measured per-operator and per-edge
    /// statistics (`EXPLAIN ANALYZE`). Always present: it is a pure fold of
    /// the plan and the metrics, computed after execution.
    pub explain: Option<ExplainAnalyze>,
}

impl QueryResult {
    /// Total result rows.
    pub fn num_rows(&self) -> usize {
        self.blocks.iter().map(|b| b.num_rows()).sum()
    }

    /// Materialize all rows in block order.
    pub fn rows(&self) -> Vec<Vec<Value>> {
        self.blocks.iter().flat_map(|b| b.all_rows()).collect()
    }

    /// Materialize all rows in a canonical total order — use this to compare
    /// results across UoTs, block sizes, formats and executors.
    pub fn sorted_rows(&self) -> Vec<Vec<Value>> {
        let mut rows = self.rows();
        rows.sort_by(|a, b| crate::ops::aggregate::cmp_value_rows(a, b));
        rows
    }
}

/// The query engine: executes plans under an [`EngineConfig`].
///
/// Each execution gets a fresh [`BlockPool`] and [`MemoryTracker`], so
/// `metrics.peak_temp_bytes` is exactly the query's own temporary footprint
/// (pool blocks + join hash tables), the quantity Section VI of the paper
/// analyzes.
#[derive(Debug, Default)]
pub struct Engine {
    config: EngineConfig,
    /// Catalog SQL statements resolve against (`None` until
    /// [`Engine::with_catalog`]; plan-based execution never needs it).
    catalog: Option<Arc<Catalog>>,
    /// Compiled-plan cache for [`Engine::execute_sql`], keyed by normalized
    /// SQL text.
    plan_cache: PlanCache<QueryPlan>,
}

impl Engine {
    /// Engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Engine {
            config,
            catalog: None,
            plan_cache: PlanCache::new(),
        }
    }

    /// Attach the catalog [`Engine::execute_sql`] resolves table names
    /// against.
    pub fn with_catalog(mut self, catalog: Arc<Catalog>) -> Self {
        self.catalog = Some(catalog);
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Counters of the SQL plan cache.
    pub fn plan_cache_stats(&self) -> CacheStats {
        self.plan_cache.stats()
    }

    /// Validate the configuration against `plan` before running anything.
    /// Catches mistakes that would otherwise surface as confusing mid-query
    /// failures: a worker pool of zero threads, or temporary blocks too
    /// small to hold even one output tuple of some operator.
    fn validate(&self, plan: &QueryPlan) -> Result<()> {
        if let ExecMode::Parallel { workers: 0 } = self.config.mode {
            return Err(EngineError::Config(
                "parallel mode requires at least 1 worker (got workers=0)".into(),
            ));
        }
        if let Some(0) = self.config.max_dop_per_op {
            return Err(EngineError::Config(
                "max_dop_per_op=0 would make every operator unschedulable".into(),
            ));
        }
        for (id, op) in plan.ops().iter().enumerate() {
            // Builds materialize into hash tables, not pool blocks; every
            // other operator writes output tuples into `block_bytes`-sized
            // temporaries and needs room for at least one tuple.
            if matches!(op.kind, OperatorKind::BuildHash { .. }) {
                continue;
            }
            let width = op.out_schema.tuple_width();
            if width > self.config.block_bytes {
                return Err(EngineError::Config(format!(
                    "block_bytes={} cannot hold one {}-byte tuple of op{} ({})",
                    self.config.block_bytes, width, id, op.name
                )));
            }
        }
        Ok(())
    }

    /// Layer per-run [`ExecOptions`] over this engine's configuration: the
    /// single place every execution entry point funnels through, so a knob
    /// behaves identically no matter which method set it.
    fn apply_options(&self, plan: QueryPlan, opts: &ExecOptions) -> (EngineConfig, QueryPlan) {
        let mut cfg = self.config.clone();
        let mut plan = plan;
        if let Some(uot) = opts.uot {
            cfg.default_uot = uot;
            plan = plan.with_uniform_uot(uot);
        }
        if let Some(deadline) = opts.deadline {
            cfg.deadline = Some(deadline);
        }
        if let Some(reservation) = opts.reservation {
            cfg.memory_budget = Some(reservation);
        }
        if opts.trace && cfg.trace.is_none() {
            cfg.trace = Some(TraceConfig::default());
        }
        if let Some(fusion) = opts.fusion {
            cfg.fusion = fusion;
        }
        if let Some(degrade) = opts.degrade {
            cfg.degrade = degrade;
        }
        (cfg, plan)
    }

    /// Execute `plan` and return the materialized result.
    pub fn execute(&self, plan: QueryPlan) -> Result<QueryResult> {
        self.execute_with(plan, ExecOptions::default())
    }

    /// Execute `plan` with per-run [`ExecOptions`] layered over the engine
    /// configuration — the unified entry every other `execute_*` routes
    /// through.
    pub fn execute_with(&self, plan: QueryPlan, opts: ExecOptions) -> Result<QueryResult> {
        let faults = opts
            .faults
            .clone()
            .unwrap_or_else(|| Arc::new(FaultPlan::empty()));
        let (cfg, plan) = self.apply_options(plan, &opts);
        Engine::new(cfg).execute_governed(plan, CancellationToken::new(), faults)
    }

    /// Execute `plan` with a deterministic [`FaultPlan`] active (test-only
    /// harness; an empty plan is a no-op and the default for [`Self::execute`]).
    pub fn execute_with_faults(
        &self,
        plan: QueryPlan,
        faults: Arc<FaultPlan>,
    ) -> Result<QueryResult> {
        self.execute_with(plan, ExecOptions::default().with_faults(faults))
    }

    /// Execute `plan` on a background thread and hand back the
    /// [`CancellationToken`] governing it. Calling `cancel()` stops the query
    /// at its next cancellation point; the join handle then yields
    /// [`EngineError::Cancelled`] with the authoritative elapsed time and
    /// completed-work-order count.
    pub fn run_cancellable(
        &self,
        plan: QueryPlan,
    ) -> (
        CancellationToken,
        std::thread::JoinHandle<Result<QueryResult>>,
    ) {
        self.run_cancellable_with(plan, ExecOptions::default())
    }

    /// [`Self::run_cancellable`] with per-run [`ExecOptions`].
    pub fn run_cancellable_with(
        &self,
        plan: QueryPlan,
        opts: ExecOptions,
    ) -> (
        CancellationToken,
        std::thread::JoinHandle<Result<QueryResult>>,
    ) {
        let faults = opts
            .faults
            .clone()
            .unwrap_or_else(|| Arc::new(FaultPlan::empty()));
        let (cfg, plan) = self.apply_options(plan, &opts);
        let token = CancellationToken::new();
        let worker_token = token.clone();
        let handle = std::thread::spawn(move || {
            Engine::new(cfg).execute_governed(plan, worker_token, faults)
        });
        (token, handle)
    }

    /// Execute `plan` with a one-off UoT override on every edge.
    pub fn execute_with_uot(&self, plan: QueryPlan, uot: Uot) -> Result<QueryResult> {
        self.execute_with(plan, ExecOptions::default().with_uot(uot))
    }

    /// Compile and execute a SQL statement against the attached catalog.
    ///
    /// The compiled physical plan is memoized in this engine's plan cache;
    /// [`QueryMetrics::plan_cache`] on the result records whether this call
    /// hit it. Requires [`Engine::with_catalog`].
    pub fn execute_sql(&self, sql: &str) -> Result<QueryResult> {
        self.execute_sql_with(sql, ExecOptions::default())
    }

    /// [`Self::execute_sql`] with per-run [`ExecOptions`].
    ///
    /// `EXPLAIN ANALYZE <stmt>` is handled here: the inner statement runs
    /// normally (same plan cache, same options), then the result rows are
    /// replaced by the rendered [`ExplainAnalyze`] tree. The real metrics,
    /// trace and [`QueryResult::explain`] stay attached.
    pub fn execute_sql_with(&self, sql: &str, opts: ExecOptions) -> Result<QueryResult> {
        if let Some(inner) = uot_sql::strip_explain_analyze(sql) {
            let mut result = self.execute_sql_plain(inner, opts)?;
            if let Some(ex) = &result.explain {
                let (schema, blocks) = ex.result_blocks();
                result.schema = schema;
                result.blocks = blocks;
            }
            return Ok(result);
        }
        self.execute_sql_plain(sql, opts)
    }

    fn execute_sql_plain(&self, sql: &str, opts: ExecOptions) -> Result<QueryResult> {
        let catalog = self.catalog.as_ref().ok_or_else(|| {
            EngineError::Config(
                "engine has no catalog to resolve SQL against; use Engine::with_catalog".into(),
            )
        })?;
        let (plan, outcome) = self
            .plan_cache
            .get_or_compile(sql, || crate::sql::compile(sql, catalog))?;
        let mut result = self.execute_with((*plan).clone(), opts)?;
        result.metrics.plan_cache = Some(outcome);
        Ok(result)
    }

    /// Execution with resource governance: one attempt at the configured UoT
    /// and, if that trips the memory budget under [`DegradePolicy::LowerUot`],
    /// exactly one retry at a degraded (halved-toward-[`Uot::LOW`]) UoT with
    /// the degradation recorded in the metrics.
    fn execute_governed(
        &self,
        plan: QueryPlan,
        token: CancellationToken,
        faults: Arc<FaultPlan>,
    ) -> Result<QueryResult> {
        let result = self.execute_governed_inner(plan, token, faults);
        if let Some(hub) = &self.config.hub {
            hub.add(HubCounter::QueriesSubmitted, 1);
            match &result {
                Ok(r) => {
                    hub.add(HubCounter::QueriesCompleted, 1);
                    hub.record(
                        HubHistogram::QueryLatencyUs,
                        r.metrics.wall_time.as_micros() as u64,
                    );
                }
                Err(EngineError::Cancelled { .. }) => hub.add(HubCounter::QueriesCancelled, 1),
                Err(_) => hub.add(HubCounter::QueriesFailed, 1),
            }
        }
        result
    }

    fn execute_governed_inner(
        &self,
        plan: QueryPlan,
        token: CancellationToken,
        faults: Arc<FaultPlan>,
    ) -> Result<QueryResult> {
        let from = self.config.default_uot.normalized();
        match self.execute_once(
            plan.clone(),
            from,
            self.config.fusion,
            token.clone(),
            faults.clone(),
        ) {
            Err(e)
                if is_budget_error(&e)
                    && matches!(
                        self.config.degrade,
                        DegradePolicy::LowerUot | DegradePolicy::Spill
                    ) =>
            {
                let Some(to) = from.degrade() else {
                    // Already at the lowest UoT: nothing left to shed.
                    return Err(e);
                };
                // The retry runs under memory pressure: re-plan with fusion
                // off so the degraded UoT actually governs every edge and no
                // fused loop allocates gather scratch on the hot path.
                let mut result = self.execute_once(
                    plan.with_uniform_uot(to),
                    to,
                    FusionPolicy::Never,
                    token,
                    faults,
                )?;
                result.metrics.degradations.push(Degradation { from, to });
                // The retry's trace starts fresh; prepend the degradation so
                // a trace reader sees why this attempt ran at a lower UoT.
                if let Some(trace) = &mut result.trace {
                    trace.events.insert(
                        0,
                        TraceEvent {
                            t: Duration::ZERO,
                            kind: TraceEventKind::Degraded { from, to },
                        },
                    );
                }
                Ok(result)
            }
            other => other,
        }
    }

    /// One execution attempt: fresh tracker + (budgeted) pool, the query's
    /// cancellation token and fault plan installed on the [`ExecContext`].
    fn execute_once(
        &self,
        plan: QueryPlan,
        uot: Uot,
        fusion: FusionPolicy,
        token: CancellationToken,
        faults: Arc<FaultPlan>,
    ) -> Result<QueryResult> {
        self.validate(&plan)?;
        let tracker = MemoryTracker::new();
        let pool = BlockPool::with_budget(
            tracker.clone(),
            self.config.memory_budget.unwrap_or(usize::MAX),
        );
        pool.set_reuse_enabled(self.config.pool_reuse);
        let plan = Arc::new(plan);
        let schema = plan.result_schema().clone();
        let sink = self
            .config
            .trace
            .as_ref()
            .map(|tc| TraceSink::new(tc.capacity));
        // Spill only makes sense against a finite budget: with no budget the
        // pool never feels pressure and the tier would just be dead weight.
        let spill_enabled =
            self.config.degrade == DegradePolicy::Spill && self.config.memory_budget.is_some();
        if spill_enabled {
            let store = uot_storage::SpillStore::new(None, tracker.clone())?;
            store.set_observer(crate::spill::EngineSpillHook::with_telemetry(
                Some(faults.clone()),
                sink.clone(),
                tracker.clone(),
                self.config.hub.clone(),
                None,
            ));
            pool.enable_spill(store);
        }
        let mut ctx = ExecContext::new(
            plan,
            pool,
            self.config.temp_format,
            self.config.block_bytes,
            self.config.hash_table_shards,
        )?
        .with_cancellation(token)
        .with_faults(faults);
        if let Some(sink) = &sink {
            ctx = ctx.with_trace(sink.clone());
        }
        if spill_enabled {
            ctx.plan_grace(self.config.memory_budget.unwrap_or(usize::MAX));
        }
        // With the spill tier armed, fused chains would pin their interior
        // blocks and hash tables resident (nothing stages, nothing evicts);
        // fall back to staged execution so every edge stays evictable.
        let fusion = if spill_enabled {
            FusionPolicy::Never
        } else {
            fusion
        };
        let fusion_state = crate::fusion::plan_fusion(
            &ctx.plan,
            fusion,
            self.config.mode.workers(),
            self.config.block_bytes,
            uot.normalized(),
        );
        let ctx = Arc::new(ctx.with_fusion(fusion_state));
        let sched = SchedulerConfig {
            mode: self.config.mode,
            default_uot: uot.normalized(),
            max_dop_per_op: self.config.max_dop_per_op,
            deadline: self.config.deadline,
        };
        let (blocks, metrics) = if sink.is_none() && self.config.hub.is_none() {
            // Untraced, no hub: the default metrics observer, no composition.
            crate::scheduler::run(ctx.clone(), sched)?
        } else {
            // Metrics + hub + tracing fan out through one observer stack;
            // absent layers are `None` and cost a branch per event.
            let hub = self
                .config
                .hub
                .as_ref()
                .map(|hub| HubObserver::new(hub.clone(), tracker.clone()));
            let observer = CompositeObserver::new(
                MetricsObserver::new(&ctx.plan),
                CompositeObserver::new(
                    MaybeHubObserver(hub),
                    MaybeTracingObserver(sink.clone().map(TracingObserver::new)),
                ),
            );
            run_query(ctx.clone(), sched, observer).map_err(|f| f.error)?
        };
        let trace =
            sink.map(|s| s.finish(ctx.plan.ops().iter().map(|op| op.name.clone()).collect()));
        let explain = Some(ExplainAnalyze::build(&ctx.plan, &metrics));
        Ok(QueryResult {
            schema,
            blocks,
            metrics,
            trace,
            explain,
        })
    }
}

/// Does `e` mean the memory budget was hit? (Either the operator-attributed
/// engine variant or a raw storage error that escaped attribution.)
fn is_budget_error(e: &EngineError) -> bool {
    matches!(e, EngineError::BudgetExceeded { .. })
        || matches!(e, EngineError::Storage(StorageError::BudgetExceeded { .. }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{JoinType, PlanBuilder, SortKey, Source};
    use uot_expr::{cmp, col, lit, AggSpec, CmpOp};
    use uot_storage::{DataType, Table, TableBuilder};

    fn table(name: &str, n: i32) -> Arc<Table> {
        let s = Schema::from_pairs(&[("k", DataType::Int32), ("v", DataType::Float64)]);
        let mut tb = TableBuilder::new(name, s, BlockFormat::Column, 96); // 8 rows/block
        for i in 0..n {
            tb.append(&[Value::I32(i), Value::F64(i as f64 * 2.0)])
                .unwrap();
        }
        Arc::new(tb.finish())
    }

    fn plan() -> QueryPlan {
        let dim = table("dim", 20);
        let fact = table("fact", 200);
        let mut pb = PlanBuilder::new();
        let b = pb.build_hash(Source::Table(dim), vec![0], vec![1]).unwrap();
        let s = pb
            .filter(Source::Table(fact), cmp(col(0), CmpOp::Lt, lit(100i32)))
            .unwrap();
        let p = pb
            .probe(Source::Op(s), b, vec![0], vec![0], vec![0], JoinType::Inner)
            .unwrap();
        let a = pb
            .aggregate(
                Source::Op(p),
                vec![],
                vec![AggSpec::count_star(), AggSpec::sum(col(1))],
                &["n", "s"],
            )
            .unwrap();
        pb.build(a).unwrap()
    }

    #[test]
    fn end_to_end_serial() {
        let engine = Engine::new(EngineConfig::serial());
        let r = engine.execute(plan()).unwrap();
        let rows = r.rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::I64(20));
        let expect: f64 = (0..20).map(|i| i as f64 * 2.0).sum();
        assert_eq!(rows[0][1], Value::F64(expect));
        assert!(r.metrics.wall_time.as_nanos() > 0);
    }

    #[test]
    fn all_modes_and_uots_agree() {
        let reference = Engine::new(EngineConfig::serial())
            .execute(plan())
            .unwrap()
            .sorted_rows();
        for mode in [ExecMode::Serial, ExecMode::Parallel { workers: 4 }] {
            for uot in [Uot::Blocks(1), Uot::Blocks(3), Uot::Table] {
                let cfg = EngineConfig {
                    mode,
                    default_uot: uot,
                    ..Default::default()
                };
                let rows = Engine::new(cfg).execute(plan()).unwrap().sorted_rows();
                assert_eq!(rows, reference, "{mode:?} {uot}");
            }
        }
    }

    #[test]
    fn formats_and_block_sizes_agree() {
        let reference = Engine::new(EngineConfig::serial())
            .execute(plan())
            .unwrap()
            .sorted_rows();
        for fmt in [BlockFormat::Row, BlockFormat::Column] {
            for bytes in [256usize, 1024, 1 << 20] {
                let cfg = EngineConfig::serial()
                    .with_temp_format(fmt)
                    .with_block_bytes(bytes);
                let rows = Engine::new(cfg).execute(plan()).unwrap().sorted_rows();
                assert_eq!(rows, reference, "{fmt:?} {bytes}");
            }
        }
    }

    #[test]
    fn execute_with_uot_overrides() {
        let engine = Engine::new(EngineConfig::serial());
        let r = engine.execute_with_uot(plan(), Uot::Table).unwrap();
        assert_eq!(r.rows().len(), 1);
    }

    #[test]
    fn sorted_sink_preserves_order() {
        let t = table("t", 50);
        let mut pb = PlanBuilder::new();
        let s = pb
            .filter(Source::Table(t), cmp(col(0), CmpOp::Lt, lit(10i32)))
            .unwrap();
        let so = pb
            .sort(Source::Op(s), vec![SortKey::desc(0)], Some(4))
            .unwrap();
        let plan = pb.build(so).unwrap();
        let r = Engine::new(EngineConfig::parallel(4))
            .execute(plan)
            .unwrap();
        let ks: Vec<i32> = r.rows().iter().map(|row| row[0].as_i32()).collect();
        assert_eq!(ks, vec![9, 8, 7, 6]);
        assert_eq!(r.num_rows(), 4);
    }

    #[test]
    fn metrics_capture_memory() {
        let r = Engine::new(EngineConfig::serial()).execute(plan()).unwrap();
        assert!(r.metrics.peak_temp_bytes > 0);
        assert_eq!(r.metrics.hash_table_bytes.len(), 1);
        assert!(r.metrics.hash_table_bytes[0].1 > 0);
    }

    #[test]
    fn pool_reuse_ablation_runs() {
        let cfg = EngineConfig {
            pool_reuse: false,
            mode: ExecMode::Serial,
            ..Default::default()
        };
        let r = Engine::new(cfg).execute(plan()).unwrap();
        assert_eq!(r.rows().len(), 1);
        assert_eq!(r.metrics.pool.reused, 0);
    }

    #[test]
    fn zero_workers_is_a_config_error() {
        let err = Engine::new(EngineConfig::parallel(0))
            .execute(plan())
            .unwrap_err();
        match err {
            crate::EngineError::Config(msg) => assert!(msg.contains("workers=0"), "{msg}"),
            other => panic!("expected Config error, got {other:?}"),
        }
    }

    #[test]
    fn zero_dop_cap_is_a_config_error() {
        let cfg = EngineConfig {
            max_dop_per_op: Some(0),
            mode: ExecMode::Serial,
            ..Default::default()
        };
        let err = Engine::new(cfg).execute(plan()).unwrap_err();
        assert!(matches!(err, crate::EngineError::Config(_)), "{err:?}");
    }

    #[test]
    fn undersized_blocks_are_a_config_error() {
        // The plan's widest tuple is 12 bytes (Int32 + Float64); 8-byte
        // temporary blocks cannot hold a single output tuple.
        let err = Engine::new(EngineConfig::serial().with_block_bytes(8))
            .execute(plan())
            .unwrap_err();
        match err {
            crate::EngineError::Config(msg) => {
                assert!(msg.contains("block_bytes=8"), "{msg}");
                assert!(msg.contains("tuple"), "{msg}");
            }
            other => panic!("expected Config error, got {other:?}"),
        }
    }

    #[test]
    fn degenerate_uot_is_normalized_not_rejected() {
        let cfg = EngineConfig::serial().with_uot(Uot::Blocks(0));
        let r = Engine::new(cfg).execute(plan()).unwrap();
        assert_eq!(r.rows().len(), 1);
    }

    #[test]
    fn config_builders() {
        let c = EngineConfig::serial()
            .with_block_bytes(512)
            .with_uot(Uot::Table)
            .with_temp_format(BlockFormat::Column)
            .with_memory_budget(Some(4096))
            .with_degrade(DegradePolicy::LowerUot)
            .with_deadline(Some(Duration::from_secs(5)))
            .with_fusion(FusionPolicy::Always);
        assert_eq!(c.block_bytes, 512);
        assert_eq!(c.default_uot, Uot::Table);
        assert_eq!(c.temp_format, BlockFormat::Column);
        assert_eq!(c.mode, ExecMode::Serial);
        assert_eq!(c.memory_budget, Some(4096));
        assert_eq!(c.degrade, DegradePolicy::LowerUot);
        assert_eq!(c.deadline, Some(Duration::from_secs(5)));
        assert_eq!(c.fusion, FusionPolicy::Always);
        assert_eq!(EngineConfig::default().fusion, FusionPolicy::Auto);
        let c = EngineConfig::parallel(7);
        assert_eq!(c.mode, ExecMode::Parallel { workers: 7 });
    }

    // --- hardening: budgets, degradation, cancellation, fault injection ---

    /// Pass-through filter into a scalar aggregate: under `Uot::Table` all
    /// 25 filter output blocks (96 B each) stage at once; under a low UoT
    /// the aggregate drains them as they appear.
    fn wide_then_narrow_plan() -> QueryPlan {
        let t = table("budget_t", 200);
        let mut pb = PlanBuilder::new();
        let s = pb
            .filter(Source::Table(t), cmp(col(0), CmpOp::Ge, lit(0i32)))
            .unwrap();
        let a = pb
            .aggregate(Source::Op(s), vec![], vec![AggSpec::count_star()], &["n"])
            .unwrap();
        pb.build(a).unwrap()
    }

    #[test]
    fn budget_exceeded_names_the_operator() {
        // Fusion off: the budget trips via Table-UoT *staging*, which a
        // fused select->aggregate loop would bypass entirely.
        let cfg = EngineConfig::serial()
            .with_uot(Uot::Table)
            .with_block_bytes(96)
            .with_memory_budget(Some(600))
            .with_fusion(FusionPolicy::Never);
        let err = Engine::new(cfg)
            .execute(wide_then_narrow_plan())
            .unwrap_err();
        match err {
            crate::EngineError::BudgetExceeded {
                op,
                query,
                requested,
                in_use,
                budget,
                ..
            } => {
                assert!(!op.is_empty());
                assert_eq!(query, crate::QueryId::SOLO);
                assert!(requested > 0);
                assert!(in_use + requested > budget);
                assert_eq!(budget, 600);
            }
            other => panic!("expected BudgetExceeded, got {other}"),
        }
    }

    #[test]
    fn lower_uot_degradation_completes_and_is_recorded() {
        let cfg = EngineConfig::serial()
            .with_uot(Uot::Table)
            .with_block_bytes(96)
            .with_memory_budget(Some(600))
            .with_degrade(DegradePolicy::LowerUot)
            .with_fusion(FusionPolicy::Never);
        let r = Engine::new(cfg).execute(wide_then_narrow_plan()).unwrap();
        assert_eq!(r.rows(), vec![vec![Value::I64(200)]]);
        assert_eq!(
            r.metrics.degradations,
            vec![Degradation {
                from: Uot::Table,
                to: Uot::Blocks(1),
            }]
        );
    }

    /// A join whose build side (200 rows of payload) dwarfs a tight budget:
    /// the shape the spill tier exists for.
    fn big_join_plan() -> QueryPlan {
        let dim = table("spill_dim", 200);
        let fact = table("spill_fact", 400);
        let mut pb = PlanBuilder::new();
        let b = pb.build_hash(Source::Table(dim), vec![0], vec![1]).unwrap();
        let p = pb
            .probe(
                Source::Table(fact),
                b,
                vec![0],
                vec![0, 1],
                vec![0],
                JoinType::Inner,
            )
            .unwrap();
        pb.build(p).unwrap()
    }

    #[test]
    fn spill_completes_byte_identical_where_budget_alone_fails() {
        let reference = Engine::new(EngineConfig::serial())
            .execute(big_join_plan())
            .unwrap()
            .sorted_rows();
        assert_eq!(reference.len(), 200, "fact keys 0..200 match a dim row");
        let tight = EngineConfig::serial()
            .with_uot(Uot::Table)
            .with_block_bytes(96)
            .with_memory_budget(Some(4096))
            .with_fusion(FusionPolicy::Never);
        // Without spill the same budget is terminal...
        let err = Engine::new(tight.clone())
            .execute(big_join_plan())
            .unwrap_err();
        assert!(
            matches!(err, crate::EngineError::BudgetExceeded { .. }),
            "{err:?}"
        );
        // ...and with it the run degrades to out-of-core and matches the
        // unbudgeted result byte for byte, with spill traffic in the trace.
        let r = Engine::new(
            tight
                .with_degrade(DegradePolicy::Spill)
                .tracing(TraceConfig::default()),
        )
        .execute(big_join_plan())
        .unwrap();
        assert_eq!(r.sorted_rows(), reference);
        assert!(r.metrics.spill_events > 0, "{:?}", r.metrics);
        assert!(r.metrics.spilled_bytes > 0);
        let trace = r.trace.unwrap();
        assert!(trace.count(|k| matches!(k, TraceEventKind::SpillOut { .. })) > 0);
        assert!(trace.count(|k| matches!(k, TraceEventKind::SpillIn { .. })) > 0);
    }

    #[test]
    fn spill_parallel_matches_serial() {
        let reference = Engine::new(EngineConfig::serial())
            .execute(big_join_plan())
            .unwrap()
            .sorted_rows();
        let cfg = EngineConfig::parallel(4)
            .with_uot(Uot::Table)
            .with_block_bytes(96)
            .with_memory_budget(Some(4096))
            .with_degrade(DegradePolicy::Spill);
        let r = Engine::new(cfg).execute(big_join_plan()).unwrap();
        assert_eq!(r.sorted_rows(), reference);
    }

    #[test]
    fn spill_without_budget_is_a_plain_run() {
        let cfg = EngineConfig::serial().with_degrade(DegradePolicy::Spill);
        let r = Engine::new(cfg).execute(big_join_plan()).unwrap();
        assert_eq!(r.num_rows(), 200);
        assert_eq!(r.metrics.spill_events, 0, "no budget, no pressure");
    }

    #[test]
    fn spill_keeps_table_uot_by_evicting_staged_blocks() {
        // Same shape as `budget_exceeded_names_the_operator`: under
        // `Uot::Table` the filter's 25 staged output blocks blow the 600-byte
        // budget. With the spill tier armed they evict to disk instead, and
        // the flush faults them back in.
        let cfg = EngineConfig::serial()
            .with_uot(Uot::Table)
            .with_block_bytes(96)
            .with_memory_budget(Some(600))
            .with_degrade(DegradePolicy::Spill)
            .with_fusion(FusionPolicy::Never);
        let r = Engine::new(cfg).execute(wide_then_narrow_plan()).unwrap();
        assert_eq!(r.rows(), vec![vec![Value::I64(200)]]);
        assert!(r.metrics.spill_events > 0, "{:?}", r.metrics);
        assert!(
            r.metrics.degradations.is_empty(),
            "spill succeeded on the first attempt, no UoT retry"
        );
    }

    #[test]
    fn degradation_off_by_default() {
        let cfg = EngineConfig::serial()
            .with_uot(Uot::Table)
            .with_block_bytes(96)
            .with_memory_budget(Some(600))
            .with_fusion(FusionPolicy::Never);
        assert_eq!(cfg.degrade, DegradePolicy::Off);
        let err = Engine::new(cfg)
            .execute(wide_then_narrow_plan())
            .unwrap_err();
        assert!(matches!(err, crate::EngineError::BudgetExceeded { .. }));
    }

    #[test]
    fn budget_retry_replans_without_fusion() {
        use crate::fault::{FaultKind, FaultSite, Injection};
        // Deterministic budget pressure: a synthetic BudgetExceeded on the
        // first work order (the fused pipeline's head) forces the LowerUot
        // retry. The retry must re-plan with FusionPolicy::Never so the
        // degraded UoT actually governs every edge — visible as zero fused
        // pipelines in the final metrics.
        let cfg = EngineConfig::serial()
            .with_uot(Uot::Table)
            .with_degrade(DegradePolicy::LowerUot);
        let faults = Arc::new(FaultPlan::new(vec![Injection {
            site: FaultSite::WorkOrderExec,
            kind: FaultKind::Error,
            nth: 1,
        }]));
        let r = Engine::new(cfg.clone())
            .execute_with_faults(wide_then_narrow_plan(), faults)
            .unwrap();
        assert_eq!(r.rows(), vec![vec![Value::I64(200)]]);
        assert_eq!(r.metrics.degradations.len(), 1);
        assert_eq!(
            r.metrics.fused_pipelines, 0,
            "budget-degraded retry must not fuse"
        );
        assert!(r.metrics.staged_pipelines > 0);
        // Control: the same config without pressure fuses the pipeline.
        let r = Engine::new(cfg).execute(wide_then_narrow_plan()).unwrap();
        assert_eq!(r.rows(), vec![vec![Value::I64(200)]]);
        assert!(r.metrics.fused_pipelines > 0, "auto policy should fuse");
    }

    #[test]
    fn run_cancellable_stops_mid_query() {
        // A 400x400 nested-loops cross product: long enough that the cancel
        // below always lands before the join finishes.
        let t = table("cancel_t", 400);
        let mut pb = PlanBuilder::new();
        let inner = pb
            .filter(Source::Table(t.clone()), cmp(col(0), CmpOp::Ge, lit(0i32)))
            .unwrap();
        let j = pb
            .nested_loops(Source::Table(t), inner, vec![], vec![0], vec![0])
            .unwrap();
        let plan = pb.build(j).unwrap();
        let engine = Engine::new(EngineConfig::serial());
        let (token, handle) = engine.run_cancellable(plan);
        token.cancel();
        match handle.join().unwrap() {
            Err(crate::EngineError::Cancelled { after, .. }) => {
                assert!(after > Duration::ZERO);
            }
            Err(other) => panic!("expected Cancelled, got {other}"),
            Ok(r) => panic!(
                "query finished despite cancellation ({} rows)",
                r.num_rows()
            ),
        }
    }

    #[test]
    fn injected_panic_is_contained_in_both_modes() {
        use crate::fault::{FaultKind, FaultSite, Injection};
        for cfg in [EngineConfig::serial(), EngineConfig::parallel(4)] {
            let engine = Engine::new(cfg.clone());
            let faults = Arc::new(FaultPlan::new(vec![Injection {
                site: FaultSite::WorkOrderExec,
                kind: FaultKind::Panic,
                nth: 3,
            }]));
            let err = engine.execute_with_faults(plan(), faults).unwrap_err();
            match err {
                crate::EngineError::WorkOrderPanic { op, kind, payload } => {
                    assert!(!op.is_empty(), "{cfg:?}");
                    assert!(!kind.is_empty(), "{cfg:?}");
                    assert!(payload.contains("injected"), "{payload}");
                }
                other => panic!("expected WorkOrderPanic, got {other}"),
            }
            // The process (and the engine) survive: the same engine runs the
            // same query cleanly right after the contained panic.
            let r = engine.execute(plan()).unwrap();
            assert_eq!(r.rows().len(), 1);
        }
    }

    #[test]
    fn deadline_is_enforced_through_the_engine() {
        let cfg = EngineConfig::serial().with_deadline(Some(Duration::ZERO));
        let err = Engine::new(cfg).execute(plan()).unwrap_err();
        assert!(matches!(err, crate::EngineError::Cancelled { .. }), "{err}");
    }
}
