//! Error type for the engine.

use crate::query_id::QueryId;
use std::fmt;
use std::time::Duration;
use uot_expr::ExprError;
use uot_sql::PlanError;
use uot_storage::StorageError;

/// Errors raised while building or executing query plans.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Storage-layer failure.
    Storage(StorageError),
    /// Expression-layer failure.
    Expr(ExprError),
    /// SQL frontend failure: the statement did not lex, parse or bind.
    /// Carries the span-bearing [`PlanError`]; render a caret diagnostic
    /// with [`PlanError::snippet`] against the original text.
    Sql(PlanError),
    /// A plan referenced an operator id that does not exist (or is not
    /// upstream of the referencing operator).
    InvalidOperatorRef {
        /// The offending reference.
        referenced: usize,
        /// The operator doing the referencing.
        by: usize,
    },
    /// Structural plan problem (e.g. an operator output consumed twice, or
    /// the sink has a consumer).
    InvalidPlan(String),
    /// Invalid engine configuration for the plan being executed (zero
    /// workers, a block size too small to hold one tuple, ...). Raised by
    /// up-front validation before any work order runs.
    Config(String),
    /// A work order panicked. The panic was contained by the executing
    /// driver (the process and the other worker threads survive) and turned
    /// into this error.
    WorkOrderPanic {
        /// Display name of the operator whose work order panicked.
        op: String,
        /// Operator kind label ("select", "probe", ...).
        kind: String,
        /// The downcast panic message ("<non-string panic payload>" when the
        /// payload was neither `&str` nor `String`).
        payload: String,
    },
    /// The query was cancelled — either via a
    /// [`CancellationToken`](crate::CancellationToken) or because the
    /// scheduler's deadline elapsed.
    Cancelled {
        /// Wall time from query start until cancellation was observed.
        after: Duration,
        /// Work orders that had fully completed by then.
        completed_work_orders: usize,
    },
    /// An allocation pushed the pool past its memory budget. Wraps the
    /// storage-level [`StorageError::BudgetExceeded`] with the operator that
    /// asked for the allocation and the query it was working for, plus the
    /// process-wide occupancy so cross-query contention is diagnosable.
    BudgetExceeded {
        /// Display name of the operator that hit the wall.
        op: String,
        /// The query the allocation was charged to.
        query: QueryId,
        /// Bytes the allocation asked for.
        requested: usize,
        /// Bytes charged to this query's tracker at the time.
        in_use: usize,
        /// This query's budget (its reservation under a service) in bytes.
        budget: usize,
        /// Bytes charged process-wide (equals `in_use` outside a service).
        global_in_use: usize,
        /// The process-wide budget (equals `budget` outside a service).
        global_budget: usize,
    },
    /// The service refused to admit a query: its reservation can never fit
    /// the global budget, or the admission queue is full.
    AdmissionRejected {
        /// The query that was turned away.
        query: QueryId,
        /// The reservation it asked for, in bytes.
        reservation: usize,
        /// The service's global memory budget in bytes.
        budget: usize,
        /// Why admission failed.
        reason: String,
    },
    /// The service was shut down before this query could run to completion.
    ServiceShutdown,
    /// Execution-time invariant violation.
    Internal(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Storage(e) => write!(f, "storage error: {e}"),
            EngineError::Expr(e) => write!(f, "expression error: {e}"),
            EngineError::Sql(e) => write!(f, "sql error: {e}"),
            EngineError::InvalidOperatorRef { referenced, by } => {
                write!(f, "operator {by} references invalid operator {referenced}")
            }
            EngineError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
            EngineError::Config(msg) => write!(f, "invalid engine configuration: {msg}"),
            EngineError::WorkOrderPanic { op, kind, payload } => {
                write!(f, "work order panicked in {kind} operator {op}: {payload}")
            }
            EngineError::Cancelled {
                after,
                completed_work_orders,
            } => write!(
                f,
                "query cancelled after {after:?} ({completed_work_orders} work orders completed)"
            ),
            EngineError::BudgetExceeded {
                op,
                query,
                requested,
                in_use,
                budget,
                global_in_use,
                global_budget,
            } => {
                write!(
                    f,
                    "memory budget exceeded at operator {op} ({query}): requested {requested} \
                     bytes with {in_use} of {budget} in use"
                )?;
                if (global_in_use, global_budget) != (in_use, budget) {
                    write!(f, " (global: {global_in_use} of {global_budget})")?;
                }
                Ok(())
            }
            EngineError::AdmissionRejected {
                query,
                reservation,
                budget,
                reason,
            } => write!(
                f,
                "admission rejected for {query}: reservation {reservation} bytes \
                 against a {budget}-byte global budget ({reason})"
            ),
            EngineError::ServiceShutdown => {
                write!(f, "query service shut down before the query completed")
            }
            EngineError::Internal(msg) => write!(f, "internal engine error: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

impl From<ExprError> for EngineError {
    fn from(e: ExprError) -> Self {
        EngineError::Expr(e)
    }
}

impl From<PlanError> for EngineError {
    fn from(e: PlanError) -> Self {
        EngineError::Sql(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let e: EngineError = StorageError::TableNotFound("t".into()).into();
        assert!(matches!(e, EngineError::Storage(_)));
        let e: EngineError = ExprError::ColumnOutOfRange { index: 1, len: 0 }.into();
        assert!(matches!(e, EngineError::Expr(_)));
        let e: EngineError =
            PlanError::spanless(uot_sql::PlanErrorKind::Parse, "dangling FROM").into();
        assert!(matches!(e, EngineError::Sql(_)));
        assert!(e.to_string().contains("sql error"));
        assert!(e.to_string().contains("dangling FROM"));
    }

    #[test]
    fn display() {
        let e = EngineError::InvalidOperatorRef {
            referenced: 3,
            by: 5,
        };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('5'));
        assert!(EngineError::InvalidPlan("no sink".into())
            .to_string()
            .contains("no sink"));
        let e = EngineError::Config("workers must be >= 1".into());
        assert!(e.to_string().contains("invalid engine configuration"));
        assert!(e.to_string().contains("workers must be >= 1"));
    }

    #[test]
    fn hardening_variant_display() {
        let e = EngineError::WorkOrderPanic {
            op: "probe(t)".into(),
            kind: "probe".into(),
            payload: "boom".into(),
        };
        assert!(e.to_string().contains("probe(t)"));
        assert!(e.to_string().contains("boom"));

        let e = EngineError::Cancelled {
            after: Duration::from_millis(12),
            completed_work_orders: 3,
        };
        assert!(e.to_string().contains("cancelled"));
        assert!(e.to_string().contains('3'));

        let e = EngineError::BudgetExceeded {
            op: "sort(t)".into(),
            query: QueryId::SOLO,
            requested: 4096,
            in_use: 100,
            budget: 2048,
            global_in_use: 100,
            global_budget: 2048,
        };
        assert!(e.to_string().contains("sort(t)"));
        assert!(e.to_string().contains("q0"));
        assert!(e.to_string().contains("4096"));
        assert!(e.to_string().contains("2048"));
        assert!(!e.to_string().contains("global")); // solo run: no noise

        let e = EngineError::BudgetExceeded {
            op: "probe(t)".into(),
            query: QueryId::new(4),
            requested: 4096,
            in_use: 100,
            budget: 1 << 20,
            global_in_use: 900_000,
            global_budget: 1 << 20,
        };
        assert!(e.to_string().contains("q4"));
        assert!(e.to_string().contains("global: 900000"));
    }

    #[test]
    fn service_variant_display() {
        let e = EngineError::AdmissionRejected {
            query: QueryId::new(9),
            reservation: 1 << 30,
            budget: 1 << 20,
            reason: "reservation exceeds the global budget".into(),
        };
        assert!(e.to_string().contains("q9"));
        assert!(e
            .to_string()
            .contains("reservation exceeds the global budget"));
        assert!(EngineError::ServiceShutdown
            .to_string()
            .contains("shut down"));
    }
}
