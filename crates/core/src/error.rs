//! Error type for the engine.

use std::fmt;
use uot_expr::ExprError;
use uot_storage::StorageError;

/// Errors raised while building or executing query plans.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Storage-layer failure.
    Storage(StorageError),
    /// Expression-layer failure.
    Expr(ExprError),
    /// A plan referenced an operator id that does not exist (or is not
    /// upstream of the referencing operator).
    InvalidOperatorRef {
        /// The offending reference.
        referenced: usize,
        /// The operator doing the referencing.
        by: usize,
    },
    /// Structural plan problem (e.g. an operator output consumed twice, or
    /// the sink has a consumer).
    InvalidPlan(String),
    /// Invalid engine configuration for the plan being executed (zero
    /// workers, a block size too small to hold one tuple, ...). Raised by
    /// up-front validation before any work order runs.
    Config(String),
    /// Execution-time invariant violation.
    Internal(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Storage(e) => write!(f, "storage error: {e}"),
            EngineError::Expr(e) => write!(f, "expression error: {e}"),
            EngineError::InvalidOperatorRef { referenced, by } => {
                write!(f, "operator {by} references invalid operator {referenced}")
            }
            EngineError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
            EngineError::Config(msg) => write!(f, "invalid engine configuration: {msg}"),
            EngineError::Internal(msg) => write!(f, "internal engine error: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

impl From<ExprError> for EngineError {
    fn from(e: ExprError) -> Self {
        EngineError::Expr(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let e: EngineError = StorageError::TableNotFound("t".into()).into();
        assert!(matches!(e, EngineError::Storage(_)));
        let e: EngineError = ExprError::ColumnOutOfRange { index: 1, len: 0 }.into();
        assert!(matches!(e, EngineError::Expr(_)));
    }

    #[test]
    fn display() {
        let e = EngineError::InvalidOperatorRef {
            referenced: 3,
            by: 5,
        };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('5'));
        assert!(EngineError::InvalidPlan("no sink".into())
            .to_string()
            .contains("no sink"));
        let e = EngineError::Config("workers must be >= 1".into());
        assert!(e.to_string().contains("invalid engine configuration"));
        assert!(e.to_string().contains("workers must be >= 1"));
    }
}
