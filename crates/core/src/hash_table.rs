//! The shared, non-partitioned join hash table.
//!
//! Quickstep uses non-partitioned hash joins (the paper cites Blanas et al.):
//! every build work order inserts into one shared table, every probe work
//! order reads it. We shard the table into `2^k` independently locked
//! segments so concurrent build work orders scale, and use read locks during
//! the probe phase (the scheduler guarantees probes start only after the
//! build completes).
//!
//! Payload rows are stored as fixed-width encoded bytes in per-shard arenas —
//! the same encoding as a row-store tuple — so a hash table's memory
//! footprint is directly measurable, which the memory experiments
//! (Section VI of the paper, `|H_i|`) rely on.

use crate::Result;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use uot_storage::{
    hash_key::{bucket_of, FxBuildHasher},
    DataType, HashKey, MemoryTracker, Schema, StorageBlock,
};

/// A read-only view of one payload row stored in the table.
#[derive(Clone, Copy)]
pub struct PayloadRef<'a> {
    schema: &'a Schema,
    bytes: &'a [u8],
}

impl<'a> PayloadRef<'a> {
    /// Read an `Int32` payload column.
    #[inline]
    pub fn i32_at(&self, col: usize) -> i32 {
        let off = self.schema.offset(col);
        i32::from_le_bytes(self.bytes[off..off + 4].try_into().unwrap())
    }

    /// Read an `Int64` payload column.
    #[inline]
    pub fn i64_at(&self, col: usize) -> i64 {
        let off = self.schema.offset(col);
        i64::from_le_bytes(self.bytes[off..off + 8].try_into().unwrap())
    }

    /// Read a `Float64` payload column.
    #[inline]
    pub fn f64_at(&self, col: usize) -> f64 {
        let off = self.schema.offset(col);
        f64::from_le_bytes(self.bytes[off..off + 8].try_into().unwrap())
    }

    /// Read a `Date` payload column.
    #[inline]
    pub fn date_at(&self, col: usize) -> i32 {
        self.i32_at(col)
    }

    /// Read a `Char(n)` payload column (padded bytes).
    #[inline]
    pub fn char_at(&self, col: usize) -> &'a [u8] {
        let off = self.schema.offset(col);
        let w = self.schema.dtype(col).width();
        &self.bytes[off..off + w]
    }

    /// The payload schema.
    #[inline]
    pub fn schema(&self) -> &'a Schema {
        self.schema
    }
}

/// One lock-protected segment of the table.
#[derive(Debug, Default)]
struct Shard {
    /// key -> indices of payload rows in `arena` (row i occupies
    /// `[i*w, (i+1)*w)` where `w` is the payload tuple width).
    map: std::collections::HashMap<HashKey, Vec<u32>, FxBuildHasher>,
    arena: Vec<u8>,
}

/// A sharded, concurrently-buildable join hash table.
#[derive(Debug)]
pub struct JoinHashTable {
    payload_schema: Arc<Schema>,
    shards: Vec<RwLock<Shard>>,
    entries: AtomicUsize,
    /// Bytes already reported to the memory tracker (see `sync_tracker`).
    tracked: AtomicUsize,
}

impl JoinHashTable {
    /// Create a table with `shards` segments (rounded up to a power of two).
    pub fn new(payload_schema: Arc<Schema>, shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        JoinHashTable {
            payload_schema,
            shards: (0..n).map(|_| RwLock::new(Shard::default())).collect(),
            entries: AtomicUsize::new(0),
            tracked: AtomicUsize::new(0),
        }
    }

    /// Schema of the stored payload rows.
    pub fn payload_schema(&self) -> &Arc<Schema> {
        &self.payload_schema
    }

    /// Number of payload rows inserted.
    pub fn len(&self) -> usize {
        self.entries.load(Ordering::Relaxed)
    }

    /// True when nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn shard_of(&self, key: &HashKey) -> usize {
        bucket_of(key, self.shards.len())
    }

    /// Insert every row of `block`, keyed by `key_cols`, storing
    /// `payload_cols` as the payload. Called concurrently by build work
    /// orders.
    pub fn insert_block(
        &self,
        block: &StorageBlock,
        key_cols: &[usize],
        payload_cols: &[usize],
    ) -> Result<()> {
        let w = self.payload_schema.tuple_width();
        let n = block.num_rows();
        for row in 0..n {
            let key = HashKey::from_row(block, row, key_cols)?;
            let shard = &self.shards[self.shard_of(&key)];
            let mut guard = shard.write();
            let idx = (guard.arena.len() / w.max(1)) as u32;
            encode_row(
                &mut guard.arena,
                block,
                row,
                payload_cols,
                &self.payload_schema,
            );
            guard.map.entry(key).or_default().push(idx);
        }
        self.entries.fetch_add(n, Ordering::Relaxed);
        Ok(())
    }

    /// Visit every payload row matching `key`. Returns the number of matches.
    pub fn probe_key(&self, key: &HashKey, mut f: impl FnMut(PayloadRef<'_>)) -> usize {
        let shard = self.shards[self.shard_of(key)].read();
        let w = self.payload_schema.tuple_width();
        match shard.map.get(key) {
            None => 0,
            Some(rows) => {
                for &i in rows {
                    let off = i as usize * w;
                    f(PayloadRef {
                        schema: &self.payload_schema,
                        bytes: &shard.arena[off..off + w],
                    });
                }
                rows.len()
            }
        }
    }

    /// True if any payload row matches `key` (semi/anti joins).
    pub fn contains_key(&self, key: &HashKey) -> bool {
        self.shards[self.shard_of(key)].read().map.contains_key(key)
    }

    /// Approximate resident bytes: payload arenas plus hash-map buckets.
    ///
    /// The bucket estimate mirrors the paper's `(M/w)·(c/f)` sizing: each
    /// occupied map slot costs roughly one key + one `Vec` header, and the
    /// map over-allocates by its load factor.
    pub fn memory_bytes(&self) -> usize {
        let mut total = 0;
        for s in &self.shards {
            let s = s.read();
            total += s.arena.capacity();
            let entry = std::mem::size_of::<HashKey>() + std::mem::size_of::<Vec<u32>>();
            total += s.map.capacity() * entry;
            // index vectors
            total += s.map.values().map(|v| v.capacity() * 4).sum::<usize>();
        }
        total
    }

    /// Report memory growth since the last sync to `tracker` (called by the
    /// engine when a build operator finishes, and at query teardown with
    /// `release`).
    pub fn sync_tracker(&self, tracker: &MemoryTracker) {
        let now = self.memory_bytes();
        let prev = self.tracked.swap(now, Ordering::Relaxed);
        if now > prev {
            tracker.alloc(now - prev);
        } else {
            tracker.free(prev - now);
        }
    }

    /// Release all tracked bytes from `tracker` (query teardown).
    pub fn release_tracker(&self, tracker: &MemoryTracker) {
        let prev = self.tracked.swap(0, Ordering::Relaxed);
        tracker.free(prev);
    }
}

/// Append the projected columns of `block[row]` to `arena` using the
/// row-store fixed-width encoding of `payload_schema`.
fn encode_row(
    arena: &mut Vec<u8>,
    block: &StorageBlock,
    row: usize,
    payload_cols: &[usize],
    payload_schema: &Schema,
) {
    debug_assert_eq!(payload_cols.len(), payload_schema.len());
    for (j, &c) in payload_cols.iter().enumerate() {
        match payload_schema.dtype(j) {
            DataType::Int32 => arena.extend_from_slice(&block.i32_at(row, c).to_le_bytes()),
            DataType::Date => arena.extend_from_slice(&block.date_at(row, c).to_le_bytes()),
            DataType::Int64 => arena.extend_from_slice(&block.i64_at(row, c).to_le_bytes()),
            DataType::Float64 => arena.extend_from_slice(&block.f64_at(row, c).to_le_bytes()),
            DataType::Char(_) => arena.extend_from_slice(block.char_at(row, c)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uot_storage::{BlockFormat, Value};

    fn build_block(n: i32) -> StorageBlock {
        let s = Schema::from_pairs(&[
            ("k", DataType::Int32),
            ("name", DataType::Char(4)),
            ("w", DataType::Float64),
        ]);
        let mut b = StorageBlock::new(s, BlockFormat::Column, 1 << 16).unwrap();
        for i in 0..n {
            b.append_row(&[
                Value::I32(i % 4), // duplicate keys
                Value::Str(format!("n{i}")),
                Value::F64(i as f64),
            ])
            .unwrap();
        }
        b
    }

    fn table_for(block: &StorageBlock) -> JoinHashTable {
        let payload = block.schema().project(&[1, 2]);
        JoinHashTable::new(payload, 8)
    }

    #[test]
    fn insert_and_probe() {
        let b = build_block(8);
        let ht = table_for(&b);
        ht.insert_block(&b, &[0], &[1, 2]).unwrap();
        assert_eq!(ht.len(), 8);

        // key 1 matches rows 1 and 5
        let mut got = vec![];
        let n = ht.probe_key(&HashKey::from_i32(1), |p| {
            got.push((
                String::from_utf8_lossy(p.char_at(0)).trim_end().to_string(),
                p.f64_at(1),
            ));
        });
        assert_eq!(n, 2);
        got.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        assert_eq!(got, vec![("n1".to_string(), 1.0), ("n5".to_string(), 5.0)]);
    }

    #[test]
    fn missing_key_yields_nothing() {
        let b = build_block(4);
        let ht = table_for(&b);
        ht.insert_block(&b, &[0], &[1, 2]).unwrap();
        let mut called = false;
        assert_eq!(ht.probe_key(&HashKey::from_i32(99), |_| called = true), 0);
        assert!(!called);
        assert!(!ht.contains_key(&HashKey::from_i32(99)));
        assert!(ht.contains_key(&HashKey::from_i32(0)));
    }

    #[test]
    fn empty_table() {
        let b = build_block(0);
        let ht = table_for(&b);
        ht.insert_block(&b, &[0], &[1, 2]).unwrap();
        assert!(ht.is_empty());
        assert_eq!(ht.probe_key(&HashKey::from_i32(0), |_| {}), 0);
    }

    #[test]
    fn concurrent_build_is_complete() {
        let blocks: Vec<StorageBlock> = (0..8).map(|_| build_block(100)).collect();
        let payload = blocks[0].schema().project(&[1, 2]);
        let ht = Arc::new(JoinHashTable::new(payload, 16));
        std::thread::scope(|s| {
            for b in &blocks {
                let ht = ht.clone();
                s.spawn(move || ht.insert_block(b, &[0], &[1, 2]).unwrap());
            }
        });
        assert_eq!(ht.len(), 800);
        // each key 0..3 appears 25 times per block * 8 blocks
        for k in 0..4 {
            assert_eq!(ht.probe_key(&HashKey::from_i32(k), |_| {}), 200);
        }
    }

    #[test]
    fn memory_accounting() {
        let b = build_block(64);
        let ht = table_for(&b);
        let t = MemoryTracker::new();
        ht.sync_tracker(&t);
        let before = t.current_bytes();
        ht.insert_block(&b, &[0], &[1, 2]).unwrap();
        ht.sync_tracker(&t);
        assert!(t.current_bytes() > before);
        assert!(ht.memory_bytes() >= 64 * (4 + 8)); // at least the payload arena
        ht.release_tracker(&t);
        assert_eq!(t.current_bytes(), 0);
    }

    #[test]
    fn composite_keys() {
        let b = build_block(8);
        let ht = JoinHashTable::new(b.schema().project(&[2]), 4);
        // key on (k, name) — all distinct because name differs
        ht.insert_block(&b, &[0, 1], &[2]).unwrap();
        let key = HashKey::from_row(&b, 3, &[0, 1]).unwrap();
        let mut vals = vec![];
        ht.probe_key(&key, |p| vals.push(p.f64_at(0)));
        assert_eq!(vals, vec![3.0]);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let b = build_block(1);
        let ht = JoinHashTable::new(b.schema().project(&[0]), 5);
        assert_eq!(ht.shards.len(), 8);
        let ht = JoinHashTable::new(b.schema().project(&[0]), 0);
        assert_eq!(ht.shards.len(), 1);
    }
}
