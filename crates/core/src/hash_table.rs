//! The shared, non-partitioned join hash table.
//!
//! Quickstep uses non-partitioned hash joins (the paper cites Blanas et al.):
//! every build work order inserts into one shared table, every probe work
//! order reads it. We shard the table into `2^k` independently locked
//! segments so concurrent build work orders scale, and use read locks during
//! the probe phase (the scheduler guarantees probes start only after the
//! build completes).
//!
//! Each shard is an open-addressing table we own outright — `slots` is a
//! linear-probed array of `(hash, key, chain head)` triples and duplicates
//! hang off a per-shard `links` side array — rather than a `std::HashMap`.
//! Owning the layout is what makes the batched probe possible: a
//! [`ProbeSession`] takes every shard read lock once per work order, and
//! [`ProbeSession::probe_batch`] runs the two-pass scheme from the vectorized
//! join literature (pass 1 hashes the whole block and software-prefetches the
//! home slot of a row a fixed distance ahead; pass 2 resolves matches into a
//! flat [`ProbeMatch`] vector for gather-based output assembly).
//!
//! Shard selection uses the *top* hash bits and slot placement the *bottom*
//! bits, so the two indices stay independent. All placement derives from
//! [`uot_storage::hash_of`], which the batched key pipeline
//! ([`uot_storage::KeyBatch`]) computes identically.
//!
//! Payload rows are stored as fixed-width encoded bytes in per-shard arenas —
//! the same encoding as a row-store tuple — so a hash table's memory
//! footprint is directly measurable, which the memory experiments
//! (Section VI of the paper, `|H_i|`) rely on.

use crate::Result;
use parking_lot::{RwLock, RwLockReadGuard};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use uot_storage::{
    hash_of, DataType, HashKey, KeyBatch, KeyExtractor, MemoryTracker, Schema, StorageBlock,
};

/// Sentinel for "no slot / end of chain".
const NIL: u32 = u32::MAX;

/// How many rows ahead of the resolve cursor pass 1 prefetches. Far enough to
/// cover DRAM latency at ~1 ns/row of resolve work, near enough to stay in L1.
const PREFETCH_DIST: usize = 16;

/// Prefetch the cache line holding `*p` into L1 (read intent). No-op on
/// architectures without an explicit prefetch hint.
#[inline(always)]
fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch(p as *const i8, _MM_HINT_T0);
    }
    #[cfg(target_arch = "aarch64")]
    unsafe {
        core::arch::asm!("prfm pldl1keep, [{0}]", in(reg) p, options(nostack, readonly));
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        let _ = p;
    }
}

/// A read-only view of one payload row stored in the table.
#[derive(Clone, Copy)]
pub struct PayloadRef<'a> {
    schema: &'a Schema,
    bytes: &'a [u8],
}

impl<'a> PayloadRef<'a> {
    /// Read an `Int32` payload column.
    #[inline]
    pub fn i32_at(&self, col: usize) -> i32 {
        let off = self.schema.offset(col);
        i32::from_le_bytes(self.bytes[off..off + 4].try_into().unwrap())
    }

    /// Read an `Int64` payload column.
    #[inline]
    pub fn i64_at(&self, col: usize) -> i64 {
        let off = self.schema.offset(col);
        i64::from_le_bytes(self.bytes[off..off + 8].try_into().unwrap())
    }

    /// Read a `Float64` payload column.
    #[inline]
    pub fn f64_at(&self, col: usize) -> f64 {
        let off = self.schema.offset(col);
        f64::from_le_bytes(self.bytes[off..off + 8].try_into().unwrap())
    }

    /// Read a `Date` payload column.
    #[inline]
    pub fn date_at(&self, col: usize) -> i32 {
        self.i32_at(col)
    }

    /// Read a `Char(n)` payload column (padded bytes).
    #[inline]
    pub fn char_at(&self, col: usize) -> &'a [u8] {
        let off = self.schema.offset(col);
        let w = self.schema.dtype(col).width();
        &self.bytes[off..off + w]
    }

    /// The payload schema.
    #[inline]
    pub fn schema(&self) -> &'a Schema {
        self.schema
    }
}

/// One open-addressing slot: a distinct key plus the head of its duplicate
/// chain in the shard's `links` array. `head == NIL` marks a vacant slot.
#[derive(Debug, Clone)]
struct Slot {
    hash: u64,
    head: u32,
    key: HashKey,
}

impl Slot {
    fn vacant() -> Slot {
        Slot {
            hash: 0,
            head: NIL,
            key: HashKey::Fixed(0, 0),
        }
    }
}

/// One node of a duplicate chain: a payload row index and the next node.
#[derive(Debug, Clone, Copy)]
struct Link {
    payload: u32,
    next: u32,
}

/// One lock-protected segment of the table.
#[derive(Debug, Default)]
struct Shard {
    /// Linear-probed slot array; length is always a power of two (or zero
    /// before the first insert).
    slots: Vec<Slot>,
    /// Duplicate chains, newest first.
    links: Vec<Link>,
    /// Occupied slots (distinct keys), for the grow threshold.
    occupied: usize,
    /// Payload rows, encoded fixed-width back to back (row `i` occupies
    /// `[i*w, (i+1)*w)` where `w` is the payload tuple width).
    arena: Vec<u8>,
    /// Payload rows inserted (tracked separately from the arena length so
    /// zero-width payload schemas still index correctly).
    rows: u32,
}

impl Shard {
    /// Double (or initialize) the slot array and re-place every occupied slot.
    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(8);
        let old = std::mem::replace(&mut self.slots, vec![Slot::vacant(); new_cap]);
        let mask = new_cap - 1;
        for s in old {
            if s.head == NIL {
                continue;
            }
            let mut idx = (s.hash as usize) & mask;
            while self.slots[idx].head != NIL {
                idx = (idx + 1) & mask;
            }
            self.slots[idx] = s;
        }
    }

    /// Insert one payload row under a key described by (`hash`, `eq`,
    /// `make`): `eq` tests a stored key for equality, `make` materializes the
    /// key only when a new slot is claimed.
    fn insert_row(
        &mut self,
        hash: u64,
        eq: impl Fn(&HashKey) -> bool,
        make: impl FnOnce() -> HashKey,
        payload: u32,
    ) {
        // Grow at 7/8 load so linear probes stay short.
        if (self.occupied + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut idx = (hash as usize) & mask;
        loop {
            let s = &mut self.slots[idx];
            if s.head == NIL {
                let link = self.links.len() as u32;
                self.links.push(Link { payload, next: NIL });
                *s = Slot {
                    hash,
                    head: link,
                    key: make(),
                };
                self.occupied += 1;
                return;
            }
            if s.hash == hash && eq(&s.key) {
                let link = self.links.len() as u32;
                self.links.push(Link {
                    payload,
                    next: s.head,
                });
                s.head = link;
                return;
            }
            idx = (idx + 1) & mask;
        }
    }

    /// Find the chain head for (`hash`, `eq`), or `NIL`.
    #[inline]
    fn find(&self, hash: u64, eq: impl Fn(&HashKey) -> bool) -> u32 {
        if self.slots.is_empty() {
            return NIL;
        }
        let mask = self.slots.len() - 1;
        let mut idx = (hash as usize) & mask;
        loop {
            let s = &self.slots[idx];
            if s.head == NIL {
                return NIL;
            }
            if s.hash == hash && eq(&s.key) {
                return s.head;
            }
            idx = (idx + 1) & mask;
        }
    }
}

/// One resolved probe match: input row `probe_row` of the probed block joins
/// the build-side payload row `payload` of shard `shard`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeMatch {
    /// Row index within the probed block (or selection vector).
    pub probe_row: u32,
    /// Which shard holds the payload.
    pub shard: u32,
    /// Payload row index within that shard's arena.
    pub payload: u32,
}

/// A sharded, concurrently-buildable join hash table.
#[derive(Debug)]
pub struct JoinHashTable {
    payload_schema: Arc<Schema>,
    shards: Vec<RwLock<Shard>>,
    entries: AtomicUsize,
    /// Bytes already reported to the memory tracker (see `sync_tracker`).
    tracked: AtomicUsize,
}

impl JoinHashTable {
    /// Create a table with `shards` segments (rounded up to a power of two).
    pub fn new(payload_schema: Arc<Schema>, shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        JoinHashTable {
            payload_schema,
            shards: (0..n).map(|_| RwLock::new(Shard::default())).collect(),
            entries: AtomicUsize::new(0),
            tracked: AtomicUsize::new(0),
        }
    }

    /// Schema of the stored payload rows.
    pub fn payload_schema(&self) -> &Arc<Schema> {
        &self.payload_schema
    }

    /// Number of payload rows inserted.
    pub fn len(&self) -> usize {
        self.entries.load(Ordering::Relaxed)
    }

    /// True when nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Shard index from the *top* hash bits — slot placement uses the bottom
    /// bits, so the two stay independent.
    #[inline]
    fn shard_of(&self, hash: u64) -> usize {
        ((hash >> 48) as usize) & (self.shards.len() - 1)
    }

    /// Insert every key of `batch` (extracted from `block`), storing
    /// `payload_cols` as the payload. Groups rows by shard so each shard's
    /// write lock is taken at most once per call, instead of once per row.
    pub fn insert_batch(&self, block: &StorageBlock, batch: &KeyBatch, payload_cols: &[usize]) {
        let n = batch.len();
        debug_assert_eq!(n, block.num_rows());
        if n == 0 {
            return;
        }
        let hashes = batch.hashes();
        if self.shards.len() == 1 {
            let mut guard = self.shards[0].write();
            for (i, &h) in hashes.iter().enumerate() {
                self.insert_one(&mut guard, block, batch, i, h, payload_cols);
            }
        } else {
            let mut by_shard: Vec<Vec<u32>> = vec![Vec::new(); self.shards.len()];
            for (i, &h) in hashes.iter().enumerate() {
                by_shard[self.shard_of(h)].push(i as u32);
            }
            for (s, rows) in by_shard.iter().enumerate() {
                if rows.is_empty() {
                    continue;
                }
                let mut guard = self.shards[s].write();
                for &i in rows {
                    let i = i as usize;
                    self.insert_one(&mut guard, block, batch, i, hashes[i], payload_cols);
                }
            }
        }
        self.entries.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    fn insert_one(
        &self,
        shard: &mut Shard,
        block: &StorageBlock,
        batch: &KeyBatch,
        row: usize,
        hash: u64,
        payload_cols: &[usize],
    ) {
        let payload = shard.rows;
        shard.rows += 1;
        encode_row(
            &mut shard.arena,
            block,
            row,
            payload_cols,
            &self.payload_schema,
        );
        shard.insert_row(
            hash,
            |k| batch.key_eq(row, k),
            || batch.key_at(row),
            payload,
        );
    }

    /// Insert every row of `block`, keyed by `key_cols`, storing
    /// `payload_cols` as the payload. Called concurrently by build work
    /// orders. (Scalar-API entry point: compiles a throwaway extractor; the
    /// engine's build operator uses a precompiled one with `insert_batch`.)
    pub fn insert_block(
        &self,
        block: &StorageBlock,
        key_cols: &[usize],
        payload_cols: &[usize],
    ) -> Result<()> {
        let extractor = KeyExtractor::compile(block.schema(), key_cols)?;
        let mut batch = KeyBatch::new();
        extractor.extract_block(block, &mut batch);
        self.insert_batch(block, &batch, payload_cols);
        Ok(())
    }

    /// Visit every payload row matching `key`. Returns the number of matches.
    ///
    /// Matches within a key are visited newest-insertion-first (the duplicate
    /// chain is prepend-ordered); callers that care about order sort.
    pub fn probe_key(&self, key: &HashKey, mut f: impl FnMut(PayloadRef<'_>)) -> usize {
        let hash = hash_of(key);
        let shard = self.shards[self.shard_of(hash)].read();
        let w = self.payload_schema.tuple_width();
        let mut link = shard.find(hash, |k| k == key);
        let mut n = 0;
        while link != NIL {
            let l = shard.links[link as usize];
            let off = l.payload as usize * w;
            f(PayloadRef {
                schema: &self.payload_schema,
                bytes: &shard.arena[off..off + w],
            });
            n += 1;
            link = l.next;
        }
        n
    }

    /// True if any payload row matches `key` (semi/anti joins).
    pub fn contains_key(&self, key: &HashKey) -> bool {
        let hash = hash_of(key);
        self.shards[self.shard_of(hash)]
            .read()
            .find(hash, |k| k == key)
            != NIL
    }

    /// Open a batched probe session: acquires every shard's read lock once,
    /// so per-row probes inside the session touch no locks at all.
    pub fn probe_session(&self) -> ProbeSession<'_> {
        ProbeSession {
            table: self,
            guards: self.shards.iter().map(|s| s.read()).collect(),
        }
    }

    /// Approximate resident bytes: payload arenas, slot arrays, and duplicate
    /// chains. Mirrors the paper's `|H_i|` accounting.
    pub fn memory_bytes(&self) -> usize {
        let mut total = 0;
        for s in &self.shards {
            let s = s.read();
            total += s.arena.capacity();
            total += s.slots.capacity() * std::mem::size_of::<Slot>();
            total += s.links.capacity() * std::mem::size_of::<Link>();
        }
        total
    }

    /// Report memory growth since the last sync to `tracker` (called by the
    /// engine when a build operator finishes, and at query teardown with
    /// `release`).
    pub fn sync_tracker(&self, tracker: &MemoryTracker) {
        let now = self.memory_bytes();
        let prev = self.tracked.swap(now, Ordering::Relaxed);
        if now > prev {
            tracker.alloc(now - prev);
        } else {
            tracker.free(prev - now);
        }
    }

    /// Release all tracked bytes from `tracker` (query teardown).
    pub fn release_tracker(&self, tracker: &MemoryTracker) {
        let prev = self.tracked.swap(0, Ordering::Relaxed);
        tracker.free(prev);
    }
}

/// A per-work-order probe view holding every shard's read lock.
///
/// Probes run in two passes over a [`KeyBatch`]: the cursor at row `i`
/// resolves matches while the home slot for row `i + PREFETCH_DIST` is being
/// prefetched, hiding DRAM latency behind useful work.
pub struct ProbeSession<'a> {
    table: &'a JoinHashTable,
    guards: Vec<RwLockReadGuard<'a, Shard>>,
}

impl ProbeSession<'_> {
    /// Resolve every key of `batch` against the table, appending one
    /// [`ProbeMatch`] per (probe row, matching payload row) pair to `out`
    /// in probe-row order.
    pub fn probe_batch(&self, batch: &KeyBatch, out: &mut Vec<ProbeMatch>) {
        let hashes = batch.hashes();
        let n = hashes.len();
        for i in 0..n {
            if i + PREFETCH_DIST < n {
                self.prefetch_home(hashes[i + PREFETCH_DIST]);
            }
            let h = hashes[i];
            let sh = self.table.shard_of(h);
            let shard = &*self.guards[sh];
            let mut link = shard.find(h, |k| batch.key_eq(i, k));
            while link != NIL {
                let l = shard.links[link as usize];
                out.push(ProbeMatch {
                    probe_row: i as u32,
                    shard: sh as u32,
                    payload: l.payload,
                });
                link = l.next;
            }
        }
    }

    /// Existence-only variant for semi/anti joins: pushes one `bool` per key
    /// of `batch` onto `out`.
    pub fn contains_batch(&self, batch: &KeyBatch, out: &mut Vec<bool>) {
        let hashes = batch.hashes();
        let n = hashes.len();
        out.reserve(n);
        for i in 0..n {
            if i + PREFETCH_DIST < n {
                self.prefetch_home(hashes[i + PREFETCH_DIST]);
            }
            let h = hashes[i];
            let shard = &*self.guards[self.table.shard_of(h)];
            out.push(shard.find(h, |k| batch.key_eq(i, k)) != NIL);
        }
    }

    /// The payload row a [`ProbeMatch`] refers to.
    #[inline]
    pub fn payload(&self, m: ProbeMatch) -> PayloadRef<'_> {
        let shard = &*self.guards[m.shard as usize];
        let w = self.table.payload_schema.tuple_width();
        let off = m.payload as usize * w;
        PayloadRef {
            schema: &self.table.payload_schema,
            bytes: &shard.arena[off..off + w],
        }
    }

    /// The payload schema (same as the owning table's).
    #[inline]
    pub fn payload_schema(&self) -> &Arc<Schema> {
        &self.table.payload_schema
    }

    #[inline(always)]
    fn prefetch_home(&self, hash: u64) {
        let shard = &*self.guards[self.table.shard_of(hash)];
        if !shard.slots.is_empty() {
            let idx = (hash as usize) & (shard.slots.len() - 1);
            prefetch_read(&shard.slots[idx]);
        }
    }
}

/// Append the projected columns of `block[row]` to `arena` using the
/// row-store fixed-width encoding of `payload_schema`.
fn encode_row(
    arena: &mut Vec<u8>,
    block: &StorageBlock,
    row: usize,
    payload_cols: &[usize],
    payload_schema: &Schema,
) {
    debug_assert_eq!(payload_cols.len(), payload_schema.len());
    for (j, &c) in payload_cols.iter().enumerate() {
        match payload_schema.dtype(j) {
            DataType::Int32 => arena.extend_from_slice(&block.i32_at(row, c).to_le_bytes()),
            DataType::Date => arena.extend_from_slice(&block.date_at(row, c).to_le_bytes()),
            DataType::Int64 => arena.extend_from_slice(&block.i64_at(row, c).to_le_bytes()),
            DataType::Float64 => arena.extend_from_slice(&block.f64_at(row, c).to_le_bytes()),
            DataType::Char(_) => arena.extend_from_slice(block.char_at(row, c)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uot_storage::{BlockFormat, Value};

    fn build_block(n: i32) -> StorageBlock {
        let s = Schema::from_pairs(&[
            ("k", DataType::Int32),
            ("name", DataType::Char(4)),
            ("w", DataType::Float64),
        ]);
        let mut b = StorageBlock::new(s, BlockFormat::Column, 1 << 16).unwrap();
        for i in 0..n {
            b.append_row(&[
                Value::I32(i % 4), // duplicate keys
                Value::Str(format!("n{i}")),
                Value::F64(i as f64),
            ])
            .unwrap();
        }
        b
    }

    fn table_for(block: &StorageBlock) -> JoinHashTable {
        let payload = block.schema().project(&[1, 2]);
        JoinHashTable::new(payload, 8)
    }

    #[test]
    fn insert_and_probe() {
        let b = build_block(8);
        let ht = table_for(&b);
        ht.insert_block(&b, &[0], &[1, 2]).unwrap();
        assert_eq!(ht.len(), 8);

        // key 1 matches rows 1 and 5
        let mut got = vec![];
        let n = ht.probe_key(&HashKey::from_i32(1), |p| {
            got.push((
                String::from_utf8_lossy(p.char_at(0)).trim_end().to_string(),
                p.f64_at(1),
            ));
        });
        assert_eq!(n, 2);
        got.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        assert_eq!(got, vec![("n1".to_string(), 1.0), ("n5".to_string(), 5.0)]);
    }

    #[test]
    fn missing_key_yields_nothing() {
        let b = build_block(4);
        let ht = table_for(&b);
        ht.insert_block(&b, &[0], &[1, 2]).unwrap();
        let mut called = false;
        assert_eq!(ht.probe_key(&HashKey::from_i32(99), |_| called = true), 0);
        assert!(!called);
        assert!(!ht.contains_key(&HashKey::from_i32(99)));
        assert!(ht.contains_key(&HashKey::from_i32(0)));
    }

    #[test]
    fn empty_table() {
        let b = build_block(0);
        let ht = table_for(&b);
        ht.insert_block(&b, &[0], &[1, 2]).unwrap();
        assert!(ht.is_empty());
        assert_eq!(ht.probe_key(&HashKey::from_i32(0), |_| {}), 0);
    }

    #[test]
    fn concurrent_build_is_complete() {
        let blocks: Vec<StorageBlock> = (0..8).map(|_| build_block(100)).collect();
        let payload = blocks[0].schema().project(&[1, 2]);
        let ht = Arc::new(JoinHashTable::new(payload, 16));
        std::thread::scope(|s| {
            for b in &blocks {
                let ht = ht.clone();
                s.spawn(move || ht.insert_block(b, &[0], &[1, 2]).unwrap());
            }
        });
        assert_eq!(ht.len(), 800);
        // each key 0..3 appears 25 times per block * 8 blocks
        for k in 0..4 {
            assert_eq!(ht.probe_key(&HashKey::from_i32(k), |_| {}), 200);
        }
    }

    #[test]
    fn memory_accounting() {
        let b = build_block(64);
        let ht = table_for(&b);
        let t = MemoryTracker::new();
        ht.sync_tracker(&t);
        let before = t.current_bytes();
        ht.insert_block(&b, &[0], &[1, 2]).unwrap();
        ht.sync_tracker(&t);
        assert!(t.current_bytes() > before);
        assert!(ht.memory_bytes() >= 64 * (4 + 8)); // at least the payload arena
        ht.release_tracker(&t);
        assert_eq!(t.current_bytes(), 0);
    }

    #[test]
    fn composite_keys() {
        let b = build_block(8);
        let ht = JoinHashTable::new(b.schema().project(&[2]), 4);
        // key on (k, name) — all distinct because name differs
        ht.insert_block(&b, &[0, 1], &[2]).unwrap();
        let key = HashKey::from_row(&b, 3, &[0, 1]);
        let mut vals = vec![];
        ht.probe_key(&key, |p| vals.push(p.f64_at(0)));
        assert_eq!(vals, vec![3.0]);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let b = build_block(1);
        let ht = JoinHashTable::new(b.schema().project(&[0]), 5);
        assert_eq!(ht.shards.len(), 8);
        let ht = JoinHashTable::new(b.schema().project(&[0]), 0);
        assert_eq!(ht.shards.len(), 1);
    }

    #[test]
    fn batched_probe_matches_scalar() {
        let build = build_block(200);
        let ht = table_for(&build);
        ht.insert_block(&build, &[0], &[1, 2]).unwrap();

        // Probe block with hit, duplicate-hit, and miss keys.
        let s = Schema::from_pairs(&[("k", DataType::Int32)]);
        let mut probe = StorageBlock::new(s, BlockFormat::Column, 1 << 12).unwrap();
        for i in 0..64 {
            probe.append_row(&[Value::I32(i % 7)]).unwrap(); // 4..6 miss
        }
        let ex = KeyExtractor::compile(probe.schema(), &[0]).unwrap();
        let mut batch = KeyBatch::new();
        ex.extract_block(&probe, &mut batch);

        let session = ht.probe_session();
        let mut matches = Vec::new();
        session.probe_batch(&batch, &mut matches);
        let mut exists = Vec::new();
        session.contains_batch(&batch, &mut exists);

        for (r, &seen) in exists.iter().enumerate() {
            let key = HashKey::from_row(&probe, r, &[0]);
            let mut scalar: Vec<f64> = Vec::new();
            ht.probe_key(&key, |p| scalar.push(p.f64_at(1)));
            let mut batched: Vec<f64> = matches
                .iter()
                .filter(|m| m.probe_row == r as u32)
                .map(|&m| session.payload(m).f64_at(1))
                .collect();
            scalar.sort_by(|a, b| a.partial_cmp(b).unwrap());
            batched.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(batched, scalar, "row {r}");
            assert_eq!(seen, !scalar.is_empty());
        }
        // Matches come out in probe-row order (gather relies on it).
        assert!(matches.windows(2).all(|w| w[0].probe_row <= w[1].probe_row));
    }

    #[test]
    fn zero_width_payload() {
        let b = build_block(30);
        let ht = JoinHashTable::new(b.schema().project(&[]), 4);
        ht.insert_block(&b, &[0], &[]).unwrap();
        assert_eq!(ht.len(), 30);
        // 30 rows over keys 0..4: keys 0,1 appear 8 times, 2,3 appear 7.
        assert_eq!(ht.probe_key(&HashKey::from_i32(0), |_| {}), 8);
        assert_eq!(ht.probe_key(&HashKey::from_i32(3), |_| {}), 7);
        assert!(ht.contains_key(&HashKey::from_i32(2)));
    }
}
