//! Indexed plan topology, precomputed once at plan-build time.
//!
//! The scheduler makes three kinds of topology queries on every state
//! transition: "who consumes this operator's output?", "who is waiting on
//! this operator as a scheduling dependency?", and "is this operator on a
//! blocking-prerequisite path?". Deriving those from [`OperatorKind`] on the
//! fly meant an O(ops × deps) rescan every time a producer finished.
//! [`PlanTopology`] computes them once in [`QueryPlan`]'s constructor and the
//! scheduler reads plain indexed arrays.
//!
//! [`OperatorKind`]: crate::plan::OperatorKind
//! [`QueryPlan`]: crate::plan::QueryPlan

use crate::plan::{OpId, Operator, OperatorKind, Source};
use std::collections::BTreeMap;

/// A reverse scheduling-dependency entry: `op` waits on the indexing
/// operator `multiplicity` times (an operator may reference the same
/// dependency more than once, e.g. a LIP select reading one build twice).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dependent {
    /// The waiting operator.
    pub op: OpId,
    /// How many of `op`'s scheduling dependencies point here.
    pub multiplicity: usize,
}

/// Precomputed adjacency and flags for one [`QueryPlan`].
///
/// [`QueryPlan`]: crate::plan::QueryPlan
#[derive(Debug, Clone)]
pub struct PlanTopology {
    /// `consumers[i]` = the single operator reading operator `i`'s output
    /// (streamed or blocking); `None` only for the sink.
    consumers: Vec<Option<OpId>>,
    /// `dependents[i]` = operators listing `i` among their scheduling
    /// dependencies (probes on their build, NLJs on their inner side, LIP
    /// selects on their filter builds).
    dependents: Vec<Vec<Dependent>>,
    /// `critical[i]` = operator `i` is a scheduling prerequisite of someone
    /// (or streams into one): finishing it unblocks other operators, so the
    /// scheduler prioritizes it.
    critical: Vec<bool>,
    /// `stream_parent[i]` = the operator whose output streams into `i`
    /// (`None` when `i` reads a base table).
    stream_parent: Vec<Option<OpId>>,
    /// `initial_waits[i]` = number of scheduling dependencies of `i`.
    initial_waits: Vec<usize>,
    /// `materialized_into[p]` = the nested-loops join that materializes
    /// operator `p`'s output as its inner side. Such an edge bypasses UoT
    /// staging: the join cannot start before `p` finishes anyway.
    materialized_into: Vec<Option<OpId>>,
}

impl PlanTopology {
    /// Compute the topology of `ops` with the given single-consumer map
    /// (validated by the plan builder).
    pub fn compute(ops: &[Operator], consumers: Vec<Option<OpId>>) -> Self {
        let n = ops.len();
        let mut dependents: Vec<Vec<Dependent>> = vec![Vec::new(); n];
        let mut critical = vec![false; n];
        let mut stream_parent = vec![None; n];
        let mut initial_waits = vec![0; n];
        let mut materialized_into = vec![None; n];

        for (id, op) in ops.iter().enumerate() {
            if let Source::Op(src) = op.kind.stream_source() {
                stream_parent[id] = Some(*src);
            }
            let deps = op.kind.scheduling_deps();
            initial_waits[id] = deps.len();
            let mut counts: BTreeMap<OpId, usize> = BTreeMap::new();
            for d in deps {
                *counts.entry(d).or_default() += 1;
                critical[d] = true;
            }
            for (dep, multiplicity) in counts {
                dependents[dep].push(Dependent {
                    op: id,
                    multiplicity,
                });
            }
            if let OperatorKind::NestedLoops { right, .. } = &op.kind {
                materialized_into[*right] = Some(id);
            }
        }
        // Propagate criticality upstream along stream edges: anything feeding
        // a prerequisite is itself a prerequisite. Builders assign consumers
        // higher ids than producers, so one reverse pass sees every consumer
        // before its producers.
        for id in (0..n).rev() {
            if critical[id] {
                if let Some(src) = stream_parent[id] {
                    critical[src] = true;
                }
            }
        }
        PlanTopology {
            consumers,
            dependents,
            critical,
            stream_parent,
            initial_waits,
            materialized_into,
        }
    }

    /// Number of operators.
    pub fn len(&self) -> usize {
        self.consumers.len()
    }

    /// True for an empty plan (never produced by the builder).
    pub fn is_empty(&self) -> bool {
        self.consumers.is_empty()
    }

    /// The single consumer of operator `id`, if any.
    pub fn consumer_of(&self, id: OpId) -> Option<OpId> {
        self.consumers[id]
    }

    /// Operators waiting on `id` as a scheduling dependency.
    pub fn dependents_of(&self, id: OpId) -> &[Dependent] {
        &self.dependents[id]
    }

    /// Whether operator `id` is on a blocking-prerequisite path.
    pub fn is_critical(&self, id: OpId) -> bool {
        self.critical[id]
    }

    /// The full critical-path flag vector, indexed by `OpId`.
    pub fn critical_flags(&self) -> &[bool] {
        &self.critical
    }

    /// The operator streaming into `id` (`None` for base-table readers).
    pub fn stream_parent(&self, id: OpId) -> Option<OpId> {
        self.stream_parent[id]
    }

    /// Number of scheduling dependencies of `id` at query start.
    pub fn initial_waits(&self, id: OpId) -> usize {
        self.initial_waits[id]
    }

    /// The nested-loops join materializing `producer`'s output as its inner
    /// side, if any (the UoT-bypass edge).
    pub fn materialization_target(&self, producer: OpId) -> Option<OpId> {
        self.materialized_into[producer]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{JoinType, PlanBuilder, QueryPlan};
    use std::sync::Arc;
    use uot_expr::{cmp, col, lit, CmpOp, Predicate};
    use uot_storage::{BlockFormat, DataType, Schema, Table, TableBuilder, Value};

    fn table(name: &str, rows: i32) -> Arc<Table> {
        let s = Schema::from_pairs(&[("k", DataType::Int32), ("v", DataType::Float64)]);
        let mut tb = TableBuilder::new(name, s, BlockFormat::Column, 256);
        for i in 0..rows {
            tb.append(&[Value::I32(i), Value::F64(i as f64)]).unwrap();
        }
        Arc::new(tb.finish())
    }

    /// build(0) + select(1) -> probe(2)
    fn probe_plan() -> QueryPlan {
        let mut pb = PlanBuilder::new();
        let b = pb
            .build_hash(
                crate::plan::Source::Table(table("dim", 8)),
                vec![0],
                vec![1],
            )
            .unwrap();
        let s = pb
            .filter(
                crate::plan::Source::Table(table("fact", 32)),
                cmp(col(0), CmpOp::Lt, lit(10i32)),
            )
            .unwrap();
        let p = pb
            .probe(
                crate::plan::Source::Op(s),
                b,
                vec![0],
                vec![0, 1],
                vec![0],
                JoinType::Inner,
            )
            .unwrap();
        pb.build(p).unwrap()
    }

    #[test]
    fn probe_topology_indexes_dependencies() {
        let plan = probe_plan();
        let t = plan.topology();
        assert_eq!(t.len(), 3);
        // consumers: build -> probe, select -> probe, probe -> sink
        assert_eq!(t.consumer_of(0), Some(2));
        assert_eq!(t.consumer_of(1), Some(2));
        assert_eq!(t.consumer_of(2), None);
        // the probe waits on the build, once
        assert_eq!(
            t.dependents_of(0),
            &[Dependent {
                op: 2,
                multiplicity: 1
            }]
        );
        assert!(t.dependents_of(1).is_empty());
        assert_eq!(t.initial_waits(2), 1);
        assert_eq!(t.initial_waits(0), 0);
        // stream edges
        assert_eq!(t.stream_parent(2), Some(1));
        assert_eq!(t.stream_parent(0), None);
        // the build is critical, the plain select and probe are not
        assert!(t.is_critical(0));
        assert!(!t.is_critical(1));
        assert!(!t.is_critical(2));
        assert_eq!(t.materialization_target(0), None);
    }

    #[test]
    fn criticality_propagates_through_stream_feeders() {
        // select(0) -> build(1); probe side select(2); probe(3):
        // the select feeding the build must inherit criticality.
        let mut pb = PlanBuilder::new();
        let s0 = pb
            .filter(crate::plan::Source::Table(table("dim", 8)), Predicate::True)
            .unwrap();
        let b = pb
            .build_hash(crate::plan::Source::Op(s0), vec![0], vec![1])
            .unwrap();
        let s1 = pb
            .filter(
                crate::plan::Source::Table(table("fact", 32)),
                Predicate::True,
            )
            .unwrap();
        let p = pb
            .probe(
                crate::plan::Source::Op(s1),
                b,
                vec![0],
                vec![0, 1],
                vec![0],
                JoinType::Inner,
            )
            .unwrap();
        let plan = pb.build(p).unwrap();
        let t = plan.topology();
        assert!(t.is_critical(s0), "stream feeder of a build is critical");
        assert!(t.is_critical(b));
        assert!(!t.is_critical(s1));
        assert!(!t.is_critical(p));
        assert_eq!(t.critical_flags(), &[true, true, false, false]);
    }

    #[test]
    fn nlj_inner_side_is_a_materialization_edge() {
        let t5 = table("t5", 6);
        let mut pb = PlanBuilder::new();
        let inner = pb
            .filter(
                crate::plan::Source::Table(t5.clone()),
                cmp(col(0), CmpOp::Lt, lit(3i32)),
            )
            .unwrap();
        let j = pb
            .nested_loops(
                crate::plan::Source::Table(t5),
                inner,
                vec![(0, CmpOp::Eq, 0)],
                vec![0],
                vec![1],
            )
            .unwrap();
        let plan = pb.build(j).unwrap();
        let t = plan.topology();
        assert_eq!(t.materialization_target(inner), Some(j));
        assert_eq!(t.materialization_target(j), None);
        assert_eq!(
            t.dependents_of(inner),
            &[Dependent {
                op: j,
                multiplicity: 1
            }]
        );
        assert!(t.is_critical(inner));
    }

    #[test]
    fn single_op_plan_has_trivial_topology() {
        let mut pb = PlanBuilder::new();
        let s = pb
            .filter(crate::plan::Source::Table(table("t", 4)), Predicate::True)
            .unwrap();
        let plan = pb.build(s).unwrap();
        let t = plan.topology();
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert_eq!(t.consumer_of(0), None);
        assert!(t.dependents_of(0).is_empty());
        assert!(!t.is_critical(0));
    }
}
