//! Work orders: the unit of dispatchable work.
//!
//! "Quickstep uses an abstraction called *work orders*, which represents the
//! relational operator logic that needs to be executed on a specified input"
//! (Section III of the paper). A [`WorkOrder`] pairs an operator with one
//! input — a streamed block, or a finalize step for blocking operators.

use crate::plan::OpId;
use crate::query_id::QueryId;
use std::sync::Arc;
use uot_storage::StorageBlock;

/// What a work order does.
#[derive(Debug, Clone)]
pub enum WorkKind {
    /// Apply the operator's logic to one input block (select, build, probe,
    /// aggregate-partial, nested-loops outer block, limit).
    Stream {
        /// The input block.
        block: Arc<StorageBlock>,
    },
    /// Merge aggregate partials and emit the result blocks.
    FinalizeAggregate,
    /// Sort all collected input and emit the result blocks.
    FinalizeSort,
    /// Grace hash join: process the spilled build/probe partitions one at a
    /// time and emit the joined result blocks.
    FinalizeJoin,
}

/// One schedulable unit of work.
#[derive(Debug, Clone)]
pub struct WorkOrder {
    /// The query this work order executes for ([`QueryId::SOLO`] outside a
    /// service). Workers shared across queries use it to attribute
    /// completions, metrics and trace events.
    pub query: QueryId,
    /// The operator this work order belongs to.
    pub op: OpId,
    /// The work to perform.
    pub kind: WorkKind,
    /// Monotone sequence number (dispatch order diagnostics). Unique within
    /// one query, not across queries.
    pub seq: usize,
}

impl WorkOrder {
    /// Short description for schedule dumps. The query id is shown only when
    /// it is not the solo id, so single-query dumps stay unchanged.
    pub fn describe(&self) -> String {
        let q = if self.query == QueryId::SOLO {
            String::new()
        } else {
            format!("{} ", self.query)
        };
        match &self.kind {
            WorkKind::Stream { block } => {
                format!("{q}op{} stream({} rows)", self.op, block.num_rows())
            }
            WorkKind::FinalizeAggregate => format!("{q}op{} finalize-agg", self.op),
            WorkKind::FinalizeSort => format!("{q}op{} finalize-sort", self.op),
            WorkKind::FinalizeJoin => format!("{q}op{} finalize-join", self.op),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uot_storage::{BlockFormat, DataType, Schema, Value};

    #[test]
    fn describe_mentions_shape() {
        let s = Schema::from_pairs(&[("k", DataType::Int32)]);
        let mut b = StorageBlock::new(s, BlockFormat::Row, 64).unwrap();
        b.append_row(&[Value::I32(1)]).unwrap();
        let wo = WorkOrder {
            query: QueryId::SOLO,
            op: 3,
            kind: WorkKind::Stream { block: Arc::new(b) },
            seq: 0,
        };
        assert_eq!(wo.describe(), "op3 stream(1 rows)");
        let wo = WorkOrder {
            query: QueryId::new(2),
            op: 1,
            kind: WorkKind::FinalizeSort,
            seq: 1,
        };
        assert!(wo.describe().contains("finalize-sort"));
        assert!(wo.describe().starts_with("q2 "));
    }
}
