//! Per-submission execution knobs, shared by both drivers.
//!
//! [`Engine`](crate::engine::Engine) and [`QueryService`](crate::service::QueryService)
//! used to carry near-duplicate knob sets ([`EngineConfig`](crate::engine::EngineConfig)
//! fields vs. the service's former `QueryOptions`). [`ExecOptions`] is the
//! deduplicated form: one struct of per-query overrides that
//! [`Engine::execute_with`](crate::engine::Engine::execute_with) and
//! [`QueryService::submit_with`](crate::service::QueryService::submit_with)
//! both accept, layered over their owner's defaults.
//!
//! Field semantics per driver:
//!
//! | field | `Engine` | `QueryService` |
//! |---|---|---|
//! | `reservation` | per-run memory budget | admission reservation + budget |
//! | `deadline` | overrides `EngineConfig::deadline` | per-query deadline |
//! | `uot` | uniform UoT override | uniform UoT override |
//! | `trace` | enables tracing for this run | enables tracing for this query |
//! | `faults` | deterministic fault plan | deterministic fault plan |
//! | `fusion` | overrides `EngineConfig::fusion` | overrides `ServiceConfig::fusion` |
//! | `degrade` | overrides `EngineConfig::degrade` | overrides `ServiceConfig::degrade` |

use crate::engine::DegradePolicy;
use crate::fault::FaultPlan;
use crate::fusion::FusionPolicy;
use crate::uot::Uot;
use std::sync::Arc;
use std::time::Duration;

/// Per-submission knobs (see the module docs for per-driver semantics).
#[derive(Debug, Clone, Default)]
pub struct ExecOptions {
    /// Bytes of memory this query may hold. Under a service this is the
    /// admission reservation carved from the global budget
    /// ([`ServiceConfig::default_reservation`](crate::service::ServiceConfig::default_reservation)
    /// when `None`); standalone it overrides
    /// [`EngineConfig::memory_budget`](crate::engine::EngineConfig::memory_budget).
    /// Either way it is the query's own hard cap: outgrowing it fails this
    /// query alone.
    pub reservation: Option<usize>,
    /// Wall-clock deadline from start/admission; past it the query is
    /// cancelled.
    pub deadline: Option<Duration>,
    /// UoT override for this query's edges (the owner's default when `None`).
    pub uot: Option<Uot>,
    /// Record a structured trace for this query.
    pub trace: bool,
    /// Deterministic fault plan (test harness).
    pub faults: Option<Arc<FaultPlan>>,
    /// Fused-pipeline policy override for this query (the owner's default
    /// when `None`).
    pub fusion: Option<FusionPolicy>,
    /// Budget-degradation policy override for this query (the owner's
    /// default when `None`). [`DegradePolicy::Spill`](crate::engine::DegradePolicy::Spill)
    /// arms the disk spill tier for this query alone.
    pub degrade: Option<DegradePolicy>,
}

impl ExecOptions {
    /// Builder-style setter for the memory reservation.
    pub fn with_reservation(mut self, bytes: usize) -> Self {
        self.reservation = Some(bytes);
        self
    }

    /// Builder-style setter for the deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Builder-style setter for the UoT override.
    pub fn with_uot(mut self, uot: Uot) -> Self {
        self.uot = Some(uot);
        self
    }

    /// Enable structured tracing for this query.
    pub fn traced(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Builder-style setter for a fault plan.
    pub fn with_faults(mut self, faults: Arc<FaultPlan>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Builder-style setter for the fused-pipeline policy.
    pub fn with_fusion(mut self, fusion: FusionPolicy) -> Self {
        self.fusion = Some(fusion);
        self
    }

    /// Builder-style setter for the budget-degradation policy.
    pub fn with_degrade(mut self, degrade: DegradePolicy) -> Self {
        self.degrade = Some(degrade);
        self
    }
}

/// Former name of [`ExecOptions`], kept for source compatibility.
#[deprecated(
    since = "0.1.0",
    note = "renamed to ExecOptions; the same knobs now drive both Engine and QueryService"
)]
pub type QueryOptions = ExecOptions;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_set_every_knob() {
        let o = ExecOptions::default()
            .with_reservation(4096)
            .with_deadline(Duration::from_secs(2))
            .with_uot(Uot::Table)
            .traced()
            .with_faults(Arc::new(FaultPlan::empty()))
            .with_fusion(FusionPolicy::Never)
            .with_degrade(DegradePolicy::Spill);
        assert_eq!(o.reservation, Some(4096));
        assert_eq!(o.deadline, Some(Duration::from_secs(2)));
        assert_eq!(o.uot, Some(Uot::Table));
        assert!(o.trace);
        assert!(o.faults.is_some());
        assert_eq!(o.fusion, Some(FusionPolicy::Never));
        assert_eq!(o.degrade, Some(DegradePolicy::Spill));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_alias_still_works() {
        let o = QueryOptions::default().with_uot(Uot::Blocks(2));
        assert_eq!(o.uot, Some(Uot::Blocks(2)));
    }
}
