//! Per-operator output buffering over the global block pool.
//!
//! Mirrors Quickstep's discipline (Section III-A of the paper): a work order
//! checks out a temporary block, appends its output, and returns the block
//! when it finishes; a block is held by at most one work order at a time.
//! Full blocks are emitted to the scheduler immediately; partially filled
//! blocks go back to the operator's partial list so the next work order can
//! keep filling them, and are flushed when the operator finishes.

use crate::Result;
use parking_lot::Mutex;
use std::sync::Arc;
use uot_storage::{BlockFormat, BlockPool, Schema, StorageBlock};

/// Thread-safe output staging for one operator.
#[derive(Debug)]
pub struct OutputBuffer {
    schema: Arc<Schema>,
    format: BlockFormat,
    block_bytes: usize,
    partials: Mutex<Vec<StorageBlock>>,
}

impl OutputBuffer {
    /// Create a buffer producing blocks of the given shape.
    pub fn new(schema: Arc<Schema>, format: BlockFormat, block_bytes: usize) -> Self {
        OutputBuffer {
            schema,
            format,
            block_bytes,
            partials: Mutex::new(Vec::new()),
        }
    }

    /// Schema of produced blocks.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Take a block to write into: a partially filled one if available,
    /// otherwise a fresh checkout from `pool`.
    pub fn checkout(&self, pool: &BlockPool) -> Result<StorageBlock> {
        if let Some(b) = self.partials.lock().pop() {
            return Ok(b);
        }
        Ok(pool.checkout(&self.schema, self.format, self.block_bytes)?)
    }

    /// Return a block after a work order finishes with it. Empty blocks go
    /// back to the pool; non-empty, non-full blocks join the partial list.
    /// Full blocks should be emitted, not put back (enforced by debug
    /// assertion).
    pub fn put_back(&self, block: StorageBlock, pool: &BlockPool) {
        debug_assert!(!block.is_full(), "full blocks must be emitted");
        if block.num_rows() == 0 {
            pool.give_back(block);
        } else {
            self.partials.lock().push(block);
        }
    }

    /// Copy every row of `src` into checked-out blocks. Returns the blocks
    /// that became **full** during the copy; a trailing partial block is
    /// retained internally. On a failed checkout mid-copy every block this
    /// call holds is discarded, so the tracker does not leak bytes on error
    /// paths (the query is failing; partial rows die with it).
    pub fn write_rows(&self, src: &StorageBlock, pool: &BlockPool) -> Result<Vec<StorageBlock>> {
        debug_assert_eq!(src.schema().len(), self.schema.len());
        let cols: Vec<usize> = (0..self.schema.len()).collect();
        let mut completed = Vec::new();
        let n = src.num_rows();
        if n == 0 {
            return Ok(completed);
        }
        let discard_held = |completed: Vec<StorageBlock>, cur: StorageBlock| {
            for b in completed {
                pool.discard(b);
            }
            pool.discard(cur);
        };
        let mut cur = self.checkout(pool)?;
        for row in 0..n {
            if !cur.append_projected(src, row, &cols) {
                match self.checkout(pool) {
                    Ok(next) => completed.push(std::mem::replace(&mut cur, next)),
                    Err(e) => {
                        discard_held(completed, cur);
                        return Err(e);
                    }
                }
                let ok = cur.append_projected(src, row, &cols);
                debug_assert!(ok, "fresh block rejected a row");
            }
            if cur.is_full() {
                match self.checkout(pool) {
                    Ok(next) => completed.push(std::mem::replace(&mut cur, next)),
                    Err(e) => {
                        discard_held(completed, cur);
                        return Err(e);
                    }
                }
            }
        }
        self.put_back(cur, pool);
        Ok(completed)
    }

    /// Drain all partially filled blocks (the operator has finished). Empty
    /// list when everything happened to fill exactly.
    pub fn flush(&self) -> Vec<StorageBlock> {
        let mut partials = self.partials.lock();
        partials.drain(..).filter(|b| b.num_rows() > 0).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uot_storage::{DataType, MemoryTracker, Value};

    fn setup(block_bytes: usize) -> (Arc<BlockPool>, OutputBuffer, Arc<Schema>) {
        let schema = Schema::from_pairs(&[("k", DataType::Int32)]);
        let pool = BlockPool::new(MemoryTracker::new());
        let buf = OutputBuffer::new(schema.clone(), BlockFormat::Row, block_bytes);
        (pool, buf, schema)
    }

    fn src_block(schema: &Arc<Schema>, n: i32) -> StorageBlock {
        let mut b = StorageBlock::new(schema.clone(), BlockFormat::Column, 1 << 16).unwrap();
        for i in 0..n {
            b.append_row(&[Value::I32(i)]).unwrap();
        }
        b
    }

    #[test]
    fn write_rows_splits_into_blocks() {
        let (pool, buf, schema) = setup(16); // 4 rows per block
        let src = src_block(&schema, 10);
        let completed = buf.write_rows(&src, &pool).unwrap();
        assert_eq!(completed.len(), 2);
        assert!(completed.iter().all(|b| b.is_full()));
        let rest = buf.flush();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].num_rows(), 2);
    }

    #[test]
    fn partials_are_continued_by_next_work_order() {
        let (pool, buf, schema) = setup(16);
        // First "work order" writes 2 rows -> one partial.
        buf.write_rows(&src_block(&schema, 2), &pool).unwrap();
        // Second writes 3 rows: fills the partial (4) and starts another (1).
        let completed = buf.write_rows(&src_block(&schema, 3), &pool).unwrap();
        assert_eq!(completed.len(), 1);
        assert_eq!(completed[0].num_rows(), 4);
        let rest = buf.flush();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].num_rows(), 1);
        // pool stats: exactly 2 blocks were ever created
        assert_eq!(pool.stats().created, 2);
    }

    #[test]
    fn empty_source_writes_nothing() {
        let (pool, buf, schema) = setup(16);
        let completed = buf.write_rows(&src_block(&schema, 0), &pool).unwrap();
        assert!(completed.is_empty());
        assert!(buf.flush().is_empty());
        assert_eq!(pool.stats().created, 0);
    }

    #[test]
    fn exact_fill_leaves_no_partial() {
        let (pool, buf, schema) = setup(16);
        let completed = buf.write_rows(&src_block(&schema, 8), &pool).unwrap();
        assert_eq!(completed.len(), 2);
        assert!(buf.flush().is_empty());
        // The trailing empty checkout went back to the pool.
        assert_eq!(pool.stats().returned, 1);
    }

    #[test]
    fn put_back_empty_goes_to_pool() {
        let (pool, buf, _schema) = setup(16);
        let b = buf.checkout(&pool).unwrap();
        buf.put_back(b, &pool);
        assert!(buf.flush().is_empty());
        assert_eq!(pool.stats().returned, 1);
    }

    #[test]
    fn contents_preserved_across_splits() {
        let (pool, buf, schema) = setup(16);
        let src = src_block(&schema, 11);
        let mut all = Vec::new();
        for b in buf.write_rows(&src, &pool).unwrap() {
            all.extend(b.all_rows());
        }
        for b in buf.flush() {
            all.extend(b.all_rows());
        }
        let got: Vec<i32> = all.iter().map(|r| r[0].as_i32()).collect();
        assert_eq!(got, (0..11).collect::<Vec<_>>());
    }
}
