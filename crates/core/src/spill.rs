//! Engine-side adapter for the storage crate's disk spill tier.
//!
//! [`SpillStore`](uot_storage::SpillStore) is deliberately engine-agnostic:
//! it reports I/O through the [`SpillObserver`](uot_storage::SpillObserver)
//! trait. [`EngineSpillHook`] is the engine's implementation — it threads the
//! deterministic [`FaultPlan`] through the new `SpillWrite`/`SpillRead`
//! sites and records `SpillOut`/`SpillIn` [`TraceEventKind`]s, so the chaos
//! harness and the exporters see the second tier exactly like every other
//! engine mechanism.

use crate::fault::{FaultKind, FaultPlan, FaultSite};
use crate::obs::hub::{HubCounter, HubHistogram, MetricsHub};
use crate::obs::live::LiveQuery;
use crate::trace::{TraceEventKind, TraceSink};
use std::sync::Arc;
use uot_storage::{MemoryTracker, SpillIo, SpillObserver};

/// Fault-injection and tracing hook installed on each query's
/// [`SpillStore`](uot_storage::SpillStore).
pub struct EngineSpillHook {
    faults: Option<Arc<FaultPlan>>,
    trace: Option<Arc<TraceSink>>,
    tracker: Arc<MemoryTracker>,
    hub: Option<Arc<MetricsHub>>,
    live: Option<Arc<LiveQuery>>,
}

impl EngineSpillHook {
    /// Build the hook for one query execution. `tracker` is the query's
    /// tracker (read for the `in_use` field of spill trace events).
    pub fn new(
        faults: Option<Arc<FaultPlan>>,
        trace: Option<Arc<TraceSink>>,
        tracker: Arc<MemoryTracker>,
    ) -> Arc<Self> {
        Arc::new(EngineSpillHook {
            faults,
            trace,
            tracker,
            hub: None,
            live: None,
        })
    }

    /// Build the hook with live-telemetry mirrors: spill I/O updates `hub`
    /// counters/histograms and the query's live registry entry as it
    /// happens, in addition to the trace.
    pub fn with_telemetry(
        faults: Option<Arc<FaultPlan>>,
        trace: Option<Arc<TraceSink>>,
        tracker: Arc<MemoryTracker>,
        hub: Option<Arc<MetricsHub>>,
        live: Option<Arc<LiveQuery>>,
    ) -> Arc<Self> {
        Arc::new(EngineSpillHook {
            faults,
            trace,
            tracker,
            hub,
            live,
        })
    }
}

impl SpillObserver for EngineSpillHook {
    fn before_io(&self, io: SpillIo, tag: usize) -> std::result::Result<(), String> {
        let site = match io {
            SpillIo::Write => FaultSite::SpillWrite,
            SpillIo::Read => FaultSite::SpillRead,
        };
        let Some(faults) = &self.faults else {
            return Ok(());
        };
        match faults.check(site) {
            None => Ok(()),
            Some(kind @ FaultKind::Delay(d)) => {
                if let Some(t) = &self.trace {
                    t.record(TraceEventKind::FaultInjected {
                        site,
                        kind,
                        op: tag,
                    });
                }
                std::thread::sleep(d);
                Ok(())
            }
            // Spill I/O runs on the scheduler thread as well as inside work
            // orders, so a `Panic` here is not guaranteed to be contained by
            // the work-order catch_unwind. Both failure kinds degrade to a
            // clean error instead — the invariant under test is "a failed
            // spill surfaces as an attributed error, never a crash or leak".
            Some(kind @ (FaultKind::Panic | FaultKind::Error)) => {
                if let Some(t) = &self.trace {
                    t.record(TraceEventKind::FaultInjected {
                        site,
                        kind,
                        op: tag,
                    });
                }
                Err(format!("injected fault at {site:?}"))
            }
        }
    }

    fn spilled(&self, tag: usize, bytes: usize) {
        if let Some(t) = &self.trace {
            t.record(TraceEventKind::SpillOut {
                op: tag,
                bytes,
                in_use: self.tracker.current_bytes(),
            });
        }
        if let Some(hub) = &self.hub {
            hub.add(HubCounter::SpillEvents, 1);
            hub.add(HubCounter::SpilledBytes, bytes as u64);
            hub.record(HubHistogram::SpillVolumeBytes, bytes as u64);
        }
        if let Some(live) = &self.live {
            live.on_spill();
        }
    }

    fn restored(&self, tag: usize, bytes: usize) {
        if let Some(t) = &self.trace {
            t.record(TraceEventKind::SpillIn {
                op: tag,
                bytes,
                in_use: self.tracker.current_bytes(),
            });
        }
        if let Some(hub) = &self.hub {
            hub.add(HubCounter::SpillRestoredBytes, bytes as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Injection;
    use uot_storage::{BlockFormat, Schema, SpillStore, StorageBlock, StorageError, Value};

    fn block() -> StorageBlock {
        let s = Schema::from_pairs(&[("k", uot_storage::DataType::Int32)]);
        let mut b = StorageBlock::new(s, BlockFormat::Row, 256).unwrap();
        b.append_row(&[Value::I32(1)]).unwrap();
        b
    }

    #[test]
    fn hook_records_spill_events_and_injects_faults() {
        let tracker = MemoryTracker::new();
        let sink = TraceSink::new(1024);
        let faults = Arc::new(FaultPlan::new(vec![Injection {
            site: FaultSite::SpillWrite,
            kind: FaultKind::Error,
            nth: 2,
        }]));
        let store = SpillStore::new(None, tracker.clone()).unwrap();
        store.set_observer(EngineSpillHook::new(
            Some(faults),
            Some(sink.clone()),
            tracker.clone(),
        ));

        let b = block();
        tracker.alloc(b.allocated_bytes());
        // First write succeeds and is traced; second hits the injection.
        let h = store.spill_block(&b, 3).unwrap();
        let b2 = block();
        tracker.alloc(b2.allocated_bytes());
        let err = store.spill_block(&b2, 3).unwrap_err();
        assert!(matches!(err, StorageError::SpillIo { .. }));
        assert!(err.to_string().contains("injected fault at SpillWrite"));
        let restored = store.restore(h).unwrap();
        assert_eq!(restored.num_rows(), 1);

        let trace = sink.finish(vec![]);
        assert_eq!(
            trace.count(|k| matches!(k, TraceEventKind::SpillOut { op: 3, .. })),
            1
        );
        assert_eq!(
            trace.count(|k| matches!(k, TraceEventKind::SpillIn { op: 3, .. })),
            1
        );
        assert_eq!(
            trace.count(|k| matches!(
                k,
                TraceEventKind::FaultInjected {
                    site: FaultSite::SpillWrite,
                    ..
                }
            )),
            1
        );
    }

    #[test]
    fn panic_kind_degrades_to_a_clean_error() {
        let tracker = MemoryTracker::new();
        let faults = Arc::new(FaultPlan::new(vec![Injection {
            site: FaultSite::SpillRead,
            kind: FaultKind::Panic,
            nth: 1,
        }]));
        let store = SpillStore::new(None, tracker.clone()).unwrap();
        let b = block();
        tracker.alloc(b.allocated_bytes());
        let h = store.spill_block(&b, 0).unwrap();
        store.set_observer(EngineSpillHook::new(Some(faults), None, tracker.clone()));
        let err = store.restore(h).unwrap_err();
        assert!(err.to_string().contains("injected fault at SpillRead"));
        assert_eq!(tracker.current_bytes(), 0, "no leak on injected read fault");
    }
}
