//! Bloom filters for Lookahead Information Passing (LIP).
//!
//! The paper leans on Zhu et al.'s LIP work \[42\] in two places: LIP filters
//! "can substantially bring down the selectivity, sometimes by an order of
//! magnitude" (Section VI-C's technique to shrink `|σ(R)|`), and "LIP filters
//! in Quickstep reduce the data movement across operators significantly"
//! (the Fig. 11 discussion). This module provides the mechanism: every hash
//! build can also populate a Bloom filter over its keys, and a downstream
//! select can *probe the filters of joins it has not reached yet*, dropping
//! doomed rows at the scan.

use std::sync::atomic::{AtomicU64, Ordering};
use uot_storage::{fx_mix, hash_of, HashKey, KeyExtractor, StorageBlock};

/// A concurrently-buildable blocked Bloom filter keyed by [`HashKey`]s.
///
/// Uses `k` derived probe positions from two independent 64-bit hashes
/// (Kirsch-Mitzenmacher). Both are derived from the *single* canonical
/// [`hash_of`] value, so the batched key pipeline can feed the filter (and
/// LIP probes) straight from its per-block hash vector without re-hashing
/// keys. Inserts are lock-free atomic ORs, so build work orders can populate
/// the filter in parallel exactly like the hash table.
#[derive(Debug)]
pub struct BloomFilter {
    words: Vec<AtomicU64>,
    n_bits: u64,
    hashes: u32,
}

/// Derive the Kirsch-Mitzenmacher pair from one canonical key hash.
#[inline]
fn hash2(h: u64) -> (u64, u64) {
    let b = fx_mix(fx_mix(0, h ^ 0x9e37_79b9_7f4a_7c15), h) | 1;
    (h, b) // odd second hash avoids degenerate stepping
}

impl BloomFilter {
    /// Filter sized for `expected_keys` at roughly the target
    /// false-positive rate (clamped to sane bounds).
    pub fn with_capacity(expected_keys: usize, fp_rate: f64) -> Self {
        let fp = fp_rate.clamp(1e-4, 0.5);
        let n = expected_keys.max(16) as f64;
        // classic sizing: m = -n ln p / (ln 2)^2 ; k = (m/n) ln 2
        let m = (-n * fp.ln() / (2f64.ln().powi(2))).ceil() as u64;
        let m = m.next_power_of_two().max(64);
        let k = ((m as f64 / n) * 2f64.ln()).round().clamp(1.0, 8.0) as u32;
        BloomFilter {
            words: (0..m / 64).map(|_| AtomicU64::new(0)).collect(),
            n_bits: m,
            hashes: k,
        }
    }

    /// Number of bits.
    pub fn n_bits(&self) -> u64 {
        self.n_bits
    }

    /// Number of probe positions per key.
    pub fn n_hashes(&self) -> u32 {
        self.hashes
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.words.len() * 8
    }

    #[inline]
    fn positions(&self, hash: u64) -> impl Iterator<Item = u64> + '_ {
        let (a, b) = hash2(hash);
        let mask = self.n_bits - 1;
        (0..self.hashes as u64).map(move |i| (a.wrapping_add(i.wrapping_mul(b))) & mask)
    }

    /// Insert a precomputed [`hash_of`] value (thread-safe).
    #[inline]
    pub fn insert_hash(&self, hash: u64) {
        for pos in self.positions(hash) {
            self.words[(pos / 64) as usize].fetch_or(1 << (pos % 64), Ordering::Relaxed);
        }
    }

    /// Insert a whole hash vector (one batched build work order's keys).
    pub fn insert_hashes(&self, hashes: &[u64]) {
        for &h in hashes {
            self.insert_hash(h);
        }
    }

    /// Insert a key (thread-safe).
    pub fn insert(&self, key: &HashKey) {
        self.insert_hash(hash_of(key));
    }

    /// Insert every key of `block` built from `key_cols`.
    pub fn insert_block(&self, block: &StorageBlock, key_cols: &[usize]) -> crate::Result<()> {
        let extractor = KeyExtractor::compile(block.schema(), key_cols)?;
        let mut batch = uot_storage::KeyBatch::new();
        extractor.extract_block(block, &mut batch);
        self.insert_hashes(batch.hashes());
        Ok(())
    }

    /// Membership test on a precomputed [`hash_of`] value: `false` means
    /// *definitely absent*.
    #[inline]
    pub fn may_contain_hash(&self, hash: u64) -> bool {
        for pos in self.positions(hash) {
            if self.words[(pos / 64) as usize].load(Ordering::Relaxed) & (1 << (pos % 64)) == 0 {
                return false;
            }
        }
        true
    }

    /// Membership test: `false` means *definitely absent*.
    pub fn may_contain(&self, key: &HashKey) -> bool {
        self.may_contain_hash(hash_of(key))
    }

    /// Fraction of set bits (diagnostic; high saturation means high false
    /// positive rates).
    pub fn saturation(&self) -> f64 {
        let ones: u64 = self
            .words
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as u64)
            .sum();
        ones as f64 / self.n_bits as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use uot_storage::{BlockFormat, DataType, Schema, Value};

    #[test]
    fn no_false_negatives() {
        let f = BloomFilter::with_capacity(1000, 0.01);
        for i in 0..1000 {
            f.insert(&HashKey::from_i64(i));
        }
        for i in 0..1000 {
            assert!(f.may_contain(&HashKey::from_i64(i)), "lost key {i}");
        }
    }

    #[test]
    fn false_positive_rate_is_bounded() {
        let f = BloomFilter::with_capacity(1000, 0.01);
        for i in 0..1000 {
            f.insert(&HashKey::from_i64(i));
        }
        let fps = (1000..101_000)
            .filter(|&i| f.may_contain(&HashKey::from_i64(i)))
            .count();
        let rate = fps as f64 / 100_000.0;
        assert!(rate < 0.05, "false positive rate {rate}");
        assert!(f.saturation() < 0.7);
    }

    #[test]
    fn sizing_clamps() {
        let f = BloomFilter::with_capacity(0, 2.0); // degenerate inputs
        assert!(f.n_bits() >= 64);
        assert!(f.n_hashes() >= 1);
        assert!(f.memory_bytes() >= 8);
        let f = BloomFilter::with_capacity(1_000_000, 1e-9);
        assert!(f.n_hashes() <= 8);
    }

    #[test]
    fn insert_block_covers_all_rows() {
        let s = Schema::from_pairs(&[("k", DataType::Int32)]);
        let mut b = StorageBlock::new(s, BlockFormat::Column, 4096).unwrap();
        for i in 0..100 {
            b.append_row(&[Value::I32(i * 3)]).unwrap();
        }
        let f = BloomFilter::with_capacity(100, 0.01);
        f.insert_block(&b, &[0]).unwrap();
        for i in 0..100 {
            assert!(f.may_contain(&HashKey::from_i32(i * 3)));
        }
    }

    #[test]
    fn concurrent_inserts_are_lossless() {
        let f = Arc::new(BloomFilter::with_capacity(4000, 0.01));
        std::thread::scope(|s| {
            for t in 0..4 {
                let f = f.clone();
                s.spawn(move || {
                    for i in (t * 1000)..((t + 1) * 1000) {
                        f.insert(&HashKey::from_i64(i));
                    }
                });
            }
        });
        for i in 0..4000 {
            assert!(f.may_contain(&HashKey::from_i64(i)));
        }
    }
}
