//! The Unit of Transfer: the paper's central abstraction.

use std::fmt;

/// How many producer output blocks accumulate before they are transferred to
/// the consumer operator (Section III-B of the paper).
///
/// * `Blocks(1)` — transfer every block the moment it is full: the schedule
///   interleaves producer and consumer work orders, i.e. what the literature
///   loosely calls *pipelining*.
/// * `Blocks(n)` — transfer in groups of `n`: the middle of the spectrum.
/// * `Table` — hold everything until the producer finishes: the consumer only
///   starts afterwards, i.e. what the literature loosely calls *blocking* or
///   *full materialization*.
///
/// Partially accumulated groups are always flushed when the producer
/// finishes, matching the paper ("partially filled blocks are scheduled for
/// data transfer at the end of the operator's execution").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Uot {
    /// Transfer whenever `n` blocks have accumulated (`n >= 1`).
    Blocks(usize),
    /// Transfer only when the whole intermediate table has been produced.
    Table,
}

impl Uot {
    /// The low extreme of the spectrum: one block.
    pub const LOW: Uot = Uot::Blocks(1);
    /// The high extreme of the spectrum: the whole table.
    pub const HIGH: Uot = Uot::Table;

    /// Canonical form: `Blocks(0)` (a meaningless zero threshold) becomes
    /// `Blocks(1)`. Applied by the plan builder so the engine never sees a
    /// degenerate value.
    #[inline]
    pub fn normalized(self) -> Uot {
        match self {
            Uot::Blocks(n) => Uot::Blocks(n.max(1)),
            Uot::Table => Uot::Table,
        }
    }

    /// The accumulation threshold in blocks; `usize::MAX` for [`Uot::Table`].
    #[inline]
    pub fn threshold_blocks(self) -> usize {
        match self {
            Uot::Blocks(n) => n.max(1),
            Uot::Table => usize::MAX,
        }
    }

    /// One step down the UoT spectrum toward [`Uot::LOW`] — the memory
    /// footprint direction of the paper's Table II. `Table` drops to
    /// `Blocks(1)` (budget pressure means the materialized intermediate does
    /// not fit, so jump straight to the pipelining extreme); `Blocks(n)`
    /// halves; `Blocks(1)` has nowhere lower to go and returns `None`.
    #[inline]
    pub fn degrade(self) -> Option<Uot> {
        match self.normalized() {
            Uot::Table => Some(Uot::Blocks(1)),
            Uot::Blocks(n) if n > 1 => Some(Uot::Blocks(n / 2)),
            Uot::Blocks(_) => None,
        }
    }

    /// Short label used in experiment output ("uot=1", "uot=table").
    pub fn label(self) -> String {
        match self {
            Uot::Blocks(n) => format!("uot={}", n.max(1)),
            Uot::Table => "uot=table".to_string(),
        }
    }

    /// True if this is the pipelining extreme.
    pub fn is_low(self) -> bool {
        matches!(self, Uot::Blocks(n) if n <= 1)
    }

    /// True if this is the blocking extreme.
    pub fn is_high(self) -> bool {
        matches!(self, Uot::Table)
    }
}

impl fmt::Display for Uot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds() {
        assert_eq!(Uot::Blocks(1).threshold_blocks(), 1);
        assert_eq!(Uot::Blocks(4).threshold_blocks(), 4);
        // zero normalizes to one — a zero threshold is meaningless
        assert_eq!(Uot::Blocks(0).threshold_blocks(), 1);
        assert_eq!(Uot::Table.threshold_blocks(), usize::MAX);
    }

    #[test]
    fn normalization() {
        assert_eq!(Uot::Blocks(0).normalized(), Uot::Blocks(1));
        assert_eq!(Uot::Blocks(3).normalized(), Uot::Blocks(3));
        assert_eq!(Uot::Table.normalized(), Uot::Table);
    }

    #[test]
    fn extremes() {
        assert!(Uot::LOW.is_low());
        assert!(!Uot::LOW.is_high());
        assert!(Uot::HIGH.is_high());
        assert!(!Uot::Blocks(2).is_low());
    }

    #[test]
    fn degrade_walks_toward_low() {
        assert_eq!(Uot::Table.degrade(), Some(Uot::Blocks(1)));
        assert_eq!(Uot::Blocks(8).degrade(), Some(Uot::Blocks(4)));
        assert_eq!(Uot::Blocks(3).degrade(), Some(Uot::Blocks(1)));
        assert_eq!(Uot::Blocks(2).degrade(), Some(Uot::Blocks(1)));
        assert_eq!(Uot::Blocks(1).degrade(), None);
        assert_eq!(Uot::Blocks(0).degrade(), None); // degenerate = Blocks(1)
    }

    #[test]
    fn labels() {
        assert_eq!(Uot::Blocks(1).label(), "uot=1");
        assert_eq!(Uot::Blocks(0).label(), "uot=1");
        assert_eq!(Uot::Table.to_string(), "uot=table");
    }
}
