//! The build-hash operator: insert one block into the shared join hash table.

use crate::error::EngineError;
use crate::plan::OperatorKind;
use crate::state::ExecContext;
use crate::Result;
use std::sync::Arc;
use uot_storage::StorageBlock;

/// Run one build work order. Builds never emit blocks.
pub fn execute(
    ctx: &ExecContext,
    op: usize,
    block: &Arc<StorageBlock>,
) -> Result<Vec<StorageBlock>> {
    let payload_cols = match &ctx.plan.op(op).kind {
        OperatorKind::BuildHash { payload_cols, .. } => payload_cols,
        other => {
            return Err(EngineError::Internal(format!(
                "build work order on {}",
                other.kind_label()
            )))
        }
    };
    // Batched pipeline: extract + hash all keys once, insert shard-grouped,
    // and feed the Bloom filter from the same hash vector.
    let mut scratch = ctx.take_scratch();
    ctx.key_extractor(op)
        .extract_block(block, &mut scratch.keys);
    if let Some(bloom) = ctx.runtimes[op].bloom.as_ref() {
        bloom.insert_hashes(scratch.keys.hashes());
    }
    // Under a grace join the shared hash table stays empty: rows route into
    // hash partitions (spilling as they fill) and the per-partition tables
    // are built during finalize instead. The Bloom filter still sees every
    // key, so probe-side pre-filtering keeps working.
    if let Some(g) = ctx.grace.get(&op) {
        let schema = ctx.plan.input_schema(op);
        let res = crate::ops::grace::partition_stream(
            ctx,
            g,
            &g.build,
            block,
            scratch.keys.hashes(),
            op,
            &schema,
        );
        ctx.put_scratch(scratch);
        res?;
        return Ok(Vec::new());
    }
    ctx.hash_table(op)
        .insert_batch(block, &scratch.keys, payload_cols);
    ctx.put_scratch(scratch);
    Ok(Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{JoinType, PlanBuilder, Source};
    use uot_storage::{
        BlockFormat, BlockPool, DataType, HashKey, MemoryTracker, Schema, Table, TableBuilder,
        Value,
    };

    fn table() -> Arc<Table> {
        let s = Schema::from_pairs(&[("k", DataType::Int32), ("v", DataType::Float64)]);
        let mut tb = TableBuilder::new("dim", s, BlockFormat::Column, 1 << 10);
        for i in 0..50 {
            tb.append(&[Value::I32(i % 10), Value::F64(i as f64)])
                .unwrap();
        }
        Arc::new(tb.finish())
    }

    #[test]
    fn builds_table_from_blocks() {
        let t = table();
        let mut pb = PlanBuilder::new();
        let b = pb
            .build_hash(Source::Table(t.clone()), vec![0], vec![1])
            .unwrap();
        let p = pb
            .probe(
                Source::Table(t.clone()),
                b,
                vec![0],
                vec![0],
                vec![0],
                JoinType::Inner,
            )
            .unwrap();
        let plan = Arc::new(pb.build(p).unwrap());
        let pool = BlockPool::new(MemoryTracker::new());
        let ctx = ExecContext::new(plan, pool, BlockFormat::Row, 1 << 10, 4).unwrap();
        for blk in t.blocks() {
            let out = execute(&ctx, b, &blk.clone()).unwrap();
            assert!(out.is_empty());
        }
        let ht = ctx.hash_table(b);
        assert_eq!(ht.len(), 50);
        // key 3 appears 5 times (3, 13, 23, 33, 43)
        let mut vals = Vec::new();
        ht.probe_key(&HashKey::from_i32(3), |p| vals.push(p.f64_at(0)));
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(vals, vec![3.0, 13.0, 23.0, 33.0, 43.0]);
    }
}
