//! Typed per-column output assembly.
//!
//! Join operators combine fields from two sources (probe block + hash-table
//! payload), so they cannot use the block-to-block copy fast path directly.
//! Instead they push typed values into one [`ColBuilder`] per output column
//! and wrap the result as a virtual column block, which then flows through
//! the regular [`OutputBuffer::write_rows`](crate::output::OutputBuffer)
//! path. No `Value` boxing happens on this path.

use crate::hash_table::PayloadRef;
use crate::Result;
use std::sync::Arc;
use uot_storage::{ColumnBlock, ColumnData, DataType, Schema, StorageBlock};

/// An append-only typed column under construction.
#[derive(Debug)]
pub enum ColBuilder {
    /// `Int32` column.
    I32(Vec<i32>),
    /// `Int64` column.
    I64(Vec<i64>),
    /// `Float64` column.
    F64(Vec<f64>),
    /// `Date` column.
    Date(Vec<i32>),
    /// Fixed-width string column.
    Char {
        /// Value width in bytes.
        width: usize,
        /// Concatenated padded values.
        data: Vec<u8>,
    },
}

impl ColBuilder {
    /// Empty builder for a column of type `t`.
    pub fn for_type(t: DataType) -> Self {
        match t {
            DataType::Int32 => ColBuilder::I32(Vec::new()),
            DataType::Int64 => ColBuilder::I64(Vec::new()),
            DataType::Float64 => ColBuilder::F64(Vec::new()),
            DataType::Date => ColBuilder::Date(Vec::new()),
            DataType::Char(n) => ColBuilder::Char {
                width: n as usize,
                data: Vec::new(),
            },
        }
    }

    /// Number of values appended so far.
    pub fn len(&self) -> usize {
        match self {
            ColBuilder::I32(v) => v.len(),
            ColBuilder::I64(v) => v.len(),
            ColBuilder::F64(v) => v.len(),
            ColBuilder::Date(v) => v.len(),
            ColBuilder::Char { width, data } => {
                if *width == 0 {
                    0
                } else {
                    data.len() / width
                }
            }
        }
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append field `(row, col)` of `block`.
    #[inline]
    pub fn push_from_block(&mut self, block: &StorageBlock, row: usize, col: usize) {
        match self {
            ColBuilder::I32(v) => v.push(block.i32_at(row, col)),
            ColBuilder::I64(v) => v.push(block.i64_at(row, col)),
            ColBuilder::F64(v) => v.push(block.f64_at(row, col)),
            ColBuilder::Date(v) => v.push(block.date_at(row, col)),
            ColBuilder::Char { data, .. } => data.extend_from_slice(block.char_at(row, col)),
        }
    }

    /// Append payload field `col` of a hash-table match.
    #[inline]
    pub fn push_from_payload(&mut self, payload: PayloadRef<'_>, col: usize) {
        match self {
            ColBuilder::I32(v) => v.push(payload.i32_at(col)),
            ColBuilder::I64(v) => v.push(payload.i64_at(col)),
            ColBuilder::F64(v) => v.push(payload.f64_at(col)),
            ColBuilder::Date(v) => v.push(payload.date_at(col)),
            ColBuilder::Char { data, .. } => data.extend_from_slice(payload.char_at(col)),
        }
    }

    /// Finish into a [`ColumnData`].
    pub fn into_data(self) -> ColumnData {
        match self {
            ColBuilder::I32(v) => ColumnData::I32(v),
            ColBuilder::I64(v) => ColumnData::I64(v),
            ColBuilder::F64(v) => ColumnData::F64(v),
            ColBuilder::Date(v) => ColumnData::Date(v),
            ColBuilder::Char { width, data } => ColumnData::Char { width, data },
        }
    }
}

/// Gather one output column from `block` for the given row indices with a
/// single typed loop: the builder variant and (for column-store blocks) the
/// source slice are resolved once, not per row, unlike repeated
/// [`ColBuilder::push_from_block`] calls.
pub fn gather_block_column<I>(builder: &mut ColBuilder, block: &StorageBlock, col: usize, rows: I)
where
    I: Iterator<Item = usize>,
{
    match builder {
        ColBuilder::I32(v) => {
            if let Some(d) = block.column_data(col) {
                let s = d.as_i32();
                v.extend(rows.map(|r| s[r]));
            } else {
                v.extend(rows.map(|r| block.i32_at(r, col)));
            }
        }
        ColBuilder::I64(v) => {
            if let Some(d) = block.column_data(col) {
                let s = d.as_i64();
                v.extend(rows.map(|r| s[r]));
            } else {
                v.extend(rows.map(|r| block.i64_at(r, col)));
            }
        }
        ColBuilder::F64(v) => {
            if let Some(d) = block.column_data(col) {
                let s = d.as_f64();
                v.extend(rows.map(|r| s[r]));
            } else {
                v.extend(rows.map(|r| block.f64_at(r, col)));
            }
        }
        ColBuilder::Date(v) => {
            if let Some(d) = block.column_data(col) {
                let s = d.as_date();
                v.extend(rows.map(|r| s[r]));
            } else {
                v.extend(rows.map(|r| block.date_at(r, col)));
            }
        }
        ColBuilder::Char { data, .. } => {
            for r in rows {
                data.extend_from_slice(block.char_at(r, col));
            }
        }
    }
}

/// Gather one output column from hash-table payloads for a resolved match
/// vector, with the builder variant dispatched once per column.
pub fn gather_payload_column(
    builder: &mut ColBuilder,
    session: &crate::hash_table::ProbeSession<'_>,
    col: usize,
    matches: &[crate::hash_table::ProbeMatch],
) {
    match builder {
        ColBuilder::I32(v) => v.extend(matches.iter().map(|&m| session.payload(m).i32_at(col))),
        ColBuilder::I64(v) => v.extend(matches.iter().map(|&m| session.payload(m).i64_at(col))),
        ColBuilder::F64(v) => v.extend(matches.iter().map(|&m| session.payload(m).f64_at(col))),
        ColBuilder::Date(v) => v.extend(matches.iter().map(|&m| session.payload(m).date_at(col))),
        ColBuilder::Char { data, .. } => {
            for &m in matches {
                data.extend_from_slice(session.payload(m).char_at(col));
            }
        }
    }
}

/// One builder per column of `schema`.
pub fn make_builders(schema: &Schema) -> Vec<ColBuilder> {
    schema
        .columns()
        .iter()
        .map(|c| ColBuilder::for_type(c.dtype))
        .collect()
}

/// Wrap finished builders as a virtual column block of `schema`.
pub fn into_virtual_block(schema: Arc<Schema>, builders: Vec<ColBuilder>) -> Result<StorageBlock> {
    let rows = builders.first().map(|b| b.len()).unwrap_or(0);
    debug_assert!(builders.iter().all(|b| b.len() == rows));
    let cols: Vec<ColumnData> = builders.into_iter().map(ColBuilder::into_data).collect();
    Ok(StorageBlock::Column(ColumnBlock::from_columns(
        schema, cols, rows,
    )?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use uot_storage::{BlockFormat, Value};

    #[test]
    fn build_from_block_fields() {
        let s = Schema::from_pairs(&[
            ("k", DataType::Int32),
            ("tag", DataType::Char(3)),
            ("v", DataType::Float64),
        ]);
        let mut b = StorageBlock::new(s.clone(), BlockFormat::Row, 1024).unwrap();
        for i in 0..4 {
            b.append_row(&[
                Value::I32(i),
                Value::Str(format!("x{i}")),
                Value::F64(i as f64),
            ])
            .unwrap();
        }
        let mut builders = make_builders(&s);
        for row in [3usize, 1] {
            for (c, builder) in builders.iter_mut().enumerate() {
                builder.push_from_block(&b, row, c);
            }
        }
        assert_eq!(builders[0].len(), 2);
        assert!(!builders[0].is_empty());
        let virt = into_virtual_block(s, builders).unwrap();
        assert_eq!(virt.num_rows(), 2);
        assert_eq!(virt.i32_at(0, 0), 3);
        assert_eq!(virt.i32_at(1, 0), 1);
        assert_eq!(virt.char_at(0, 1), b"x3 ");
        assert_eq!(virt.f64_at(1, 2), 1.0);
    }

    #[test]
    fn empty_builders_make_empty_block() {
        let s = Schema::from_pairs(&[("k", DataType::Int64), ("d", DataType::Date)]);
        let builders = make_builders(&s);
        assert_eq!(builders.len(), 2);
        let virt = into_virtual_block(s, builders).unwrap();
        assert_eq!(virt.num_rows(), 0);
    }

    #[test]
    fn for_type_covers_all() {
        assert!(matches!(
            ColBuilder::for_type(DataType::Int64),
            ColBuilder::I64(_)
        ));
        assert!(matches!(
            ColBuilder::for_type(DataType::Date),
            ColBuilder::Date(_)
        ));
        match ColBuilder::for_type(DataType::Char(7)) {
            ColBuilder::Char { width, .. } => assert_eq!(width, 7),
            other => panic!("unexpected {other:?}"),
        }
    }
}
