//! Nested-loops join with a fully materialized inner side.
//!
//! The paper hypothesizes (Section V-B) that for nested loops the UoT mostly
//! affects how often the *outer* stream's sequential access is disrupted;
//! the inner side is scanned sequentially per outer block. We reproduce that
//! shape: outer blocks stream (UoT-gated), the inner relation is the
//! materialized output of an upstream operator.

use crate::error::EngineError;
use crate::ops::builders::{into_virtual_block, make_builders};
use crate::plan::OperatorKind;
use crate::state::ExecContext;
use crate::Result;
use std::sync::Arc;
use uot_expr::CmpOp;
use uot_storage::{DataType, StorageBlock};

/// Run one nested-loops work order over an outer block.
pub fn execute(
    ctx: &ExecContext,
    op: usize,
    block: &Arc<StorageBlock>,
) -> Result<Vec<StorageBlock>> {
    let (right, conds, left_out, right_out) = match &ctx.plan.op(op).kind {
        OperatorKind::NestedLoops {
            right,
            conds,
            left_out,
            right_out,
            ..
        } => (*right, conds, left_out, right_out),
        other => {
            return Err(EngineError::Internal(format!(
                "nested-loops work order on {}",
                other.kind_label()
            )))
        }
    };
    let inner_blocks = ctx.runtimes[right].collected.lock().clone();
    let out_schema = ctx.plan.op(op).out_schema.clone();
    let mut builders = make_builders(&out_schema);
    let n_left = left_out.len();

    for lrow in 0..block.num_rows() {
        // O(|outer| x |inner|) per work order: honor cancellation between
        // outer rows, not just between work orders.
        ctx.check_cancelled()?;
        for rb in &inner_blocks {
            for rrow in 0..rb.num_rows() {
                if conds
                    .iter()
                    .all(|&(lc, op_, rc)| field_cmp(block, lrow, lc, rb, rrow, rc, op_))
                {
                    for (j, &c) in left_out.iter().enumerate() {
                        builders[j].push_from_block(block, lrow, c);
                    }
                    for (j, &c) in right_out.iter().enumerate() {
                        builders[n_left + j].push_from_block(rb, rrow, c);
                    }
                }
            }
        }
    }
    if builders.first().map(|b| b.is_empty()).unwrap_or(true) {
        return Ok(Vec::new());
    }
    let virt = into_virtual_block(out_schema, builders)?;
    crate::ops::write_output(ctx, op, &virt)
}

/// Typed comparison of `left[lrow][lc] op right[rrow][rc]`.
fn field_cmp(
    left: &StorageBlock,
    lrow: usize,
    lc: usize,
    right: &StorageBlock,
    rrow: usize,
    rc: usize,
    op: CmpOp,
) -> bool {
    use std::cmp::Ordering;
    let ord = match (left.schema().dtype(lc), right.schema().dtype(rc)) {
        (DataType::Int32, DataType::Int32) => left.i32_at(lrow, lc).cmp(&right.i32_at(rrow, rc)),
        (DataType::Int64, DataType::Int64) => left.i64_at(lrow, lc).cmp(&right.i64_at(rrow, rc)),
        (DataType::Int32, DataType::Int64) => {
            (left.i32_at(lrow, lc) as i64).cmp(&right.i64_at(rrow, rc))
        }
        (DataType::Int64, DataType::Int32) => {
            left.i64_at(lrow, lc).cmp(&(right.i32_at(rrow, rc) as i64))
        }
        (DataType::Date, DataType::Date) => left.date_at(lrow, lc).cmp(&right.date_at(rrow, rc)),
        (DataType::Float64, DataType::Float64) => left
            .f64_at(lrow, lc)
            .partial_cmp(&right.f64_at(rrow, rc))
            .unwrap_or(Ordering::Equal),
        (DataType::Char(_), DataType::Char(_)) => {
            left.char_at(lrow, lc).cmp(right.char_at(rrow, rc))
        }
        // mixed/unsupported combinations never match; plan validation keeps
        // these out of real plans
        _ => return false,
    };
    match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PlanBuilder, Source};
    use uot_expr::Predicate;
    use uot_storage::{
        BlockFormat, BlockPool, DataType, MemoryTracker, Schema, Table, TableBuilder, Value,
    };

    fn table(name: &str, n: i32) -> Arc<Table> {
        let s = Schema::from_pairs(&[("k", DataType::Int32)]);
        let mut tb = TableBuilder::new(name, s, BlockFormat::Column, 64);
        for i in 0..n {
            tb.append(&[Value::I32(i)]).unwrap();
        }
        Arc::new(tb.finish())
    }

    fn run_nlj(conds: Vec<(usize, CmpOp, usize)>) -> Vec<(i32, i32)> {
        let lt = table("left1", 4);
        let rt = table("right1", 3);
        let mut pb = PlanBuilder::new();
        let r = pb
            .filter(Source::Table(rt.clone()), Predicate::True)
            .unwrap();
        let j = pb
            .nested_loops(Source::Table(lt.clone()), r, conds, vec![0], vec![0])
            .unwrap();
        let plan = Arc::new(pb.build(j).unwrap());
        let pool = BlockPool::new(MemoryTracker::new());
        let ctx = ExecContext::new(plan, pool, BlockFormat::Row, 1 << 12, 4).unwrap();
        // scheduler would materialize the inner side:
        ctx.runtimes[r]
            .collected
            .lock()
            .extend(rt.blocks().iter().cloned());
        let mut rows = Vec::new();
        for lb in lt.blocks() {
            for b in execute(&ctx, j, &lb.clone()).unwrap() {
                rows.extend(b.all_rows());
            }
        }
        for b in ctx.output(j).flush() {
            rows.extend(b.all_rows());
        }
        let mut pairs: Vec<(i32, i32)> = rows
            .iter()
            .map(|r| (r[0].as_i32(), r[1].as_i32()))
            .collect();
        pairs.sort_unstable();
        pairs
    }

    #[test]
    fn equi_condition() {
        assert_eq!(
            run_nlj(vec![(0, CmpOp::Eq, 0)]),
            vec![(0, 0), (1, 1), (2, 2)]
        );
    }

    #[test]
    fn inequality_condition() {
        // left.k > right.k
        assert_eq!(
            run_nlj(vec![(0, CmpOp::Gt, 0)]),
            vec![(1, 0), (2, 0), (2, 1), (3, 0), (3, 1), (3, 2)]
        );
    }

    #[test]
    fn cross_product_with_no_conditions() {
        assert_eq!(run_nlj(vec![]).len(), 12);
    }

    #[test]
    fn conjunctive_conditions() {
        // k >= k AND k <= k  <=> equality
        assert_eq!(
            run_nlj(vec![(0, CmpOp::Ge, 0), (0, CmpOp::Le, 0)]),
            vec![(0, 0), (1, 1), (2, 2)]
        );
        // Ne condition
        let ne = run_nlj(vec![(0, CmpOp::Ne, 0)]);
        assert_eq!(ne.len(), 9);
    }
}
