//! Work-order execution: one module per physical operator.
//!
//! [`execute_work_order`] is the single entry point workers call; it
//! dispatches on the operator kind and the work kind and returns the
//! **completed** output blocks the work order produced (partially filled
//! blocks stay in the operator's [`OutputBuffer`](crate::output::OutputBuffer)
//! for the next work order, per the paper's block-pool discipline).

pub mod aggregate;
pub mod build;
pub mod builders;
pub mod limit;
pub mod nlj;
pub mod probe;
pub mod select;
pub mod sort;

use crate::error::EngineError;
use crate::plan::OperatorKind;
use crate::state::ExecContext;
use crate::work_order::{WorkKind, WorkOrder};
use crate::Result;
use std::sync::Arc;
use uot_storage::{StorageBlock, Value};

/// Execute one work order, returning the completed blocks it emitted.
pub fn execute_work_order(ctx: &ExecContext, wo: &WorkOrder) -> Result<Vec<StorageBlock>> {
    let op = ctx.plan.op(wo.op);
    match (&op.kind, &wo.kind) {
        (OperatorKind::Select { .. }, WorkKind::Stream { block }) => {
            select::execute(ctx, wo.op, block)
        }
        (OperatorKind::BuildHash { .. }, WorkKind::Stream { block }) => {
            build::execute(ctx, wo.op, block)
        }
        (OperatorKind::Probe { .. }, WorkKind::Stream { block }) => {
            probe::execute(ctx, wo.op, block)
        }
        (OperatorKind::Aggregate { .. }, WorkKind::Stream { block }) => {
            aggregate::execute_block(ctx, wo.op, block)
        }
        (OperatorKind::Aggregate { .. }, WorkKind::FinalizeAggregate) => {
            aggregate::execute_finalize(ctx, wo.op)
        }
        (OperatorKind::Sort { .. }, WorkKind::FinalizeSort) => sort::execute(ctx, wo.op),
        (OperatorKind::NestedLoops { .. }, WorkKind::Stream { block }) => {
            nlj::execute(ctx, wo.op, block)
        }
        (OperatorKind::Limit { .. }, WorkKind::Stream { block }) => {
            limit::execute(ctx, wo.op, block)
        }
        (kind, work) => Err(EngineError::Internal(format!(
            "work order {work:?} does not match operator kind {}",
            kind.kind_label()
        ))),
    }
}

/// Append value rows (slow path: aggregate/sort results) to the operator's
/// output buffer, returning completed blocks.
pub(crate) fn emit_value_rows(
    ctx: &ExecContext,
    op: usize,
    rows: impl Iterator<Item = Vec<Value>>,
) -> Result<Vec<StorageBlock>> {
    let out = ctx.output(op);
    let mut completed = Vec::new();
    let mut cur: Option<StorageBlock> = None;
    for row in rows {
        loop {
            let block = match &mut cur {
                Some(b) => b,
                None => {
                    cur = Some(out.checkout(&ctx.pool)?);
                    cur.as_mut().expect("just set")
                }
            };
            if block.append_row(&row)? {
                if block.is_full() {
                    completed.push(cur.take().expect("present"));
                }
                break;
            }
            // Block was full before the append: rotate it out.
            completed.push(cur.take().expect("present"));
        }
    }
    if let Some(b) = cur {
        out.put_back(b, &ctx.pool);
    }
    Ok(completed)
}

/// Decode `block` rows `rows` fully into values (sort/test helper).
pub(crate) fn rows_to_values(block: &Arc<StorageBlock>) -> Vec<Vec<Value>> {
    block.all_rows()
}
