//! Work-order execution: one module per physical operator.
//!
//! [`execute_work_order`] is the single entry point workers call; it
//! dispatches on the operator kind and the work kind and returns the
//! **completed** output blocks the work order produced (partially filled
//! blocks stay in the operator's [`OutputBuffer`](crate::output::OutputBuffer)
//! for the next work order, per the paper's block-pool discipline).

pub mod aggregate;
pub mod build;
pub mod builders;
pub mod grace;
pub mod limit;
pub mod nlj;
pub mod probe;
pub mod select;
pub mod sort;

use crate::error::EngineError;
use crate::fault::{FaultKind, FaultSite};
use crate::plan::OperatorKind;
use crate::state::ExecContext;
use crate::work_order::{WorkKind, WorkOrder};
use crate::Result;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use uot_storage::{StorageBlock, StorageError, Value};

/// Consult the context's [`FaultPlan`](crate::fault::FaultPlan) at `site`:
/// no-op for the (default) empty plan; otherwise panic, fail, or stall as
/// scheduled. Injected panics carry an "injected" marker in their payload so
/// chaos tests can tell them from genuine bugs.
pub(crate) fn apply_fault(ctx: &ExecContext, site: FaultSite, op: usize) -> Result<()> {
    match ctx.faults.check(site) {
        None => Ok(()),
        Some(kind @ FaultKind::Panic) => {
            ctx.trace_event(|| crate::trace::TraceEventKind::FaultInjected { site, kind, op });
            panic!("injected fault at {site:?}")
        }
        // An injected error models an allocation failure; zeroed fields mark
        // it as synthetic.
        Some(kind @ FaultKind::Error) => {
            ctx.trace_event(|| crate::trace::TraceEventKind::FaultInjected { site, kind, op });
            Err(EngineError::Storage(StorageError::BudgetExceeded {
                requested: 0,
                in_use: 0,
                budget: 0,
                global_in_use: 0,
                global_budget: 0,
            }))
        }
        Some(kind @ FaultKind::Delay(d)) => {
            ctx.trace_event(|| crate::trace::TraceEventKind::FaultInjected { site, kind, op });
            std::thread::sleep(d);
            Ok(())
        }
    }
}

/// Execute one work order with panic containment: a panicking operator
/// becomes [`EngineError::WorkOrderPanic`] naming the operator, and a
/// [`StorageError::BudgetExceeded`] bubbling out of the operator is wrapped
/// into [`EngineError::BudgetExceeded`] naming the operator that hit the
/// wall. Both drivers call this, so worker threads and the process always
/// survive a failing work order.
pub fn execute_work_order_contained(
    ctx: &ExecContext,
    wo: &WorkOrder,
) -> Result<Vec<StorageBlock>> {
    // `ExecContext` is shared behind `Arc` and every interior-mutable piece
    // of it is lock- or atomic-guarded (parking_lot locks do not poison), so
    // observing state after a contained panic is safe: at worst a partial's
    // rows are lost, and teardown releases its memory either way.
    let result = match std::panic::catch_unwind(AssertUnwindSafe(|| execute_work_order(ctx, wo))) {
        Ok(result) => attach_op_context(ctx, wo.op, result),
        Err(payload) => {
            // A panic inside a fused loop is attributed to the whole
            // pipeline: the chain label names every member, since the
            // faulting operator could be any of them.
            let fused = matches!(wo.kind, WorkKind::Stream { .. })
                .then(|| ctx.fusion.chain_for_head(wo.op))
                .flatten();
            let (op_name, kind) = match fused {
                Some(chain) => (chain.label.clone(), "fused-pipeline".to_string()),
                None => {
                    let op = ctx.plan.op(wo.op);
                    (op.name.clone(), op.kind.kind_label().to_string())
                }
            };
            Err(EngineError::WorkOrderPanic {
                op: op_name,
                kind,
                payload: panic_payload_message(payload.as_ref()),
            })
        }
    };
    match &result {
        Err(EngineError::WorkOrderPanic { .. }) => {
            ctx.trace_event(|| crate::trace::TraceEventKind::WorkOrderPanicked {
                seq: wo.seq,
                op: wo.op,
            });
        }
        Err(EngineError::Cancelled { .. }) => {
            ctx.trace_event(|| crate::trace::TraceEventKind::WorkOrderCancelled {
                seq: wo.seq,
                op: wo.op,
            });
        }
        Err(_) => {
            ctx.trace_event(|| crate::trace::TraceEventKind::WorkOrderFailed {
                seq: wo.seq,
                op: wo.op,
            });
        }
        Ok(_) => {}
    }
    result
}

/// Downcast a panic payload to a human-readable message.
fn panic_payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Name the responsible operator on errors that need it (budget failures).
fn attach_op_context(
    ctx: &ExecContext,
    op: usize,
    result: Result<Vec<StorageBlock>>,
) -> Result<Vec<StorageBlock>> {
    match result {
        Err(EngineError::Storage(StorageError::BudgetExceeded {
            requested,
            in_use,
            budget,
            global_in_use,
            global_budget,
        })) => Err(EngineError::BudgetExceeded {
            op: ctx.plan.op(op).name.clone(),
            query: ctx.query,
            requested,
            in_use,
            budget,
            global_in_use,
            global_budget,
        }),
        other => other,
    }
}

/// Execute one work order, returning the completed blocks it emitted.
pub fn execute_work_order(ctx: &ExecContext, wo: &WorkOrder) -> Result<Vec<StorageBlock>> {
    ctx.check_cancelled()?;
    apply_fault(ctx, FaultSite::WorkOrderExec, wo.op)?;
    // A stream work order on a fused-chain head pushes its block through the
    // whole chain in one loop; the staged per-operator path is bypassed.
    if let WorkKind::Stream { block } = &wo.kind {
        if let Some(chain) = ctx.fusion.chain_for_head(wo.op) {
            return crate::fusion::execute_fused(ctx, chain, block);
        }
    }
    let op = ctx.plan.op(wo.op);
    match (&op.kind, &wo.kind) {
        (OperatorKind::Select { .. }, WorkKind::Stream { block }) => {
            select::execute(ctx, wo.op, block)
        }
        (OperatorKind::BuildHash { .. }, WorkKind::Stream { block }) => {
            build::execute(ctx, wo.op, block)
        }
        (OperatorKind::Probe { .. }, WorkKind::Stream { block }) => {
            probe::execute(ctx, wo.op, block)
        }
        (OperatorKind::Probe { .. }, WorkKind::FinalizeJoin) => grace::finalize(ctx, wo.op),
        (OperatorKind::Aggregate { .. }, WorkKind::Stream { block }) => {
            aggregate::execute_block(ctx, wo.op, block)
        }
        (OperatorKind::Aggregate { .. }, WorkKind::FinalizeAggregate) => {
            aggregate::execute_finalize(ctx, wo.op)
        }
        (OperatorKind::Sort { .. }, WorkKind::FinalizeSort) => sort::execute(ctx, wo.op),
        (OperatorKind::NestedLoops { .. }, WorkKind::Stream { block }) => {
            nlj::execute(ctx, wo.op, block)
        }
        (OperatorKind::Limit { .. }, WorkKind::Stream { block }) => {
            limit::execute(ctx, wo.op, block)
        }
        (kind, work) => Err(EngineError::Internal(format!(
            "work order {work:?} does not match operator kind {}",
            kind.kind_label()
        ))),
    }
}

/// Route an operator's materialized output through its
/// [`OutputBuffer`](crate::output::OutputBuffer) — the single choke point
/// for fresh output allocations, where `pool_alloc` faults inject.
pub(crate) fn write_output(
    ctx: &ExecContext,
    op: usize,
    virt: &StorageBlock,
) -> Result<Vec<StorageBlock>> {
    apply_fault(ctx, FaultSite::PoolAlloc, op)?;
    let before = traced_in_use(ctx);
    let out = ctx.output(op).write_rows(virt, &ctx.pool)?;
    trace_alloc(ctx, op, before);
    Ok(out)
}

/// Tracker bytes in use right now — read only when a trace sink is installed
/// (the untraced fast path must not touch the shared atomic).
fn traced_in_use(ctx: &ExecContext) -> Option<usize> {
    ctx.trace
        .is_some()
        .then(|| ctx.pool.tracker().current_bytes())
}

/// Record a [`PoolAlloc`](crate::trace::TraceEventKind::PoolAlloc) event for
/// any net growth of tracked bytes since `before` (a `traced_in_use` probe).
fn trace_alloc(ctx: &ExecContext, op: usize, before: Option<usize>) {
    let Some(before) = before else { return };
    let in_use = ctx.pool.tracker().current_bytes();
    if in_use > before {
        ctx.trace_event(|| crate::trace::TraceEventKind::PoolAlloc {
            op,
            bytes: in_use - before,
            in_use,
            budget: ctx.pool.budget().unwrap_or(usize::MAX),
        });
    }
}

/// Append value rows (slow path: aggregate/sort results) to the operator's
/// output buffer, returning completed blocks. On a failed checkout or
/// append, every block this call holds is discarded so the tracker does not
/// leak bytes on error paths.
pub(crate) fn emit_value_rows(
    ctx: &ExecContext,
    op: usize,
    rows: impl Iterator<Item = Vec<Value>>,
) -> Result<Vec<StorageBlock>> {
    apply_fault(ctx, FaultSite::PoolAlloc, op)?;
    let before = traced_in_use(ctx);
    let out = ctx.output(op);
    let mut completed = Vec::new();
    let mut cur: Option<StorageBlock> = None;
    let result = (|| -> Result<()> {
        for row in rows {
            loop {
                let block = match &mut cur {
                    Some(b) => b,
                    None => {
                        cur = Some(out.checkout(&ctx.pool)?);
                        cur.as_mut().expect("just set")
                    }
                };
                if block.append_row(&row)? {
                    if block.is_full() {
                        completed.push(cur.take().expect("present"));
                    }
                    break;
                }
                // Block was full before the append: rotate it out.
                completed.push(cur.take().expect("present"));
            }
        }
        Ok(())
    })();
    match result {
        Ok(()) => {
            if let Some(b) = cur {
                out.put_back(b, &ctx.pool);
            }
            trace_alloc(ctx, op, before);
            Ok(completed)
        }
        Err(e) => {
            for b in completed {
                ctx.pool.discard(b);
            }
            if let Some(b) = cur {
                ctx.pool.discard(b);
            }
            Err(e)
        }
    }
}

/// Decode `block` rows `rows` fully into values (sort/test helper).
pub(crate) fn rows_to_values(block: &Arc<StorageBlock>) -> Vec<Vec<Value>> {
    block.all_rows()
}
