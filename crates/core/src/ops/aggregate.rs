//! Hash aggregation: streamed partials plus a finalize merge.
//!
//! Each stream work order aggregates its block into a private partial (one
//! hash map of group → accumulators) — no synchronization on the hot path —
//! then appends the partial to the operator's list. The single finalize work
//! order merges all partials and emits result blocks. This is the standard
//! parallel-aggregation shape of block-based engines like Quickstep.

use crate::error::EngineError;
use crate::plan::OperatorKind;
use crate::state::{AggPartial, ExecContext, GroupEntry};
use crate::Result;
use std::collections::HashMap;
use std::sync::Arc;
use uot_expr::{gather_from, AggFunc, AggSpec};
use uot_storage::{hash_key::FxBuildHasher, HashKey, StorageBlock, Value};

/// Aggregate one input block into a new partial.
pub fn execute_block(
    ctx: &ExecContext,
    op: usize,
    block: &Arc<StorageBlock>,
) -> Result<Vec<StorageBlock>> {
    let (group_by, aggs) = match &ctx.plan.op(op).kind {
        OperatorKind::Aggregate { group_by, aggs, .. } => (group_by, aggs),
        other => {
            return Err(EngineError::Internal(format!(
                "aggregate work order on {}",
                other.kind_label()
            )))
        }
    };
    let n = block.num_rows();
    if n == 0 {
        return Ok(Vec::new());
    }
    let in_schema = block.schema().clone();

    // Evaluate every aggregate argument once over the whole block.
    let arg_cols: Vec<Option<uot_storage::ColumnData>> = aggs
        .iter()
        .map(|a| {
            a.arg
                .as_ref()
                .map(|e| e.eval_all(block))
                .transpose()
                .map_err(EngineError::from)
        })
        .collect::<Result<_>>()?;

    let mut partial = AggPartial::default();

    if group_by.is_empty() {
        // Scalar aggregation: a single implicit group.
        let entry = partial
            .groups
            .entry(HashKey::from_i64(0))
            .or_insert_with(|| GroupEntry {
                group_vals: Vec::new(),
                states: aggs
                    .iter()
                    .map(|a| a.init_state(&in_schema).expect("validated by planner"))
                    .collect(),
            });
        update_entry(entry, aggs, &arg_cols, None, n)?;
    } else {
        // Bucket rows by group key, extracting all keys for the block in one
        // batched pass (the map stays keyed by `HashKey` — equality, not just
        // hash equality, defines a group).
        let mut scratch = ctx.take_scratch();
        ctx.key_extractor(op)
            .extract_block(block, &mut scratch.keys);
        let mut rows_by_group: HashMap<HashKey, Vec<usize>, FxBuildHasher> = HashMap::default();
        for row in 0..n {
            rows_by_group
                .entry(scratch.keys.key_at(row))
                .or_default()
                .push(row);
        }
        ctx.put_scratch(scratch);
        for (key, rows) in rows_by_group {
            let entry = partial.groups.entry(key).or_insert_with(|| GroupEntry {
                group_vals: group_by
                    .iter()
                    .map(|&g| block.value_at(rows[0], g).expect("in bounds"))
                    .collect(),
                states: aggs
                    .iter()
                    .map(|a| a.init_state(&in_schema).expect("validated by planner"))
                    .collect(),
            });
            update_entry(entry, aggs, &arg_cols, Some(&rows), rows.len())?;
        }
    }

    ctx.runtimes[op].agg_partials.lock().push(partial);
    Ok(Vec::new())
}

fn update_entry(
    entry: &mut GroupEntry,
    aggs: &[AggSpec],
    arg_cols: &[Option<uot_storage::ColumnData>],
    rows: Option<&[usize]>,
    row_count: usize,
) -> Result<()> {
    for ((state, spec), arg) in entry.states.iter_mut().zip(aggs).zip(arg_cols) {
        match (spec.func, arg) {
            (AggFunc::CountStar, _) => state.update_count(row_count),
            (_, Some(col)) => {
                match rows {
                    Some(rows) => state
                        .update_column(&gather_from(col, rows))
                        .map_err(EngineError::from)?,
                    None => state.update_column(col).map_err(EngineError::from)?,
                };
            }
            (_, None) => {
                return Err(EngineError::Internal(
                    "non-COUNT(*) aggregate without argument".into(),
                ))
            }
        }
    }
    Ok(())
}

/// Merge all partials and emit the result blocks.
pub fn execute_finalize(ctx: &ExecContext, op: usize) -> Result<Vec<StorageBlock>> {
    let (group_by, aggs) = match &ctx.plan.op(op).kind {
        OperatorKind::Aggregate { group_by, aggs, .. } => (group_by, aggs),
        other => {
            return Err(EngineError::Internal(format!(
                "aggregate finalize on {}",
                other.kind_label()
            )))
        }
    };
    let partials: Vec<AggPartial> = std::mem::take(&mut *ctx.runtimes[op].agg_partials.lock());
    let mut merged: HashMap<HashKey, GroupEntry, FxBuildHasher> = HashMap::default();
    for partial in partials {
        // The single finalize merges every partial: honor cancellation
        // between partials.
        ctx.check_cancelled()?;
        for (key, entry) in partial.groups {
            match merged.entry(key) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(entry);
                }
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    let target = o.get_mut();
                    for (a, b) in target.states.iter_mut().zip(&entry.states) {
                        a.merge(b);
                    }
                }
            }
        }
    }

    // SQL semantics: a scalar aggregate over zero rows still yields one row.
    if merged.is_empty() && group_by.is_empty() {
        // We need the input schema to init default states; use the stream
        // source schema recorded in the plan via any agg's requirements. The
        // simplest correct source: re-init from the operator's own input.
        let in_schema = ctx.plan.input_schema(op);
        merged.insert(
            HashKey::from_i64(0),
            GroupEntry {
                group_vals: Vec::new(),
                states: aggs
                    .iter()
                    .map(|a| a.init_state(&in_schema).expect("validated by planner"))
                    .collect(),
            },
        );
    }

    // Deterministic output order: sort groups by their value tuple.
    let mut entries: Vec<GroupEntry> = merged.into_values().collect();
    entries.sort_by(|a, b| cmp_value_rows(&a.group_vals, &b.group_vals));

    let rows = entries.into_iter().map(|e| {
        let mut row = e.group_vals;
        row.extend(e.states.iter().map(|s| s.finalize()));
        row
    });
    crate::ops::emit_value_rows(ctx, op, rows)
}

/// Total order over value rows (used for deterministic group output).
pub(crate) fn cmp_value_rows(a: &[Value], b: &[Value]) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b) {
        let ord = x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal);
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PlanBuilder, Source};
    use uot_expr::{col, AggSpec};
    use uot_storage::{
        BlockFormat, BlockPool, DataType, MemoryTracker, Schema, Table, TableBuilder,
    };

    fn table(rows: i32) -> Arc<Table> {
        let s = Schema::from_pairs(&[
            ("g", DataType::Int32),
            ("v", DataType::Float64),
            ("flag", DataType::Char(1)),
        ]);
        let mut tb = TableBuilder::new("t", s, BlockFormat::Column, 256);
        for i in 0..rows {
            tb.append(&[
                Value::I32(i % 3),
                Value::F64(i as f64),
                Value::Str(if i % 2 == 0 { "A" } else { "B" }.into()),
            ])
            .unwrap();
        }
        Arc::new(tb.finish())
    }

    fn run_agg(
        t: &Arc<Table>,
        group_by: Vec<usize>,
        aggs: Vec<AggSpec>,
        names: &[&str],
    ) -> Vec<Vec<Value>> {
        let mut pb = PlanBuilder::new();
        let a = pb
            .aggregate(Source::Table(t.clone()), group_by, aggs, names)
            .unwrap();
        let plan = Arc::new(pb.build(a).unwrap());
        let pool = BlockPool::new(MemoryTracker::new());
        let ctx = ExecContext::new(plan, pool, BlockFormat::Row, 1 << 12, 4).unwrap();
        for blk in t.blocks() {
            execute_block(&ctx, a, &blk.clone()).unwrap();
        }
        let mut rows = Vec::new();
        for b in execute_finalize(&ctx, a).unwrap() {
            rows.extend(b.all_rows());
        }
        for b in ctx.output(a).flush() {
            rows.extend(b.all_rows());
        }
        rows
    }

    #[test]
    fn grouped_sum_count_across_blocks() {
        let t = table(30); // multiple blocks of ~21 rows each (256B/12B)
        assert!(t.num_blocks() > 1, "need multi-block input for this test");
        let rows = run_agg(
            &t,
            vec![0],
            vec![AggSpec::sum(col(1)), AggSpec::count_star()],
            &["s", "n"],
        );
        assert_eq!(rows.len(), 3);
        // group g: values g, g+3, ..., g+27 -> 10 values, sum = 10g + 3*45
        for (g, row) in rows.iter().enumerate() {
            assert_eq!(row[0], Value::I32(g as i32));
            assert_eq!(row[2], Value::I64(10));
            let expect = 10.0 * g as f64 + 3.0 * 45.0;
            assert!((row[1].as_f64() - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn string_group_keys() {
        let t = table(10);
        let rows = run_agg(&t, vec![2], vec![AggSpec::count_star()], &["n"]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], Value::Str("A".into()));
        assert_eq!(rows[0][1], Value::I64(5));
        assert_eq!(rows[1][0], Value::Str("B".into()));
        assert_eq!(rows[1][1], Value::I64(5));
    }

    #[test]
    fn scalar_aggregate() {
        let t = table(10);
        let rows = run_agg(
            &t,
            vec![],
            vec![
                AggSpec::min(col(1)),
                AggSpec::max(col(1)),
                AggSpec::avg(col(1)),
            ],
            &["mn", "mx", "av"],
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::F64(0.0));
        assert_eq!(rows[0][1], Value::F64(9.0));
        assert_eq!(rows[0][2], Value::F64(4.5));
    }

    #[test]
    fn scalar_aggregate_on_empty_input_yields_one_row() {
        let t = table(0);
        let rows = run_agg(&t, vec![], vec![AggSpec::count_star()], &["n"]);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::I64(0));
    }

    #[test]
    fn grouped_aggregate_on_empty_input_yields_no_rows() {
        let t = table(0);
        let rows = run_agg(&t, vec![0], vec![AggSpec::count_star()], &["n"]);
        assert!(rows.is_empty());
    }

    #[test]
    fn output_is_sorted_by_group() {
        let t = table(30);
        let rows = run_agg(&t, vec![0], vec![AggSpec::count_star()], &["n"]);
        let keys: Vec<i32> = rows.iter().map(|r| r[0].as_i32()).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn multi_column_group() {
        let t = table(12);
        let rows = run_agg(&t, vec![0, 2], vec![AggSpec::count_star()], &["n"]);
        // groups: (g, flag) — g in 0..3, flag alternates with parity of i;
        // g and parity are correlated mod 6: 6 distinct groups.
        assert_eq!(rows.len(), 6);
        let total: i64 = rows.iter().map(|r| r[2].as_i64()).sum();
        assert_eq!(total, 12);
    }
}
