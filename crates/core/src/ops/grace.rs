//! Grace (partitioned, out-of-core) hash join.
//!
//! When [`ExecContext::plan_grace`](crate::state::ExecContext::plan_grace)
//! decides a join's build side will not fit the memory budget, the build and
//! probe operators stop building/probing a monolithic hash table. Instead
//! their stream work orders call [`partition_stream`]: rows are hashed and
//! routed into per-partition buffers, with full buffers spilled to the disk
//! tier immediately, so each side's resident footprint is bounded by
//! `nparts × block_bytes`. Once both inputs are fully partitioned the
//! scheduler dispatches one `FinalizeJoin` work order, handled by
//! [`finalize`]: partitions are joined one at a time — restore the build
//! partition, build a small hash table, stream the probe partition through
//! it — and a partition whose build side still exceeds the budget is split
//! again on deeper hash bits (bounded recursion; past the bound it is built
//! anyway, trading a bounded overshoot for completion).
//!
//! Hash-partitioning is total: every row's key lands in exactly one
//! partition, so inner, semi and anti joins all stay correct per-partition.

use crate::error::EngineError;
use crate::hash_table::JoinHashTable;
use crate::plan::OperatorKind;
use crate::state::{ExecContext, GraceJoinState, GraceSide};
use crate::Result;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;
use uot_storage::{Schema, SpillStore, SpilledHandle, StorageBlock, StorageError};

/// Recursion bound for re-partitioning a partition that still does not fit.
/// Past this depth the partition is built anyway: with the level-0 fan-out
/// already sized to the budget, two extra halvings make a residual overshoot
/// small and bounded, which beats failing the query.
const MAX_RESPILL_DEPTH: usize = 2;

/// First hash bit used for re-partitioning (level-0 partition bits start at
/// 32; respill level `d` splits on bit `40 + 8·d`).
const RESPILL_SHIFT_BASE: usize = 40;

/// One block of a partition: resident in memory (tracker-charged) or spilled
/// to the disk tier (a temp file).
enum PartBlock {
    Mem(StorageBlock),
    Disk(SpilledHandle),
}

impl PartBlock {
    /// Bring the block into memory (restoring from disk charges the
    /// tracker).
    fn into_mem(self, store: &SpillStore) -> Result<StorageBlock> {
        match self {
            PartBlock::Mem(b) => Ok(b),
            PartBlock::Disk(h) => store.restore(h).map_err(EngineError::from),
        }
    }

    /// Release the block without using it: pool-discard resident blocks,
    /// delete spilled files.
    fn discard(self, ctx: &ExecContext, store: &SpillStore) {
        match self {
            PartBlock::Mem(b) => ctx.pool.discard(b),
            PartBlock::Disk(h) => store.discard(h),
        }
    }
}

/// Route one input block's rows into a grace side's partitions. Called from
/// build and probe *stream* work orders (under grace, neither touches the
/// shared hash table). `hashes` are the block's key hashes, already computed
/// by the caller (which also feeds the Bloom filter from them); `tag` is the
/// partitioning operator, for spill-event attribution.
pub(crate) fn partition_stream(
    ctx: &ExecContext,
    g: &GraceJoinState,
    side: &Mutex<GraceSide>,
    block: &Arc<StorageBlock>,
    hashes: &[u64],
    tag: usize,
    schema: &Arc<Schema>,
) -> Result<()> {
    let store = ctx
        .pool
        .spill_store()
        .ok_or_else(|| EngineError::Internal("grace join without a spill store".into()))?;
    // The other side of the join, for checkout pressure relief: its open
    // buffers are cold once this side is streaming (build and probe phases
    // are serialized by the scheduler) and can be spilled to make room.
    let other = if std::ptr::eq(side, &g.build) {
        &g.probe
    } else {
        &g.build
    };
    let rows = block.all_rows();
    let mut side = side.lock();
    for (row, hash) in rows.iter().zip(hashes) {
        let p = g.partition_of(*hash);
        append_row(ctx, &store, &mut side, other, p, row, tag, schema)?;
    }
    Ok(())
}

/// Spill every open (partially filled) partition buffer of `side` to the
/// disk tier, releasing its tracked bytes.
fn spill_open(store: &SpillStore, side: &mut GraceSide, tag: usize) -> Result<()> {
    for p in 0..side.open.len() {
        if let Some(b) = side.open[p].take() {
            side.spilled[p].push(store.spill_block(&b, tag)?);
        }
    }
    Ok(())
}

/// Check out a fresh partition buffer. A budget refusal is not terminal
/// here: the open partition buffers (ours and the idle other side's) are
/// exactly the memory the refusal is about, so spill them and retry once.
fn checkout_part(
    ctx: &ExecContext,
    store: &SpillStore,
    side: &mut GraceSide,
    other: &Mutex<GraceSide>,
    tag: usize,
    schema: &Arc<Schema>,
) -> Result<StorageBlock> {
    match ctx.pool.checkout(schema, ctx.temp_format, ctx.block_bytes) {
        Ok(b) => return Ok(b),
        Err(StorageError::BudgetExceeded { .. }) => {}
        Err(e) => return Err(e.into()),
    }
    spill_open(store, side, tag)?;
    // Locking the other side here cannot cycle: build and probe phases are
    // serialized by the scheduler, and every partitioner of the active phase
    // acquires its own side's lock (held by our caller) before this point —
    // so no thread can hold `other` while wanting `side`.
    spill_open(store, &mut other.lock(), tag)?;
    ctx.pool
        .checkout(schema, ctx.temp_format, ctx.block_bytes)
        .map_err(Into::into)
}

/// Append one row to partition `p`, spilling the open buffer when it fills.
/// On error the partially filled state stays in the side — scheduler
/// teardown releases it.
#[allow(clippy::too_many_arguments)]
fn append_row(
    ctx: &ExecContext,
    store: &SpillStore,
    side: &mut GraceSide,
    other: &Mutex<GraceSide>,
    p: usize,
    row: &[uot_storage::Value],
    tag: usize,
    schema: &Arc<Schema>,
) -> Result<()> {
    loop {
        if side.open[p].is_none() {
            side.open[p] = Some(checkout_part(ctx, store, side, other, tag, schema)?);
        }
        let b = side.open[p].as_mut().expect("just set");
        if b.append_row(row)? {
            if b.is_full() {
                let full = side.open[p].take().expect("present");
                side.spilled[p].push(store.spill_block(&full, tag)?);
            }
            return Ok(());
        }
        // Full before the append fit: spill it and retry on a fresh block.
        let full = side.open[p].take().expect("present");
        side.spilled[p].push(store.spill_block(&full, tag)?);
    }
}

/// The `FinalizeJoin` work order: join every partition pair, returning the
/// completed output blocks. On any error everything still held — queued
/// partitions, restored blocks, produced output — is released first, so the
/// tracker drains and no temp file outlives the query.
pub fn finalize(ctx: &ExecContext, op: usize) -> Result<Vec<StorageBlock>> {
    let g = ctx
        .grace
        .get(&op)
        .expect("finalize-join dispatched only for grace probes")
        .clone();
    let store = ctx
        .pool
        .spill_store()
        .ok_or_else(|| EngineError::Internal("grace join without a spill store".into()))?;
    let payload_cols = match &ctx.plan.op(g.build_op).kind {
        OperatorKind::BuildHash { payload_cols, .. } => payload_cols.clone(),
        other => {
            return Err(EngineError::Internal(format!(
                "grace build op is a {}",
                other.kind_label()
            )))
        }
    };
    let build_schema = ctx.plan.input_schema(g.build_op);
    let probe_schema = ctx.plan.input_schema(op);
    let budget = ctx.pool.budget().unwrap_or(usize::MAX);

    // Drain both sides into a worklist of (depth, build, probe) partitions.
    let mut work: Vec<(usize, Vec<PartBlock>, Vec<PartBlock>)> = Vec::new();
    {
        let mut bs = g.build.lock();
        let mut ps = g.probe.lock();
        // Under a budget, park every leftover open buffer on disk first:
        // queued partitions would otherwise hold up to `2 × nparts` resident
        // blocks for the whole finalize — a baseline that can exceed the
        // budget on its own and starve every per-partition checkout. (On a
        // failed spill the sides keep their state; scheduler teardown
        // releases it.)
        if budget != usize::MAX {
            spill_open(&store, &mut bs, g.build_op)?;
            spill_open(&store, &mut ps, op)?;
        }
        for p in 0..g.nparts {
            let mut b: Vec<PartBlock> = bs.spilled[p].drain(..).map(PartBlock::Disk).collect();
            if let Some(blk) = bs.open[p].take() {
                b.push(PartBlock::Mem(blk));
            }
            let mut pr: Vec<PartBlock> = ps.spilled[p].drain(..).map(PartBlock::Disk).collect();
            if let Some(blk) = ps.open[p].take() {
                pr.push(PartBlock::Mem(blk));
            }
            if b.is_empty() && pr.is_empty() {
                continue;
            }
            work.push((0, b, pr));
        }
    }

    let mut out: Vec<StorageBlock> = Vec::new();
    // Output blocks parked on disk under pressure, restored at return.
    let mut out_disk: Vec<SpilledHandle> = Vec::new();
    let fail = |e: EngineError,
                work: &mut Vec<(usize, Vec<PartBlock>, Vec<PartBlock>)>,
                out: &mut Vec<StorageBlock>,
                out_disk: &mut Vec<SpilledHandle>| {
        for (_, b, p) in work.drain(..) {
            for x in b {
                x.discard(ctx, &store);
            }
            for x in p {
                x.discard(ctx, &store);
            }
        }
        for b in out.drain(..) {
            ctx.pool.discard(b);
        }
        for h in out_disk.drain(..) {
            store.discard(h);
        }
        e
    };
    while let Some((depth, build, probe)) = work.pop() {
        if let Err(e) = join_partition(
            ctx,
            &g,
            &store,
            op,
            depth,
            build,
            probe,
            budget,
            &payload_cols,
            &build_schema,
            &probe_schema,
            &mut out,
            &mut out_disk,
            &mut work,
        ) {
            return Err(fail(e, &mut work, &mut out, &mut out_disk));
        }
    }
    // Restore parked output. The charge is unconditional (the storage tier's
    // documented transient-overshoot path): these blocks leave the operator
    // as its result either way, and downstream consumption drains them.
    let mut parked = out_disk.into_iter();
    while let Some(h) = parked.next() {
        match store.restore(h) {
            Ok(b) => out.push(b),
            Err(e) => {
                for rest in parked {
                    store.discard(rest);
                }
                for b in out.drain(..) {
                    ctx.pool.discard(b);
                }
                return Err(e.into());
            }
        }
    }
    Ok(out)
}

/// Park accumulated output on disk while tracked bytes sit above a quarter
/// of the budget, leaving headroom for the next checkout or hash table. A
/// failed spill is side-effect free: the block goes back into `out` and the
/// error is returned for the caller's cleanup path.
fn park_out(
    ctx: &ExecContext,
    store: &Arc<SpillStore>,
    op: usize,
    budget: usize,
    out: &mut Vec<StorageBlock>,
    out_disk: &mut Vec<SpilledHandle>,
) -> Result<()> {
    while budget != usize::MAX && ctx.pool.tracker().current_bytes() > budget / 4 {
        let Some(b) = out.pop() else { break };
        match store.spill_block(&b, op) {
            Ok(h) => out_disk.push(h),
            Err(e) => {
                out.push(b);
                return Err(e.into());
            }
        }
    }
    Ok(())
}

/// Join one partition pair: restore the build side, build a hash table (or
/// re-partition when it still exceeds the budget), stream the probe side
/// through it. Owns its inputs and releases them on every path.
#[allow(clippy::too_many_arguments)]
fn join_partition(
    ctx: &ExecContext,
    g: &GraceJoinState,
    store: &Arc<SpillStore>,
    op: usize,
    depth: usize,
    build: Vec<PartBlock>,
    probe: Vec<PartBlock>,
    budget: usize,
    payload_cols: &[usize],
    build_schema: &Arc<Schema>,
    probe_schema: &Arc<Schema>,
    out: &mut Vec<StorageBlock>,
    out_disk: &mut Vec<SpilledHandle>,
    work: &mut Vec<(usize, Vec<PartBlock>, Vec<PartBlock>)>,
) -> Result<()> {
    if let Err(e) = ctx.check_cancelled() {
        for x in build {
            x.discard(ctx, store);
        }
        for x in probe {
            x.discard(ctx, store);
        }
        return Err(e);
    }

    // Restore the whole build partition (the hash table needs all of it).
    let mut build_blocks: Vec<StorageBlock> = Vec::with_capacity(build.len());
    let mut build_iter = build.into_iter();
    while let Some(pb) = build_iter.next() {
        match pb.into_mem(store) {
            Ok(b) => build_blocks.push(b),
            Err(e) => {
                for b in build_blocks {
                    ctx.pool.discard(b);
                }
                for x in build_iter {
                    x.discard(ctx, store);
                }
                for x in probe {
                    x.discard(ctx, store);
                }
                return Err(e);
            }
        }
    }

    // Still over budget? Split both sides on a deeper hash bit and requeue —
    // unless the recursion bound is hit, in which case build anyway (bounded
    // overshoot beats a terminal failure).
    let build_bytes: usize = build_blocks.iter().map(|b| b.allocated_bytes()).sum();
    if depth < MAX_RESPILL_DEPTH && build_bytes > budget / 2 {
        store.note_respill(depth + 1);
        let shift = RESPILL_SHIFT_BASE + 8 * depth;
        let build_parts: Vec<PartBlock> = build_blocks.into_iter().map(PartBlock::Mem).collect();
        let (b0, b1) = match split(ctx, store, g.build_op, build_schema, build_parts, shift) {
            Ok(v) => v,
            Err(e) => {
                for x in probe {
                    x.discard(ctx, store);
                }
                return Err(e);
            }
        };
        let (p0, p1) = match split(ctx, store, op, probe_schema, probe, shift) {
            Ok(v) => v,
            Err(e) => {
                for x in b0.into_iter().chain(b1) {
                    x.discard(ctx, store);
                }
                return Err(e);
            }
        };
        work.push((depth + 1, b1, p1));
        work.push((depth + 1, b0, p0));
        return Ok(());
    }

    // Build this partition's hash table and release the input blocks. One
    // shard, not the engine's concurrent-build shard count: a partition is
    // built and probed by this single work order, and the per-shard fixed
    // overhead would otherwise dwarf a tight budget.
    let ht = JoinHashTable::new(ctx.plan.op(g.build_op).out_schema.clone(), 1);
    let tracker = ctx.pool.tracker();
    let mut scratch = ctx.take_scratch();
    for b in build_blocks {
        let b = Arc::new(b);
        ctx.key_extractor(g.build_op)
            .extract_block(&b, &mut scratch.keys);
        ht.insert_batch(&b, &scratch.keys, payload_cols);
        tracker.free(b.allocated_bytes());
    }
    ctx.put_scratch(scratch);
    ht.sync_tracker(tracker);

    // Stream the probe partition through it, one block at a time.
    let mut probe_iter = probe.into_iter();
    while let Some(pb) = probe_iter.next() {
        let block = match pb.into_mem(store) {
            Ok(b) => Arc::new(b),
            Err(e) => {
                ht.release_tracker(tracker);
                for x in probe_iter {
                    x.discard(ctx, store);
                }
                return Err(e);
            }
        };
        let produced = crate::ops::probe::apply_with(ctx, op, &block, &ht).and_then(|v| match v {
            Some(virt) => crate::ops::write_output(ctx, op, &virt),
            None => Ok(Vec::new()),
        });
        tracker.free(block.allocated_bytes());
        drop(block);
        // Park output as it is produced, not just between partitions: a
        // skewed partition can emit more result bytes than the budget while
        // its hash table is still resident.
        let relieved = match produced {
            Ok(blocks) => {
                out.extend(blocks);
                park_out(ctx, store, op, budget, out, out_disk)
            }
            Err(e) => Err(e),
        };
        if let Err(e) = relieved {
            ht.release_tracker(tracker);
            for x in probe_iter {
                x.discard(ctx, store);
            }
            return Err(e);
        }
    }
    ht.release_tracker(tracker);
    Ok(())
}

/// Split one side of a partition in two on hash bit `shift`, spilling full
/// output blocks. The key operator `key_op`'s extractor re-hashes the rows
/// (partition files hold that operator's input schema). Consumes `input`;
/// on error every block still held — input, open buffers, finished halves —
/// is released.
fn split(
    ctx: &ExecContext,
    store: &Arc<SpillStore>,
    key_op: usize,
    schema: &Arc<Schema>,
    input: Vec<PartBlock>,
    shift: usize,
) -> Result<(Vec<PartBlock>, Vec<PartBlock>)> {
    let mut input = VecDeque::from(input);
    let mut open: [Option<StorageBlock>; 2] = [None, None];
    let mut done: [Vec<PartBlock>; 2] = [Vec::new(), Vec::new()];
    let mut scratch = ctx.take_scratch();
    let tracker = ctx.pool.tracker().clone();
    let mut run = || -> Result<()> {
        while let Some(pb) = input.pop_front() {
            let block = Arc::new(pb.into_mem(store)?);
            ctx.key_extractor(key_op)
                .extract_block(&block, &mut scratch.keys);
            let rows = block.all_rows();
            for (row, h) in rows.iter().zip(scratch.keys.hashes()) {
                let half = ((h >> shift) & 1) as usize;
                loop {
                    if open[half].is_none() {
                        open[half] = Some(ctx.pool.checkout(
                            schema,
                            ctx.temp_format,
                            ctx.block_bytes,
                        )?);
                    }
                    let b = open[half].as_mut().expect("just set");
                    if b.append_row(row)? {
                        if b.is_full() {
                            let full = open[half].take().expect("present");
                            done[half].push(PartBlock::Disk(store.spill_block(&full, key_op)?));
                        }
                        break;
                    }
                    let full = open[half].take().expect("present");
                    done[half].push(PartBlock::Disk(store.spill_block(&full, key_op)?));
                }
            }
            tracker.free(block.allocated_bytes());
        }
        Ok(())
    };
    let result = run();
    ctx.put_scratch(scratch);
    match result {
        Ok(()) => {
            let [o0, o1] = open;
            let [mut d0, mut d1] = done;
            if let Some(b) = o0 {
                d0.push(PartBlock::Mem(b));
            }
            if let Some(b) = o1 {
                d1.push(PartBlock::Mem(b));
            }
            Ok((d0, d1))
        }
        Err(e) => {
            for b in open.into_iter().flatten() {
                ctx.pool.discard(b);
            }
            for half in done {
                for x in half {
                    x.discard(ctx, store);
                }
            }
            for x in input {
                x.discard(ctx, store);
            }
            Err(e)
        }
    }
}
