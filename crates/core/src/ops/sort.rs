//! Sort: a blocking operator (Section V-B: "sort-based operations are
//! typically blocking and generally not amenable to pipelining").
//!
//! Input blocks are collected as they arrive; one finalize work order
//! materializes, sorts, applies the optional `LIMIT` and emits the result.

use crate::error::EngineError;
use crate::ops::aggregate::cmp_value_rows;
use crate::plan::{OperatorKind, SortKey};
use crate::state::ExecContext;
use crate::Result;
use std::cmp::Ordering;
use uot_storage::{StorageBlock, Value};

/// Run the sort finalize work order.
pub fn execute(ctx: &ExecContext, op: usize) -> Result<Vec<StorageBlock>> {
    let (keys, limit) = match &ctx.plan.op(op).kind {
        OperatorKind::Sort { keys, limit, .. } => (keys.clone(), *limit),
        other => {
            return Err(EngineError::Internal(format!(
                "sort finalize on {}",
                other.kind_label()
            )))
        }
    };
    let blocks = std::mem::take(&mut *ctx.runtimes[op].collected.lock());
    let mut rows: Vec<Vec<Value>> = Vec::new();
    for b in &blocks {
        // The finalize materializes the whole input: honor cancellation
        // between collected blocks.
        ctx.check_cancelled()?;
        rows.extend(crate::ops::rows_to_values(b));
    }
    rows.sort_by(|a, b| compare_rows(a, b, &keys));
    if let Some(n) = limit {
        rows.truncate(n);
    }
    crate::ops::emit_value_rows(ctx, op, rows.into_iter())
}

/// Compare two rows under the sort keys; ties broken by the full row so that
/// output order is deterministic across executions and UoT settings.
fn compare_rows(a: &[Value], b: &[Value], keys: &[SortKey]) -> Ordering {
    for k in keys {
        let ord = a[k.col].partial_cmp(&b[k.col]).unwrap_or(Ordering::Equal);
        let ord = if k.desc { ord.reverse() } else { ord };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    cmp_value_rows(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PlanBuilder, Source};
    use std::sync::Arc;
    use uot_storage::{
        BlockFormat, BlockPool, DataType, MemoryTracker, Schema, Table, TableBuilder,
    };

    fn table(vals: &[(i32, f64)]) -> Arc<Table> {
        let s = Schema::from_pairs(&[("k", DataType::Int32), ("v", DataType::Float64)]);
        let mut tb = TableBuilder::new("t", s, BlockFormat::Column, 64);
        for &(k, v) in vals {
            tb.append(&[Value::I32(k), Value::F64(v)]).unwrap();
        }
        Arc::new(tb.finish())
    }

    fn run_sort(t: &Arc<Table>, keys: Vec<SortKey>, limit: Option<usize>) -> Vec<Vec<Value>> {
        let mut pb = PlanBuilder::new();
        let s = pb.sort(Source::Table(t.clone()), keys, limit).unwrap();
        let plan = Arc::new(pb.build(s).unwrap());
        let pool = BlockPool::new(MemoryTracker::new());
        let ctx = ExecContext::new(plan, pool, BlockFormat::Row, 1 << 12, 4).unwrap();
        // scheduler would do this routing:
        ctx.runtimes[s]
            .collected
            .lock()
            .extend(t.blocks().iter().cloned());
        let mut rows = Vec::new();
        for b in execute(&ctx, s).unwrap() {
            rows.extend(b.all_rows());
        }
        for b in ctx.output(s).flush() {
            rows.extend(b.all_rows());
        }
        rows
    }

    #[test]
    fn ascending_and_descending() {
        let t = table(&[(3, 1.0), (1, 2.0), (2, 0.5), (1, 1.0)]);
        let rows = run_sort(&t, vec![SortKey::asc(0)], None);
        let ks: Vec<i32> = rows.iter().map(|r| r[0].as_i32()).collect();
        assert_eq!(ks, vec![1, 1, 2, 3]);

        let rows = run_sort(&t, vec![SortKey::desc(1)], None);
        let vs: Vec<f64> = rows.iter().map(|r| r[1].as_f64()).collect();
        assert_eq!(vs, vec![2.0, 1.0, 1.0, 0.5]);
    }

    #[test]
    fn compound_keys() {
        let t = table(&[(1, 5.0), (2, 1.0), (1, 1.0), (2, 5.0)]);
        let rows = run_sort(&t, vec![SortKey::asc(0), SortKey::desc(1)], None);
        let pairs: Vec<(i32, f64)> = rows
            .iter()
            .map(|r| (r[0].as_i32(), r[1].as_f64()))
            .collect();
        assert_eq!(pairs, vec![(1, 5.0), (1, 1.0), (2, 5.0), (2, 1.0)]);
    }

    #[test]
    fn limit_truncates() {
        let t = table(&[(5, 0.0), (3, 0.0), (4, 0.0), (1, 0.0), (2, 0.0)]);
        let rows = run_sort(&t, vec![SortKey::asc(0)], Some(3));
        let ks: Vec<i32> = rows.iter().map(|r| r[0].as_i32()).collect();
        assert_eq!(ks, vec![1, 2, 3]);
    }

    #[test]
    fn empty_input() {
        let t = table(&[]);
        let rows = run_sort(&t, vec![SortKey::asc(0)], None);
        assert!(rows.is_empty());
    }

    #[test]
    fn ties_are_deterministic() {
        // equal keys: full-row tiebreak orders by remaining column
        let t = table(&[(1, 9.0), (1, 3.0), (1, 6.0)]);
        let rows = run_sort(&t, vec![SortKey::asc(0)], None);
        let vs: Vec<f64> = rows.iter().map(|r| r[1].as_f64()).collect();
        assert_eq!(vs, vec![3.0, 6.0, 9.0]);
    }
}
