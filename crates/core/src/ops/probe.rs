//! The probe operator: the paper's canonical *consumer*.
//!
//! A probe work order looks up every row of its input block in the join hash
//! table built by the upstream build operator, and assembles output rows from
//! probe-side columns plus payload columns (inner join), or probe-side
//! columns only (semi/anti joins).
//!
//! The default path is batched: keys and hashes for the whole block come from
//! the operator's precompiled [`uot_storage::KeyExtractor`] (one dispatch per
//! block), matches resolve through a prefetched
//! [`crate::hash_table::ProbeSession`] into a flat match vector, and each
//! output column is materialized with one typed gather loop. A row-at-a-time
//! [`execute_scalar`] is retained as the reference implementation the
//! property tests diff against.

use crate::error::EngineError;
use crate::ops::builders::{
    gather_block_column, gather_payload_column, into_virtual_block, make_builders,
};
use crate::plan::{JoinType, OperatorKind};
use crate::state::ExecContext;
use crate::Result;
use std::sync::Arc;
use uot_storage::{HashKey, StorageBlock};

struct ProbeSpec<'a> {
    build: usize,
    probe_key_cols: &'a [usize],
    probe_out_cols: &'a [usize],
    build_out_cols: &'a [usize],
    join: JoinType,
}

fn probe_spec<'a>(ctx: &'a ExecContext, op: usize) -> Result<ProbeSpec<'a>> {
    match &ctx.plan.op(op).kind {
        OperatorKind::Probe {
            build,
            probe_key_cols,
            probe_out_cols,
            build_out_cols,
            join,
            ..
        } => Ok(ProbeSpec {
            build: *build,
            probe_key_cols,
            probe_out_cols,
            build_out_cols,
            join: *join,
        }),
        other => Err(EngineError::Internal(format!(
            "probe work order on {}",
            other.kind_label()
        ))),
    }
}

/// Run one probe work order (staged batched path). Returns completed output
/// blocks.
pub fn execute(
    ctx: &ExecContext,
    op: usize,
    block: &Arc<StorageBlock>,
) -> Result<Vec<StorageBlock>> {
    // Under a grace join probe rows are only partitioned here; the actual
    // probing happens partition-by-partition in the finalize-join work order.
    if let Some(g) = ctx.grace.get(&op) {
        let mut scratch = ctx.take_scratch();
        ctx.key_extractor(op)
            .extract_block(block, &mut scratch.keys);
        let schema = ctx.plan.input_schema(op);
        let res = crate::ops::grace::partition_stream(
            ctx,
            g,
            &g.probe,
            block,
            scratch.keys.hashes(),
            op,
            &schema,
        );
        ctx.put_scratch(scratch);
        res?;
        return Ok(Vec::new());
    }
    match apply(ctx, op, block)? {
        None => Ok(Vec::new()),
        Some(virt) => crate::ops::write_output(ctx, op, &virt),
    }
}

/// Probe one block and assemble the join output as a virtual block — `None`
/// when no row matches. Shared by the staged [`execute`] (which routes the
/// result through the output buffer) and the fused pipeline loop (which
/// pushes it straight into the next chain member). Scratch buffers come from
/// the context's pooled [`Scratch`](crate::state::Scratch) either way.
pub(crate) fn apply(
    ctx: &ExecContext,
    op: usize,
    block: &Arc<StorageBlock>,
) -> Result<Option<StorageBlock>> {
    let spec = probe_spec(ctx, op)?;
    apply_with(ctx, op, block, ctx.hash_table(spec.build))
}

/// [`apply`] against an explicit hash table instead of the shared one — the
/// grace-join finalize path builds a table per partition and probes each
/// partition's blocks through it.
pub(crate) fn apply_with(
    ctx: &ExecContext,
    op: usize,
    block: &Arc<StorageBlock>,
    ht: &crate::hash_table::JoinHashTable,
) -> Result<Option<StorageBlock>> {
    let spec = probe_spec(ctx, op)?;
    let out_schema = ctx.plan.op(op).out_schema.clone();
    let mut builders = make_builders(&out_schema);
    let n_probe_cols = spec.probe_out_cols.len();

    let mut scratch = ctx.take_scratch();
    ctx.key_extractor(op)
        .extract_block(block, &mut scratch.keys);
    let session = ht.probe_session();
    match spec.join {
        JoinType::Inner => {
            scratch.matches.clear();
            session.probe_batch(&scratch.keys, &mut scratch.matches);
            for (j, &c) in spec.probe_out_cols.iter().enumerate() {
                gather_block_column(
                    &mut builders[j],
                    block,
                    c,
                    scratch.matches.iter().map(|m| m.probe_row as usize),
                );
            }
            for (j, &c) in spec.build_out_cols.iter().enumerate() {
                gather_payload_column(
                    &mut builders[n_probe_cols + j],
                    &session,
                    c,
                    &scratch.matches,
                );
            }
        }
        JoinType::Semi | JoinType::Anti => {
            scratch.exists.clear();
            session.contains_batch(&scratch.keys, &mut scratch.exists);
            let want = matches!(spec.join, JoinType::Semi);
            scratch.rows.clear();
            scratch.rows.extend(
                scratch
                    .exists
                    .iter()
                    .enumerate()
                    .filter(|&(_, &e)| e == want)
                    .map(|(r, _)| r as u32),
            );
            for (j, &c) in spec.probe_out_cols.iter().enumerate() {
                gather_block_column(
                    &mut builders[j],
                    block,
                    c,
                    scratch.rows.iter().map(|&r| r as usize),
                );
            }
        }
    }
    drop(session);
    ctx.put_scratch(scratch);
    if builders.first().map(|b| b.is_empty()).unwrap_or(true) {
        return Ok(None);
    }
    Ok(Some(into_virtual_block(out_schema, builders)?))
}

/// Row-at-a-time reference implementation of the probe (the pre-vectorized
/// path). Kept for the batched-vs-scalar property tests and the `probe_batch`
/// microbenchmark baseline; must produce the same multiset of rows as
/// [`execute`].
pub fn execute_scalar(
    ctx: &ExecContext,
    op: usize,
    block: &Arc<StorageBlock>,
) -> Result<Vec<StorageBlock>> {
    let spec = probe_spec(ctx, op)?;
    let ht = ctx.hash_table(spec.build);
    let out_schema = ctx.plan.op(op).out_schema.clone();
    let mut builders = make_builders(&out_schema);
    let n_probe_cols = spec.probe_out_cols.len();
    let n = block.num_rows();

    for row in 0..n {
        let key = HashKey::from_row(block, row, spec.probe_key_cols);
        match spec.join {
            JoinType::Inner => {
                ht.probe_key(&key, |payload| {
                    for (j, &c) in spec.probe_out_cols.iter().enumerate() {
                        builders[j].push_from_block(block, row, c);
                    }
                    for (j, &c) in spec.build_out_cols.iter().enumerate() {
                        builders[n_probe_cols + j].push_from_payload(payload, c);
                    }
                });
            }
            JoinType::Semi => {
                if ht.contains_key(&key) {
                    for (j, &c) in spec.probe_out_cols.iter().enumerate() {
                        builders[j].push_from_block(block, row, c);
                    }
                }
            }
            JoinType::Anti => {
                if !ht.contains_key(&key) {
                    for (j, &c) in spec.probe_out_cols.iter().enumerate() {
                        builders[j].push_from_block(block, row, c);
                    }
                }
            }
        }
    }
    if builders.first().map(|b| b.is_empty()).unwrap_or(true) {
        return Ok(Vec::new());
    }
    let virt = into_virtual_block(out_schema, builders)?;
    crate::ops::write_output(ctx, op, &virt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::build;
    use crate::plan::{PlanBuilder, Source};
    use uot_storage::{
        BlockFormat, BlockPool, DataType, MemoryTracker, Schema, Table, TableBuilder, Value,
    };

    fn dim() -> Arc<Table> {
        let s = Schema::from_pairs(&[("k", DataType::Int32), ("name", DataType::Char(4))]);
        let mut tb = TableBuilder::new("dim", s, BlockFormat::Column, 1 << 10);
        for i in 0..4 {
            tb.append(&[Value::I32(i), Value::Str(format!("d{i}"))])
                .unwrap();
        }
        Arc::new(tb.finish())
    }

    fn fact() -> Arc<Table> {
        let s = Schema::from_pairs(&[("fk", DataType::Int32), ("amt", DataType::Float64)]);
        let mut tb = TableBuilder::new("fact", s, BlockFormat::Column, 1 << 10);
        for i in 0..12 {
            tb.append(&[Value::I32(i % 6), Value::F64(i as f64)])
                .unwrap();
        }
        Arc::new(tb.finish())
    }

    fn setup(
        join: JoinType,
        build_out: Vec<usize>,
    ) -> (ExecContext, usize, usize, Arc<Table>, Arc<Table>) {
        let d = dim();
        let f = fact();
        let mut pb = PlanBuilder::new();
        let b = pb
            .build_hash(Source::Table(d.clone()), vec![0], vec![0, 1])
            .unwrap();
        let p = pb
            .probe(
                Source::Table(f.clone()),
                b,
                vec![0],
                vec![0, 1],
                build_out,
                join,
            )
            .unwrap();
        let plan = Arc::new(pb.build(p).unwrap());
        let pool = BlockPool::new(MemoryTracker::new());
        let ctx = ExecContext::new(plan, pool, BlockFormat::Row, 1 << 10, 4).unwrap();
        (ctx, b, p, d, f)
    }

    fn run_probe(ctx: &ExecContext, b: usize, p: usize, d: &Table, f: &Table) -> Vec<Vec<Value>> {
        for blk in d.blocks() {
            build::execute(ctx, b, &blk.clone()).unwrap();
        }
        let mut rows = Vec::new();
        for blk in f.blocks() {
            for out in execute(ctx, p, &blk.clone()).unwrap() {
                rows.extend(out.all_rows());
            }
        }
        for out in ctx.output(p).flush() {
            rows.extend(out.all_rows());
        }
        rows
    }

    #[test]
    fn inner_join_emits_matches_with_payload() {
        let (ctx, b, p, d, f) = setup(JoinType::Inner, vec![1]);
        let mut rows = run_probe(&ctx, b, p, &d, &f);
        // fact keys 0..5, dim keys 0..3 -> 8 matching fact rows (fk in 0..=3)
        assert_eq!(rows.len(), 8);
        rows.sort_by(|a, b| a[1].as_f64().partial_cmp(&b[1].as_f64()).unwrap());
        assert_eq!(rows[0][0], Value::I32(0));
        assert_eq!(rows[0][2], Value::Str("d0".into()));
        // row with fk=3 carries d3
        let r3 = rows.iter().find(|r| r[0] == Value::I32(3)).unwrap();
        assert_eq!(r3[2], Value::Str("d3".into()));
    }

    #[test]
    fn semi_join_emits_each_matching_probe_row_once() {
        let (ctx, b, p, d, f) = setup(JoinType::Semi, vec![]);
        let rows = run_probe(&ctx, b, p, &d, &f);
        assert_eq!(rows.len(), 8);
        assert!(rows.iter().all(|r| r.len() == 2)); // probe cols only
        assert!(rows.iter().all(|r| r[0].as_i32() <= 3));
    }

    #[test]
    fn anti_join_emits_non_matching_probe_rows() {
        let (ctx, b, p, d, f) = setup(JoinType::Anti, vec![]);
        let rows = run_probe(&ctx, b, p, &d, &f);
        assert_eq!(rows.len(), 4); // fk 4 and 5, twice each
        assert!(rows.iter().all(|r| r[0].as_i32() >= 4));
    }

    #[test]
    fn probe_against_empty_build() {
        let (ctx, _b, p, _d, f) = setup(JoinType::Inner, vec![1]);
        // Skip the build step entirely: table empty.
        let out = execute(&ctx, p, &f.blocks()[0].clone()).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn duplicate_build_keys_multiply() {
        // dim with duplicate keys
        let s = Schema::from_pairs(&[("k", DataType::Int32)]);
        let mut tb = TableBuilder::new("dup", s.clone(), BlockFormat::Column, 1 << 10);
        for _ in 0..3 {
            tb.append(&[Value::I32(7)]).unwrap();
        }
        let d = Arc::new(tb.finish());
        let mut tb = TableBuilder::new("probe1", s, BlockFormat::Column, 1 << 10);
        tb.append(&[Value::I32(7)]).unwrap();
        tb.append(&[Value::I32(8)]).unwrap();
        let f = Arc::new(tb.finish());
        let mut pb = PlanBuilder::new();
        let b = pb
            .build_hash(Source::Table(d.clone()), vec![0], vec![0])
            .unwrap();
        let p = pb
            .probe(
                Source::Table(f.clone()),
                b,
                vec![0],
                vec![0],
                vec![0],
                JoinType::Inner,
            )
            .unwrap();
        let plan = Arc::new(pb.build(p).unwrap());
        let pool = BlockPool::new(MemoryTracker::new());
        let ctx = ExecContext::new(plan, pool, BlockFormat::Row, 1 << 10, 4).unwrap();
        let rows = run_probe(&ctx, b, p, &d, &f);
        assert_eq!(rows.len(), 3); // 7 matches thrice, 8 never
    }
}
