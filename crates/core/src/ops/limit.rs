//! Limit: pass through the first `n` rows of the stream.
//!
//! The row budget is a shared atomic so concurrent work orders never emit
//! more than `n` rows in total (which rows win is scheduling-dependent, as
//! in any parallel engine without an ORDER BY under the LIMIT).

use crate::error::EngineError;
use crate::plan::OperatorKind;
use crate::state::ExecContext;
use crate::Result;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use uot_storage::{ColumnBlock, ColumnData, StorageBlock};

/// Run one limit work order.
pub fn execute(
    ctx: &ExecContext,
    op: usize,
    block: &Arc<StorageBlock>,
) -> Result<Vec<StorageBlock>> {
    if !matches!(&ctx.plan.op(op).kind, OperatorKind::Limit { .. }) {
        return Err(EngineError::Internal(
            "limit work order on non-limit".into(),
        ));
    }
    let n = block.num_rows();
    if n == 0 {
        return Ok(Vec::new());
    }
    // Claim up to n rows from the shared budget.
    let budget = &ctx.runtimes[op].limit_remaining;
    let mut claimed;
    let mut cur = budget.load(Ordering::Relaxed);
    loop {
        if cur <= 0 {
            return Ok(Vec::new());
        }
        claimed = (n as i64).min(cur);
        match budget.compare_exchange_weak(cur, cur - claimed, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => break,
            Err(actual) => cur = actual,
        }
    }
    let take = claimed as usize;
    let out_schema = ctx.plan.op(op).out_schema.clone();
    let rows: Vec<usize> = (0..take).collect();
    let cols: Vec<ColumnData> = (0..out_schema.len())
        .map(|c| uot_expr::gather_column(block, c, &rows))
        .collect::<std::result::Result<_, _>>()
        .map_err(EngineError::from)?;
    let virt = StorageBlock::Column(ColumnBlock::from_columns(out_schema, cols, take)?);
    crate::ops::write_output(ctx, op, &virt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PlanBuilder, Source};
    use uot_storage::{
        BlockFormat, BlockPool, DataType, MemoryTracker, Schema, Table, TableBuilder, Value,
    };

    fn table(n: i32) -> Arc<Table> {
        let s = Schema::from_pairs(&[("k", DataType::Int32)]);
        let mut tb = TableBuilder::new("t", s, BlockFormat::Column, 16); // 4 rows/block
        for i in 0..n {
            tb.append(&[Value::I32(i)]).unwrap();
        }
        Arc::new(tb.finish())
    }

    fn run_limit(total_rows: i32, n: usize) -> Vec<Vec<Value>> {
        let t = table(total_rows);
        let mut pb = PlanBuilder::new();
        let l = pb.limit(Source::Table(t.clone()), n).unwrap();
        let plan = Arc::new(pb.build(l).unwrap());
        let pool = BlockPool::new(MemoryTracker::new());
        let ctx = ExecContext::new(plan, pool, BlockFormat::Row, 1 << 12, 4).unwrap();
        let mut rows = Vec::new();
        for b in t.blocks() {
            for out in execute(&ctx, l, &b.clone()).unwrap() {
                rows.extend(out.all_rows());
            }
        }
        for out in ctx.output(l).flush() {
            rows.extend(out.all_rows());
        }
        rows
    }

    #[test]
    fn caps_total_rows() {
        assert_eq!(run_limit(20, 7).len(), 7);
        assert_eq!(run_limit(20, 0).len(), 0);
        assert_eq!(run_limit(3, 7).len(), 3);
        assert_eq!(run_limit(0, 7).len(), 0);
    }

    #[test]
    fn takes_block_prefixes_in_order() {
        let rows = run_limit(20, 6);
        let ks: Vec<i32> = rows.iter().map(|r| r[0].as_i32()).collect();
        // serial execution: first block fully, then 2 from the second
        assert_eq!(ks, vec![0, 1, 2, 3, 4, 5]);
    }
}
