//! The select operator: filter + project on one block.
//!
//! This is the canonical *producer* of the paper's select → probe pair. A
//! work order evaluates the predicate over its input block (vectorized, into
//! a selection bitmap), gathers each projection for the selected rows, and
//! appends the result to the operator's output buffer.

use crate::error::EngineError;
use crate::plan::OperatorKind;
use crate::state::ExecContext;
use crate::Result;
use std::sync::Arc;
use uot_storage::{ColumnBlock, ColumnData, StorageBlock};

/// Run one select work order (staged path). Returns completed output blocks.
pub fn execute(
    ctx: &ExecContext,
    op: usize,
    block: &Arc<StorageBlock>,
) -> Result<Vec<StorageBlock>> {
    match apply(ctx, op, block)? {
        None => Ok(Vec::new()),
        Some(virt) => crate::ops::write_output(ctx, op, &virt),
    }
}

/// Evaluate the select over one block and return the surviving rows as a
/// virtual block — `None` when nothing survives. This is the transform both
/// paths share: the staged [`execute`] writes the result through the
/// operator's output buffer; a fused pipeline pushes it straight into the
/// next chain member. When every row survives and every projection is an
/// identity column reference, the input block is passed through untouched
/// (zero copy).
pub(crate) fn apply(
    ctx: &ExecContext,
    op: usize,
    block: &Arc<StorageBlock>,
) -> Result<Option<Arc<StorageBlock>>> {
    let (predicate, projections, lip) = match &ctx.plan.op(op).kind {
        OperatorKind::Select {
            predicate,
            projections,
            lip,
            ..
        } => (predicate, projections, lip),
        other => {
            return Err(EngineError::Internal(format!(
                "select work order on {}",
                other.kind_label()
            )))
        }
    };
    let mut bitmap = predicate.eval(block).map_err(EngineError::from)?;
    // LIP: consult downstream builds' Bloom filters and drop rows whose join
    // keys are definitely absent — before materializing or transferring them.
    // Filters sharing a key-column set are grouped at context build: the
    // surviving rows' keys are extracted and hashed once per group, and every
    // Bloom filter in the group probes the same hash vector.
    if !lip.is_empty() {
        let before = bitmap.count_ones();
        let mut scratch = ctx.take_scratch();
        for group in &ctx.lip_groups[op] {
            let blooms: Vec<_> = group
                .builds
                .iter()
                .filter_map(|&b| ctx.runtimes[b].bloom.as_deref())
                .collect();
            if blooms.is_empty() {
                continue;
            }
            scratch.rows.clear();
            scratch.rows.extend(bitmap.iter_ones().map(|r| r as u32));
            group
                .extractor
                .extract_rows(block, &scratch.rows, &mut scratch.keys);
            for (i, &row) in scratch.rows.iter().enumerate() {
                let h = scratch.keys.hashes()[i];
                if blooms.iter().any(|bl| !bl.may_contain_hash(h)) {
                    bitmap.assign(row as usize, false);
                }
            }
        }
        ctx.put_scratch(scratch);
        let pruned = before - bitmap.count_ones();
        ctx.runtimes[op]
            .lip_pruned
            .fetch_add(pruned, std::sync::atomic::Ordering::Relaxed);
    }
    let selected = bitmap.count_ones();
    if selected == 0 {
        return Ok(None);
    }
    let out_schema = ctx.plan.op(op).out_schema.clone();
    let all = selected == block.num_rows();
    // Identity fast path: a pure pass-through (all rows, bare column refs in
    // order, full width) reuses the input block instead of re-gathering it.
    if all
        && projections.len() == block.schema().len()
        && projections
            .iter()
            .enumerate()
            .all(|(i, p)| p.as_col() == Some(i))
    {
        return Ok(Some(block.clone()));
    }
    let rows: Vec<usize> = if all {
        Vec::new() // not needed on the all-rows path
    } else {
        bitmap.iter_ones().collect()
    };
    let cols: Vec<ColumnData> = projections
        .iter()
        .map(|p| {
            if all {
                p.eval_all(block)
            } else {
                p.eval_gather(block, &rows)
            }
        })
        .collect::<std::result::Result<_, _>>()
        .map_err(EngineError::from)?;
    let virt = StorageBlock::Column(ColumnBlock::from_columns(out_schema, cols, selected)?);
    Ok(Some(Arc::new(virt)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PlanBuilder, Source};
    use crate::state::ExecContext;
    use std::sync::Arc;
    use uot_expr::{cmp, col, lit, CmpOp};
    use uot_storage::{
        BlockFormat, BlockPool, DataType, MemoryTracker, Schema, Table, TableBuilder, Value,
    };

    fn table(format: BlockFormat) -> Arc<Table> {
        let s = Schema::from_pairs(&[
            ("k", DataType::Int32),
            ("price", DataType::Float64),
            ("disc", DataType::Float64),
        ]);
        let mut tb = TableBuilder::new("t", s, format, 1 << 12);
        for i in 0..100 {
            tb.append(&[Value::I32(i), Value::F64(100.0 + i as f64), Value::F64(0.1)])
                .unwrap();
        }
        Arc::new(tb.finish())
    }

    fn run(format: BlockFormat) -> Vec<Vec<Value>> {
        let t = table(format);
        let mut pb = PlanBuilder::new();
        let s = pb
            .select(
                Source::Table(t.clone()),
                cmp(col(0), CmpOp::Lt, lit(5i32)),
                vec![col(0), col(1).mul(lit(1.0).sub(col(2)))],
                &["k", "revenue"],
            )
            .unwrap();
        let plan = Arc::new(pb.build(s).unwrap());
        let pool = BlockPool::new(MemoryTracker::new());
        let ctx = ExecContext::new(plan, pool, BlockFormat::Row, 1 << 12, 4).unwrap();
        let block = t.blocks()[0].clone();
        let mut out = Vec::new();
        for b in execute(&ctx, s, &block).unwrap() {
            out.extend(b.all_rows());
        }
        for b in ctx.output(s).flush() {
            out.extend(b.all_rows());
        }
        out
    }

    #[test]
    fn filters_and_computes_both_formats() {
        for fmt in [BlockFormat::Row, BlockFormat::Column] {
            let rows = run(fmt);
            assert_eq!(rows.len(), 5);
            assert_eq!(rows[0][0], Value::I32(0));
            let rev = rows[3][1].as_f64();
            assert!((rev - 103.0 * 0.9).abs() < 1e-9, "{rev}");
        }
    }

    #[test]
    fn empty_selection_emits_nothing() {
        let t = table(BlockFormat::Column);
        let mut pb = PlanBuilder::new();
        let s = pb
            .filter(Source::Table(t.clone()), cmp(col(0), CmpOp::Lt, lit(0i32)))
            .unwrap();
        let plan = Arc::new(pb.build(s).unwrap());
        let pool = BlockPool::new(MemoryTracker::new());
        let ctx = ExecContext::new(plan, pool.clone(), BlockFormat::Row, 1 << 12, 4).unwrap();
        let completed = execute(&ctx, s, &t.blocks()[0].clone()).unwrap();
        assert!(completed.is_empty());
        assert!(ctx.output(s).flush().is_empty());
        assert_eq!(pool.stats().created, 0);
    }

    #[test]
    fn full_selection_takes_all_rows_path() {
        let t = table(BlockFormat::Column);
        let mut pb = PlanBuilder::new();
        let s = pb
            .filter(Source::Table(t.clone()), uot_expr::Predicate::True)
            .unwrap();
        let plan = Arc::new(pb.build(s).unwrap());
        let pool = BlockPool::new(MemoryTracker::new());
        let ctx = ExecContext::new(plan, pool, BlockFormat::Column, 1 << 12, 4).unwrap();
        let mut rows = Vec::new();
        for b in execute(&ctx, s, &t.blocks()[0].clone()).unwrap() {
            rows.extend(b.all_rows());
        }
        for b in ctx.output(s).flush() {
            rows.extend(b.all_rows());
        }
        assert_eq!(rows.len(), t.blocks()[0].num_rows());
    }
}
