//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultPlan`] is an always-compiled, test-only registry attached to the
//! [`ExecContext`](crate::state::ExecContext). Execution code calls
//! [`FaultPlan::check`] at named [`FaultSite`]s; the plan decides — purely
//! from per-site hit counters, so the schedule is deterministic for a given
//! interleaving of site hits — whether to inject a panic, a storage error, or
//! a delay at that point. An empty plan is the default and its `check` is a
//! single branch on a const-capacity vec, so production paths pay nothing
//! measurable.
//!
//! The chaos proptests (`crates/core/tests/chaos_props.rs`) drive seeded
//! schedules through every site and assert the engine's hardening
//! invariants: always `Ok`/`Err` (never a hang or abort), memory accounting
//! returns to baseline, and an empty plan is bit-identical to the
//! uninstrumented path.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// A named code location where faults can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Entry of [`execute_work_order`](crate::ops::execute_work_order) —
    /// i.e. once per work order, before any operator logic runs.
    WorkOrderExec,
    /// A fresh block allocation on an operator's output path.
    PoolAlloc,
    /// A transfer edge flushing staged blocks to its consumer.
    TransferFlush,
    /// Serializing a block out to the disk spill tier.
    SpillWrite,
    /// Faulting a spilled block back in from the disk tier.
    SpillRead,
}

impl FaultSite {
    /// All sites, for schedule enumeration in tests.
    pub const ALL: [FaultSite; 5] = [
        FaultSite::WorkOrderExec,
        FaultSite::PoolAlloc,
        FaultSite::TransferFlush,
        FaultSite::SpillWrite,
        FaultSite::SpillRead,
    ];

    fn index(self) -> usize {
        match self {
            FaultSite::WorkOrderExec => 0,
            FaultSite::PoolAlloc => 1,
            FaultSite::TransferFlush => 2,
            FaultSite::SpillWrite => 3,
            FaultSite::SpillRead => 4,
        }
    }
}

/// What to inject when an injection point fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `panic!` with a recognizable payload — exercises panic containment.
    Panic,
    /// Return a [`StorageError`](uot_storage::StorageError) — exercises
    /// ordinary error propagation and teardown.
    Error,
    /// Sleep for the given duration — exercises deadline/cancellation races
    /// without failing the operation itself.
    Delay(Duration),
}

/// One injection: at `site`, on the `nth` hit (1-based), inject `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injection {
    /// Where to inject.
    pub site: FaultSite,
    /// What to inject.
    pub kind: FaultKind,
    /// Which hit of `site` triggers it (1 = the first hit). An injection
    /// fires at most once.
    pub nth: usize,
}

/// A deterministic schedule of fault injections, keyed by per-site hit
/// counters.
///
/// The plan is immutable after construction; only the hit counters mutate,
/// atomically, so concurrent workers agree on a single global hit order per
/// site. `Delay` faults fire *in addition to* letting the operation proceed;
/// `Panic`/`Error` replace it.
#[derive(Debug, Default)]
pub struct FaultPlan {
    injections: Vec<Injection>,
    hits: [AtomicUsize; 5],
}

impl FaultPlan {
    /// A plan that injects nothing — the production default.
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// A plan firing the given injections.
    pub fn new(injections: Vec<Injection>) -> Self {
        FaultPlan {
            injections,
            hits: Default::default(),
        }
    }

    /// No injections registered?
    pub fn is_empty(&self) -> bool {
        self.injections.is_empty()
    }

    /// How many times `site` has been hit so far.
    pub fn hits(&self, site: FaultSite) -> usize {
        self.hits[site.index()].load(Ordering::Relaxed)
    }

    /// Record a hit of `site` and return the fault to inject there, if any.
    ///
    /// Call sites handle the three kinds as: `Panic` → `panic!` with a
    /// payload containing `"injected"`, `Error` → return a storage error,
    /// `Delay(d)` → sleep `d` then proceed normally.
    pub fn check(&self, site: FaultSite) -> Option<FaultKind> {
        if self.injections.is_empty() {
            return None;
        }
        let hit = self.hits[site.index()].fetch_add(1, Ordering::Relaxed) + 1;
        self.injections
            .iter()
            .find(|i| i.site == site && i.nth == hit)
            .map(|i| i.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires_or_counts() {
        let p = FaultPlan::empty();
        assert!(p.is_empty());
        for _ in 0..10 {
            assert_eq!(p.check(FaultSite::WorkOrderExec), None);
        }
        // Fast path does not even count hits.
        assert_eq!(p.hits(FaultSite::WorkOrderExec), 0);
    }

    #[test]
    fn fires_on_exactly_the_nth_hit() {
        let p = FaultPlan::new(vec![Injection {
            site: FaultSite::PoolAlloc,
            kind: FaultKind::Panic,
            nth: 3,
        }]);
        assert_eq!(p.check(FaultSite::PoolAlloc), None);
        assert_eq!(p.check(FaultSite::PoolAlloc), None);
        assert_eq!(p.check(FaultSite::PoolAlloc), Some(FaultKind::Panic));
        assert_eq!(p.check(FaultSite::PoolAlloc), None); // fires at most once
        assert_eq!(p.hits(FaultSite::PoolAlloc), 4);
    }

    #[test]
    fn sites_count_independently() {
        let p = FaultPlan::new(vec![
            Injection {
                site: FaultSite::WorkOrderExec,
                kind: FaultKind::Error,
                nth: 1,
            },
            Injection {
                site: FaultSite::TransferFlush,
                kind: FaultKind::Delay(Duration::from_millis(1)),
                nth: 2,
            },
        ]);
        assert_eq!(p.check(FaultSite::TransferFlush), None);
        assert_eq!(p.check(FaultSite::WorkOrderExec), Some(FaultKind::Error));
        assert_eq!(
            p.check(FaultSite::TransferFlush),
            Some(FaultKind::Delay(Duration::from_millis(1)))
        );
    }

    #[test]
    fn spill_sites_count_like_the_others() {
        assert_eq!(FaultSite::ALL.len(), 5);
        let p = FaultPlan::new(vec![
            Injection {
                site: FaultSite::SpillWrite,
                kind: FaultKind::Error,
                nth: 2,
            },
            Injection {
                site: FaultSite::SpillRead,
                kind: FaultKind::Error,
                nth: 1,
            },
        ]);
        assert_eq!(p.check(FaultSite::SpillWrite), None);
        assert_eq!(p.check(FaultSite::SpillRead), Some(FaultKind::Error));
        assert_eq!(p.check(FaultSite::SpillWrite), Some(FaultKind::Error));
        assert_eq!(p.hits(FaultSite::SpillWrite), 2);
        assert_eq!(p.hits(FaultSite::SpillRead), 1);
    }
}
