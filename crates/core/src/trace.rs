//! Structured execution tracing: typed, timestamped event capture.
//!
//! Every figure in the paper's evaluation is a view over per-work-order and
//! per-transfer timelines (Fig. 3 operator time distribution, Fig. 5 probe
//! task times, Fig. 10 scalability-vs-UoT). The [`TraceSink`] records those
//! timelines as first-class data: a bounded, sharded buffer of
//! [`TraceEvent`]s that worker threads and the scheduler append to with one
//! short uncontended lock acquisition per event. Tracing is **opt-in** — the
//! sink only exists when the engine was configured with
//! [`EngineConfig::tracing`](crate::engine::EngineConfig::tracing), and the
//! [`NoopObserver`](crate::scheduler::NoopObserver) fast path never touches
//! it (event payloads are built inside closures that are not even evaluated
//! when no sink is installed).
//!
//! A finished capture is frozen into a [`Trace`] — events sorted by
//! timestamp plus operator names — which the exporters under [`crate::obs`]
//! turn into Chrome `trace_event` JSON, Prometheus-style counter snapshots,
//! and per-edge UoT-occupancy timelines.

use crate::fault::{FaultKind, FaultSite};
use crate::plan::OpId;
use crate::uot::Uot;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What happened, with enough attribution to rebuild the paper's timelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A work order was handed to a worker.
    WorkOrderDispatched {
        /// Work-order sequence number (pairs dispatch with its outcome).
        seq: usize,
        /// Operator the work order belongs to.
        op: OpId,
    },
    /// A work order finished successfully.
    WorkOrderFinished {
        /// Work-order sequence number.
        seq: usize,
        /// Operator the work order belongs to.
        op: OpId,
        /// Worker that ran it (0 in serial mode).
        worker: usize,
        /// Execution start, relative to query start.
        start: Duration,
        /// Execution end, relative to query start.
        end: Duration,
    },
    /// A work order panicked (contained; the query errors).
    WorkOrderPanicked {
        /// Work-order sequence number.
        seq: usize,
        /// Operator the work order belongs to.
        op: OpId,
    },
    /// A work order returned an error (budget, storage, injected, ...).
    WorkOrderFailed {
        /// Work-order sequence number.
        seq: usize,
        /// Operator the work order belongs to.
        op: OpId,
    },
    /// A work order observed cancellation and stopped.
    WorkOrderCancelled {
        /// Work-order sequence number.
        seq: usize,
        /// Operator the work order belongs to.
        op: OpId,
    },
    /// An operator produced output blocks (completed or flushed partials).
    BlocksProduced {
        /// Producing operator.
        op: OpId,
        /// Completed blocks produced.
        blocks: usize,
        /// Rows in those blocks.
        rows: usize,
    },
    /// A transfer edge accumulated blocks below its UoT threshold.
    EdgeStaged {
        /// Producer side of the edge.
        producer: OpId,
        /// Consumer side of the edge.
        consumer: OpId,
        /// Blocks currently staged on the edge.
        staged: usize,
        /// The edge's UoT threshold in blocks (`usize::MAX` = whole table).
        threshold: usize,
    },
    /// A transfer edge moved staged blocks to its consumer. `blocks`/`bytes`
    /// are the **actual** flushed sizes, measured after any injected fault at
    /// the flush site ran — not the pre-fault staging level.
    TransferFlushed {
        /// Producer side of the edge.
        producer: OpId,
        /// Consumer side of the edge.
        consumer: OpId,
        /// Blocks actually transferred.
        blocks: usize,
        /// Bytes actually transferred.
        bytes: usize,
        /// True for an end-of-producer partial flush (below the threshold);
        /// false for a threshold-triggered transfer.
        partial: bool,
    },
    /// An operator finished completely.
    OperatorFinished {
        /// The finished operator.
        op: OpId,
    },
    /// Temporary blocks were allocated on an operator's output path.
    PoolAlloc {
        /// Operator that allocated.
        op: OpId,
        /// Bytes of completed blocks this allocation produced.
        bytes: usize,
        /// Tracker bytes in use after the allocation.
        in_use: usize,
        /// The configured memory budget (`usize::MAX` = unlimited).
        budget: usize,
    },
    /// Tracked temporary bytes were released back to the tracker.
    PoolFree {
        /// Bytes released.
        bytes: usize,
        /// Tracker bytes in use after the release.
        in_use: usize,
    },
    /// The engine degraded the UoT after a tripped memory budget.
    Degraded {
        /// UoT of the failed attempt.
        from: Uot,
        /// UoT of the retry.
        to: Uot,
    },
    /// A fused pipeline ran to completion: every batch of the chain's input
    /// was pushed through the fused loop with zero blocks staged on interior
    /// edges. Emitted when the chain's tail operator finishes.
    PipelineFused {
        /// Pipeline id (index into the query's fused-chain list).
        pipeline: usize,
        /// Head operator (received the staged input).
        head: OpId,
        /// Tail operator (owned the output).
        tail: OpId,
        /// Number of operators fused into the loop.
        ops: usize,
        /// Input batches pushed through the loop.
        batches: usize,
        /// Input rows pushed through the loop.
        rows: usize,
        /// Summed wall time inside the fused loop, microseconds.
        elapsed_us: u64,
    },
    /// A block was evicted from the RAM tier to the disk spill tier.
    SpillOut {
        /// Operator the spilled block belongs to (the staging producer for
        /// edge blocks, the build/probe operator for grace partitions).
        op: OpId,
        /// Tracked bytes released to the disk tier.
        bytes: usize,
        /// Tracker bytes in use after the eviction.
        in_use: usize,
    },
    /// A spilled block was faulted back in from the disk tier.
    SpillIn {
        /// Operator the restored block belongs to.
        op: OpId,
        /// Tracked bytes re-charged by the fault-in.
        bytes: usize,
        /// Tracker bytes in use after the fault-in.
        in_use: usize,
    },
    /// A deterministic fault fired at an injection site.
    FaultInjected {
        /// The site that fired.
        site: FaultSite,
        /// What was injected.
        kind: FaultKind,
        /// Operator attribution: the executing operator for work-order and
        /// pool-allocation sites, the flushing producer for transfer sites.
        op: OpId,
    },
    /// The service watchdog flagged an anomaly on a live query.
    Watchdog {
        /// What was flagged.
        kind: WatchdogKind,
        /// Edge producer for stalled-edge flags (0 for deadline flags).
        producer: OpId,
        /// Edge consumer for stalled-edge flags (0 for deadline flags).
        consumer: OpId,
        /// How long the edge had been stalled, or the query's elapsed time
        /// for deadline flags — microseconds.
        waited_us: u64,
    },
}

/// What the service watchdog flagged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchdogKind {
    /// A transfer edge has held staged blocks unchanged past the stall
    /// timeout — the consumer is not draining it.
    StalledEdge,
    /// A query's elapsed time crossed the configured fraction of its
    /// deadline and is likely to be cancelled soon.
    DeadlineNear,
}

impl TraceEventKind {
    /// The operator this event is attributed to, if any.
    pub fn op(&self) -> Option<OpId> {
        match *self {
            TraceEventKind::WorkOrderDispatched { op, .. }
            | TraceEventKind::WorkOrderFinished { op, .. }
            | TraceEventKind::WorkOrderPanicked { op, .. }
            | TraceEventKind::WorkOrderFailed { op, .. }
            | TraceEventKind::WorkOrderCancelled { op, .. }
            | TraceEventKind::BlocksProduced { op, .. }
            | TraceEventKind::OperatorFinished { op }
            | TraceEventKind::PoolAlloc { op, .. }
            | TraceEventKind::SpillOut { op, .. }
            | TraceEventKind::SpillIn { op, .. }
            | TraceEventKind::FaultInjected { op, .. } => Some(op),
            TraceEventKind::PipelineFused { head, .. } => Some(head),
            TraceEventKind::EdgeStaged { producer, .. }
            | TraceEventKind::TransferFlushed { producer, .. } => Some(producer),
            TraceEventKind::Watchdog {
                kind: WatchdogKind::StalledEdge,
                producer,
                ..
            } => Some(producer),
            TraceEventKind::PoolFree { .. }
            | TraceEventKind::Degraded { .. }
            | TraceEventKind::Watchdog { .. } => None,
        }
    }

    /// Short category label (Chrome trace `cat`, Prometheus label).
    pub fn label(&self) -> &'static str {
        match self {
            TraceEventKind::WorkOrderDispatched { .. } => "dispatch",
            TraceEventKind::WorkOrderFinished { .. } => "work_order",
            TraceEventKind::WorkOrderPanicked { .. } => "panic",
            TraceEventKind::WorkOrderFailed { .. } => "failure",
            TraceEventKind::WorkOrderCancelled { .. } => "cancel",
            TraceEventKind::BlocksProduced { .. } => "produce",
            TraceEventKind::EdgeStaged { .. } => "stage",
            TraceEventKind::TransferFlushed { .. } => "transfer",
            TraceEventKind::OperatorFinished { .. } => "op_finish",
            TraceEventKind::PoolAlloc { .. } => "pool_alloc",
            TraceEventKind::PoolFree { .. } => "pool_free",
            TraceEventKind::Degraded { .. } => "degrade",
            TraceEventKind::PipelineFused { .. } => "fused",
            TraceEventKind::SpillOut { .. } => "spill_out",
            TraceEventKind::SpillIn { .. } => "spill_in",
            TraceEventKind::FaultInjected { .. } => "fault",
            TraceEventKind::Watchdog { .. } => "watchdog",
        }
    }
}

/// One timestamped event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened, relative to sink creation (query start).
    pub t: Duration,
    /// What happened.
    pub kind: TraceEventKind,
}

/// Default total event capacity of a [`TraceSink`].
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

const SHARDS: usize = 8;

/// A bounded, sharded event buffer shared by the scheduler thread and every
/// worker.
///
/// Recording takes one uncontended `parking_lot` lock on a shard picked by
/// the calling thread's id, so concurrent workers rarely collide. Each shard
/// holds at most `capacity / SHARDS` events; past that, events are counted
/// as dropped instead of growing without bound — a trace is a diagnostic,
/// not a ledger, and a runaway query must not OOM through its own telemetry.
#[derive(Debug)]
pub struct TraceSink {
    started: Instant,
    shards: Vec<Mutex<Vec<TraceEvent>>>,
    shard_capacity: usize,
    dropped: AtomicUsize,
    query: crate::query_id::QueryId,
}

impl TraceSink {
    /// A sink holding at most `capacity` events in total, attributed to the
    /// solo query id.
    pub fn new(capacity: usize) -> Arc<Self> {
        TraceSink::for_query(capacity, crate::query_id::QueryId::SOLO)
    }

    /// A sink attributed to `query` — the service gives each admitted query
    /// its own sink so frozen traces can be merged without ambiguity.
    pub fn for_query(capacity: usize, query: crate::query_id::QueryId) -> Arc<Self> {
        let shard_capacity = (capacity / SHARDS).max(1);
        Arc::new(TraceSink {
            started: Instant::now(),
            shards: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            shard_capacity,
            dropped: AtomicUsize::new(0),
            query,
        })
    }

    /// The query this sink's events are attributed to.
    pub fn query(&self) -> crate::query_id::QueryId {
        self.query
    }

    fn shard_index(&self) -> usize {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    /// Append one event, stamped with the elapsed time since sink creation.
    pub fn record(&self, kind: TraceEventKind) {
        let t = self.started.elapsed();
        let mut shard = self.shards[self.shard_index()].lock();
        if shard.len() >= self.shard_capacity {
            drop(shard);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        shard.push(TraceEvent { t, kind });
    }

    /// Time elapsed since the sink was created (query start).
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Events recorded so far across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// No events recorded?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped because the capacity was reached.
    pub fn dropped(&self) -> usize {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Drain every shard into a time-sorted [`Trace`]. `op_names` gives the
    /// display name of each operator by [`OpId`] (from the executed plan).
    pub fn finish(&self, op_names: Vec<String>) -> Trace {
        let mut events: Vec<TraceEvent> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            events.append(&mut shard.lock());
        }
        events.sort_by_key(|e| e.t);
        Trace {
            events,
            op_names,
            dropped: self.dropped(),
            query: self.query,
        }
    }
}

/// A finished, time-sorted capture of one query execution.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Events sorted by timestamp.
    pub events: Vec<TraceEvent>,
    /// Operator display names, indexed by [`OpId`].
    pub op_names: Vec<String>,
    /// Events lost to the capacity bound (0 in normal runs).
    pub dropped: usize,
    /// The query this trace belongs to ([`QueryId::SOLO`](crate::query_id::QueryId::SOLO)
    /// outside a service). Exporters use it as the process id when merging
    /// traces from concurrent queries.
    pub query: crate::query_id::QueryId,
}

impl Trace {
    /// Display name of `op` (falls back to `op<N>` for ids outside the plan).
    pub fn op_name(&self, op: OpId) -> String {
        self.op_names
            .get(op)
            .cloned()
            .unwrap_or_else(|| format!("op{op}"))
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// No events recorded?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Timestamp of the last event (the traced span of the query).
    pub fn span(&self) -> Duration {
        self.events.last().map(|e| e.t).unwrap_or(Duration::ZERO)
    }

    /// Highest worker id seen in finished work orders, plus one.
    pub fn workers(&self) -> usize {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::WorkOrderFinished { worker, .. } => Some(worker),
                _ => None,
            })
            .max()
            .map_or(0, |w| w + 1)
    }

    /// Count events matching `pred`.
    pub fn count(&self, pred: impl Fn(&TraceEventKind) -> bool) -> usize {
        self.events.iter().filter(|e| pred(&e.kind)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_sorts_events() {
        let sink = TraceSink::new(1024);
        sink.record(TraceEventKind::WorkOrderDispatched { seq: 0, op: 1 });
        sink.record(TraceEventKind::OperatorFinished { op: 1 });
        assert_eq!(sink.len(), 2);
        assert!(!sink.is_empty());
        let trace = sink.finish(vec!["build".into(), "select".into()]);
        assert_eq!(trace.len(), 2);
        assert!(trace.events.windows(2).all(|w| w[0].t <= w[1].t));
        assert_eq!(trace.op_name(1), "select");
        assert_eq!(trace.op_name(9), "op9");
        assert_eq!(trace.dropped, 0);
    }

    #[test]
    fn capacity_bounds_and_counts_drops() {
        // Tiny capacity: 8 shards of 1 event each. The calling thread always
        // lands in the same shard, so the second record from here drops.
        let sink = TraceSink::new(8);
        for _ in 0..5 {
            sink.record(TraceEventKind::OperatorFinished { op: 0 });
        }
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.dropped(), 4);
        let trace = sink.finish(vec![]);
        assert_eq!(trace.dropped, 4);
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let sink = TraceSink::new(1 << 14);
        std::thread::scope(|s| {
            for w in 0..4 {
                let sink = &sink;
                s.spawn(move || {
                    for i in 0..100 {
                        sink.record(TraceEventKind::WorkOrderDispatched {
                            seq: w * 100 + i,
                            op: w,
                        });
                    }
                });
            }
        });
        let trace = sink.finish(vec![]);
        assert_eq!(trace.len(), 400);
        assert!(trace.events.windows(2).all(|w| w[0].t <= w[1].t));
    }

    #[test]
    fn event_attribution_and_labels() {
        let k = TraceEventKind::TransferFlushed {
            producer: 3,
            consumer: 4,
            blocks: 2,
            bytes: 256,
            partial: true,
        };
        assert_eq!(k.op(), Some(3));
        assert_eq!(k.label(), "transfer");
        assert_eq!(
            TraceEventKind::PoolFree {
                bytes: 1,
                in_use: 0
            }
            .op(),
            None
        );
        assert_eq!(
            TraceEventKind::Degraded {
                from: Uot::Table,
                to: Uot::Blocks(1)
            }
            .label(),
            "degrade"
        );
        let fused = TraceEventKind::PipelineFused {
            pipeline: 0,
            head: 1,
            tail: 3,
            ops: 3,
            batches: 12,
            rows: 480,
            elapsed_us: 250,
        };
        assert_eq!(fused.op(), Some(1));
        assert_eq!(fused.label(), "fused");
        let out = TraceEventKind::SpillOut {
            op: 2,
            bytes: 4096,
            in_use: 1024,
        };
        assert_eq!(out.op(), Some(2));
        assert_eq!(out.label(), "spill_out");
        let back = TraceEventKind::SpillIn {
            op: 2,
            bytes: 4096,
            in_use: 5120,
        };
        assert_eq!(back.op(), Some(2));
        assert_eq!(back.label(), "spill_in");
        let stalled = TraceEventKind::Watchdog {
            kind: WatchdogKind::StalledEdge,
            producer: 4,
            consumer: 5,
            waited_us: 1_000_000,
        };
        assert_eq!(stalled.op(), Some(4), "stalled edge attributed to producer");
        assert_eq!(stalled.label(), "watchdog");
        let near = TraceEventKind::Watchdog {
            kind: WatchdogKind::DeadlineNear,
            producer: 0,
            consumer: 0,
            waited_us: 800_000,
        };
        assert_eq!(near.op(), None, "deadline flags are query-level");
    }

    #[test]
    fn per_query_sink_stamps_the_trace() {
        let q = crate::query_id::QueryId::new(7);
        let sink = TraceSink::for_query(64, q);
        assert_eq!(sink.query(), q);
        sink.record(TraceEventKind::OperatorFinished { op: 0 });
        let trace = sink.finish(vec!["select".into()]);
        assert_eq!(trace.query, q);
        // The default constructor stays attributed to the solo id.
        assert_eq!(
            TraceSink::new(64).finish(vec![]).query,
            crate::query_id::QueryId::SOLO
        );
    }

    #[test]
    fn workers_derived_from_finished_events() {
        let sink = TraceSink::new(64);
        sink.record(TraceEventKind::WorkOrderFinished {
            seq: 0,
            op: 0,
            worker: 2,
            start: Duration::ZERO,
            end: Duration::from_micros(5),
        });
        let trace = sink.finish(vec![]);
        assert_eq!(trace.workers(), 3);
        assert!(trace.span() >= Duration::ZERO);
        assert_eq!(
            trace.count(|k| matches!(k, TraceEventKind::WorkOrderFinished { .. })),
            1
        );
    }
}
