//! SQL compilation: text → [`Logical`] → physical [`QueryPlan`].
//!
//! The `uot-sql` crate owns lexing, parsing and binding; this module owns
//! the last mile, lowering the fully resolved [`Logical`] tree onto the
//! engine's operator algebra via [`PlanBuilder`]. The walk is mechanical —
//! every logical node maps to exactly one physical operator (a join maps to
//! its build + probe pair) — so a SQL statement and a hand-constructed plan
//! produce the same operator pipeline and byte-identical results.
//!
//! [`compile`] is the one-call front door used by
//! [`Engine::execute_sql`](crate::engine::Engine::execute_sql) and
//! [`QueryService::submit_sql`](crate::service::QueryService::submit_sql),
//! both of which memoize it through a [`PlanCache`](uot_sql::PlanCache).

use crate::plan::{JoinType, PlanBuilder, QueryPlan, SortKey, Source};
use crate::Result;
use uot_expr::Predicate;
use uot_sql::{JoinKind, Logical};
use uot_storage::Catalog;

/// Compile `sql` against `catalog` into an executable physical plan.
///
/// Frontend failures (lex/parse/bind) surface as [`EngineError::Sql`](crate::error::EngineError::Sql) with a
/// byte-span into `sql`; lowering itself cannot fail on binder-produced
/// trees, but plan-builder invariant violations would surface as their usual
/// [`EngineError`](crate::error::EngineError) variants.
pub fn compile(sql: &str, catalog: &Catalog) -> Result<QueryPlan> {
    let logical = uot_sql::plan(sql, catalog)?;
    lower(&logical)
}

/// Lower a resolved logical tree onto the physical operator algebra.
pub fn lower(logical: &Logical) -> Result<QueryPlan> {
    let mut pb = PlanBuilder::new();
    let sink = match lower_node(logical, &mut pb)? {
        Source::Op(id) => id,
        // The binder wraps bare scans in an identity select, but lower a
        // stray table source defensively rather than panicking.
        src @ Source::Table(_) => pb.filter(src, Predicate::True)?,
    };
    pb.build(sink)
}

fn lower_node(node: &Logical, pb: &mut PlanBuilder) -> Result<Source> {
    Ok(match node {
        Logical::Scan { table } => Source::Table(table.clone()),
        Logical::Select {
            input,
            predicate,
            projections,
            schema,
        } => {
            let src = lower_node(input, pb)?;
            let names: Vec<&str> = schema.columns().iter().map(|c| c.name.as_str()).collect();
            Source::Op(pb.select(src, predicate.clone(), projections.clone(), &names)?)
        }
        Logical::Filter { input, predicate } => {
            let src = lower_node(input, pb)?;
            Source::Op(pb.filter(src, predicate.clone())?)
        }
        Logical::Join {
            probe,
            build,
            probe_keys,
            build_keys,
            probe_out,
            build_payload,
            kind,
            ..
        } => {
            // Build side first: probe work orders only release once the hash
            // table exists, and builder ids are assigned bottom-up.
            let build_src = lower_node(build, pb)?;
            let b = pb.build_hash(build_src, build_keys.clone(), build_payload.clone())?;
            let probe_src = lower_node(probe, pb)?;
            let (join, build_out) = match kind {
                JoinKind::Inner => (JoinType::Inner, (0..build_payload.len()).collect()),
                JoinKind::Semi => (JoinType::Semi, Vec::new()),
                JoinKind::Anti => (JoinType::Anti, Vec::new()),
            };
            Source::Op(pb.probe(
                probe_src,
                b,
                probe_keys.clone(),
                probe_out.clone(),
                build_out,
                join,
            )?)
        }
        Logical::Aggregate {
            input,
            group_by,
            aggs,
            agg_names,
            ..
        } => {
            let src = lower_node(input, pb)?;
            let names: Vec<&str> = agg_names.iter().map(String::as_str).collect();
            Source::Op(pb.aggregate(src, group_by.clone(), aggs.clone(), &names)?)
        }
        Logical::Sort { input, keys, limit } => {
            let src = lower_node(input, pb)?;
            let keys = keys
                .iter()
                .map(|k| {
                    if k.desc {
                        SortKey::desc(k.col)
                    } else {
                        SortKey::asc(k.col)
                    }
                })
                .collect();
            Source::Op(pb.sort(src, keys, *limit)?)
        }
        Logical::Limit { input, n } => {
            let src = lower_node(input, pb)?;
            Source::Op(pb.limit(src, *n)?)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig};
    use crate::error::EngineError;
    use std::sync::Arc;
    use uot_storage::{BlockFormat, DataType, Schema, TableBuilder, Value};

    fn catalog() -> Arc<Catalog> {
        let c = Catalog::new();
        let s = Schema::from_pairs(&[("k", DataType::Int32), ("v", DataType::Float64)]);
        let mut tb = TableBuilder::new("fact", s, BlockFormat::Column, 96);
        for i in 0..200 {
            tb.append(&[Value::I32(i % 20), Value::F64(i as f64)])
                .unwrap();
        }
        c.register(tb.finish()).unwrap();
        let s = Schema::from_pairs(&[("k", DataType::Int32), ("name", DataType::Char(8))]);
        let mut tb = TableBuilder::new("dim", s, BlockFormat::Column, 1024);
        for i in 0..20 {
            tb.append(&[Value::I32(i), Value::Str(format!("n{i:02}"))])
                .unwrap();
        }
        c.register(tb.finish()).unwrap();
        c
    }

    #[test]
    fn compile_and_execute_filter_aggregate() {
        let cat = catalog();
        let plan = compile(
            "SELECT k, count(*) AS n, sum(v) AS s FROM fact WHERE k < 3 GROUP BY k ORDER BY k",
            &cat,
        )
        .unwrap();
        let r = Engine::new(EngineConfig::serial()).execute(plan).unwrap();
        let rows = r.rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0][0], Value::I32(0));
        assert_eq!(rows[0][1], Value::I64(10));
        let expect: f64 = (0..200).filter(|i| i % 20 == 0).map(|i| i as f64).sum();
        assert_eq!(rows[0][2], Value::F64(expect));
    }

    #[test]
    fn compile_and_execute_join() {
        let cat = catalog();
        let plan = compile(
            "SELECT name, count(*) AS n FROM fact, dim \
             WHERE fact.k = dim.k AND fact.k < 2 GROUP BY name ORDER BY name",
            &cat,
        )
        .unwrap();
        let r = Engine::new(EngineConfig::serial()).execute(plan).unwrap();
        let rows = r.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], Value::Str("n00".into()));
        assert_eq!(rows[0][1], Value::I64(10));
    }

    #[test]
    fn semi_join_executes() {
        let cat = catalog();
        let plan = compile(
            "SELECT count(*) AS n FROM dim WHERE k IN (SELECT k FROM fact WHERE v < 5.0)",
            &cat,
        )
        .unwrap();
        let r = Engine::new(EngineConfig::serial()).execute(plan).unwrap();
        // v < 5.0 keeps fact rows 0..5 with k = 0..5.
        assert_eq!(r.rows(), vec![vec![Value::I64(5)]]);
    }

    #[test]
    fn frontend_errors_surface_as_engine_sql_errors() {
        let cat = catalog();
        let e = compile("SELECT nope FROM fact", &cat).unwrap_err();
        match e {
            EngineError::Sql(pe) => {
                assert_eq!(pe.kind, uot_sql::PlanErrorKind::UnknownColumn);
                assert!(pe.span.is_some());
            }
            other => panic!("expected Sql error, got {other}"),
        }
    }
}
