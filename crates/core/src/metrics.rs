//! Execution metrics.
//!
//! Every figure in the paper's evaluation is a readout of scheduler-level
//! metrics: per-task (work-order) execution times (Fig. 5, Fig. 10, Table
//! VI), per-operator time shares (Fig. 3), chain/query wall times (Figs. 6-8,
//! 11), DOP behavior (Fig. 9) and memory footprints (Section VI). The engine
//! records them natively rather than relying on external profilers.

use crate::plan::OpId;
use crate::query_id::QueryId;
use crate::uot::Uot;
use std::time::Duration;
use uot_sql::PlanCacheOutcome;
use uot_storage::PoolStats;

/// One UoT degradation taken by the engine's
/// [`DegradePolicy`](crate::engine::DegradePolicy) after a budget failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Degradation {
    /// The UoT the failed attempt ran with.
    pub from: Uot,
    /// The lower UoT the retry ran with.
    pub to: Uot,
}

/// One executed work order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskRecord {
    /// Operator the task belonged to.
    pub op: OpId,
    /// Worker that ran it (0 in serial mode).
    pub worker: usize,
    /// Start, relative to query start.
    pub start: Duration,
    /// End, relative to query start.
    pub end: Duration,
}

impl TaskRecord {
    /// Task duration.
    pub fn duration(&self) -> Duration {
        self.end.saturating_sub(self.start)
    }
}

/// Aggregated metrics for one operator.
#[derive(Debug, Clone, Default)]
pub struct OperatorMetrics {
    /// Display name from the plan.
    pub name: String,
    /// Operator kind label ("select", "probe", ...).
    pub kind: String,
    /// Number of executed work orders.
    pub work_orders: usize,
    /// Sum of work-order durations (CPU-side operator time).
    pub total_task_time: Duration,
    /// Individual work-order durations.
    pub task_times: Vec<Duration>,
    /// Input blocks consumed.
    pub input_blocks: usize,
    /// Input rows consumed (rows in transferred blocks).
    pub input_rows: usize,
    /// Output blocks produced (completed + flushed partials).
    pub produced_blocks: usize,
    /// Output rows produced.
    pub produced_rows: usize,
    /// Output bytes produced (allocated bytes of completed blocks).
    pub produced_bytes: usize,
    /// Rows dropped by LIP Bloom filters at this operator (selects only).
    pub lip_pruned_rows: usize,
}

impl OperatorMetrics {
    /// Mean work-order duration; zero when no work ran.
    pub fn avg_task_time(&self) -> Duration {
        if self.work_orders == 0 {
            Duration::ZERO
        } else {
            self.total_task_time / self.work_orders as u32
        }
    }

    /// Longest work-order duration.
    pub fn max_task_time(&self) -> Duration {
        self.task_times
            .iter()
            .max()
            .copied()
            .unwrap_or(Duration::ZERO)
    }
}

/// Live-accumulated statistics of one transfer edge, indexed by its
/// producer operator. The per-edge half of `EXPLAIN ANALYZE`: occupancy,
/// stall and flush behavior of the UoT staging machinery.
#[derive(Debug, Clone, Default)]
pub struct EdgeMetrics {
    /// Consumer side of the edge (`None` for the sink edge).
    pub consumer: Option<OpId>,
    /// The edge's UoT threshold in blocks (`usize::MAX` = whole table).
    pub threshold: usize,
    /// Staging events observed (block batches held below the threshold).
    pub stalls: usize,
    /// Highest staged occupancy observed, blocks.
    pub max_staged: usize,
    /// Sum of staged occupancies over staging events (mean = `/ stalls`).
    pub sum_staged: usize,
    /// Threshold-triggered transfers.
    pub flushes: usize,
    /// End-of-producer partial flushes.
    pub partial_flushes: usize,
    /// Blocks moved across the edge.
    pub blocks: usize,
    /// Rows moved across the edge.
    pub rows: usize,
    /// Bytes moved across the edge.
    pub bytes: usize,
}

impl EdgeMetrics {
    /// Mean staged occupancy over staging events; zero when none occurred.
    pub fn mean_staged(&self) -> f64 {
        if self.stalls == 0 {
            0.0
        } else {
            self.sum_staged as f64 / self.stalls as f64
        }
    }
}

/// Metrics for one query execution.
#[derive(Debug, Clone, Default)]
pub struct QueryMetrics {
    /// The query these metrics belong to ([`QueryId::SOLO`] outside a
    /// service).
    pub query: QueryId,
    /// End-to-end wall time.
    pub wall_time: Duration,
    /// Per-operator aggregates, indexed by [`OpId`].
    pub ops: Vec<OperatorMetrics>,
    /// Per-edge transfer statistics, indexed by producer [`OpId`].
    pub edges: Vec<EdgeMetrics>,
    /// The full task log (chronological by start time).
    pub tasks: Vec<TaskRecord>,
    /// Peak bytes of temporary storage (pool blocks + hash tables).
    pub peak_temp_bytes: usize,
    /// Block-pool behavior counters.
    pub pool: PoolStats,
    /// Final size of each join hash table, by build operator.
    pub hash_table_bytes: Vec<(OpId, usize)>,
    /// Rows in the query result.
    pub result_rows: usize,
    /// Number of workers configured.
    pub workers: usize,
    /// UoT degradations taken to fit the memory budget (empty unless
    /// [`DegradePolicy::LowerUot`](crate::engine::DegradePolicy) kicked in).
    pub degradations: Vec<Degradation>,
    /// For SQL submissions: whether the physical plan came from the plan
    /// cache ([`PlanCacheOutcome::Hit`]) or was compiled fresh. `None` when
    /// the query was submitted as a pre-built plan.
    pub plan_cache: Option<PlanCacheOutcome>,
    /// Stream pipelines executed as fused push-based loops (UoT -> 0).
    pub fused_pipelines: usize,
    /// Stream pipelines executed via staged transfer edges.
    pub staged_pipelines: usize,
    /// Blocks evicted to the disk spill tier (0 without
    /// [`DegradePolicy::Spill`](crate::engine::DegradePolicy) or without
    /// memory pressure).
    pub spill_events: usize,
    /// Cumulative tracked bytes moved out to the disk tier.
    pub spilled_bytes: usize,
    /// Deepest grace-join re-partitioning recursion taken (0 = every
    /// partition fit on the first pass).
    pub respill_depth: usize,
}

impl QueryMetrics {
    /// Operators ordered by their share of total operator time — the paper's
    /// Fig. 3 "dominant operator" analysis. Returns `(op id, name, fraction)`
    /// with fractions of the summed task time.
    pub fn dominant_operators(&self) -> Vec<(OpId, String, f64)> {
        let total: f64 = self
            .ops
            .iter()
            .map(|o| o.total_task_time.as_secs_f64())
            .sum();
        let mut v: Vec<(OpId, String, f64)> = self
            .ops
            .iter()
            .enumerate()
            .map(|(id, o)| {
                let frac = if total > 0.0 {
                    o.total_task_time.as_secs_f64() / total
                } else {
                    0.0
                };
                (id, o.name.clone(), frac)
            })
            .collect();
        v.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
        v
    }

    /// Maximum number of concurrently executing work orders of `op` — the
    /// realized degree of parallelism (Section IV-C of the paper).
    pub fn max_dop(&self, op: OpId) -> usize {
        // Sweep task start/end events.
        let mut events: Vec<(Duration, i32)> = Vec::new();
        for t in self.tasks.iter().filter(|t| t.op == op) {
            events.push((t.start, 1));
            events.push((t.end, -1));
        }
        events.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut cur = 0i32;
        let mut max = 0i32;
        for (_, d) in events {
            cur += d;
            max = max.max(cur);
        }
        max.max(0) as usize
    }

    /// An ASCII schedule of work orders over time — the shape Fig. 2 of the
    /// paper draws. One line per worker; each character cell is one time
    /// bucket showing the operator id (mod 10) that ran there, `.` for idle.
    pub fn schedule_text(&self, buckets: usize) -> String {
        if self.tasks.is_empty() || buckets == 0 {
            return String::new();
        }
        let end = self
            .tasks
            .iter()
            .map(|t| t.end)
            .max()
            .unwrap_or(Duration::ZERO)
            .as_secs_f64()
            .max(1e-9);
        // One lane per worker. The lane count is clamped from both sides:
        // every *configured* worker gets a lane (idle workers render as all
        // dots instead of vanishing when fewer tasks than workers ran), and a
        // task record can never index past the grid even if its worker id
        // exceeds the configured count.
        let seen = self
            .tasks
            .iter()
            .map(|t| t.worker.saturating_add(1))
            .max()
            .unwrap_or(0);
        let lanes = self.workers.max(seen).max(1);
        let mut grid = vec![vec!['.'; buckets]; lanes];
        for t in &self.tasks {
            let lane = t.worker.min(lanes - 1);
            let b0 = (((t.start.as_secs_f64() / end) * buckets as f64) as usize).min(buckets - 1);
            // Paint at least one cell so sub-bucket tasks stay visible.
            let b1 = (((t.end.as_secs_f64() / end) * buckets as f64).ceil() as usize)
                .clamp(b0 + 1, buckets);
            let ch = char::from_digit((t.op % 10) as u32, 10).unwrap_or('?');
            for cell in grid[lane].iter_mut().take(b1).skip(b0) {
                *cell = ch;
            }
        }
        let mut out = String::new();
        for (w, row) in grid.iter().enumerate() {
            out.push_str(&format!("w{w:02} |"));
            out.extend(row.iter());
            out.push('\n');
        }
        out
    }

    /// Total operator (CPU) time across all work orders.
    pub fn total_task_time(&self) -> Duration {
        self.ops.iter().map(|o| o.total_task_time).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn sample() -> QueryMetrics {
        QueryMetrics {
            wall_time: ms(100),
            ops: vec![
                OperatorMetrics {
                    name: "select(t)".into(),
                    kind: "select".into(),
                    work_orders: 2,
                    total_task_time: ms(60),
                    task_times: vec![ms(40), ms(20)],
                    ..Default::default()
                },
                OperatorMetrics {
                    name: "probe(t)".into(),
                    kind: "probe".into(),
                    work_orders: 1,
                    total_task_time: ms(40),
                    task_times: vec![ms(40)],
                    ..Default::default()
                },
            ],
            tasks: vec![
                TaskRecord {
                    op: 0,
                    worker: 0,
                    start: ms(0),
                    end: ms(40),
                },
                TaskRecord {
                    op: 0,
                    worker: 1,
                    start: ms(10),
                    end: ms(30),
                },
                TaskRecord {
                    op: 1,
                    worker: 0,
                    start: ms(40),
                    end: ms(80),
                },
            ],
            ..Default::default()
        }
    }

    #[test]
    fn task_duration() {
        let t = TaskRecord {
            op: 0,
            worker: 0,
            start: ms(10),
            end: ms(25),
        };
        assert_eq!(t.duration(), ms(15));
    }

    #[test]
    fn averages() {
        let m = sample();
        assert_eq!(m.ops[0].avg_task_time(), ms(30));
        assert_eq!(m.ops[0].max_task_time(), ms(40));
        assert_eq!(OperatorMetrics::default().avg_task_time(), Duration::ZERO);
        assert_eq!(m.total_task_time(), ms(100));
    }

    #[test]
    fn dominant_operator_fractions() {
        let m = sample();
        let d = m.dominant_operators();
        assert_eq!(d[0].0, 0);
        assert!((d[0].2 - 0.6).abs() < 1e-9);
        assert!((d[1].2 - 0.4).abs() < 1e-9);
    }

    #[test]
    fn dominant_with_no_time_is_zero() {
        let m = QueryMetrics {
            ops: vec![OperatorMetrics::default()],
            ..Default::default()
        };
        assert_eq!(m.dominant_operators()[0].2, 0.0);
    }

    #[test]
    fn max_dop_counts_overlap() {
        let m = sample();
        assert_eq!(m.max_dop(0), 2); // two select tasks overlap from 10-30
        assert_eq!(m.max_dop(1), 1);
        assert_eq!(m.max_dop(7), 0); // no tasks
    }

    #[test]
    fn schedule_text_shape() {
        let m = sample();
        let s = m.schedule_text(16);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2); // two workers
        assert!(lines[0].starts_with("w00 |"));
        assert!(lines[0].contains('0')); // select ran on worker 0
        assert!(lines[0].contains('1')); // probe ran on worker 0
        assert!(lines[1].contains('0'));
        // empty metrics -> empty schedule
        assert!(QueryMetrics::default().schedule_text(8).is_empty());
    }

    #[test]
    fn schedule_text_overwide_worker_count() {
        // More configured workers than workers that ever ran a task: every
        // configured worker still gets a lane, idle ones all dots.
        let m = QueryMetrics {
            workers: 4,
            tasks: vec![TaskRecord {
                op: 3,
                worker: 0,
                start: ms(0),
                end: ms(10),
            }],
            ..Default::default()
        };
        let s = m.schedule_text(8);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('3'));
        for idle in &lines[1..] {
            assert!(idle.ends_with(&".".repeat(8)), "idle lane garbled: {idle}");
        }
    }

    #[test]
    fn schedule_text_zero_duration_task_paints_a_cell() {
        let m = QueryMetrics {
            workers: 1,
            tasks: vec![
                TaskRecord {
                    op: 1,
                    worker: 0,
                    start: ms(0),
                    end: ms(100),
                },
                TaskRecord {
                    op: 5,
                    worker: 0,
                    start: ms(100),
                    end: ms(100),
                },
            ],
            ..Default::default()
        };
        // The instantaneous task at the very end of the span must still show
        // up somewhere instead of indexing past the grid.
        let s = m.schedule_text(4);
        assert!(s.contains('5'), "zero-duration task vanished: {s}");
    }

    #[test]
    fn schedule_text_stray_worker_id_is_clamped() {
        // A record whose worker id exceeds the configured count lands on the
        // last lane instead of panicking.
        let m = QueryMetrics {
            workers: 2,
            tasks: vec![TaskRecord {
                op: 7,
                worker: 9,
                start: ms(0),
                end: ms(5),
            }],
            ..Default::default()
        };
        let s = m.schedule_text(4);
        assert_eq!(s.lines().count(), 10, "lanes grow to cover seen ids");
        assert!(s.contains('7'));
    }
}
