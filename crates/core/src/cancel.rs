//! Cooperative query cancellation.
//!
//! A [`CancellationToken`] is a shared atomic flag: the scheduler checks it
//! at every dispatch decision and block-loop operators check it between
//! blocks, so a tripped token stops the query at the next safe point — no
//! thread is ever interrupted mid-block. Deadlines
//! ([`SchedulerConfig::deadline`](crate::scheduler::SchedulerConfig)) are
//! implemented on top of the same flag: the driver trips its own token once
//! the deadline elapses.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Shared flag requesting that a running query stop at the next safe point.
///
/// Cloning is cheap (an `Arc` bump); every clone observes the same flag.
/// Tripping the token is sticky — there is deliberately no `reset`, a token
/// belongs to one query execution.
#[derive(Debug, Clone, Default)]
pub struct CancellationToken {
    flag: Arc<AtomicBool>,
}

impl CancellationToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        CancellationToken::default()
    }

    /// Request cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_untripped_and_trips_sticky() {
        let t = CancellationToken::new();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
        t.cancel(); // idempotent
        assert!(t.is_cancelled());
    }

    #[test]
    fn clones_share_the_flag() {
        let t = CancellationToken::new();
        let c = t.clone();
        t.cancel();
        assert!(c.is_cancelled());
    }

    #[test]
    fn visible_across_threads() {
        let t = CancellationToken::new();
        let c = t.clone();
        std::thread::scope(|s| {
            s.spawn(move || c.cancel());
        });
        assert!(t.is_cancelled());
    }
}
