//! Per-edge UoT-occupancy timelines and per-operator task-time
//! distributions — the data behind the paper's Fig. 3 (operator time
//! shares) and Fig. 5 (per-task execution times), regenerated from a
//! [`Trace`] instead of ad-hoc instrumentation.

use crate::plan::OpId;
use crate::trace::{Trace, TraceEventKind};
use std::collections::BTreeMap;
use std::fmt::Write;
use std::time::Duration;

/// The UoT occupancy of one transfer edge over time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeTimeline {
    /// Producer side of the edge.
    pub producer: OpId,
    /// Consumer side of the edge.
    pub consumer: OpId,
    /// The edge's UoT threshold in blocks (`usize::MAX` = whole table);
    /// taken from the first staging event seen.
    pub threshold: usize,
    /// `(timestamp, staged blocks)` samples: one per staging event, plus a
    /// zero sample at every flush (the edge empties).
    pub points: Vec<(Duration, usize)>,
    /// `(timestamp, blocks, bytes, partial)` per flush over this edge.
    pub flushes: Vec<(Duration, usize, usize, bool)>,
}

impl EdgeTimeline {
    /// Peak staged occupancy.
    pub fn peak_staged(&self) -> usize {
        self.points.iter().map(|&(_, s)| s).max().unwrap_or(0)
    }

    /// Total bytes flushed over this edge.
    pub fn total_bytes(&self) -> usize {
        self.flushes.iter().map(|&(_, _, b, _)| b).sum()
    }

    /// Render as CSV (`t_us,staged` per line) for plotting.
    pub fn to_csv(&self, trace: &Trace) -> String {
        let mut out = format!(
            "# edge {} -> {} (threshold {})\nt_us,staged\n",
            trace.op_name(self.producer),
            trace.op_name(self.consumer),
            if self.threshold == usize::MAX {
                "table".to_string()
            } else {
                self.threshold.to_string()
            }
        );
        for (t, staged) in &self.points {
            let _ = writeln!(out, "{:.3},{}", t.as_secs_f64() * 1e6, staged);
        }
        out
    }
}

/// Extract the occupancy timeline of every transfer edge seen in `trace`,
/// ordered by `(producer, consumer)`.
pub fn uot_timelines(trace: &Trace) -> Vec<EdgeTimeline> {
    fn entry(
        edges: &mut BTreeMap<(OpId, OpId), EdgeTimeline>,
        producer: OpId,
        consumer: OpId,
        threshold: Option<usize>,
    ) -> &mut EdgeTimeline {
        let e = edges
            .entry((producer, consumer))
            .or_insert_with(|| EdgeTimeline {
                producer,
                consumer,
                threshold: 0,
                points: Vec::new(),
                flushes: Vec::new(),
            });
        if e.threshold == 0 {
            e.threshold = threshold.unwrap_or(0);
        }
        e
    }
    let mut edges: BTreeMap<(OpId, OpId), EdgeTimeline> = BTreeMap::new();
    for e in &trace.events {
        match e.kind {
            TraceEventKind::EdgeStaged {
                producer,
                consumer,
                staged,
                threshold,
            } => {
                entry(&mut edges, producer, consumer, Some(threshold))
                    .points
                    .push((e.t, staged));
            }
            TraceEventKind::TransferFlushed {
                producer,
                consumer,
                blocks,
                bytes,
                partial,
            } => {
                let edge = entry(&mut edges, producer, consumer, None);
                edge.points.push((e.t, 0));
                edge.flushes.push((e.t, blocks, bytes, partial));
            }
            _ => {}
        }
    }
    edges.into_values().collect()
}

/// Per-operator task-time samples (the paper's Fig. 5 distribution data),
/// indexed by [`OpId`]. Operators that ran no work orders get empty vectors.
pub fn operator_task_times(trace: &Trace) -> Vec<Vec<Duration>> {
    let n = trace
        .events
        .iter()
        .filter_map(|e| e.kind.op())
        .max()
        .map_or(trace.op_names.len(), |m| (m + 1).max(trace.op_names.len()));
    let mut times = vec![Vec::new(); n];
    for e in &trace.events {
        if let TraceEventKind::WorkOrderFinished { op, start, end, .. } = e.kind {
            times[op].push(end.saturating_sub(start));
        }
    }
    times
}

/// Each operator's share of the summed task time (the paper's Fig. 3),
/// as `(op, name, fraction)` sorted by descending share.
pub fn operator_time_shares(trace: &Trace) -> Vec<(OpId, String, f64)> {
    let times = operator_task_times(trace);
    let totals: Vec<f64> = times
        .iter()
        .map(|ts| ts.iter().map(|d| d.as_secs_f64()).sum())
        .collect();
    let sum: f64 = totals.iter().sum();
    let mut shares: Vec<(OpId, String, f64)> = totals
        .iter()
        .enumerate()
        .map(|(op, &t)| {
            let frac = if sum > 0.0 { t / sum } else { 0.0 };
            (op, trace.op_name(op), frac)
        })
        .collect();
    shares.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
    shares
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;

    fn us(n: u64) -> Duration {
        Duration::from_micros(n)
    }

    fn staged(t: u64, staged: usize) -> TraceEvent {
        TraceEvent {
            t: us(t),
            kind: TraceEventKind::EdgeStaged {
                producer: 0,
                consumer: 1,
                staged,
                threshold: 3,
            },
        }
    }

    #[test]
    fn timeline_tracks_occupancy_and_flushes() {
        let trace = Trace {
            events: vec![
                staged(1, 1),
                staged(2, 2),
                TraceEvent {
                    t: us(3),
                    kind: TraceEventKind::TransferFlushed {
                        producer: 0,
                        consumer: 1,
                        blocks: 3,
                        bytes: 300,
                        partial: false,
                    },
                },
                staged(4, 1),
                TraceEvent {
                    t: us(5),
                    kind: TraceEventKind::TransferFlushed {
                        producer: 0,
                        consumer: 1,
                        blocks: 1,
                        bytes: 100,
                        partial: true,
                    },
                },
            ],
            query: crate::query_id::QueryId::SOLO,
            op_names: vec!["select".into(), "agg".into()],
            dropped: 0,
        };
        let tls = uot_timelines(&trace);
        assert_eq!(tls.len(), 1);
        let tl = &tls[0];
        assert_eq!(tl.threshold, 3);
        assert_eq!(tl.peak_staged(), 2);
        assert_eq!(tl.total_bytes(), 400);
        assert_eq!(tl.flushes.len(), 2);
        assert!(tl.flushes[1].3, "second flush is the partial one");
        // Occupancy returns to zero after each flush.
        assert_eq!(tl.points.last(), Some(&(us(5), 0)));
        let csv = tl.to_csv(&trace);
        assert!(csv.contains("select -> agg"));
        assert!(csv.lines().count() > 3);
    }

    #[test]
    fn task_times_and_shares() {
        let fin = |op: OpId, start: u64, end: u64| TraceEvent {
            t: us(end),
            kind: TraceEventKind::WorkOrderFinished {
                seq: 0,
                op,
                worker: 0,
                start: us(start),
                end: us(end),
            },
        };
        let trace = Trace {
            events: vec![fin(0, 0, 30), fin(0, 30, 60), fin(1, 60, 100)],
            query: crate::query_id::QueryId::SOLO,
            op_names: vec!["select".into(), "probe".into()],
            dropped: 0,
        };
        let times = operator_task_times(&trace);
        assert_eq!(times[0].len(), 2);
        assert_eq!(times[1], vec![us(40)]);
        let shares = operator_time_shares(&trace);
        assert_eq!(shares[0].0, 0);
        assert!((shares[0].2 - 0.6).abs() < 1e-9);
        assert!((shares[1].2 - 0.4).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_gives_empty_views() {
        let trace = Trace::default();
        assert!(uot_timelines(&trace).is_empty());
        assert!(operator_task_times(&trace).is_empty());
        assert!(operator_time_shares(&trace).is_empty());
    }
}
