//! Dependency-free HTTP introspection endpoint.
//!
//! A minimal blocking HTTP/1.1 server on [`std::net::TcpListener`] — no new
//! crates — owned by the [`QueryService`](crate::service::QueryService) and
//! serving three plain-text routes:
//!
//! * `GET /metrics` — live Prometheus exposition: the
//!   [`MetricsHub`](crate::obs::hub::MetricsHub) counters and histograms via
//!   [`prometheus_from_hub`](crate::obs::prometheus::prometheus_from_hub),
//!   plus service-level gauges (active/queued queries, reserved and resident
//!   bytes, uptime).
//! * `GET /queries` — the live per-query table from the
//!   [`LiveRegistry`](crate::obs::live::LiveRegistry): state, work-order
//!   progress, reserved vs. resident bytes, spill events, age.
//! * `GET /healthz` — `ok`.
//!
//! The accept loop runs on its own thread with a non-blocking listener and a
//! short sleep, so shutdown needs no self-connect trick: the service flips
//! the stop flag and joins.

use crate::obs::hub::MetricsHub;
use crate::obs::live::LiveRegistry;
use crate::obs::prometheus::prometheus_from_hub;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use uot_storage::MemoryTracker;

/// Shared state the endpoint reads — everything is concurrently updated by
/// the scheduler thread and read here without coordination beyond atomics
/// and the registry's short mutex.
#[derive(Debug)]
pub struct ServerState {
    /// The service's metrics hub.
    pub hub: Arc<MetricsHub>,
    /// The service's live query registry.
    pub registry: Arc<LiveRegistry>,
    /// The service's root memory tracker (in-use bytes gauge).
    pub tracker: Arc<MemoryTracker>,
    /// Service start time (uptime gauge).
    pub started: Instant,
}

impl ServerState {
    /// The `/metrics` payload: hub counters + histograms, then the
    /// service-level gauges.
    pub fn metrics_text(&self) -> String {
        let mut out = prometheus_from_hub(&self.hub.snapshot());
        let (running, queued) = self.registry.counts();
        let reserved: usize = self.registry.running().iter().map(|q| q.reservation).sum();
        let gauges: [(&str, &str, f64); 5] = [
            (
                "uot_service_active_queries",
                "Queries currently executing",
                running as f64,
            ),
            (
                "uot_service_queued_queries",
                "Submissions waiting in the admission queue",
                queued as f64,
            ),
            (
                "uot_service_reserved_bytes",
                "Admission reservations of active queries",
                reserved as f64,
            ),
            (
                "uot_service_memory_in_use_bytes",
                "Tracked bytes currently in use",
                self.tracker.current_bytes() as f64,
            ),
            (
                "uot_service_uptime_seconds",
                "Seconds since the service started",
                self.started.elapsed().as_secs_f64(),
            ),
        ];
        for (name, help, v) in gauges {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {v}\n"
            ));
        }
        out
    }
}

/// The introspection endpoint: a listener thread serving [`ServerState`].
#[derive(Debug)]
pub struct IntrospectionServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl IntrospectionServer {
    /// Bind `127.0.0.1:port` (0 = ephemeral) and start serving `state`.
    pub fn start(port: u16, state: Arc<ServerState>) -> std::io::Result<IntrospectionServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let thread = std::thread::Builder::new()
            .name("uot-introspect".into())
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => serve_one(stream, &state),
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(10)),
                    }
                }
            })?;
        Ok(IntrospectionServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (the actual port when started with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join its thread.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for IntrospectionServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Handle one connection: parse the request line, answer, close.
fn serve_one(mut stream: TcpStream, state: &ServerState) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    // Read until the end of the request head (or the buffer fills). The
    // routes take no bodies, so everything past the request line is ignored.
    let mut buf = [0u8; 4096];
    let mut len = 0;
    while len < buf.len() {
        match stream.read(&mut buf[len..]) {
            Ok(0) => break,
            Ok(n) => {
                len += n;
                if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf[..len]);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, body) = if method != "GET" {
        ("405 Method Not Allowed", "method not allowed\n".to_string())
    } else {
        match path {
            "/healthz" => ("200 OK", "ok\n".to_string()),
            "/metrics" => ("200 OK", state.metrics_text()),
            "/queries" => ("200 OK", state.registry.render_table()),
            _ => ("404 Not Found", "not found\n".to_string()),
        }
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::live::LiveQuery;
    use crate::query_id::QueryId;

    fn state() -> Arc<ServerState> {
        let registry = Arc::new(LiveRegistry::new());
        registry.admit(LiveQuery::new(
            QueryId::new(1),
            "agg".into(),
            1 << 20,
            None,
            MemoryTracker::new(),
            None,
            2,
        ));
        Arc::new(ServerState {
            hub: Arc::new(MetricsHub::new()),
            registry,
            tracker: MemoryTracker::new(),
            started: Instant::now(),
        })
    }

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        let (head, body) = resp.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_all_routes_on_an_ephemeral_port() {
        let mut server = IntrospectionServer::start(0, state()).unwrap();
        let addr = server.addr();
        assert_ne!(addr.port(), 0);

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "ok\n");

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("uot_hub_work_orders_total"), "{body}");
        assert!(body.contains("uot_service_active_queries 1"), "{body}");
        assert!(body.contains("# TYPE uot_service_uptime_seconds gauge"));

        let (head, body) = get(addr, "/queries");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("q1"), "{body}");
        assert!(body.contains("running"), "{body}");

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        server.shutdown();
        assert!(
            TcpStream::connect(addr).is_err() || {
                // The OS may accept briefly after close on some platforms; a
                // second connect must fail once the listener is gone.
                std::thread::sleep(Duration::from_millis(50));
                TcpStream::connect(addr).is_err()
            }
        );
    }
}
