//! Live per-query status: the registry behind `/queries` and the watchdog.
//!
//! Each admitted query gets a [`LiveQuery`] record of lock-free atomics,
//! updated from the scheduler thread by
//! [`HubObserver`](crate::obs::hub::HubObserver) and read concurrently by
//! the HTTP endpoint and the watchdog thread. Queued submissions appear as
//! lightweight [`QueuedEntry`]s so `/queries` shows the admission queue too.

use crate::obs::hub::{HubCounter, MetricsHub};
use crate::plan::OpId;
use crate::query_id::QueryId;
use crate::trace::{TraceEventKind, TraceSink, WatchdogKind};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use uot_storage::MemoryTracker;

/// Lifecycle of a registry entry, rendered in the `/queries` state column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum LiveState {
    /// Admitted and executing.
    Running = 0,
    /// Cancelled (explicitly or by deadline); draining in-flight work.
    Cancelling = 1,
}

/// Watch state of one transfer edge, keyed by its producer operator.
#[derive(Debug)]
pub struct EdgeWatch {
    /// Consumer operator (`usize::MAX` until first observed).
    consumer: AtomicUsize,
    /// Blocks currently staged below the UoT threshold.
    staged: AtomicUsize,
    /// The edge's UoT threshold in blocks.
    threshold: AtomicUsize,
    /// Microseconds (since query start) of the last staging/flush event.
    last_change_us: AtomicU64,
    /// Whether the watchdog already flagged the current stall.
    flagged: AtomicBool,
}

impl EdgeWatch {
    fn new() -> Self {
        EdgeWatch {
            consumer: AtomicUsize::new(usize::MAX),
            staged: AtomicUsize::new(0),
            threshold: AtomicUsize::new(0),
            last_change_us: AtomicU64::new(0),
            flagged: AtomicBool::new(false),
        }
    }
}

/// Live status of one admitted query — all atomics, written from the
/// scheduler thread, read from the HTTP and watchdog threads.
#[derive(Debug)]
pub struct LiveQuery {
    /// Service-assigned query id.
    pub id: QueryId,
    /// Display label (the plan's sink operator name).
    pub label: String,
    /// The query's admission reservation, bytes.
    pub reservation: usize,
    /// Optional per-query deadline (relative to admission).
    pub deadline: Option<Duration>,
    /// Admission time; every relative timestamp below counts from it.
    pub started: Instant,
    /// The query's own memory tracker (resident bytes).
    tracker: Arc<MemoryTracker>,
    /// The query's trace sink, when tracing — watchdog flags are recorded
    /// into it as structured events.
    sink: Option<Arc<TraceSink>>,
    state: AtomicU8,
    dispatched: AtomicUsize,
    completed: AtomicUsize,
    rows: AtomicUsize,
    spill_events: AtomicUsize,
    /// Per-producer edge watch state, sized to the plan.
    edges: Box<[EdgeWatch]>,
    deadline_flagged: AtomicBool,
}

impl LiveQuery {
    /// A fresh record for an admitted query with `ops` plan operators.
    pub fn new(
        id: QueryId,
        label: String,
        reservation: usize,
        deadline: Option<Duration>,
        tracker: Arc<MemoryTracker>,
        sink: Option<Arc<TraceSink>>,
        ops: usize,
    ) -> Arc<Self> {
        Arc::new(LiveQuery {
            id,
            label,
            reservation,
            deadline,
            started: Instant::now(),
            tracker,
            sink,
            state: AtomicU8::new(LiveState::Running as u8),
            dispatched: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            rows: AtomicUsize::new(0),
            spill_events: AtomicUsize::new(0),
            edges: (0..ops).map(|_| EdgeWatch::new()).collect(),
            deadline_flagged: AtomicBool::new(false),
        })
    }

    /// Mark the query as cancelling (deadline or explicit cancel).
    pub fn set_cancelling(&self) {
        self.state
            .store(LiveState::Cancelling as u8, Ordering::Relaxed);
    }

    /// Work orders dispatched so far.
    pub fn dispatched(&self) -> usize {
        self.dispatched.load(Ordering::Relaxed)
    }

    /// Work orders completed so far.
    pub fn completed(&self) -> usize {
        self.completed.load(Ordering::Relaxed)
    }

    /// Output rows produced so far.
    pub fn rows(&self) -> usize {
        self.rows.load(Ordering::Relaxed)
    }

    /// Spill writes so far.
    pub fn spill_events(&self) -> usize {
        self.spill_events.load(Ordering::Relaxed)
    }

    /// Bytes currently resident in the query's pool.
    pub fn resident_bytes(&self) -> usize {
        self.tracker.current_bytes()
    }

    fn state_label(&self) -> &'static str {
        if self.state.load(Ordering::Relaxed) == LiveState::Cancelling as u8 {
            "cancelling"
        } else {
            "running"
        }
    }

    pub(crate) fn on_dispatched(&self) {
        self.dispatched.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_completed(&self) {
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_rows(&self, rows: usize) {
        self.rows.fetch_add(rows, Ordering::Relaxed);
    }

    /// Record a spill write (called from the spill hook's I/O thread).
    pub fn on_spill(&self) {
        self.spill_events.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_edge_staged(
        &self,
        producer: OpId,
        consumer: OpId,
        staged: usize,
        threshold: usize,
    ) {
        let e = &self.edges[producer];
        e.consumer.store(consumer, Ordering::Relaxed);
        e.staged.store(staged, Ordering::Relaxed);
        e.threshold.store(threshold, Ordering::Relaxed);
        e.last_change_us
            .store(self.started.elapsed().as_micros() as u64, Ordering::Relaxed);
        e.flagged.store(false, Ordering::Relaxed);
    }

    pub(crate) fn on_edge_flushed(&self, producer: OpId) {
        let e = &self.edges[producer];
        e.staged.store(0, Ordering::Relaxed);
        e.last_change_us
            .store(self.started.elapsed().as_micros() as u64, Ordering::Relaxed);
        e.flagged.store(false, Ordering::Relaxed);
    }

    /// One watchdog pass over this query: flag edges that have held staged
    /// blocks unchanged past `stall_timeout`, and (once) a query past
    /// `deadline_fraction` of its deadline. Each flag is a hub counter and,
    /// when tracing, a structured [`TraceEventKind::Watchdog`] event.
    /// Returns the number of new flags raised.
    pub fn watchdog_pass(
        &self,
        hub: &MetricsHub,
        stall_timeout: Duration,
        deadline_fraction: f64,
    ) -> usize {
        let mut raised = 0;
        let now_us = self.started.elapsed().as_micros() as u64;
        for (producer, e) in self.edges.iter().enumerate() {
            if e.staged.load(Ordering::Relaxed) == 0 {
                continue;
            }
            let waited_us = now_us.saturating_sub(e.last_change_us.load(Ordering::Relaxed));
            if waited_us < stall_timeout.as_micros() as u64 {
                continue;
            }
            if e.flagged.swap(true, Ordering::Relaxed) {
                continue; // already flagged this stall
            }
            hub.add(HubCounter::WatchdogStalledEdges, 1);
            if let Some(sink) = &self.sink {
                sink.record(TraceEventKind::Watchdog {
                    kind: WatchdogKind::StalledEdge,
                    producer,
                    consumer: e.consumer.load(Ordering::Relaxed),
                    waited_us,
                });
            }
            raised += 1;
        }
        if let Some(deadline) = self.deadline {
            let elapsed = self.started.elapsed();
            if elapsed.as_secs_f64() >= deadline.as_secs_f64() * deadline_fraction
                && !self.deadline_flagged.swap(true, Ordering::Relaxed)
            {
                hub.add(HubCounter::WatchdogDeadline, 1);
                if let Some(sink) = &self.sink {
                    sink.record(TraceEventKind::Watchdog {
                        kind: WatchdogKind::DeadlineNear,
                        producer: 0,
                        consumer: 0,
                        waited_us: elapsed.as_micros() as u64,
                    });
                }
                raised += 1;
            }
        }
        raised
    }
}

/// Configuration of the watchdog thread a
/// [`QueryService`](crate::service::QueryService) runs over its
/// [`LiveRegistry`]: each pass flags stalled transfer edges and queries
/// close to their deadline as structured
/// [`Watchdog`](crate::trace::TraceEventKind::Watchdog) trace events and
/// [`MetricsHub`] counters.
#[derive(Debug, Clone, Copy)]
pub struct WatchdogConfig {
    /// Run the watchdog thread at all.
    pub enabled: bool,
    /// How often the watchdog scans the registry.
    pub poll_interval: Duration,
    /// A transfer edge holding staged blocks with no activity for this long
    /// is flagged as stalled (once per stall; edge activity re-arms it).
    pub stall_timeout: Duration,
    /// A query past this fraction of its deadline is flagged (once).
    pub deadline_fraction: f64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            enabled: true,
            poll_interval: Duration::from_millis(100),
            stall_timeout: Duration::from_secs(1),
            deadline_fraction: 0.8,
        }
    }
}

/// A submission waiting in the admission queue.
#[derive(Debug)]
pub struct QueuedEntry {
    /// The reservation it is waiting for.
    pub reservation: usize,
    /// When it was queued.
    pub since: Instant,
}

#[derive(Debug)]
enum Entry {
    Queued(QueuedEntry),
    Running(Arc<LiveQuery>),
}

/// The service-wide registry of live queries, shared by the scheduler
/// thread (writes), the HTTP endpoint and the watchdog thread (reads).
#[derive(Debug, Default)]
pub struct LiveRegistry {
    entries: Mutex<BTreeMap<u64, Entry>>,
}

impl LiveRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A submission entered the admission queue.
    pub fn enqueue(&self, id: QueryId, reservation: usize) {
        self.entries.lock().insert(
            id.raw(),
            Entry::Queued(QueuedEntry {
                reservation,
                since: Instant::now(),
            }),
        );
    }

    /// A query was admitted (replaces any queued entry under the same id).
    pub fn admit(&self, live: Arc<LiveQuery>) {
        self.entries
            .lock()
            .insert(live.id.raw(), Entry::Running(live));
    }

    /// A query finished (or a queued submission was rejected).
    pub fn remove(&self, id: QueryId) {
        self.entries.lock().remove(&id.raw());
    }

    /// `(running, queued)` entry counts.
    pub fn counts(&self) -> (usize, usize) {
        let entries = self.entries.lock();
        let running = entries
            .values()
            .filter(|e| matches!(e, Entry::Running(_)))
            .count();
        (running, entries.len() - running)
    }

    /// Snapshot the running queries (watchdog and tests).
    pub fn running(&self) -> Vec<Arc<LiveQuery>> {
        self.entries
            .lock()
            .values()
            .filter_map(|e| match e {
                Entry::Running(q) => Some(q.clone()),
                Entry::Queued(_) => None,
            })
            .collect()
    }

    /// One watchdog pass over every running query; returns flags raised.
    pub fn watchdog_pass(
        &self,
        hub: &MetricsHub,
        stall_timeout: Duration,
        deadline_fraction: f64,
    ) -> usize {
        self.running()
            .iter()
            .map(|q| q.watchdog_pass(hub, stall_timeout, deadline_fraction))
            .sum()
    }

    /// Render the `/queries` table: one row per live query, aligned columns.
    pub fn render_table(&self) -> String {
        let entries = self.entries.lock();
        let mut rows: Vec<[String; 8]> = Vec::with_capacity(entries.len());
        for (id, e) in entries.iter() {
            match e {
                Entry::Queued(q) => rows.push([
                    format!("q{id}"),
                    "queued".into(),
                    "-".into(),
                    "-/-".into(),
                    q.reservation.to_string(),
                    "-".into(),
                    "-".into(),
                    format!("{} ms", q.since.elapsed().as_millis()),
                ]),
                Entry::Running(q) => {
                    let (done, total) = (q.completed(), q.dispatched());
                    let progress = if total == 0 {
                        "-".to_string()
                    } else {
                        format!("{}%", done * 100 / total.max(1))
                    };
                    rows.push([
                        format!("q{id}"),
                        q.state_label().into(),
                        progress,
                        format!("{done}/{total}"),
                        q.reservation.to_string(),
                        q.resident_bytes().to_string(),
                        q.spill_events().to_string(),
                        format!("{} ms", q.started.elapsed().as_millis()),
                    ]);
                }
            }
        }
        drop(entries);
        let headers = [
            "query",
            "state",
            "progress",
            "work orders",
            "reserved B",
            "resident B",
            "spills",
            "age",
        ];
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        for row in &rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        for (h, w) in headers.iter().zip(&widths) {
            out.push_str(&format!("{h:<w$}  "));
        }
        out.push('\n');
        for row in &rows {
            for (cell, w) in row.iter().zip(&widths) {
                out.push_str(&format!("{cell:<w$}  "));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn live(id: u64, ops: usize) -> Arc<LiveQuery> {
        LiveQuery::new(
            QueryId::new(id),
            "agg".into(),
            1 << 20,
            None,
            MemoryTracker::new(),
            Some(TraceSink::for_query(1024, QueryId::new(id))),
            ops,
        )
    }

    #[test]
    fn registry_tracks_queued_and_running() {
        let reg = LiveRegistry::new();
        reg.enqueue(QueryId::new(2), 512);
        reg.admit(live(1, 3));
        assert_eq!(reg.counts(), (1, 1));
        let table = reg.render_table();
        assert!(table.contains("q1"), "{table}");
        assert!(table.contains("q2"), "{table}");
        assert!(table.contains("queued"), "{table}");
        assert!(table.contains("running"), "{table}");
        reg.remove(QueryId::new(2));
        assert_eq!(reg.counts(), (1, 0));
    }

    #[test]
    fn watchdog_flags_a_stalled_edge_once() {
        let hub = MetricsHub::new();
        let q = live(1, 2);
        q.on_edge_staged(0, 1, 2, 4);
        // Zero timeout: any staged edge counts as stalled immediately.
        assert_eq!(q.watchdog_pass(&hub, Duration::ZERO, 0.8), 1);
        // Second pass: the same stall is not re-flagged.
        assert_eq!(q.watchdog_pass(&hub, Duration::ZERO, 0.8), 0);
        // A flush clears the flag; a new stall is flagged again.
        q.on_edge_flushed(0);
        assert_eq!(q.watchdog_pass(&hub, Duration::ZERO, 0.8), 0, "empty edge");
        q.on_edge_staged(0, 1, 1, 4);
        assert_eq!(q.watchdog_pass(&hub, Duration::ZERO, 0.8), 1);
        let snap = hub.snapshot();
        assert_eq!(snap.counter(HubCounter::WatchdogStalledEdges), 2);
    }

    #[test]
    fn watchdog_flags_deadline_fraction() {
        let hub = MetricsHub::new();
        let q = LiveQuery::new(
            QueryId::new(7),
            "agg".into(),
            1 << 20,
            Some(Duration::ZERO),
            MemoryTracker::new(),
            None,
            1,
        );
        assert_eq!(q.watchdog_pass(&hub, Duration::from_secs(60), 0.8), 1);
        assert_eq!(q.watchdog_pass(&hub, Duration::from_secs(60), 0.8), 0);
        assert_eq!(hub.snapshot().counter(HubCounter::WatchdogDeadline), 1);
    }
}
