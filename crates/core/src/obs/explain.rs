//! `EXPLAIN ANALYZE`: the executed plan annotated with measured statistics.
//!
//! [`ExplainAnalyze::build`] is a pure fold of a [`QueryPlan`] and the
//! [`QueryMetrics`] its execution produced — per-operator rows, bytes, work
//! orders, wall time and per-edge UoT occupancy summaries, shaped as the
//! plan tree. It is computed for every engine/service execution (the inputs
//! already exist; the fold is a few allocations) and attached to
//! [`QueryResult::explain`](crate::engine::QueryResult::explain).
//! [`ExplainAnalyze::render`] turns it into the annotated tree text that the
//! SQL statement `EXPLAIN ANALYZE <stmt>` returns as its result rows.

use crate::metrics::{EdgeMetrics, QueryMetrics};
use crate::plan::{OpId, QueryPlan, Source};
use std::sync::Arc;
use std::time::Duration;
use uot_storage::{BlockFormat, DataType, Schema, StorageBlock, Value};

/// One operator of the executed plan, annotated with measured statistics.
#[derive(Debug, Clone)]
pub struct OpExplain {
    /// Operator id in the plan.
    pub id: OpId,
    /// Display name.
    pub name: String,
    /// Kind label ("select", "probe", ...).
    pub kind: String,
    /// Work orders executed.
    pub work_orders: usize,
    /// Input blocks consumed via transfer edges.
    pub input_blocks: usize,
    /// Input rows consumed via transfer edges.
    pub input_rows: usize,
    /// Output blocks produced.
    pub produced_blocks: usize,
    /// Output rows produced.
    pub produced_rows: usize,
    /// Output bytes produced.
    pub produced_bytes: usize,
    /// Summed work-order execution time.
    pub total_task_time: Duration,
    /// Longest single work order.
    pub max_task_time: Duration,
    /// Rows pruned by LIP filters at this operator.
    pub lip_pruned_rows: usize,
    /// Measured statistics of the operator's outgoing transfer edge.
    pub edge: EdgeMetrics,
    /// Upstream operators feeding this one (stream source first, then
    /// blocking dependencies such as a probe's build side).
    pub children: Vec<OpId>,
}

/// The executed plan tree annotated with measured per-operator and per-edge
/// statistics.
#[derive(Debug, Clone)]
pub struct ExplainAnalyze {
    /// Root (sink) operator of the plan.
    pub root: OpId,
    /// Per-operator annotations, indexed by [`OpId`].
    pub ops: Vec<OpExplain>,
    /// End-to-end wall time.
    pub wall_time: Duration,
    /// Rows in the query result.
    pub result_rows: usize,
    /// Workers the query ran with.
    pub workers: usize,
    /// UoT degradations taken (budget retries).
    pub degradations: usize,
    /// Stream pipelines executed as fused loops.
    pub fused_pipelines: usize,
    /// Blocks evicted to the disk spill tier.
    pub spill_events: usize,
    /// Bytes written to the disk spill tier.
    pub spilled_bytes: usize,
    /// Peak bytes of temporary storage.
    pub peak_temp_bytes: usize,
}

impl ExplainAnalyze {
    /// Annotate `plan` with the measured statistics in `metrics`. Pure: no
    /// execution state is touched, so this runs on every query at negligible
    /// cost.
    pub fn build(plan: &QueryPlan, metrics: &QueryMetrics) -> ExplainAnalyze {
        let ops = plan
            .ops()
            .iter()
            .enumerate()
            .map(|(id, op)| {
                let m = metrics.ops.get(id);
                let mut children = Vec::new();
                if let Source::Op(p) = op.kind.stream_source() {
                    children.push(*p);
                }
                children.extend(op.kind.blocking_deps());
                OpExplain {
                    id,
                    name: op.name.clone(),
                    kind: op.kind.kind_label().to_string(),
                    work_orders: m.map_or(0, |m| m.work_orders),
                    input_blocks: m.map_or(0, |m| m.input_blocks),
                    input_rows: m.map_or(0, |m| m.input_rows),
                    produced_blocks: m.map_or(0, |m| m.produced_blocks),
                    produced_rows: m.map_or(0, |m| m.produced_rows),
                    produced_bytes: m.map_or(0, |m| m.produced_bytes),
                    total_task_time: m.map_or(Duration::ZERO, |m| m.total_task_time),
                    max_task_time: m.map_or(Duration::ZERO, |m| m.max_task_time()),
                    lip_pruned_rows: m.map_or(0, |m| m.lip_pruned_rows),
                    edge: metrics.edges.get(id).cloned().unwrap_or_default(),
                    children,
                }
            })
            .collect();
        ExplainAnalyze {
            root: plan.sink(),
            ops,
            wall_time: metrics.wall_time,
            result_rows: metrics.result_rows,
            workers: metrics.workers,
            degradations: metrics.degradations.len(),
            fused_pipelines: metrics.fused_pipelines,
            spill_events: metrics.spill_events,
            spilled_bytes: metrics.spilled_bytes,
            peak_temp_bytes: metrics.peak_temp_bytes,
        }
    }

    /// The annotated plan tree as text, one operator per line pair
    /// (`-> name [kind] ...` plus an edge line when the operator's output
    /// crossed a staged transfer edge).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "wall {:.3} ms, {} rows, {} workers",
            self.wall_time.as_secs_f64() * 1e3,
            self.result_rows,
            self.workers
        ));
        if self.degradations > 0 {
            out.push_str(&format!(", {} degradations", self.degradations));
        }
        if self.fused_pipelines > 0 {
            out.push_str(&format!(", {} fused pipelines", self.fused_pipelines));
        }
        if self.spill_events > 0 {
            out.push_str(&format!(
                ", {} spills ({} B)",
                self.spill_events, self.spilled_bytes
            ));
        }
        out.push_str(&format!(", peak temp {} B\n", self.peak_temp_bytes));
        self.render_op(self.root, 0, &mut out);
        out
    }

    fn render_op(&self, id: OpId, depth: usize, out: &mut String) {
        let op = &self.ops[id];
        let pad = "  ".repeat(depth);
        out.push_str(&format!(
            "{pad}-> {} [{}] work_orders={} in={} blk/{} rows out={} blk/{} rows/{} B time {:.3} ms (max {:.3} ms)",
            op.name,
            op.kind,
            op.work_orders,
            op.input_blocks,
            op.input_rows,
            op.produced_blocks,
            op.produced_rows,
            op.produced_bytes,
            op.total_task_time.as_secs_f64() * 1e3,
            op.max_task_time.as_secs_f64() * 1e3,
        ));
        if op.lip_pruned_rows > 0 {
            out.push_str(&format!(" lip_pruned={}", op.lip_pruned_rows));
        }
        out.push('\n');
        let e = &op.edge;
        if e.flushes + e.partial_flushes > 0 {
            let threshold = if e.threshold == usize::MAX {
                "table".to_string()
            } else {
                e.threshold.to_string()
            };
            let consumer = e
                .consumer
                .map(|c| self.ops[c].name.clone())
                .unwrap_or_else(|| "sink".into());
            out.push_str(&format!(
                "{pad}   edge -> {consumer}: uot={threshold} blk, {} flushes (+{} partial), \
                 {} blk/{} rows/{} B, staged max {} mean {:.1} over {} holds\n",
                e.flushes,
                e.partial_flushes,
                e.blocks,
                e.rows,
                e.bytes,
                e.max_staged,
                e.mean_staged(),
                e.stalls,
            ));
        }
        for &c in &op.children {
            self.render_op(c, depth + 1, out);
        }
    }

    /// The rendered tree as a one-column result table — what the SQL front
    /// door returns for `EXPLAIN ANALYZE <stmt>` in place of the statement's
    /// own rows (the real execution's metrics stay attached).
    pub fn result_blocks(&self) -> (Arc<Schema>, Vec<Arc<StorageBlock>>) {
        let text = self.render();
        let lines: Vec<&str> = text.lines().collect();
        let width = lines.iter().map(|l| l.len()).max().unwrap_or(1).max(1);
        let schema =
            Schema::from_pairs(&[("plan", DataType::Char(width.min(u16::MAX as usize) as u16))]);
        // One generously sized block; `append_row` growing past capacity
        // would split, so size for the whole rendering.
        let cap = (width + 16) * (lines.len() + 1);
        let mut block = StorageBlock::new(schema.clone(), BlockFormat::Row, cap)
            .expect("explain block allocation");
        for line in &lines {
            let ok = block
                .append_row(&[Value::Str((*line).to_string())])
                .expect("explain row append");
            debug_assert!(ok, "explain block sized for all lines");
        }
        (schema, vec![Arc::new(block)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::OperatorMetrics;
    use crate::plan::PlanBuilder;
    use uot_expr::{cmp, col, lit, AggSpec, CmpOp};
    use uot_storage::{Table, TableBuilder};

    fn table(name: &str, rows: i32) -> Arc<Table> {
        let s = Schema::from_pairs(&[("k", DataType::Int32), ("v", DataType::Float64)]);
        let mut tb = TableBuilder::new(name, s, BlockFormat::Column, 256);
        for i in 0..rows {
            tb.append(&[Value::I32(i), Value::F64(i as f64)]).unwrap();
        }
        Arc::new(tb.finish())
    }

    fn plan() -> QueryPlan {
        let t = table("t", 64);
        let mut b = PlanBuilder::new();
        let sel = b
            .select(
                Source::Table(t),
                cmp(col(0), CmpOp::Lt, lit(1000i32)),
                vec![col(1)],
                &["v"],
            )
            .unwrap();
        let agg = b
            .aggregate(Source::Op(sel), vec![], vec![AggSpec::count_star()], &["n"])
            .unwrap();
        b.build(agg).unwrap()
    }

    fn metrics_for(plan: &QueryPlan) -> QueryMetrics {
        let mut m = QueryMetrics {
            ops: plan
                .ops()
                .iter()
                .map(|op| OperatorMetrics {
                    name: op.name.clone(),
                    kind: op.kind.kind_label().to_string(),
                    work_orders: 2,
                    produced_blocks: 2,
                    produced_rows: 64,
                    produced_bytes: 512,
                    input_blocks: 1,
                    input_rows: 64,
                    ..Default::default()
                })
                .collect(),
            edges: vec![EdgeMetrics::default(); plan.len()],
            result_rows: 1,
            workers: 2,
            wall_time: Duration::from_millis(3),
            ..Default::default()
        };
        m.edges[0] = EdgeMetrics {
            consumer: Some(1),
            threshold: 4,
            stalls: 3,
            max_staged: 3,
            sum_staged: 6,
            flushes: 1,
            partial_flushes: 1,
            blocks: 2,
            rows: 64,
            bytes: 512,
        };
        m
    }

    #[test]
    fn build_and_render_annotated_tree() {
        let plan = plan();
        let metrics = metrics_for(&plan);
        let ex = ExplainAnalyze::build(&plan, &metrics);
        assert_eq!(ex.root, plan.sink());
        assert_eq!(ex.ops.len(), plan.len());
        // The aggregate's child is the select.
        assert_eq!(ex.ops[ex.root].children, vec![0]);
        let text = ex.render();
        assert!(text.contains("wall 3.000 ms, 1 rows, 2 workers"), "{text}");
        assert!(text.contains("[aggregate]"), "{text}");
        assert!(text.contains("[select]"), "{text}");
        assert!(text.contains("edge ->"), "{text}");
        assert!(text.contains("uot=4 blk"), "{text}");
        assert!(
            text.contains("staged max 3 mean 2.0 over 3 holds"),
            "{text}"
        );
        // The child renders indented under its consumer.
        let sel_line = text.lines().find(|l| l.contains("[select]")).unwrap();
        assert!(sel_line.starts_with("  ->"), "{sel_line}");
    }

    #[test]
    fn result_blocks_carry_the_rendering() {
        let plan = plan();
        let ex = ExplainAnalyze::build(&plan, &metrics_for(&plan));
        let (schema, blocks) = ex.result_blocks();
        assert_eq!(schema.len(), 1);
        let rows: usize = blocks.iter().map(|b| b.num_rows()).sum();
        assert_eq!(rows, ex.render().lines().count());
    }
}
