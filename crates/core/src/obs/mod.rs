//! Observability: trace-recording observers and exporters.
//!
//! This module turns the [`SchedulerObserver`](crate::scheduler::SchedulerObserver)
//! seam plus the raw event capture in [`crate::trace`] into the instrument
//! the paper's methodology assumes:
//!
//! * [`TracingObserver`] — records every scheduler event into a
//!   [`TraceSink`](crate::trace::TraceSink).
//! * [`CompositeObserver`] — fans events out to two observers, so tracing
//!   composes with the default
//!   [`MetricsObserver`](crate::scheduler::MetricsObserver) without giving up
//!   [`QueryMetrics`](crate::metrics::QueryMetrics).
//! * [`chrome`] — Chrome `trace_event` JSON for `chrome://tracing` /
//!   [Perfetto](https://ui.perfetto.dev) flamegraph-style timelines.
//! * [`prometheus`] — a Prometheus text-exposition snapshot of the counters
//!   and gauges a finished trace implies (work orders, transfers, bytes,
//!   pool occupancy, worker busy time, faults).
//! * [`timeline`] — per-edge UoT-occupancy timelines and per-operator task
//!   time distributions: the Fig. 3 / Fig. 5-shaped data of the paper.
//!
//! All exporters are pure functions over a frozen [`Trace`](crate::trace::Trace);
//! nothing here runs on the execution fast path.

pub mod chrome;
pub mod explain;
pub mod http;
pub mod hub;
pub mod live;
pub mod observer;
pub mod prometheus;
pub mod timeline;

pub use chrome::{chrome_trace_json, merged_chrome_trace_json};
pub use explain::ExplainAnalyze;
pub use http::{IntrospectionServer, ServerState};
pub use hub::{
    HistogramSnapshot, HubCounter, HubHistogram, HubObserver, HubSnapshot, MaybeHubObserver,
    MetricsHub,
};
pub use live::{LiveQuery, LiveRegistry, WatchdogConfig};
pub use observer::{CompositeObserver, MaybeTracingObserver, TracingObserver};
pub use prometheus::{prometheus_from_hub, prometheus_snapshot, prometheus_snapshot_merged};
pub use timeline::{operator_task_times, operator_time_shares, uot_timelines, EdgeTimeline};
