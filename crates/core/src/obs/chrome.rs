//! Chrome `trace_event` JSON export.
//!
//! The output loads directly into `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev): one timeline lane per worker showing
//! work-order execution spans, a scheduler lane with instant events
//! (dispatches, transfers, operator completions, faults), and counter tracks
//! for per-edge staged blocks and pool occupancy.
//!
//! The format is the stable subset of the Trace Event Format: `"X"` complete
//! events (`ts` + `dur`), `"i"` instants, `"C"` counters and `"M"` metadata,
//! all timestamped in microseconds.

use crate::trace::{Trace, TraceEventKind};
use std::fmt::Write;
use std::time::Duration;

/// Microseconds with sub-microsecond precision (Chrome's `ts` unit).
fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// Escape a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render `trace` as a Chrome `trace_event` JSON document.
///
/// Worker lanes are `tid 0..workers`; the scheduler lane (instant events
/// without a worker) is `tid workers`. Counter tracks (`ph: "C"`) carry edge
/// occupancy and pool bytes over time.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let sched_tid = trace.workers(); // one past the last worker lane
    let mut events: Vec<String> = Vec::with_capacity(trace.len() + sched_tid + 2);

    // Metadata: process + thread names make the lanes self-describing.
    events.push(r#"{"name":"process_name","ph":"M","pid":0,"args":{"name":"uot-engine"}}"#.into());
    for w in 0..sched_tid {
        events.push(format!(
            r#"{{"name":"thread_name","ph":"M","pid":0,"tid":{w},"args":{{"name":"worker {w}"}}}}"#
        ));
    }
    events.push(format!(
        r#"{{"name":"thread_name","ph":"M","pid":0,"tid":{sched_tid},"args":{{"name":"scheduler"}}}}"#
    ));

    let instant = |name: &str, cat: &str, t: Duration, args: String| {
        format!(
            r#"{{"name":"{}","cat":"{}","ph":"i","s":"t","ts":{:.3},"pid":0,"tid":{},"args":{}}}"#,
            esc(name),
            cat,
            us(t),
            sched_tid,
            args
        )
    };

    for e in &trace.events {
        let label = e.kind.label();
        match e.kind {
            TraceEventKind::WorkOrderFinished {
                seq,
                op,
                worker,
                start,
                end,
            } => {
                events.push(format!(
                    r#"{{"name":"{}","cat":"work_order","ph":"X","ts":{:.3},"dur":{:.3},"pid":0,"tid":{},"args":{{"seq":{},"op":{}}}}}"#,
                    esc(&trace.op_name(op)),
                    us(start),
                    us(end.saturating_sub(start)),
                    worker,
                    seq,
                    op
                ));
            }
            TraceEventKind::WorkOrderDispatched { seq, op } => {
                events.push(instant(
                    &format!("dispatch {}", trace.op_name(op)),
                    label,
                    e.t,
                    format!(r#"{{"seq":{seq},"op":{op}}}"#),
                ));
            }
            TraceEventKind::WorkOrderPanicked { seq, op }
            | TraceEventKind::WorkOrderFailed { seq, op }
            | TraceEventKind::WorkOrderCancelled { seq, op } => {
                events.push(instant(
                    &format!("{} {}", label, trace.op_name(op)),
                    label,
                    e.t,
                    format!(r#"{{"seq":{seq},"op":{op}}}"#),
                ));
            }
            TraceEventKind::BlocksProduced { op, blocks, rows } => {
                events.push(instant(
                    &format!("produce {}", trace.op_name(op)),
                    label,
                    e.t,
                    format!(r#"{{"blocks":{blocks},"rows":{rows}}}"#),
                ));
            }
            TraceEventKind::EdgeStaged {
                producer,
                consumer,
                staged,
                threshold,
            } => {
                // A counter track per edge: the UoT occupancy over time.
                events.push(format!(
                    r#"{{"name":"staged {}->{}","ph":"C","ts":{:.3},"pid":0,"args":{{"staged":{}}}}}"#,
                    esc(&trace.op_name(producer)),
                    esc(&trace.op_name(consumer)),
                    us(e.t),
                    staged
                ));
                let _ = threshold; // carried in the raw trace; not a counter
            }
            TraceEventKind::TransferFlushed {
                producer,
                consumer,
                blocks,
                bytes,
                partial,
            } => {
                events.push(instant(
                    &format!(
                        "transfer {}->{}",
                        trace.op_name(producer),
                        trace.op_name(consumer)
                    ),
                    label,
                    e.t,
                    format!(r#"{{"blocks":{blocks},"bytes":{bytes},"partial":{partial}}}"#),
                ));
                // The edge is empty after a flush: drop its counter to zero.
                events.push(format!(
                    r#"{{"name":"staged {}->{}","ph":"C","ts":{:.3},"pid":0,"args":{{"staged":0}}}}"#,
                    esc(&trace.op_name(producer)),
                    esc(&trace.op_name(consumer)),
                    us(e.t)
                ));
            }
            TraceEventKind::OperatorFinished { op } => {
                events.push(instant(
                    &format!("finish {}", trace.op_name(op)),
                    label,
                    e.t,
                    format!(r#"{{"op":{op}}}"#),
                ));
            }
            TraceEventKind::PoolAlloc { in_use, .. } | TraceEventKind::PoolFree { in_use, .. } => {
                events.push(format!(
                    r#"{{"name":"pool_in_use","ph":"C","ts":{:.3},"pid":0,"args":{{"bytes":{}}}}}"#,
                    us(e.t),
                    in_use
                ));
            }
            TraceEventKind::Degraded { from, to } => {
                events.push(instant(
                    &format!("degrade {from} -> {to}"),
                    label,
                    e.t,
                    "{}".into(),
                ));
            }
            TraceEventKind::FaultInjected { site, kind, op } => {
                events.push(instant(
                    &format!("fault {:?} at {}", site, trace.op_name(op)),
                    label,
                    e.t,
                    format!(r#"{{"kind":"{:?}","op":{}}}"#, kind, op),
                ));
            }
        }
    }

    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceEvent, TraceEventKind};

    fn sample_trace() -> Trace {
        Trace {
            events: vec![
                TraceEvent {
                    t: Duration::from_micros(1),
                    kind: TraceEventKind::WorkOrderDispatched { seq: 0, op: 0 },
                },
                TraceEvent {
                    t: Duration::from_micros(9),
                    kind: TraceEventKind::WorkOrderFinished {
                        seq: 0,
                        op: 0,
                        worker: 0,
                        start: Duration::from_micros(2),
                        end: Duration::from_micros(9),
                    },
                },
                TraceEvent {
                    t: Duration::from_micros(10),
                    kind: TraceEventKind::TransferFlushed {
                        producer: 0,
                        consumer: 1,
                        blocks: 2,
                        bytes: 128,
                        partial: false,
                    },
                },
            ],
            op_names: vec!["select \"q\"".into(), "probe".into()],
            dropped: 0,
        }
    }

    #[test]
    fn emits_complete_and_instant_events() {
        let json = chrome_trace_json(&sample_trace());
        assert!(json.contains(r#""ph":"X""#));
        assert!(json.contains(r#""ph":"i""#));
        assert!(json.contains(r#""ph":"C""#));
        assert!(json.contains(r#""ph":"M""#));
        assert!(json.contains("traceEvents"));
        // Name with an embedded quote is escaped, not emitted raw.
        assert!(json.contains(r#"select \"q\""#));
    }

    #[test]
    fn empty_trace_is_still_valid_shape() {
        let json = chrome_trace_json(&Trace::default());
        assert!(json.starts_with('{'));
        assert!(json.trim_end().ends_with('}'));
        assert!(json.contains("traceEvents"));
    }
}
