//! Chrome `trace_event` JSON export.
//!
//! The output loads directly into `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev): one timeline lane per worker showing
//! work-order execution spans, a scheduler lane with instant events
//! (dispatches, transfers, operator completions, faults), and counter tracks
//! for per-edge staged blocks and pool occupancy.
//!
//! Each trace's [`QueryId`](crate::query_id::QueryId) becomes the Chrome
//! process id, so [`merged_chrome_trace_json`] renders concurrent queries
//! from one [`QueryService`](crate::service::QueryService) as separate
//! process groups on a shared timeline — the interleaving of work orders
//! across queries is visible at a glance.
//!
//! The format is the stable subset of the Trace Event Format: `"X"` complete
//! events (`ts` + `dur`), `"i"` instants, `"C"` counters and `"M"` metadata,
//! all timestamped in microseconds.

use crate::trace::{Trace, TraceEventKind};
use std::fmt::Write;
use std::time::Duration;

/// Microseconds with sub-microsecond precision (Chrome's `ts` unit).
fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// Escape a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render `trace` as a Chrome `trace_event` JSON document.
///
/// Worker lanes are `tid 0..workers`; the scheduler lane (instant events
/// without a worker) is `tid workers`. Counter tracks (`ph: "C"`) carry edge
/// occupancy and pool bytes over time. The trace's query id is the `pid`
/// (0 for solo runs, so single-query output is unchanged).
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut events = Vec::new();
    emit_trace(trace, Duration::ZERO, &mut events);
    wrap(events)
}

/// Merge traces from concurrent queries into one Chrome document.
///
/// Each entry pairs a frozen [`Trace`] with the offset of that query's start
/// from the common epoch (e.g. service start or first submission) — event
/// timestamps inside a trace are relative to *its own* query start, so the
/// offset is what aligns sibling queries on one wall-clock timeline. Each
/// query renders as its own process (`pid` = its query id).
pub fn merged_chrome_trace_json(traces: &[(&Trace, Duration)]) -> String {
    let mut events = Vec::new();
    for (trace, offset) in traces {
        emit_trace(trace, *offset, &mut events);
    }
    wrap(events)
}

fn wrap(events: Vec<String>) -> String {
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n]}\n");
    out
}

/// Emit one trace's events, shifted by `offset`, into `out`.
fn emit_trace(trace: &Trace, offset: Duration, out: &mut Vec<String>) {
    let pid = trace.query.raw();
    let sched_tid = trace.workers(); // one past the last worker lane
    out.reserve(trace.len() + sched_tid + 2);

    // Metadata: process + thread names make the lanes self-describing.
    let process = if pid == 0 {
        "uot-engine".to_string()
    } else {
        format!("uot-engine {}", trace.query)
    };
    out.push(format!(
        r#"{{"name":"process_name","ph":"M","pid":{pid},"args":{{"name":"{}"}}}}"#,
        esc(&process)
    ));
    for w in 0..sched_tid {
        out.push(format!(
            r#"{{"name":"thread_name","ph":"M","pid":{pid},"tid":{w},"args":{{"name":"worker {w}"}}}}"#
        ));
    }
    out.push(format!(
        r#"{{"name":"thread_name","ph":"M","pid":{pid},"tid":{sched_tid},"args":{{"name":"scheduler"}}}}"#
    ));

    let instant = |name: &str, cat: &str, t: Duration, args: String| {
        format!(
            r#"{{"name":"{}","cat":"{}","ph":"i","s":"t","ts":{:.3},"pid":{},"tid":{},"args":{}}}"#,
            esc(name),
            cat,
            us(t + offset),
            pid,
            sched_tid,
            args
        )
    };

    for e in &trace.events {
        let label = e.kind.label();
        match e.kind {
            TraceEventKind::WorkOrderFinished {
                seq,
                op,
                worker,
                start,
                end,
            } => {
                out.push(format!(
                    r#"{{"name":"{}","cat":"work_order","ph":"X","ts":{:.3},"dur":{:.3},"pid":{},"tid":{},"args":{{"seq":{},"op":{}}}}}"#,
                    esc(&trace.op_name(op)),
                    us(start + offset),
                    us(end.saturating_sub(start)),
                    pid,
                    worker,
                    seq,
                    op
                ));
            }
            TraceEventKind::WorkOrderDispatched { seq, op } => {
                out.push(instant(
                    &format!("dispatch {}", trace.op_name(op)),
                    label,
                    e.t,
                    format!(r#"{{"seq":{seq},"op":{op}}}"#),
                ));
            }
            TraceEventKind::WorkOrderPanicked { seq, op }
            | TraceEventKind::WorkOrderFailed { seq, op }
            | TraceEventKind::WorkOrderCancelled { seq, op } => {
                out.push(instant(
                    &format!("{} {}", label, trace.op_name(op)),
                    label,
                    e.t,
                    format!(r#"{{"seq":{seq},"op":{op}}}"#),
                ));
            }
            TraceEventKind::BlocksProduced { op, blocks, rows } => {
                out.push(instant(
                    &format!("produce {}", trace.op_name(op)),
                    label,
                    e.t,
                    format!(r#"{{"blocks":{blocks},"rows":{rows}}}"#),
                ));
            }
            TraceEventKind::EdgeStaged {
                producer,
                consumer,
                staged,
                threshold,
            } => {
                // A counter track per edge: the UoT occupancy over time.
                out.push(format!(
                    r#"{{"name":"staged {}->{}","ph":"C","ts":{:.3},"pid":{},"args":{{"staged":{}}}}}"#,
                    esc(&trace.op_name(producer)),
                    esc(&trace.op_name(consumer)),
                    us(e.t + offset),
                    pid,
                    staged
                ));
                let _ = threshold; // carried in the raw trace; not a counter
            }
            TraceEventKind::TransferFlushed {
                producer,
                consumer,
                blocks,
                bytes,
                partial,
            } => {
                out.push(instant(
                    &format!(
                        "transfer {}->{}",
                        trace.op_name(producer),
                        trace.op_name(consumer)
                    ),
                    label,
                    e.t,
                    format!(r#"{{"blocks":{blocks},"bytes":{bytes},"partial":{partial}}}"#),
                ));
                // The edge is empty after a flush: drop its counter to zero.
                out.push(format!(
                    r#"{{"name":"staged {}->{}","ph":"C","ts":{:.3},"pid":{},"args":{{"staged":0}}}}"#,
                    esc(&trace.op_name(producer)),
                    esc(&trace.op_name(consumer)),
                    us(e.t + offset),
                    pid
                ));
            }
            TraceEventKind::OperatorFinished { op } => {
                out.push(instant(
                    &format!("finish {}", trace.op_name(op)),
                    label,
                    e.t,
                    format!(r#"{{"op":{op}}}"#),
                ));
            }
            TraceEventKind::PoolAlloc { in_use, .. } | TraceEventKind::PoolFree { in_use, .. } => {
                out.push(format!(
                    r#"{{"name":"pool_in_use","ph":"C","ts":{:.3},"pid":{},"args":{{"bytes":{}}}}}"#,
                    us(e.t + offset),
                    pid,
                    in_use
                ));
            }
            TraceEventKind::Degraded { from, to } => {
                out.push(instant(
                    &format!("degrade {from} -> {to}"),
                    label,
                    e.t,
                    "{}".into(),
                ));
            }
            TraceEventKind::PipelineFused {
                pipeline,
                head,
                tail,
                ops,
                batches,
                rows,
                elapsed_us,
            } => {
                out.push(instant(
                    &format!(
                        "fused {}..{}",
                        trace.op_name(head),
                        trace.op_name(tail)
                    ),
                    label,
                    e.t,
                    format!(
                        r#"{{"pipeline":{pipeline},"ops":{ops},"batches":{batches},"rows":{rows},"elapsed_us":{elapsed_us}}}"#
                    ),
                ));
            }
            TraceEventKind::SpillOut { op, bytes, in_use }
            | TraceEventKind::SpillIn { op, bytes, in_use } => {
                out.push(instant(
                    &format!("{} {}", label, trace.op_name(op)),
                    label,
                    e.t,
                    format!(r#"{{"bytes":{bytes},"op":{op}}}"#),
                ));
                // Spill moves resident bytes, so refresh the pool counter too.
                out.push(format!(
                    r#"{{"name":"pool_in_use","ph":"C","ts":{:.3},"pid":{},"args":{{"bytes":{}}}}}"#,
                    us(e.t + offset),
                    pid,
                    in_use
                ));
            }
            TraceEventKind::FaultInjected { site, kind, op } => {
                out.push(instant(
                    &format!("fault {:?} at {}", site, trace.op_name(op)),
                    label,
                    e.t,
                    format!(r#"{{"kind":"{:?}","op":{}}}"#, kind, op),
                ));
            }
            TraceEventKind::Watchdog {
                kind,
                producer,
                consumer,
                waited_us,
            } => {
                out.push(instant(
                    &format!("watchdog {kind:?}"),
                    label,
                    e.t,
                    format!(
                        r#"{{"producer":{producer},"consumer":{consumer},"waited_us":{waited_us}}}"#
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_id::QueryId;
    use crate::trace::{TraceEvent, TraceEventKind};

    fn sample_trace() -> Trace {
        Trace {
            events: vec![
                TraceEvent {
                    t: Duration::from_micros(1),
                    kind: TraceEventKind::WorkOrderDispatched { seq: 0, op: 0 },
                },
                TraceEvent {
                    t: Duration::from_micros(9),
                    kind: TraceEventKind::WorkOrderFinished {
                        seq: 0,
                        op: 0,
                        worker: 0,
                        start: Duration::from_micros(2),
                        end: Duration::from_micros(9),
                    },
                },
                TraceEvent {
                    t: Duration::from_micros(10),
                    kind: TraceEventKind::TransferFlushed {
                        producer: 0,
                        consumer: 1,
                        blocks: 2,
                        bytes: 128,
                        partial: false,
                    },
                },
            ],
            op_names: vec!["select \"q\"".into(), "probe".into()],
            dropped: 0,
            query: QueryId::SOLO,
        }
    }

    #[test]
    fn emits_complete_and_instant_events() {
        let json = chrome_trace_json(&sample_trace());
        assert!(json.contains(r#""ph":"X""#));
        assert!(json.contains(r#""ph":"i""#));
        assert!(json.contains(r#""ph":"C""#));
        assert!(json.contains(r#""ph":"M""#));
        assert!(json.contains("traceEvents"));
        // Solo traces keep pid 0: single-query output is unchanged.
        assert!(json.contains(r#""pid":0"#));
        // Name with an embedded quote is escaped, not emitted raw.
        assert!(json.contains(r#"select \"q\""#));
    }

    #[test]
    fn empty_trace_is_still_valid_shape() {
        let json = chrome_trace_json(&Trace::default());
        assert!(json.starts_with('{'));
        assert!(json.trim_end().ends_with('}'));
        assert!(json.contains("traceEvents"));
    }

    #[test]
    fn merged_traces_get_distinct_pids_and_offsets() {
        let mut a = sample_trace();
        a.query = QueryId::new(1);
        let mut b = sample_trace();
        b.query = QueryId::new(2);
        let json =
            merged_chrome_trace_json(&[(&a, Duration::ZERO), (&b, Duration::from_micros(500))]);
        assert!(json.contains(r#""pid":1"#));
        assert!(json.contains(r#""pid":2"#));
        assert!(json.contains("uot-engine q1"));
        assert!(json.contains("uot-engine q2"));
        // b's work-order span (start 2us) lands at 502us on the shared axis.
        assert!(json.contains(r#""ts":502.000"#), "{json}");
    }
}
