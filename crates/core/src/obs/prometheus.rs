//! Prometheus text-exposition snapshots.
//!
//! A [`Trace`] is a timeline; monitoring wants totals and last-known gauges.
//! [`prometheus_snapshot`] folds the timeline into the standard text format
//! (`# HELP` / `# TYPE` / `name{labels} value`): work-order and transfer
//! counters, pool-occupancy gauges, per-worker busy time, fault counts.
//! [`prometheus_snapshot_merged`] does the same over the traces of many
//! queries at once, emitting each `# TYPE`/`# HELP` header exactly once per
//! family and attributing samples with a `query` label — concatenating
//! per-query snapshots would duplicate the headers, which the exposition
//! format forbids. Both are produced offline from frozen traces.
//!
//! [`prometheus_from_hub`] is the *live* counterpart: it renders a
//! [`HubSnapshot`](crate::obs::hub::HubSnapshot) — counters plus real
//! Prometheus histograms (`_bucket{le=...}`/`_sum`/`_count`) — and backs the
//! service's `/metrics` endpoint.

use crate::obs::hub::{bucket_bounds, HubSnapshot};
use crate::trace::{Trace, TraceEventKind, WatchdogKind};
use std::collections::BTreeMap;
use std::fmt::Write;

/// Escape a Prometheus label value (`\` then `"` then newline).
fn esc(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// One metric family: help text, type, and labeled samples in insertion
/// order (BTreeMap keys keep the output deterministic).
struct Family {
    help: &'static str,
    kind: &'static str,
    samples: BTreeMap<String, f64>,
}

type Families = BTreeMap<&'static str, Family>;

/// Add `delta` to (counter) or overwrite (gauge) one labeled sample.
#[allow(clippy::too_many_arguments)]
fn add(
    families: &mut Families,
    name: &'static str,
    help: &'static str,
    kind: &'static str,
    labels: String,
    delta: f64,
    gauge_set: bool,
) {
    let fam = families.entry(name).or_insert_with(|| Family {
        help,
        kind,
        samples: BTreeMap::new(),
    });
    let v = fam.samples.entry(labels).or_insert(0.0);
    if gauge_set {
        *v = delta;
    } else {
        *v += delta;
    }
}

/// Fold `trace` into a Prometheus text-exposition snapshot.
pub fn prometheus_snapshot(trace: &Trace) -> String {
    render(fold(trace))
}

/// Fold many traces (one per query) into **one** snapshot: every
/// `# TYPE`/`# HELP` header appears exactly once per metric family, and each
/// sample carries a `query="qN"` label attributing it to its source trace.
pub fn prometheus_snapshot_merged(traces: &[&Trace]) -> String {
    let mut merged: Families = BTreeMap::new();
    for trace in traces {
        let query = trace.query.to_string();
        for (name, fam) in fold(trace) {
            let target = merged.entry(name).or_insert_with(|| Family {
                help: fam.help,
                kind: fam.kind,
                samples: BTreeMap::new(),
            });
            for (labels, v) in fam.samples {
                let labels = if labels.is_empty() {
                    format!("query=\"{}\"", esc(&query))
                } else {
                    format!("query=\"{}\",{labels}", esc(&query))
                };
                // Labels are disjoint across queries, so counter-add vs.
                // gauge-set is moot here; add keeps it total-preserving.
                *target.samples.entry(labels).or_insert(0.0) += v;
            }
        }
    }
    render(merged)
}

fn fold(trace: &Trace) -> Families {
    let mut families: Families = BTreeMap::new();

    for e in &trace.events {
        match e.kind {
            // Dispatches pair with a finish/panic/fail/cancel event; the
            // snapshot counts outcomes, not handoffs.
            TraceEventKind::WorkOrderDispatched { .. } => {}
            TraceEventKind::WorkOrderFinished {
                op,
                worker,
                start,
                end,
                ..
            } => {
                let op_label = format!("op=\"{}\"", esc(&trace.op_name(op)));
                add(
                    &mut families,
                    "uot_work_orders_total",
                    "Work orders completed, by operator.",
                    "counter",
                    op_label.clone(),
                    1.0,
                    false,
                );
                add(
                    &mut families,
                    "uot_work_order_seconds_total",
                    "Summed work-order execution time, by operator.",
                    "counter",
                    op_label,
                    end.saturating_sub(start).as_secs_f64(),
                    false,
                );
                add(
                    &mut families,
                    "uot_worker_busy_seconds_total",
                    "Time each worker spent executing work orders.",
                    "counter",
                    format!("worker=\"{worker}\""),
                    end.saturating_sub(start).as_secs_f64(),
                    false,
                );
            }
            TraceEventKind::WorkOrderPanicked { op, .. } => add(
                &mut families,
                "uot_work_order_panics_total",
                "Contained work-order panics, by operator.",
                "counter",
                format!("op=\"{}\"", esc(&trace.op_name(op))),
                1.0,
                false,
            ),
            TraceEventKind::WorkOrderFailed { op, .. } => add(
                &mut families,
                "uot_work_order_failures_total",
                "Work orders that returned an error, by operator.",
                "counter",
                format!("op=\"{}\"", esc(&trace.op_name(op))),
                1.0,
                false,
            ),
            TraceEventKind::WorkOrderCancelled { op, .. } => add(
                &mut families,
                "uot_work_order_cancellations_total",
                "Work orders stopped by cancellation, by operator.",
                "counter",
                format!("op=\"{}\"", esc(&trace.op_name(op))),
                1.0,
                false,
            ),
            TraceEventKind::BlocksProduced { op, blocks, rows } => {
                let op_label = format!("op=\"{}\"", esc(&trace.op_name(op)));
                add(
                    &mut families,
                    "uot_blocks_produced_total",
                    "Output blocks produced, by operator.",
                    "counter",
                    op_label.clone(),
                    blocks as f64,
                    false,
                );
                add(
                    &mut families,
                    "uot_rows_produced_total",
                    "Output rows produced, by operator.",
                    "counter",
                    op_label,
                    rows as f64,
                    false,
                );
            }
            TraceEventKind::EdgeStaged {
                producer,
                consumer,
                staged,
                ..
            } => add(
                &mut families,
                "uot_edge_staged_blocks",
                "Blocks currently staged on a transfer edge (last observed).",
                "gauge",
                format!(
                    "producer=\"{}\",consumer=\"{}\"",
                    esc(&trace.op_name(producer)),
                    esc(&trace.op_name(consumer))
                ),
                staged as f64,
                true,
            ),
            TraceEventKind::TransferFlushed {
                producer,
                consumer,
                blocks,
                bytes,
                partial,
            } => {
                let edge = format!(
                    "producer=\"{}\",consumer=\"{}\"",
                    esc(&trace.op_name(producer)),
                    esc(&trace.op_name(consumer))
                );
                add(
                    &mut families,
                    "uot_transfers_total",
                    "Transfer-edge flushes, by edge and kind.",
                    "counter",
                    format!("{edge},partial=\"{partial}\""),
                    1.0,
                    false,
                );
                add(
                    &mut families,
                    "uot_transfer_blocks_total",
                    "Blocks moved over transfer edges.",
                    "counter",
                    edge.clone(),
                    blocks as f64,
                    false,
                );
                add(
                    &mut families,
                    "uot_transfer_bytes_total",
                    "Bytes moved over transfer edges.",
                    "counter",
                    edge.clone(),
                    bytes as f64,
                    false,
                );
                // An edge is empty right after its flush.
                add(
                    &mut families,
                    "uot_edge_staged_blocks",
                    "Blocks currently staged on a transfer edge (last observed).",
                    "gauge",
                    edge,
                    0.0,
                    true,
                );
            }
            TraceEventKind::OperatorFinished { op } => add(
                &mut families,
                "uot_operators_finished_total",
                "Operators that ran to completion.",
                "counter",
                format!("op=\"{}\"", esc(&trace.op_name(op))),
                1.0,
                false,
            ),
            TraceEventKind::PoolAlloc { in_use, .. } => {
                add(
                    &mut families,
                    "uot_pool_in_use_bytes",
                    "Tracked temporary bytes in use (last observed).",
                    "gauge",
                    String::new(),
                    in_use as f64,
                    true,
                );
                add(
                    &mut families,
                    "uot_pool_peak_observed_bytes",
                    "Highest tracked in-use bytes seen in the trace.",
                    "gauge",
                    String::new(),
                    0.0, // placeholder; max-folded below via samples map
                    false,
                );
                let fam = families.get_mut("uot_pool_peak_observed_bytes").unwrap();
                let v = fam.samples.get_mut("").unwrap();
                *v = v.max(in_use as f64);
            }
            TraceEventKind::PoolFree { in_use, .. } => add(
                &mut families,
                "uot_pool_in_use_bytes",
                "Tracked temporary bytes in use (last observed).",
                "gauge",
                String::new(),
                in_use as f64,
                true,
            ),
            TraceEventKind::Degraded { .. } => add(
                &mut families,
                "uot_degradations_total",
                "UoT degradations taken after tripped memory budgets.",
                "counter",
                String::new(),
                1.0,
                false,
            ),
            TraceEventKind::PipelineFused {
                head, rows, ops, ..
            } => {
                let label = format!("head=\"{}\"", esc(&trace.op_name(head)));
                add(
                    &mut families,
                    "uot_fused_pipelines_total",
                    "Pipelines executed as fused push-based loops, by head operator.",
                    "counter",
                    label.clone(),
                    1.0,
                    false,
                );
                add(
                    &mut families,
                    "uot_fused_rows_total",
                    "Rows pushed through fused pipeline loops, by head operator.",
                    "counter",
                    label,
                    rows as f64,
                    false,
                );
                let _ = ops;
            }
            TraceEventKind::SpillOut { op, bytes, .. } => {
                let op_label = format!("op=\"{}\"", esc(&trace.op_name(op)));
                add(
                    &mut families,
                    "uot_spill_events_total",
                    "Blocks evicted to the disk spill tier, by operator.",
                    "counter",
                    op_label.clone(),
                    1.0,
                    false,
                );
                add(
                    &mut families,
                    "uot_spilled_bytes_total",
                    "Bytes written to the disk spill tier, by operator.",
                    "counter",
                    op_label,
                    bytes as f64,
                    false,
                );
            }
            TraceEventKind::SpillIn { op, bytes, .. } => add(
                &mut families,
                "uot_spill_restored_bytes_total",
                "Bytes faulted back in from the disk spill tier, by operator.",
                "counter",
                format!("op=\"{}\"", esc(&trace.op_name(op))),
                bytes as f64,
                false,
            ),
            TraceEventKind::FaultInjected { site, kind, .. } => add(
                &mut families,
                "uot_faults_injected_total",
                "Deterministic faults fired, by site and kind.",
                "counter",
                format!(
                    "site=\"{}\",kind=\"{}\"",
                    esc(&format!("{site:?}")),
                    esc(&format!("{kind:?}"))
                ),
                1.0,
                false,
            ),
            TraceEventKind::Watchdog { kind, producer, .. } => {
                let labels = match kind {
                    WatchdogKind::StalledEdge => format!(
                        "kind=\"stalled_edge\",producer=\"{}\"",
                        esc(&trace.op_name(producer))
                    ),
                    WatchdogKind::DeadlineNear => "kind=\"deadline_near\"".to_string(),
                };
                add(
                    &mut families,
                    "uot_watchdog_flags_total",
                    "Anomalies flagged by the service watchdog, by kind.",
                    "counter",
                    labels,
                    1.0,
                    false,
                );
            }
        }
    }

    // Proper counters (added, never set): a merged export must sum them
    // across traces instead of keeping the last query's value.
    add(
        &mut families,
        "uot_trace_events_total",
        "Events retained in the trace.",
        "counter",
        String::new(),
        trace.len() as f64,
        false,
    );
    add(
        &mut families,
        "uot_trace_dropped_events_total",
        "Events dropped at the trace capacity bound.",
        "counter",
        String::new(),
        trace.dropped as f64,
        false,
    );
    families
}

fn render(families: Families) -> String {
    let mut out = String::new();
    for (name, fam) in &families {
        let _ = writeln!(out, "# HELP {name} {}", fam.help);
        let _ = writeln!(out, "# TYPE {name} {}", fam.kind);
        for (labels, value) in &fam.samples {
            if labels.is_empty() {
                let _ = writeln!(out, "{name} {value}");
            } else {
                let _ = writeln!(out, "{name}{{{labels}}} {value}");
            }
        }
    }
    out
}

/// Render a live [`HubSnapshot`] in Prometheus text-exposition format:
/// every hub counter as a `counter` family (all carry the `_total` suffix),
/// every hub distribution as a real Prometheus `histogram` —
/// `name_bucket{le="..."}` samples with cumulative counts (empty buckets are
/// skipped; `+Inf` always present), plus `name_sum` and `name_count`.
pub fn prometheus_from_hub(snap: &HubSnapshot) -> String {
    let mut out = String::new();
    for (name, help, value) in snap.counter_rows() {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, help, h) in snap.histogram_rows() {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cum = 0u64;
        for (i, &b) in h.buckets.iter().enumerate() {
            if b == 0 {
                continue;
            }
            cum += b;
            // Buckets are half-open [lo, hi) over integers, so `hi - 1` is
            // the inclusive upper bound Prometheus' `le` expects.
            let _ = writeln!(
                out,
                "{name}_bucket{{le=\"{}\"}} {cum}",
                bucket_bounds(i).1 - 1
            );
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{name}_sum {}", h.sum);
        let _ = writeln!(out, "{name}_count {}", h.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;
    use std::time::Duration;

    #[test]
    fn snapshot_folds_counters_and_gauges() {
        let trace = Trace {
            events: vec![
                TraceEvent {
                    t: Duration::from_micros(5),
                    kind: TraceEventKind::WorkOrderFinished {
                        seq: 0,
                        op: 0,
                        worker: 0,
                        start: Duration::ZERO,
                        end: Duration::from_micros(5),
                    },
                },
                TraceEvent {
                    t: Duration::from_micros(6),
                    kind: TraceEventKind::WorkOrderFinished {
                        seq: 1,
                        op: 0,
                        worker: 1,
                        start: Duration::from_micros(1),
                        end: Duration::from_micros(6),
                    },
                },
                TraceEvent {
                    t: Duration::from_micros(7),
                    kind: TraceEventKind::EdgeStaged {
                        producer: 0,
                        consumer: 1,
                        staged: 2,
                        threshold: 4,
                    },
                },
            ],
            query: crate::query_id::QueryId::SOLO,
            op_names: vec!["select(t)".into(), "probe(t)".into()],
            dropped: 1,
        };
        let text = prometheus_snapshot(&trace);
        assert!(text.contains("# TYPE uot_work_orders_total counter"));
        assert!(text.contains(r#"uot_work_orders_total{op="select(t)"} 2"#));
        assert!(
            text.contains(r#"uot_edge_staged_blocks{producer="select(t)",consumer="probe(t)"} 2"#)
        );
        assert!(text.contains("uot_trace_dropped_events_total 1"));
        assert!(text.contains("uot_trace_events_total 3"));
    }

    #[test]
    fn empty_trace_yields_only_totals() {
        let text = prometheus_snapshot(&Trace::default());
        assert!(text.contains("uot_trace_events_total 0"));
        assert!(!text.contains("uot_work_orders_total{"));
    }

    #[test]
    fn label_values_are_escaped() {
        let trace = Trace {
            events: vec![TraceEvent {
                t: Duration::ZERO,
                kind: TraceEventKind::OperatorFinished { op: 0 },
            }],
            op_names: vec!["weird\"name\\with\nnewline".into()],
            dropped: 0,
            query: crate::query_id::QueryId::SOLO,
        };
        let text = prometheus_snapshot(&trace);
        assert!(
            text.contains(r#"op="weird\"name\\with\nnewline""#),
            "{text}"
        );
        assert!(
            !text.contains("with\nnewline"),
            "raw newline leaked into a label value"
        );
    }

    #[test]
    fn merged_export_emits_each_header_once_with_query_labels() {
        let mk = |q: u64| Trace {
            events: vec![TraceEvent {
                t: Duration::ZERO,
                kind: TraceEventKind::WorkOrderFinished {
                    seq: 0,
                    op: 0,
                    worker: 0,
                    start: Duration::ZERO,
                    end: Duration::from_micros(3),
                },
            }],
            op_names: vec!["select(t)".into()],
            dropped: 0,
            query: crate::query_id::QueryId::new(q),
        };
        let (a, b) = (mk(1), mk(2));
        let text = prometheus_snapshot_merged(&[&a, &b]);
        assert_eq!(
            text.matches("# TYPE uot_work_orders_total counter").count(),
            1,
            "{text}"
        );
        assert_eq!(
            text.matches("# HELP uot_work_orders_total").count(),
            1,
            "{text}"
        );
        assert!(text.contains(r#"uot_work_orders_total{query="q1",op="select(t)"} 1"#));
        assert!(text.contains(r#"uot_work_orders_total{query="q2",op="select(t)"} 1"#));
        // The per-trace totals are proper counters: one sample per query,
        // not one last-writer-wins value.
        assert!(text.contains(r#"uot_trace_events_total{query="q1"} 1"#));
        assert!(text.contains(r#"uot_trace_events_total{query="q2"} 1"#));
    }

    #[test]
    fn watchdog_events_fold_into_flag_counters() {
        let trace = Trace {
            events: vec![
                TraceEvent {
                    t: Duration::ZERO,
                    kind: TraceEventKind::Watchdog {
                        kind: WatchdogKind::StalledEdge,
                        producer: 0,
                        consumer: 1,
                        waited_us: 1000,
                    },
                },
                TraceEvent {
                    t: Duration::ZERO,
                    kind: TraceEventKind::Watchdog {
                        kind: WatchdogKind::DeadlineNear,
                        producer: 0,
                        consumer: 0,
                        waited_us: 5000,
                    },
                },
            ],
            op_names: vec!["select(t)".into(), "agg".into()],
            dropped: 0,
            query: crate::query_id::QueryId::SOLO,
        };
        let text = prometheus_snapshot(&trace);
        assert!(text.contains("# TYPE uot_watchdog_flags_total counter"));
        assert!(text
            .contains(r#"uot_watchdog_flags_total{kind="stalled_edge",producer="select(t)"} 1"#));
        assert!(text.contains(r#"uot_watchdog_flags_total{kind="deadline_near"} 1"#));
    }

    #[test]
    fn hub_snapshot_renders_counters_and_histograms() {
        use crate::obs::hub::{HubCounter, HubHistogram, MetricsHub};
        let hub = MetricsHub::new();
        hub.add(HubCounter::WorkOrders, 4);
        for v in [3u64, 3, 100] {
            hub.record(HubHistogram::WorkOrderServiceUs, v);
        }
        let text = prometheus_from_hub(&hub.snapshot());
        assert!(text.contains("# TYPE uot_hub_work_orders_total counter"));
        assert!(text.contains("uot_hub_work_orders_total 4"));
        assert!(text.contains("# TYPE uot_hub_work_order_service_us histogram"));
        // Cumulative buckets: the two 3s fill le="3", the 100 lands above.
        assert!(text.contains(r#"uot_hub_work_order_service_us_bucket{le="3"} 2"#));
        assert!(text.contains(r#"uot_hub_work_order_service_us_bucket{le="+Inf"} 3"#));
        assert!(text.contains("uot_hub_work_order_service_us_sum 106"));
        assert!(text.contains("uot_hub_work_order_service_us_count 3"));
        // Every counter family carries the _total suffix.
        for line in text.lines().filter(|l| l.starts_with("# TYPE")) {
            let mut parts = line.split_whitespace().skip(2);
            let (name, kind) = (parts.next().unwrap(), parts.next().unwrap());
            if kind == "counter" {
                assert!(name.ends_with("_total"), "counter without _total: {name}");
            }
        }
    }
}
