//! Trace-recording and fan-out observers.

use crate::metrics::TaskRecord;
use crate::plan::OpId;
use crate::scheduler::{MetricsCarrier, MetricsObserver, SchedulerObserver};
use crate::trace::{TraceEventKind, TraceSink};
use crate::work_order::WorkOrder;
use std::sync::Arc;
use uot_storage::StorageBlock;

/// Observer that records every scheduler event into a [`TraceSink`].
///
/// It runs on the scheduler thread, so recording costs one uncontended lock
/// per event; byte sums over flushed block slices are computed here — the
/// [`NoopObserver`](crate::scheduler::NoopObserver) path never pays them.
#[derive(Debug, Clone)]
pub struct TracingObserver {
    sink: Arc<TraceSink>,
}

impl TracingObserver {
    /// Observer recording into `sink`.
    pub fn new(sink: Arc<TraceSink>) -> Self {
        TracingObserver { sink }
    }

    /// The sink this observer records into.
    pub fn sink(&self) -> &Arc<TraceSink> {
        &self.sink
    }
}

impl SchedulerObserver for TracingObserver {
    fn work_order_dispatched(&mut self, wo: &WorkOrder) {
        self.sink.record(TraceEventKind::WorkOrderDispatched {
            seq: wo.seq,
            op: wo.op,
        });
    }

    fn work_order_completed(&mut self, wo: &WorkOrder, record: TaskRecord) {
        self.sink.record(TraceEventKind::WorkOrderFinished {
            seq: wo.seq,
            op: wo.op,
            worker: record.worker,
            start: record.start,
            end: record.end,
        });
    }

    fn blocks_produced(&mut self, op: OpId, blocks: usize, rows: usize, _bytes: usize) {
        self.sink
            .record(TraceEventKind::BlocksProduced { op, blocks, rows });
    }

    fn edge_staged(&mut self, producer: OpId, consumer: OpId, staged: usize, threshold: usize) {
        self.sink.record(TraceEventKind::EdgeStaged {
            producer,
            consumer,
            staged,
            threshold,
        });
    }

    fn transfer_flushed(
        &mut self,
        producer: OpId,
        consumer: OpId,
        blocks: &[Arc<StorageBlock>],
        partial: bool,
    ) {
        self.sink.record(TraceEventKind::TransferFlushed {
            producer,
            consumer,
            blocks: blocks.len(),
            bytes: blocks.iter().map(|b| b.allocated_bytes()).sum(),
            partial,
        });
    }

    fn operator_finished(&mut self, op: OpId) {
        self.sink.record(TraceEventKind::OperatorFinished { op });
    }
}

/// Fan-out observer: every event goes to `first`, then to `second`.
///
/// The canonical stack is `CompositeObserver<MetricsObserver, TracingObserver>`
/// — metrics keep accumulating exactly as on the untraced path (the drivers
/// reach them through [`MetricsCarrier`]) while the tracing layer records the
/// same events into its sink.
#[derive(Debug)]
pub struct CompositeObserver<A, B> {
    /// The first (inner) observer; carries the metrics in the canonical stack.
    pub first: A,
    /// The second (outer) observer.
    pub second: B,
}

impl<A, B> CompositeObserver<A, B> {
    /// Compose two observers.
    pub fn new(first: A, second: B) -> Self {
        CompositeObserver { first, second }
    }
}

impl<A: SchedulerObserver, B: SchedulerObserver> SchedulerObserver for CompositeObserver<A, B> {
    fn work_order_dispatched(&mut self, wo: &WorkOrder) {
        self.first.work_order_dispatched(wo);
        self.second.work_order_dispatched(wo);
    }

    fn work_order_completed(&mut self, wo: &WorkOrder, record: TaskRecord) {
        self.first.work_order_completed(wo, record);
        self.second.work_order_completed(wo, record);
    }

    fn blocks_produced(&mut self, op: OpId, blocks: usize, rows: usize, bytes: usize) {
        self.first.blocks_produced(op, blocks, rows, bytes);
        self.second.blocks_produced(op, blocks, rows, bytes);
    }

    fn blocks_transferred(&mut self, op: OpId, blocks: &[Arc<StorageBlock>]) {
        self.first.blocks_transferred(op, blocks);
        self.second.blocks_transferred(op, blocks);
    }

    fn edge_staged(&mut self, producer: OpId, consumer: OpId, staged: usize, threshold: usize) {
        self.first
            .edge_staged(producer, consumer, staged, threshold);
        self.second
            .edge_staged(producer, consumer, staged, threshold);
    }

    fn transfer_flushed(
        &mut self,
        producer: OpId,
        consumer: OpId,
        blocks: &[Arc<StorageBlock>],
        partial: bool,
    ) {
        self.first
            .transfer_flushed(producer, consumer, blocks, partial);
        self.second
            .transfer_flushed(producer, consumer, blocks, partial);
    }

    fn operator_finished(&mut self, op: OpId) {
        self.first.operator_finished(op);
        self.second.operator_finished(op);
    }
}

impl<A: MetricsCarrier, B> MetricsCarrier for CompositeObserver<A, B> {
    fn metrics(&mut self) -> &mut MetricsObserver {
        self.first.metrics()
    }
}

/// A tracing layer that may be absent. The query service composes one
/// observer stack per query — `CompositeObserver<MetricsObserver,
/// MaybeTracingObserver>` — so traced and untraced queries share a single
/// concrete [`SchedulerCore`](crate::scheduler::SchedulerCore) type; an
/// absent layer costs one branch per event.
#[derive(Debug, Default)]
pub struct MaybeTracingObserver(pub Option<TracingObserver>);

impl SchedulerObserver for MaybeTracingObserver {
    fn work_order_dispatched(&mut self, wo: &WorkOrder) {
        if let Some(t) = &mut self.0 {
            t.work_order_dispatched(wo);
        }
    }

    fn work_order_completed(&mut self, wo: &WorkOrder, record: TaskRecord) {
        if let Some(t) = &mut self.0 {
            t.work_order_completed(wo, record);
        }
    }

    fn blocks_produced(&mut self, op: OpId, blocks: usize, rows: usize, bytes: usize) {
        if let Some(t) = &mut self.0 {
            t.blocks_produced(op, blocks, rows, bytes);
        }
    }

    fn blocks_transferred(&mut self, op: OpId, blocks: &[Arc<StorageBlock>]) {
        if let Some(t) = &mut self.0 {
            t.blocks_transferred(op, blocks);
        }
    }

    fn edge_staged(&mut self, producer: OpId, consumer: OpId, staged: usize, threshold: usize) {
        if let Some(t) = &mut self.0 {
            t.edge_staged(producer, consumer, staged, threshold);
        }
    }

    fn transfer_flushed(
        &mut self,
        producer: OpId,
        consumer: OpId,
        blocks: &[Arc<StorageBlock>],
        partial: bool,
    ) {
        if let Some(t) = &mut self.0 {
            t.transfer_flushed(producer, consumer, blocks, partial);
        }
    }

    fn operator_finished(&mut self, op: OpId) {
        if let Some(t) = &mut self.0 {
            t.operator_finished(op);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work_order::WorkKind;
    use std::time::Duration;

    #[derive(Default)]
    struct Counting {
        events: usize,
    }

    impl SchedulerObserver for Counting {
        fn work_order_dispatched(&mut self, _wo: &WorkOrder) {
            self.events += 1;
        }
        fn operator_finished(&mut self, _op: OpId) {
            self.events += 1;
        }
    }

    #[test]
    fn composite_fans_out_to_both() {
        let mut c = CompositeObserver::new(Counting::default(), Counting::default());
        let wo = WorkOrder {
            query: crate::query_id::QueryId::SOLO,
            op: 0,
            kind: WorkKind::FinalizeAggregate,
            seq: 0,
        };
        c.work_order_dispatched(&wo);
        c.operator_finished(0);
        assert_eq!(c.first.events, 2);
        assert_eq!(c.second.events, 2);
    }

    #[test]
    fn tracing_observer_records_dispatch_and_finish() {
        let sink = TraceSink::new(1024);
        let mut obs = TracingObserver::new(sink.clone());
        let wo = WorkOrder {
            query: crate::query_id::QueryId::SOLO,
            op: 2,
            kind: WorkKind::FinalizeAggregate,
            seq: 7,
        };
        obs.work_order_dispatched(&wo);
        obs.work_order_completed(
            &wo,
            TaskRecord {
                op: 2,
                worker: 1,
                start: Duration::from_micros(10),
                end: Duration::from_micros(30),
            },
        );
        obs.edge_staged(1, 2, 3, 4);
        obs.operator_finished(2);
        let trace = obs.sink().finish(vec![]);
        assert_eq!(trace.len(), 4);
        assert!(trace.events.iter().any(|e| matches!(
            e.kind,
            TraceEventKind::WorkOrderFinished {
                seq: 7,
                op: 2,
                worker: 1,
                ..
            }
        )));
        assert!(trace.events.iter().any(|e| matches!(
            e.kind,
            TraceEventKind::EdgeStaged {
                producer: 1,
                consumer: 2,
                staged: 3,
                threshold: 4,
            }
        )));
    }
}
