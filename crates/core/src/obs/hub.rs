//! The always-on metrics hub: live service telemetry without trace replay.
//!
//! [`TraceSink`](crate::trace::TraceSink) speaks only after a query finishes
//! — it buffers events and folds them post-hoc. The [`MetricsHub`] is the
//! complementary *live* surface: a set of sharded, lock-free counters and
//! log-bucketed (HDR-style) histograms updated **online** from
//! [`SchedulerObserver`](crate::scheduler::SchedulerObserver) and
//! [`SpillObserver`](uot_storage::SpillObserver) events, cheap enough to
//! leave on for every query. The `/metrics` endpoint and the adaptive-UoT
//! roadmap both read the same snapshot.
//!
//! ## Histogram bucketing
//!
//! Values 0..8 map to exact unit buckets; larger values map to one of four
//! sub-buckets per power of two (two mantissa bits), so every bucket's width
//! is at most 25% of its lower bound. 252 buckets cover the full `u64`
//! range. Recording is three relaxed atomic adds on a shard picked by the
//! calling thread's id; a snapshot folds the shards.

use crate::metrics::TaskRecord;
use crate::plan::OpId;
use crate::scheduler::SchedulerObserver;
use crate::work_order::WorkOrder;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use uot_storage::{MemoryTracker, StorageBlock};

/// Monotonic event counters the hub maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum HubCounter {
    /// Queries submitted to the service (before admission).
    QueriesSubmitted,
    /// Queries that finished successfully.
    QueriesCompleted,
    /// Queries that finished with an error (other than cancellation).
    QueriesFailed,
    /// Queries cancelled (explicitly or by deadline).
    QueriesCancelled,
    /// Submissions parked in the admission queue.
    AdmissionQueued,
    /// Submissions rejected at admission.
    AdmissionRejected,
    /// Work orders completed.
    WorkOrders,
    /// Output blocks produced by operators.
    BlocksProduced,
    /// Output rows produced by operators.
    RowsProduced,
    /// Edge flushes (threshold-triggered transfers).
    Transfers,
    /// End-of-producer flushes of partial accumulations.
    PartialTransfers,
    /// Blocks moved across transfer edges.
    TransferBlocks,
    /// Bytes moved across transfer edges.
    TransferBytes,
    /// Blocks evicted to the disk spill tier.
    SpillEvents,
    /// Bytes written to the disk spill tier.
    SpilledBytes,
    /// Bytes faulted back in from the spill tier.
    SpillRestoredBytes,
    /// Watchdog flags raised for stalled transfer edges.
    WatchdogStalledEdges,
    /// Watchdog flags raised for queries near their deadline.
    WatchdogDeadline,
}

/// Names and help strings, indexed by `HubCounter as usize`. Counter names
/// follow the Prometheus convention: every counter carries a `_total`
/// suffix.
pub(crate) const COUNTERS: &[(&str, &str)] = &[
    ("uot_hub_queries_submitted_total", "Queries submitted"),
    ("uot_hub_queries_completed_total", "Queries that succeeded"),
    ("uot_hub_queries_failed_total", "Queries that failed"),
    ("uot_hub_queries_cancelled_total", "Queries cancelled"),
    (
        "uot_hub_admission_queued_total",
        "Submissions parked in the admission queue",
    ),
    (
        "uot_hub_admission_rejected_total",
        "Submissions rejected at admission",
    ),
    ("uot_hub_work_orders_total", "Work orders completed"),
    ("uot_hub_blocks_produced_total", "Output blocks produced"),
    ("uot_hub_rows_produced_total", "Output rows produced"),
    (
        "uot_hub_transfers_total",
        "Threshold-triggered edge flushes",
    ),
    (
        "uot_hub_partial_transfers_total",
        "End-of-producer partial flushes",
    ),
    (
        "uot_hub_transfer_blocks_total",
        "Blocks moved across transfer edges",
    ),
    (
        "uot_hub_transfer_bytes_total",
        "Bytes moved across transfer edges",
    ),
    ("uot_hub_spill_events_total", "Blocks evicted to disk"),
    ("uot_hub_spilled_bytes_total", "Bytes spilled to disk"),
    (
        "uot_hub_spill_restored_bytes_total",
        "Bytes restored from disk",
    ),
    (
        "uot_hub_watchdog_stalled_edges_total",
        "Watchdog flags for stalled transfer edges",
    ),
    (
        "uot_hub_watchdog_deadline_total",
        "Watchdog flags for queries near their deadline",
    ),
];

/// The distributions the hub tracks as log-bucketed histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum HubHistogram {
    /// Submit-to-result latency per query, microseconds.
    QueryLatencyUs,
    /// Submit-to-admission wait per query, microseconds.
    AdmissionWaitUs,
    /// Work-order service time, microseconds.
    WorkOrderServiceUs,
    /// Transfer-edge occupancy after each staging event, blocks.
    EdgeOccupancyBlocks,
    /// Pool-resident bytes sampled at each work-order completion.
    PoolResidencyBytes,
    /// Bytes per spill write.
    SpillVolumeBytes,
}

/// Names and help strings, indexed by `HubHistogram as usize`.
pub(crate) const HISTOGRAMS: &[(&str, &str)] = &[
    (
        "uot_hub_query_latency_us",
        "Submit-to-result query latency (us)",
    ),
    ("uot_hub_admission_wait_us", "Submit-to-admission wait (us)"),
    (
        "uot_hub_work_order_service_us",
        "Work-order service time (us)",
    ),
    (
        "uot_hub_edge_occupancy_blocks",
        "Edge occupancy after staging (blocks)",
    ),
    (
        "uot_hub_pool_residency_bytes",
        "Pool-resident bytes at work-order completion",
    ),
    ("uot_hub_spill_volume_bytes", "Bytes per spill write"),
];

const NUM_COUNTERS: usize = COUNTERS.len();
const NUM_HISTOGRAMS: usize = HISTOGRAMS.len();
const SHARDS: usize = 8;

/// Total buckets: 8 exact unit buckets plus 4 sub-buckets for each of the 61
/// octaves `2^3 ..= 2^63`.
pub const HIST_BUCKETS: usize = 252;

/// Bucket index of `v` (see the module docs for the mapping).
pub fn bucket_index(v: u64) -> usize {
    if v < 8 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as u64;
        let sub = (v >> (msb - 2)) & 3;
        (8 + (msb - 3) * 4 + sub) as usize
    }
}

/// Half-open value range `[lo, hi)` covered by bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < 8 {
        (i as u64, i as u64 + 1)
    } else {
        let octave = ((i - 8) / 4) as u32;
        let sub = ((i - 8) % 4) as u64;
        let width = 1u64 << (octave + 1);
        let lo = (1u64 << (octave + 3)) + sub * width;
        (lo, lo.saturating_add(width))
    }
}

/// One shard's histogram: relaxed atomic bucket counts plus count and sum.
#[derive(Debug)]
struct ShardHistogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

impl ShardHistogram {
    fn new() -> Self {
        ShardHistogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        // Count last with Release so a snapshot that Acquire-loads the count
        // sees at least that many bucket/sum updates.
        self.count.fetch_add(1, Ordering::Release);
    }
}

#[derive(Debug)]
struct HubShard {
    counters: [AtomicU64; NUM_COUNTERS],
    hists: Vec<ShardHistogram>,
}

impl HubShard {
    fn new() -> Self {
        HubShard {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: (0..NUM_HISTOGRAMS).map(|_| ShardHistogram::new()).collect(),
        }
    }
}

/// Sharded live metrics: counters plus log-bucketed histograms (module
/// docs). One hub serves a whole [`QueryService`](crate::service::QueryService)
/// — or a whole [`Engine`](crate::engine::Engine) when installed via
/// [`EngineConfig::hub`](crate::engine::EngineConfig::hub) — across every
/// query it runs.
#[derive(Debug)]
pub struct MetricsHub {
    shards: Vec<HubShard>,
}

impl Default for MetricsHub {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsHub {
    /// An empty hub.
    pub fn new() -> Self {
        MetricsHub {
            shards: (0..SHARDS).map(|_| HubShard::new()).collect(),
        }
    }

    fn shard(&self) -> &HubShard {
        // The shard key is a hash of the thread id — computed once per
        // thread and cached in a TLS cell, because `thread::current()`
        // clones an `Arc` and hashing it on every counter bump would
        // dominate the cost of the bump itself.
        thread_local! {
            static SHARD_KEY: std::cell::Cell<usize> =
                const { std::cell::Cell::new(usize::MAX) };
        }
        let key = SHARD_KEY.with(|c| {
            let v = c.get();
            if v != usize::MAX {
                return v;
            }
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            std::thread::current().id().hash(&mut h);
            let v = h.finish() as usize;
            c.set(v);
            v
        });
        &self.shards[key % self.shards.len()]
    }

    /// Add `delta` to a counter.
    pub fn add(&self, c: HubCounter, delta: u64) {
        self.shard().counters[c as usize].fetch_add(delta, Ordering::Relaxed);
    }

    /// Record one observation into a histogram.
    pub fn record(&self, h: HubHistogram, v: u64) {
        self.shard().hists[h as usize].record(v);
    }

    /// Bulk-merge locally accumulated deltas into the calling thread's
    /// shard, draining them to zero. The batched path behind
    /// [`HubObserver`]: one pass over the non-zero entries instead of an
    /// atomic RMW per event. Keeps the snapshot ordering invariant — every
    /// histogram's buckets and sum land before its count (`Release`), so a
    /// concurrent [`snapshot`](Self::snapshot) never sees a count the
    /// buckets can't cover.
    pub fn absorb(&self, counters: &mut [u64; NUM_COUNTERS], hists: &mut [HistogramSnapshot]) {
        let shard = self.shard();
        for (local, shared) in counters.iter_mut().zip(shard.counters.iter()) {
            if *local > 0 {
                shared.fetch_add(*local, Ordering::Relaxed);
                *local = 0;
            }
        }
        for (local, shared) in hists.iter_mut().zip(shard.hists.iter()) {
            if local.count == 0 {
                continue;
            }
            for (b, sb) in local.buckets.iter_mut().zip(shared.buckets.iter()) {
                if *b > 0 {
                    sb.fetch_add(*b, Ordering::Relaxed);
                    *b = 0;
                }
            }
            shared.sum.fetch_add(local.sum, Ordering::Relaxed);
            shared.count.fetch_add(local.count, Ordering::Release);
            local.sum = 0;
            local.count = 0;
        }
    }

    /// Fold every shard into a point-in-time snapshot. Recording may
    /// continue concurrently; the snapshot never loses or double-counts an
    /// event that completed before the call, and never includes a partial
    /// bucket increment without eventually including its count.
    pub fn snapshot(&self) -> HubSnapshot {
        let mut counters = [0u64; NUM_COUNTERS];
        let mut hists: Vec<HistogramSnapshot> = (0..NUM_HISTOGRAMS)
            .map(|_| HistogramSnapshot::empty())
            .collect();
        for shard in &self.shards {
            for (acc, c) in counters.iter_mut().zip(shard.counters.iter()) {
                *acc += c.load(Ordering::Relaxed);
            }
            for (acc, h) in hists.iter_mut().zip(shard.hists.iter()) {
                acc.count += h.count.load(Ordering::Acquire);
                acc.sum += h.sum.load(Ordering::Relaxed);
                for (b, sb) in acc.buckets.iter_mut().zip(h.buckets.iter()) {
                    *b += sb.load(Ordering::Relaxed);
                }
            }
        }
        HubSnapshot { counters, hists }
    }
}

/// A point-in-time fold of every [`MetricsHub`] shard.
#[derive(Debug, Clone)]
pub struct HubSnapshot {
    counters: [u64; NUM_COUNTERS],
    hists: Vec<HistogramSnapshot>,
}

impl HubSnapshot {
    /// The current value of `c`.
    pub fn counter(&self, c: HubCounter) -> u64 {
        self.counters[c as usize]
    }

    /// The folded histogram for `h`.
    pub fn histogram(&self, h: HubHistogram) -> &HistogramSnapshot {
        &self.hists[h as usize]
    }

    /// Merge `other` into `self` (counters add, histograms add bucketwise) —
    /// for aggregating hubs across services or processes.
    pub fn merge(&mut self, other: &HubSnapshot) {
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            *a += b;
        }
        for (a, b) in self.hists.iter_mut().zip(other.hists.iter()) {
            a.merge(b);
        }
    }

    /// Iterate `(name, help, value)` over every counter.
    pub(crate) fn counter_rows(
        &self,
    ) -> impl Iterator<Item = (&'static str, &'static str, u64)> + '_ {
        COUNTERS
            .iter()
            .zip(self.counters.iter())
            .map(|(&(name, help), &v)| (name, help, v))
    }

    /// Iterate `(name, help, histogram)` over every histogram.
    pub(crate) fn histogram_rows(
        &self,
    ) -> impl Iterator<Item = (&'static str, &'static str, &HistogramSnapshot)> + '_ {
        HISTOGRAMS
            .iter()
            .zip(self.hists.iter())
            .map(|(&(name, help), h)| (name, help, h))
    }
}

/// One folded log-bucketed histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Per-bucket observation counts ([`bucket_bounds`] gives the ranges).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// An empty histogram.
    pub fn empty() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: vec![0; HIST_BUCKETS],
        }
    }

    /// Add `other`'s observations to `self`.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Record one observation (serial reference path; the concurrent path
    /// is [`MetricsHub::record`]).
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (0.0 ..= 1.0) as the largest value mapping to the
    /// bucket that holds the rank-`round(q * (count-1))` observation — the
    /// same rank rule the bench harness's exact percentiles use, so the two
    /// always land in the same bucket when fed the same observations.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count - 1) as f64 * q.clamp(0.0, 1.0)).round() as u64;
        let mut cum = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum > rank {
                return bucket_bounds(i).1 - 1;
            }
        }
        bucket_bounds(HIST_BUCKETS - 1).1 - 1
    }
}

/// [`SchedulerObserver`] layer feeding a [`MetricsHub`] (and, inside the
/// service, the live per-query registry) online — no trace replay.
///
/// Events are accumulated in plain (non-atomic) local counters — the
/// observer is owned by one scheduler loop — and pushed to the shared hub
/// every [`FLUSH_EVERY`] events and on drop. The batching keeps the hub's
/// per-event cost off the dispatch hot path entirely; a `/metrics` scrape
/// can lag the newest handful of events of an in-flight query by design.
#[derive(Debug)]
pub struct HubObserver {
    hub: Arc<MetricsHub>,
    /// The query's memory tracker, sampled for pool-residency observations.
    tracker: Arc<MemoryTracker>,
    /// Live per-query status updated alongside the hub (service runs only).
    /// Live updates are *not* batched: they are a handful of relaxed stores
    /// the watchdog and `/queries` need promptly.
    live: Option<Arc<crate::obs::live::LiveQuery>>,
    /// Locally accumulated counter deltas, flushed in bulk.
    local_counters: [u64; NUM_COUNTERS],
    /// Locally accumulated histogram observations, flushed in bulk.
    local_hists: Vec<HistogramSnapshot>,
    /// Events since the last flush.
    pending: u32,
}

/// Observer events accumulated locally between pushes to the shared hub.
const FLUSH_EVERY: u32 = 64;

impl HubObserver {
    /// Observer recording into `hub`; `tracker` is the query's own memory
    /// tracker (pool residency is sampled from it at each work-order
    /// completion).
    pub fn new(hub: Arc<MetricsHub>, tracker: Arc<MemoryTracker>) -> Self {
        HubObserver {
            hub,
            tracker,
            live: None,
            local_counters: [0; NUM_COUNTERS],
            local_hists: (0..NUM_HISTOGRAMS)
                .map(|_| HistogramSnapshot::empty())
                .collect(),
            pending: 0,
        }
    }

    /// Also mirror progress into a live registry entry.
    pub fn with_live(mut self, live: Arc<crate::obs::live::LiveQuery>) -> Self {
        self.live = Some(live);
        self
    }

    #[inline]
    fn bump(&mut self, c: HubCounter, delta: u64) {
        self.local_counters[c as usize] += delta;
    }

    #[inline]
    fn note(&mut self, h: HubHistogram, v: u64) {
        self.local_hists[h as usize].record(v);
    }

    #[inline]
    fn tick(&mut self) {
        self.pending += 1;
        if self.pending >= FLUSH_EVERY {
            self.flush();
        }
    }

    /// Push the locally accumulated deltas to the shared hub now. Called
    /// automatically every [`FLUSH_EVERY`] events and on drop.
    pub fn flush(&mut self) {
        if self.pending == 0 {
            return;
        }
        self.pending = 0;
        self.hub
            .absorb(&mut self.local_counters, &mut self.local_hists);
    }
}

impl Drop for HubObserver {
    fn drop(&mut self) {
        self.flush();
    }
}

impl SchedulerObserver for HubObserver {
    fn work_order_dispatched(&mut self, _wo: &WorkOrder) {
        if let Some(live) = &self.live {
            live.on_dispatched();
        }
    }

    fn work_order_completed(&mut self, _wo: &WorkOrder, record: TaskRecord) {
        self.bump(HubCounter::WorkOrders, 1);
        self.note(
            HubHistogram::WorkOrderServiceUs,
            record.duration().as_micros() as u64,
        );
        self.note(
            HubHistogram::PoolResidencyBytes,
            self.tracker.current_bytes() as u64,
        );
        if let Some(live) = &self.live {
            live.on_completed();
        }
        self.tick();
    }

    fn blocks_produced(&mut self, _op: OpId, blocks: usize, rows: usize, _bytes: usize) {
        self.bump(HubCounter::BlocksProduced, blocks as u64);
        self.bump(HubCounter::RowsProduced, rows as u64);
        if let Some(live) = &self.live {
            live.on_rows(rows);
        }
        self.tick();
    }

    fn edge_staged(&mut self, producer: OpId, consumer: OpId, staged: usize, threshold: usize) {
        self.note(HubHistogram::EdgeOccupancyBlocks, staged as u64);
        if let Some(live) = &self.live {
            live.on_edge_staged(producer, consumer, staged, threshold);
        }
        self.tick();
    }

    fn transfer_flushed(
        &mut self,
        producer: OpId,
        _consumer: OpId,
        blocks: &[Arc<StorageBlock>],
        partial: bool,
    ) {
        self.bump(
            if partial {
                HubCounter::PartialTransfers
            } else {
                HubCounter::Transfers
            },
            1,
        );
        self.bump(HubCounter::TransferBlocks, blocks.len() as u64);
        self.bump(
            HubCounter::TransferBytes,
            blocks.iter().map(|b| b.allocated_bytes() as u64).sum(),
        );
        if let Some(live) = &self.live {
            live.on_edge_flushed(producer);
        }
        self.tick();
    }
}

/// A hub layer that may be absent, mirroring
/// [`MaybeTracingObserver`](crate::obs::MaybeTracingObserver): the engine
/// composes one concrete observer stack whether or not a hub is installed,
/// and an absent layer costs one branch per event.
#[derive(Debug, Default)]
pub struct MaybeHubObserver(pub Option<HubObserver>);

impl SchedulerObserver for MaybeHubObserver {
    fn work_order_dispatched(&mut self, wo: &WorkOrder) {
        if let Some(h) = &mut self.0 {
            h.work_order_dispatched(wo);
        }
    }

    fn work_order_completed(&mut self, wo: &WorkOrder, record: TaskRecord) {
        if let Some(h) = &mut self.0 {
            h.work_order_completed(wo, record);
        }
    }

    fn blocks_produced(&mut self, op: OpId, blocks: usize, rows: usize, bytes: usize) {
        if let Some(h) = &mut self.0 {
            h.blocks_produced(op, blocks, rows, bytes);
        }
    }

    fn blocks_transferred(&mut self, op: OpId, blocks: &[Arc<StorageBlock>]) {
        if let Some(h) = &mut self.0 {
            h.blocks_transferred(op, blocks);
        }
    }

    fn edge_staged(&mut self, producer: OpId, consumer: OpId, staged: usize, threshold: usize) {
        if let Some(h) = &mut self.0 {
            h.edge_staged(producer, consumer, staged, threshold);
        }
    }

    fn transfer_flushed(
        &mut self,
        producer: OpId,
        consumer: OpId,
        blocks: &[Arc<StorageBlock>],
        partial: bool,
    ) {
        if let Some(h) = &mut self.0 {
            h.transfer_flushed(producer, consumer, blocks, partial);
        }
    }

    fn operator_finished(&mut self, op: OpId) {
        if let Some(h) = &mut self.0 {
            h.operator_finished(op);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping_is_exhaustive_and_monotonic() {
        // Every bucket's bounds round-trip through bucket_index, and bounds
        // tile the value range without gaps or overlaps.
        let mut prev_hi = 0u64;
        for i in 0..HIST_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(
                lo,
                prev_hi,
                "bucket {i} must start where {} ended",
                i.max(1) - 1
            );
            assert!(hi > lo);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi - 1), i);
            prev_hi = hi;
        }
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn bucket_width_is_within_a_quarter_of_lower_bound() {
        for i in 8..HIST_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(
                (hi - lo) * 4 <= lo,
                "bucket {i} [{lo},{hi}) wider than 25% of its lower bound"
            );
        }
    }

    #[test]
    fn record_and_snapshot_round_trip() {
        let hub = MetricsHub::new();
        hub.add(HubCounter::WorkOrders, 3);
        hub.add(HubCounter::WorkOrders, 2);
        for v in [0u64, 1, 7, 8, 100, 1_000_000] {
            hub.record(HubHistogram::QueryLatencyUs, v);
        }
        let snap = hub.snapshot();
        assert_eq!(snap.counter(HubCounter::WorkOrders), 5);
        let h = snap.histogram(HubHistogram::QueryLatencyUs);
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1_000_116);
        assert_eq!(h.buckets.iter().sum::<u64>(), 6);
    }

    #[test]
    fn quantile_matches_exact_rank_bucket() {
        let hub = MetricsHub::new();
        let mut values: Vec<u64> = (0..1000).map(|i| i * 37 % 9973).collect();
        for &v in &values {
            hub.record(HubHistogram::WorkOrderServiceUs, v);
        }
        values.sort_unstable();
        let snap = hub.snapshot();
        let h = snap.histogram(HubHistogram::WorkOrderServiceUs);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let rank = ((values.len() - 1) as f64 * q).round() as usize;
            assert_eq!(
                bucket_index(h.quantile(q)),
                bucket_index(values[rank]),
                "q={q}"
            );
        }
    }

    #[test]
    fn merge_adds_bucketwise() {
        let a = MetricsHub::new();
        let b = MetricsHub::new();
        a.record(HubHistogram::SpillVolumeBytes, 10);
        b.record(HubHistogram::SpillVolumeBytes, 10);
        b.record(HubHistogram::SpillVolumeBytes, 99);
        b.add(HubCounter::SpillEvents, 2);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.counter(HubCounter::SpillEvents), 2);
        let h = s.histogram(HubHistogram::SpillVolumeBytes);
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 119);
        assert_eq!(h.buckets[bucket_index(10)], 2);
        assert_eq!(h.buckets[bucket_index(99)], 1);
    }
}
